//! The evaluation's qualitative claims, pinned as assertions: who wins,
//! in what order, and where the savings come from. These are the "shapes"
//! of Figures 5–12 — CI guards that the reproduction keeps reproducing.

use rex::algos::pagerank::{PageRankConfig, Strategy};
use rex::algos::reference;
use rex::algos::{kmeans, kmeans_mr, pagerank, pagerank_mr, sssp, sssp_mr};
use rex::cluster::failure::RecoveryStrategy;
use rex::cluster::runtime::{ClusterConfig, ClusterRuntime};
use rex::data::graph::{generate_graph, Graph, GraphSpec};
use rex::data::points::{generate_points, PointSpec};
use rex::hadoop::cost::EmulationMode;
use rex::hadoop::job::HadoopCluster;
use rex::storage::catalog::Catalog;
use rex::storage::table::StoredTable;

const WORKERS: usize = 8;

fn graph() -> Graph {
    generate_graph(GraphSpec::dbpedia(600, 42))
}

fn catalog(g: &Graph) -> Catalog {
    let cat = Catalog::new();
    let mut t = StoredTable::new("graph", Graph::schema(), vec![0]);
    t.load_unchecked(g.edge_tuples());
    cat.register(t);
    cat
}

/// Figure 6's ordering: REX Δ < REX no-Δ < HaLoop LB < Hadoop LB.
#[test]
fn pagerank_strategy_ordering() {
    let g = graph();
    let iters = 15u64;

    let rt = ClusterRuntime::new(ClusterConfig::new(WORKERS), catalog(&g));
    let delta = rt
        .run(pagerank::plan_builder(
            PageRankConfig { threshold: 0.01, max_iterations: iters },
            Strategy::Delta,
        ))
        .unwrap()
        .1
        .simulated_time();
    let rt = ClusterRuntime::new(ClusterConfig::new(WORKERS), catalog(&g));
    let no_delta = rt
        .run(pagerank::plan_builder(
            PageRankConfig { threshold: 0.0, max_iterations: iters },
            Strategy::NoDelta,
        ))
        .unwrap()
        .1
        .simulated_time();

    let hadoop = pagerank_mr::run_mr(
        &g,
        iters as usize,
        &HadoopCluster::new(WORKERS).with_mode(EmulationMode::HadoopLowerBound),
    )
    .1
    .total_sim_time();
    let haloop = pagerank_mr::run_mr(
        &g,
        iters as usize,
        &HadoopCluster::new(WORKERS).with_mode(EmulationMode::HaLoopLowerBound),
    )
    .1
    .total_sim_time();

    assert!(delta < no_delta, "Δ {delta} !< no-Δ {no_delta}");
    assert!(no_delta < haloop, "no-Δ {no_delta} !< HaLoop {haloop}");
    assert!(haloop < hadoop, "HaLoop {haloop} !< Hadoop {hadoop}");
    assert!(
        haloop / delta > 3.0,
        "REX Δ should beat HaLoop LB by a wide margin, got {:.1}x",
        haloop / delta
    );
}

/// Figure 6(b): REX Δ's per-iteration runtime shrinks; no-Δ stays flat.
#[test]
fn pagerank_per_iteration_trends() {
    let g = graph();
    let rt = ClusterRuntime::new(ClusterConfig::new(WORKERS), catalog(&g));
    let (_, delta_rep) = rt
        .run(pagerank::plan_builder(
            PageRankConfig { threshold: 0.01, max_iterations: 50 },
            Strategy::Delta,
        ))
        .unwrap();
    let times: Vec<f64> = delta_rep.query.strata.iter().map(|s| s.simulated_time).collect();
    assert!(times.len() > 5);
    let head = times[1];
    let tail = times[times.len() - 2];
    assert!(
        tail < head / 3.0,
        "Δ per-iteration time should collapse: head {head:.0}, tail {tail:.0}"
    );
}

/// Figure 5's claim: REX Δ beats Hadoop on K-means at every size, with the
/// largest relative gap at small sizes (iteration overhead).
#[test]
fn kmeans_rex_wins_across_sizes() {
    let mut gaps = Vec::new();
    for n in [300usize, 2_400] {
        let points = generate_points(PointSpec::geodata(n, 1));
        let cat = Catalog::new();
        let mut t = StoredTable::new("geodata", rex::data::points::schema(), vec![0]);
        t.load_unchecked(rex::data::points::point_tuples(&points));
        cat.register(t);
        let rt = ClusterRuntime::new(ClusterConfig::new(WORKERS), cat);
        let rex_time = rt
            .run(kmeans::plan_builder(kmeans::KMeansConfig { k: 8, max_iterations: 100 }))
            .unwrap()
            .1
            .simulated_time();
        let mr_time = kmeans_mr::run_mr(
            &points,
            8,
            100,
            &HadoopCluster::new(WORKERS).with_mode(EmulationMode::HadoopLowerBound),
        )
        .1
        .total_sim_time();
        assert!(rex_time < mr_time, "n={n}: REX {rex_time} !< Hadoop {mr_time}");
        gaps.push(mr_time / rex_time);
    }
    assert!(gaps[0] > 2.0, "small-size gap should be large (startup): {gaps:?}");
}

/// Figure 7's "Improved Accuracy": REX Δ's post-convergence-tail
/// iterations cost almost nothing.
#[test]
fn sssp_tail_iterations_are_nearly_free() {
    let g = graph();
    let rt = ClusterRuntime::new(ClusterConfig::new(WORKERS), catalog(&g));
    let (_, rep) =
        rt.run(sssp::plan_builder(sssp::SsspConfig::from_source(0), Strategy::Delta)).unwrap();
    let times: Vec<f64> = rep.query.strata.iter().map(|s| s.simulated_time).collect();
    let peak = times.iter().copied().fold(0.0, f64::max);
    let last = *times.last().unwrap();
    assert!(last < peak * 0.2, "final stratum {last:.1} vs peak {peak:.1}");
}

/// Figure 11's claim: REX Δ ships fewer bytes than the Hadoop pipeline
/// (absolute volumes; the per-time-unit framing depends on runtimes).
#[test]
fn sssp_delta_ships_fewer_bytes_than_hadoop() {
    let g = graph();
    let depth = reference::hops_to_reach(&reference::shortest_paths(&g, 0), 1.0);
    let rt = ClusterRuntime::new(ClusterConfig::new(WORKERS), catalog(&g));
    let (_, rex_rep) =
        rt.run(sssp::plan_builder(sssp::SsspConfig::from_source(0), Strategy::Delta)).unwrap();
    let (_, mr_rep) = sssp_mr::run_mr(
        &g,
        0,
        depth as usize + 1,
        &HadoopCluster::new(WORKERS).with_mode(EmulationMode::HadoopLowerBound),
    );
    let rex_bytes = rex_rep.query.totals.bytes_sent;
    let mr_bytes = mr_rep.total_network_bytes();
    assert!(rex_bytes < mr_bytes, "REX {rex_bytes} bytes !< Hadoop {mr_bytes} bytes");
}

/// Figure 12's claim: incremental recovery costs less than restart, and
/// both produce the correct answer.
#[test]
fn incremental_recovery_beats_restart() {
    let g = graph();
    let run = |strategy| {
        let cfg = ClusterConfig::new(WORKERS)
            .with_failure(rex::cluster::failure::FailurePlan::kill_at(1, 5), strategy);
        let rt = ClusterRuntime::new(cfg, catalog(&g));
        rt.run(sssp::plan_builder(sssp::SsspConfig::from_source(0), Strategy::Delta)).unwrap()
    };
    let (restart_res, restart_rep) = run(RecoveryStrategy::Restart);
    let (incr_res, incr_rep) = run(RecoveryStrategy::Incremental);
    assert_eq!(restart_res, incr_res, "both strategies agree on the answer");
    assert!(
        incr_rep.simulated_time() < restart_rep.simulated_time(),
        "incremental {} !< restart {}",
        incr_rep.simulated_time(),
        restart_rep.simulated_time()
    );
}
