//! §6.1 claims as assertions: UDF/UDA overhead vs built-ins on the Figure
//! 4 aggregation query, and REX's advantage over the Hadoop pipeline.

use rex::core::delta::Delta;
use rex::core::error::Result;
use rex::core::exec::LocalRuntime;
use rex::core::handlers::{AggHandler, AggState};
use rex::core::udf::{ClosureUdf, Registry};
use rex::core::value::{DataType, Value};
use rex::data::lineitem::{generate_lineitem, lineitem_tuples, reference_fig4_answer};
use rex::hadoop::api::{FnMapper, FnReducer};
use rex::hadoop::job::{HadoopCluster, JobInput, MapReduceJob};
use rex::rql::lower::{compile, MemTables};
use rex::rql::SchemaCatalog;
use std::sync::Arc;

struct UdaSum;
impl AggHandler for UdaSum {
    fn name(&self) -> &str {
        "usum"
    }
    fn init(&self) -> AggState {
        rex::core::aggregates::SumAgg.init()
    }
    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        rex::core::aggregates::SumAgg.agg_state(state, d)
    }
    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        rex::core::aggregates::SumAgg.agg_result(state)
    }
}

fn setup(n: usize) -> (SchemaCatalog, MemTables, Vec<rex::data::LineItem>) {
    let rows = generate_lineitem(n, 5);
    let mut catalog = SchemaCatalog::new();
    catalog.register("lineitem", rex::data::lineitem::schema());
    let mut tables = MemTables::new();
    tables.insert("lineitem", lineitem_tuples(&rows));
    (catalog, tables, rows)
}

#[test]
fn builtin_query_is_exact() {
    let (catalog, tables, rows) = setup(5_000);
    let (want_sum, want_count) = reference_fig4_answer(&rows);
    let reg = Registry::with_builtins();
    let plan = compile(
        "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1",
        &catalog,
        &tables,
        &reg,
    )
    .unwrap();
    let (res, _) = LocalRuntime::new().run(plan).unwrap();
    assert!((res[0].get(0).as_double().unwrap() - want_sum).abs() < 1e-9);
    assert_eq!(res[0].get(1).as_int().unwrap(), want_count);
}

/// "Both REX and REX-wrap are no more than 10% slower than their native
/// execution counterparts" — the UDF form of the query must cost at most
/// 10% more than the built-in form.
#[test]
fn udf_overhead_is_within_ten_percent() {
    let (catalog, tables, rows) = setup(10_000);
    let (want_sum, _) = reference_fig4_answer(&rows);

    let reg = Registry::with_builtins();
    let plan = compile(
        "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1",
        &catalog,
        &tables,
        &reg,
    )
    .unwrap();
    let (_, rep_builtin) = LocalRuntime::new().run(plan).unwrap();

    let reg = Registry::with_builtins();
    reg.register_scalar(Arc::new(ClosureUdf::new(
        "gt_one",
        vec![DataType::Int],
        DataType::Bool,
        |args| Ok(Value::Bool(args[0].as_int().unwrap_or(0) > 1)),
    )));
    reg.register_agg("usum", Arc::new(UdaSum));
    let plan = compile(
        "SELECT usum(tax), count(*) FROM lineitem WHERE gt_one(linenumber)",
        &catalog,
        &tables,
        &reg,
    )
    .unwrap();
    let (res, rep_udf) = LocalRuntime::with_registry(reg).run(plan).unwrap();
    assert!((res[0].get(0).as_double().unwrap() - want_sum).abs() < 1e-9);

    let overhead = rep_udf.simulated_time / rep_builtin.simulated_time - 1.0;
    assert!(overhead >= 0.0, "UDF dispatch cannot be free: {overhead}");
    assert!(overhead <= 0.10, "UDF overhead {overhead:.3} exceeds the paper's 10% bound");
}

/// "Built-in and REX are faster than Hadoop by more than a factor of 3."
#[test]
fn rex_beats_hadoop_by_3x_on_the_olap_query() {
    let (catalog, tables, rows) = setup(20_000);
    let reg = Registry::with_builtins();
    let plan = compile(
        "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1",
        &catalog,
        &tables,
        &reg,
    )
    .unwrap();
    let (_, rep) = LocalRuntime::new().run(plan).unwrap();

    let mapper = FnMapper::new("m", |_k, v, out| {
        if let Some(l) = v.as_list() {
            if l[0].as_int().unwrap_or(0) > 1 {
                out(Value::Int(0), l[1].clone());
            }
        }
    });
    let reducer = FnReducer::new("r", |k, vs, out| {
        out(
            k.clone(),
            Value::list(vec![
                Value::Double(vs.iter().filter_map(Value::as_double).sum()),
                Value::Int(vs.len() as i64),
            ]),
        );
    });
    let job = MapReduceJob::new("fig4", mapper, reducer);
    let records = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            (
                Value::Int(i as i64),
                Value::list(vec![Value::Int(r.linenumber), Value::Double(r.tax)]),
            )
        })
        .collect();
    let (out, m) = HadoopCluster::new(1).run_job(&job, &[JobInput::mutable(records)], 0);
    let (want_sum, want_count) = reference_fig4_answer(&rows);
    let l = out[0].1.as_list().unwrap();
    assert!((l[0].as_double().unwrap() - want_sum).abs() < 1e-9);
    assert_eq!(l[1].as_int().unwrap(), want_count);

    let speedup = m.sim_time / rep.simulated_time;
    assert!(speedup > 2.5, "REX should beat Hadoop by ~3x, got {speedup:.2}x");
}
