//! End-to-end runs of the paper's example queries (Listings 1–3), written
//! in RQL text, compiled through the full front-end, executed on the
//! engine, and validated against the sequential references.
//!
//! Deviations from the listings as printed (documented in DESIGN.md):
//! the inner handler-join block must have the destructured UDA call as its
//! sole projection, and the outer aggregates use scalar built-ins
//! (`sum`, `min`) instead of the paper's sugared `ArgMin`/`avg` forms.

use rex::algos::kmeans::KmAgg;
use rex::algos::pagerank::PrAgg;
use rex::algos::sssp::SpAgg;
use rex::algos::{common, reference};
use rex::core::exec::LocalRuntime;
use rex::core::handlers::FlippedJoin;
use rex::core::tuple::{Schema, Tuple};
use rex::core::udf::Registry;
use rex::core::value::{DataType, Value};
use rex::data::graph::{generate_graph, Graph, GraphSpec};
use rex::data::points::{generate_points, PointSpec};
use rex::rql::lower::{compile, MemTables};
use rex::rql::SchemaCatalog;
use std::sync::Arc;

fn graph() -> Graph {
    generate_graph(GraphSpec {
        n_vertices: 50,
        edges_per_vertex: 3,
        seed: 77,
        random_edge_fraction: 0.1,
        locality_window: 0,
    })
}

#[test]
fn listing1_pagerank_via_rql_matches_reference() {
    let g = graph();
    let mut catalog = SchemaCatalog::new();
    catalog.register("graph", Graph::schema());
    let mut tables = MemTables::new();
    tables.insert("graph", g.edge_tuples());
    let reg = Registry::with_builtins();
    // Listing 1's PRAgg, flipped because `FROM graph, PR` puts the rank
    // relation on the right. Tiny threshold → exact convergence.
    reg.register_join("PRAgg", Arc::new(FlippedJoin(Arc::new(PrAgg::delta(1e-9)))));

    let src = "
        WITH PR (srcId, pr) AS (
          SELECT srcId, 1.0 AS pr FROM graph
        ) UNION UNTIL FIXPOINT BY srcId (
          SELECT nbr, 0.15 + 0.85 * sum(prDiff)
          FROM (SELECT PRAgg(srcId, pr).{nbr, prDiff}
                FROM graph, PR
                WHERE graph.srcId = PR.srcId)
          GROUP BY nbr)";
    let plan = compile(src, &catalog, &tables, &reg).unwrap();
    let (results, report) = LocalRuntime::new().run(plan).unwrap();

    let got = common::per_vertex_doubles(&results, g.n_vertices, reference::BASE_RANK);
    let (want, _) = reference::pagerank_converged(&g, 1e-10, 500);
    let diff = common::max_abs_diff(&got, &want);
    assert!(diff < 1e-6, "RQL PageRank deviates from reference by {diff}");
    assert!(report.iterations() > 5, "PageRank should iterate to convergence");
    assert_eq!(report.strata.last().unwrap().delta_set_size, 0);
}

#[test]
fn listing1_sum_outer_aggregate_is_incremental() {
    // The Δ set shrinks over strata: the recursive group-by processes
    // fewer deltas late in the computation (Figure 2's behavior), visible
    // through per-stratum delta counts.
    let g = graph();
    let mut catalog = SchemaCatalog::new();
    catalog.register("graph", Graph::schema());
    let mut tables = MemTables::new();
    tables.insert("graph", g.edge_tuples());
    let reg = Registry::with_builtins();
    reg.register_join("PRAgg", Arc::new(FlippedJoin(Arc::new(PrAgg::delta(0.01)))));

    let src = "
        WITH PR (srcId, pr) AS (
          SELECT srcId, 1.0 AS pr FROM graph
        ) UNION UNTIL FIXPOINT BY srcId (
          SELECT nbr, 0.15 + 0.85 * sum(prDiff)
          FROM (SELECT PRAgg(srcId, pr).{nbr, prDiff}
                FROM graph, PR
                WHERE graph.srcId = PR.srcId)
          GROUP BY nbr)";
    let plan = compile(src, &catalog, &tables, &reg).unwrap();
    let (_, report) = LocalRuntime::new().run(plan).unwrap();
    let sizes: Vec<u64> = report.strata.iter().map(|s| s.delta_set_size).collect();
    assert!(sizes.len() >= 3);
    assert!(*sizes.last().unwrap() < sizes[0]);
}

#[test]
fn listing2_shortest_path_via_rql_matches_reference() {
    let g = graph();
    let source = 0i64;
    let mut catalog = SchemaCatalog::new();
    catalog.register("graph", Graph::schema());
    catalog.register("start", Schema::of(&[("srcId", DataType::Int), ("dist", DataType::Double)]));
    let mut tables = MemTables::new();
    tables.insert("graph", g.edge_tuples());
    tables.insert("start", vec![Tuple::new(vec![Value::Int(source), Value::Double(0.0)])]);
    let reg = Registry::with_builtins();
    reg.register_join("SPAgg", Arc::new(FlippedJoin(Arc::new(SpAgg { delta_mode: true }))));

    let src = "
        WITH SP (srcId, dist) AS (
          SELECT srcId, dist FROM start
        ) UNION ALL UNTIL FIXPOINT BY srcId (
          SELECT nbr, min(distOut)
          FROM (SELECT SPAgg(nbrId, dist).{nbr, distOut}
                FROM graph, SP
                WHERE graph.srcId = SP.srcId)
          GROUP BY nbr)";
    let plan = compile(src, &catalog, &tables, &reg).unwrap();
    let (results, _) = LocalRuntime::new().run(plan).unwrap();

    let got = common::per_vertex_doubles(&results, g.n_vertices, f64::INFINITY);
    let want = reference::shortest_paths(&g, source as u32);
    for v in 0..g.n_vertices {
        let w = if want[v] == u32::MAX { f64::INFINITY } else { want[v] as f64 };
        assert_eq!(got[v], w, "vertex {v}");
    }
}

#[test]
fn listing3_kmeans_via_rql_matches_reference() {
    let points = generate_points(PointSpec { n_points: 150, n_clusters: 3, stddev: 1.0, seed: 41 });
    let k = 3;
    let mut catalog = SchemaCatalog::new();
    catalog.register("geodata", rex::data::points::schema());
    catalog.register(
        "centroids0",
        Schema::of(&[("cid", DataType::Int), ("x", DataType::Double), ("y", DataType::Double)]),
    );
    let mut tables = MemTables::new();
    tables.insert("geodata", rex::data::points::point_tuples(&points));
    tables.insert("centroids0", rex::algos::kmeans::centroid_tuples(&points, k));
    let reg = Registry::with_builtins();
    reg.register_join("KMAgg", Arc::new(FlippedJoin(Arc::new(KmAgg))));

    // Listing 3 with the centroid average expressed as Σdx/Σdn (the
    // retained sums of KMAgg's signed adjustments are exactly the running
    // per-cluster coordinate totals).
    let src = "
        WITH KM (cid, x, y) AS (
          SELECT cid, x, y FROM centroids0
        ) UNION ALL UNTIL FIXPOINT BY cid (
          SELECT cid, sum(xDiff) / sum(n), sum(yDiff) / sum(n)
          FROM (SELECT KMAgg(cid, x, y).{cid, xDiff, yDiff, n}
                FROM geodata, KM)
          GROUP BY cid)";
    let plan = compile(src, &catalog, &tables, &reg).unwrap();
    let (results, report) = LocalRuntime::new().run(plan).unwrap();

    let got = rex::algos::kmeans::centroids_from_results(&results, k);
    let init = reference::sample_centroids(&points, k);
    let (want, _, _, _) = reference::kmeans(&points, &init, 200);
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert!(g.dist(w) < 1e-6, "centroid {i}: ({}, {}) vs ({}, {})", g.x, g.y, w.x, w.y);
    }
    assert_eq!(report.strata.last().unwrap().delta_set_size, 0);
}
