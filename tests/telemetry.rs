//! End-to-end telemetry: per-operator traces, EXPLAIN ANALYZE, the
//! slow-query log, and the guarantee that turning telemetry on never
//! changes a query's answer — on both engines.

use rex::core::tuple::Tuple;
use rex::core::value::Value;
use rex::data::rng::StdRng;
use rex::Session;
use std::time::Duration;

/// Local + cluster sessions over the same random `sales` table; small
/// value domains so joins, duplicates, and group-by collisions occur.
fn sales_sessions(seed: u64) -> Vec<Session> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Tuple> = (0..60)
        .map(|_| {
            Tuple::new(vec![
                Value::Int(rng.gen_range(0..=5i64)),
                Value::Double(rng.gen_range(1..=4i64) as f64),
                Value::Int(rng.gen_range(1..=3i64)),
            ])
        })
        .collect();
    [Session::local(), Session::cluster(3)]
        .into_iter()
        .map(|mut s| {
            s.query("CREATE TABLE sales (item int, price double, qty int)").unwrap();
            s.insert("sales", rows.clone()).unwrap();
            s
        })
        .collect()
}

/// The query sweep traced by the tests below: scans, filters, joins,
/// aggregates, ORDER BY/LIMIT, DISTINCT.
const SWEEP: &[&str] = &[
    "SELECT item, price FROM sales WHERE qty > 1",
    "SELECT item, count(*), sum(qty) FROM sales GROUP BY item",
    "SELECT DISTINCT item FROM sales",
    "SELECT a.item, b.qty FROM sales a, sales b WHERE a.item = b.item AND a.qty < b.qty",
    "SELECT item, price * qty FROM sales ORDER BY price * qty DESC, item LIMIT 5",
];

#[test]
fn sink_rows_match_result_cardinality_on_both_engines() {
    for seed in [7u64, 99, 4096] {
        for mut s in sales_sessions(seed) {
            s.set_telemetry(true);
            for sql in SWEEP {
                let r = s.query(sql).unwrap();
                let trace = r.trace.as_ref().unwrap_or_else(|| {
                    panic!("telemetry on but no trace for {sql} on {}", r.engine)
                });
                assert_eq!(
                    trace.sink_rows() as usize,
                    r.rows.len(),
                    "seed {seed}, {sql} on {}: sink rows vs result cardinality",
                    r.engine
                );
                assert!(!trace.ops.is_empty(), "{sql}: trace has operators");
            }
        }
    }
}

#[test]
fn telemetry_toggle_is_output_invisible() {
    for seed in [13u64, 31337] {
        let mut with = sales_sessions(seed);
        let mut without = sales_sessions(seed);
        for s in with.iter_mut() {
            s.set_telemetry(true);
        }
        for sql in SWEEP {
            for (on, off) in with.iter_mut().zip(without.iter_mut()) {
                let r_on = on.query(sql).unwrap();
                let r_off = off.query(sql).unwrap();
                assert_eq!(
                    r_on.rows, r_off.rows,
                    "seed {seed}, {sql} on {}: telemetry changed the answer",
                    r_on.engine
                );
                assert!(r_on.trace.is_some(), "{sql}: telemetry on yields a trace");
                assert!(r_off.trace.is_none(), "{sql}: telemetry off yields no trace");
            }
        }
    }
}

#[test]
fn fixpoint_trace_iterations_match_query_report() {
    let recursive = "WITH reach (id) AS (SELECT src FROM edges WHERE src = 0)
        UNION UNTIL FIXPOINT BY id (
          SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id)";
    for mut s in [Session::local(), Session::cluster(3)] {
        s.set_telemetry(true);
        s.query("CREATE TABLE edges (src INT, dst INT)").unwrap();
        let chain: Vec<Tuple> =
            (0..12i64).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i + 1)])).collect();
        s.insert("edges", chain).unwrap();
        let r = s.query(recursive).unwrap();
        assert_eq!(r.rows.len(), 13);
        let trace = r.trace.as_ref().expect("trace for recursive query");
        assert_eq!(
            trace.iteration_deltas.len(),
            r.report.iterations(),
            "{}: trace strata vs report iterations",
            r.engine
        );
        let from_report: Vec<u64> = r.report.strata.iter().map(|st| st.delta_set_size).collect();
        assert_eq!(trace.iteration_deltas, from_report, "{}: per-stratum deltas", r.engine);
        assert_eq!(*trace.iteration_deltas.last().unwrap(), 0, "closing stratum is empty");
    }
}

#[test]
fn explain_analyze_executes_and_renders_actuals() {
    for mut s in sales_sessions(5) {
        // EXPLAIN ANALYZE forces a trace even with session telemetry off.
        let r = s.query("EXPLAIN ANALYZE SELECT item, count(*) FROM sales GROUP BY item").unwrap();
        let text: String =
            r.rows.iter().map(|t| t.get(0).as_str().unwrap().to_string() + "\n").collect();
        assert!(text.contains("== explain analyze"), "{text}");
        assert!(text.contains("actual"), "{text}");
        assert!(text.contains("rows_out="), "{text}");
        assert!(r.trace.is_some());
        // Plain EXPLAIN never executes: no trace, estimate only.
        let r = s.query("EXPLAIN SELECT item FROM sales").unwrap();
        let text: String =
            r.rows.iter().map(|t| t.get(0).as_str().unwrap().to_string() + "\n").collect();
        assert!(text.contains("== estimate =="), "{text}");
        assert!(r.trace.is_none());
    }
}

/// Look up one operator-specific detail counter by name.
fn detail(op: &rex::core::telemetry::OpStats, key: &str) -> Option<u64> {
    op.detail.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

#[test]
fn batched_lane_detail_counters_surface_in_traces() {
    // Filter batch counters ride the batched lanes on both engines:
    // `batch_rows` counts every row the filter saw in Rows/Cols batches,
    // `selectivity` the percent it kept.
    for mut s in sales_sessions(21) {
        s.set_telemetry(true);
        let r = s.query("SELECT item, price FROM sales WHERE qty > 1").unwrap();
        let engine = r.engine.clone();
        let trace = r.trace.as_ref().expect("trace");
        let filter =
            trace.ops.iter().find(|o| o.name.starts_with("Filter")).expect("filter in plan");
        assert_eq!(
            detail(filter, "batch_rows"),
            Some(60),
            "{engine}: every scanned row reaches the filter in batches"
        );
        let sel = detail(filter, "selectivity").expect("selectivity counter");
        // Cluster traces sum the per-worker percentages; each worker's
        // share stays within 0..=100.
        assert!(sel <= 100 * filter.threads, "{engine}: selectivity {sel} out of range");
    }

    // The batched join probe loop (hash-all-first + software prefetch)
    // is local-engine only: distributed plans repartition through the
    // network edge and keep the general lane. It also rides the columnar
    // toggle, so when the suite runs with the lane forced off (CI's
    // REX_COLUMNAR=0 pass) zero prefetches is the correct answer.
    if std::env::var("REX_COLUMNAR").as_deref() == Ok("0") {
        return;
    }
    let mut s = sales_sessions(21).remove(0);
    s.set_telemetry(true);
    let r = s
        .query("SELECT a.item, b.qty FROM sales a, sales b WHERE a.item = b.item AND a.qty < b.qty")
        .unwrap();
    let trace = r.trace.as_ref().expect("trace");
    let join = trace.ops.iter().find(|o| o.name.starts_with("HashJoin")).expect("join in plan");
    let prefetches = detail(join, "prefetch_probes").expect("prefetch_probes counter");
    assert!(prefetches > 0, "batched probe loop ran: {prefetches}");
    let probes = detail(join, "hash_probes").expect("hash_probes counter");
    assert!(prefetches <= probes, "one prefetch per batched key run, at most one per probe");
}

#[test]
fn slow_query_log_captures_over_threshold_queries() {
    let mut s = sales_sessions(8).remove(0);
    s.set_slow_query_threshold(Duration::from_secs(3600));
    s.query(SWEEP[0]).unwrap();
    assert_eq!(s.slow_queries().count(), 0, "nothing crosses an hour threshold");
    s.set_slow_query_threshold(Duration::ZERO);
    s.query(SWEEP[1]).unwrap();
    let slow: Vec<_> = s.slow_queries().collect();
    assert_eq!(slow.len(), 1);
    assert_eq!(slow[0].rql, SWEEP[1]);
    assert_eq!(slow[0].engine, "local");
    assert!(slow[0].rows > 0);
}
