//! Cross-platform agreement: every implementation of every algorithm —
//! REX delta, REX no-delta, REX wrap, the MapReduce simulator, DBMS X, and
//! the sequential reference — must produce the same answers on the same
//! inputs. This pins the evaluation to apples-to-apples comparisons.

use rex::algos::common::{max_abs_diff, per_vertex_doubles};
use rex::algos::kmeans::KmAgg;
use rex::algos::pagerank::{self, PageRankConfig, PrAgg, Strategy};
use rex::algos::sssp::SpAgg;
use rex::algos::{kmeans, kmeans_mr, pagerank_mr, reference, sssp, sssp_mr};
use rex::cluster::runtime::{ClusterConfig, ClusterRuntime};
use rex::core::exec::LocalRuntime;
use rex::core::handlers::FlippedJoin;
use rex::core::tuple::{Schema, Tuple};
use rex::core::value::{DataType, Value};
use rex::data::graph::{generate_graph, Graph, GraphSpec};
use rex::data::points::{generate_points, PointSpec};
use rex::data::rng::StdRng;
use rex::dbms::engine::DbmsConfig;
use rex::hadoop::cost::EmulationMode;
use rex::hadoop::job::HadoopCluster;
use rex::storage::catalog::Catalog;
use rex::storage::table::StoredTable;
use rex::Session;
use std::sync::Arc;

fn graph() -> Graph {
    generate_graph(GraphSpec {
        n_vertices: 90,
        edges_per_vertex: 4,
        seed: 1234,
        random_edge_fraction: 0.08,
        locality_window: 0,
    })
}

fn graph_catalog(g: &Graph) -> Catalog {
    let cat = Catalog::new();
    let mut t = StoredTable::new("graph", Graph::schema(), vec![0]);
    t.load_unchecked(g.edge_tuples());
    cat.register(t);
    cat
}

#[test]
fn pagerank_agrees_across_all_six_platforms() {
    let g = graph();
    let iters = 10;
    let want = reference::pagerank(&g, iters);

    // REX no-delta (exact power iteration), local.
    let plan = pagerank::plan_local(
        &g,
        PageRankConfig { threshold: 0.0, max_iterations: iters as u64 },
        Strategy::NoDelta,
    );
    let (res, _) = LocalRuntime::new().run(plan).unwrap();
    let rex_nodelta = pagerank::ranks_from_results(&res, g.n_vertices);
    assert!(max_abs_diff(&rex_nodelta, &want) < 1e-9, "REX no-Δ");

    // REX delta with a tiny threshold, distributed.
    let rt = ClusterRuntime::new(ClusterConfig::new(4), graph_catalog(&g));
    let (res, _) = rt
        .run(pagerank::plan_builder(
            PageRankConfig { threshold: 1e-10, max_iterations: 400 },
            Strategy::Delta,
        ))
        .unwrap();
    let rex_delta = pagerank::ranks_from_results(&res, g.n_vertices);
    let (converged, _) = reference::pagerank_converged(&g, 1e-11, 600);
    assert!(max_abs_diff(&rex_delta, &converged) < 1e-6, "REX Δ vs converged reference");

    // MapReduce two-job pipeline.
    let cluster = HadoopCluster::new(4).with_mode(EmulationMode::HadoopLowerBound);
    let (mr, _) = pagerank_mr::run_mr(&g, iters, &cluster);
    assert!(max_abs_diff(&mr, &want) < 1e-9, "MapReduce");

    // Wrap: the Hadoop classes inside REX.
    let (res, _) = LocalRuntime::new().run(pagerank_mr::wrap_plan_local(&g, iters as u64)).unwrap();
    let wrap = pagerank_mr::wrap_ranks(&res, g.n_vertices);
    assert!(max_abs_diff(&wrap, &want) < 1e-9, "wrap");

    // DBMS X recursive SQL.
    let (dbms, _) = rex::dbms::pagerank_recursive_sql(&g, iters, &DbmsConfig::default());
    assert!(max_abs_diff(&dbms, &want) < 1e-9, "DBMS X");
}

#[test]
fn shortest_path_agrees_across_platforms() {
    let g = graph();
    let want: Vec<f64> = reference::shortest_paths(&g, 3)
        .into_iter()
        .map(|d| if d == u32::MAX { f64::INFINITY } else { d as f64 })
        .collect();

    let rt = ClusterRuntime::new(ClusterConfig::new(4), graph_catalog(&g));
    let (res, _) =
        rt.run(sssp::plan_builder(sssp::SsspConfig::from_source(3), Strategy::Delta)).unwrap();
    assert_eq!(sssp::dists_from_results(&res, g.n_vertices), want, "REX Δ");

    let cluster = HadoopCluster::new(3).with_mode(EmulationMode::HaLoopLowerBound);
    let (mr, _) = sssp_mr::run_mr(&g, 3, 200, &cluster);
    assert_eq!(mr, want, "MapReduce frontier");

    let depth = reference::hops_to_reach(&reference::shortest_paths(&g, 3), 1.0) as u64;
    let (res, _) = LocalRuntime::new().run(sssp_mr::wrap_plan_local(&g, 3, depth + 1)).unwrap();
    assert_eq!(sssp_mr::wrap_dists(&res, g.n_vertices), want, "wrap");
}

#[test]
fn kmeans_agrees_across_platforms() {
    let points = generate_points(PointSpec { n_points: 180, n_clusters: 4, stddev: 1.2, seed: 77 });
    let k = 4;
    let init = reference::sample_centroids(&points, k);
    let (want, _, _, _) = reference::kmeans(&points, &init, 200);

    let plan = kmeans::plan_local(&points, kmeans::KMeansConfig { k, max_iterations: 200 });
    let (res, _) = LocalRuntime::new().run(plan).unwrap();
    let rex_c = kmeans::centroids_from_results(&res, k);
    for (a, b) in rex_c.iter().zip(&want) {
        assert!(a.dist(b) < 1e-6, "REX Δ centroid drift: {}", a.dist(b));
    }

    let cluster = HadoopCluster::new(4).with_mode(EmulationMode::HadoopLowerBound);
    let (mr_c, _) = kmeans_mr::run_mr(&points, k, 200, &cluster);
    for (a, b) in mr_c.iter().zip(&want) {
        assert!(a.dist(b) < 1e-9, "MapReduce centroid drift: {}", a.dist(b));
    }
}

// ---------------------------------------------------------------------------
// Session-facade agreement: the paper's Listings 1–3, written in RQL text,
// executed through `Session::query` — parse → resolve → optimize → lower →
// execute — on BOTH the local and the cluster engine, validated against the
// sequential references. One query API, any backend, same answers.
// ---------------------------------------------------------------------------

/// Sessions on both engines with the edge relation loaded (partitioned on
/// srcId, like Figure 1's plan expects).
fn graph_sessions(g: &Graph) -> Vec<Session> {
    [Session::local(), Session::cluster(4)]
        .into_iter()
        .map(|mut s| {
            s.create_table("graph", Graph::schema()).unwrap();
            s.insert("graph", g.edge_tuples()).unwrap();
            s
        })
        .collect()
}

// ---------------------------------------------------------------------------
// RQL-surface agreement: the full query surface — DISTINCT, HAVING,
// ORDER BY (with deliberate ties), LIMIT/OFFSET at every boundary,
// expression-argument aggregates, CREATE TABLE DDL — must return
// *identical* rows (same order where one is requested) on the local and
// cluster engines, across random datasets.
// ---------------------------------------------------------------------------

/// Local + cluster sessions over the same random `sales` table, created
/// through `CREATE TABLE` DDL. Values are drawn from small domains so
/// duplicates and ORDER BY ties occur constantly.
fn sales_sessions(seed: u64) -> Vec<Session> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Tuple> = (0..60)
        .map(|_| {
            Tuple::new(vec![
                Value::Int(rng.gen_range(0..=5i64)),                  // item
                Value::Double(rng.gen_range(1..=4i64) as f64),        // price
                Value::Double(rng.gen_range(0..=3i64) as f64 * 0.25), // discount
                Value::Int(rng.gen_range(1..=3i64)),                  // qty
            ])
        })
        .collect();
    [Session::local(), Session::cluster(4)]
        .into_iter()
        .map(|mut s| {
            s.query("CREATE TABLE sales (item int, price double, discount double, qty int)")
                .unwrap();
            s.insert("sales", rows.clone()).unwrap();
            s
        })
        .collect()
}

/// Run `sql` on both engines and assert the row vectors are identical —
/// including order, which is how ORDER BY determinism (tie-breaks and
/// all) is pinned across topologies.
fn assert_engines_agree(sessions: &mut [Session], sql: &str) -> Vec<Tuple> {
    let mut results = Vec::new();
    for s in sessions.iter_mut() {
        let r = s.query(sql).unwrap_or_else(|e| panic!("{sql} on {}: {e}", s.engine_name()));
        results.push((r.engine, r.rows));
    }
    let (ref e0, ref r0) = results[0];
    for (e, r) in &results[1..] {
        assert_eq!(r0, r, "{sql}: {e0} vs {e} disagree");
    }
    results.swap_remove(0).1
}

#[test]
fn order_by_with_ties_and_limit_boundaries_agree() {
    for seed in [7u64, 99, 4096] {
        let mut ss = sales_sessions(seed);
        let n = ss[0].table_rows("sales").unwrap() as u64;
        // Ties on price are pervasive (4 distinct prices, 60 rows): the
        // full-tuple tie-break must make both engines pick the same rows
        // in the same order at every LIMIT/OFFSET boundary.
        for (fetch, offset) in
            [(0, 0), (1, 0), (5, 3), (n - 1, 0), (n, 0), (n + 7, 2), (3, n), (2, n - 1)]
        {
            let sql = format!(
                "SELECT item, price FROM sales ORDER BY price DESC, item LIMIT {fetch} OFFSET {offset}"
            );
            let rows = assert_engines_agree(&mut ss, &sql);
            let expect = (n.saturating_sub(offset)).min(fetch) as usize;
            assert_eq!(rows.len(), expect, "{sql}: cardinality");
        }
        // ORDER BY an expression, no limit.
        assert_engines_agree(
            &mut ss,
            "SELECT item, price * qty FROM sales ORDER BY price * qty DESC, item",
        );
    }
}

#[test]
fn distinct_and_having_agree() {
    for seed in [11u64, 222] {
        let mut ss = sales_sessions(seed);
        let d = assert_engines_agree(
            &mut ss,
            "SELECT DISTINCT item, qty FROM sales ORDER BY item, qty",
        );
        let mut dedup = d.clone();
        dedup.dedup();
        assert_eq!(d, dedup, "DISTINCT output has no duplicates");
        assert_engines_agree(&mut ss, "SELECT DISTINCT item FROM sales");
        assert_engines_agree(
            &mut ss,
            "SELECT item, count(*), sum(qty) FROM sales GROUP BY item HAVING count(*) > 8",
        );
        assert_engines_agree(
            &mut ss,
            "SELECT item, avg(price) FROM sales GROUP BY item HAVING item > 1 ORDER BY 2 DESC, item LIMIT 3",
        );
    }
}

#[test]
fn expression_aggregates_agree_and_match_oracle() {
    for seed in [5u64, 31337] {
        let mut ss = sales_sessions(seed);
        let rows = assert_engines_agree(
            &mut ss,
            "SELECT item, sum(price * (1 - discount) * qty) FROM sales GROUP BY item ORDER BY item",
        );
        // Oracle: recompute revenue per item from the raw rows.
        let raw = assert_engines_agree(&mut ss, "SELECT item, price, discount, qty FROM sales");
        let mut want = std::collections::BTreeMap::new();
        for t in &raw {
            let item = t.get(0).as_int().unwrap();
            let rev = t.get(1).as_double().unwrap()
                * (1.0 - t.get(2).as_double().unwrap())
                * t.get(3).as_int().unwrap() as f64;
            *want.entry(item).or_insert(0.0) += rev;
        }
        assert_eq!(rows.len(), want.len());
        for t in &rows {
            let got = t.get(1).as_double().unwrap();
            let exp = want[&t.get(0).as_int().unwrap()];
            assert!((got - exp).abs() < 1e-9 * exp.abs().max(1.0), "{got} vs {exp}");
        }
    }
}

#[test]
fn global_aggregate_with_having_agrees() {
    let mut ss = sales_sessions(1);
    // HAVING over a global aggregate: one row or none, same on both.
    assert_engines_agree(&mut ss, "SELECT sum(qty), count(*) FROM sales HAVING count(*) > 1");
    let none = assert_engines_agree(&mut ss, "SELECT sum(qty) FROM sales HAVING count(*) > 999");
    assert!(none.is_empty(), "failed HAVING over a global aggregate yields no rows");
}

#[test]
fn listing1_pagerank_via_session_agrees_on_both_engines() {
    let g = graph();
    let src = "
        WITH PR (srcId, pr) AS (
          SELECT srcId, 1.0 AS pr FROM graph
        ) UNION UNTIL FIXPOINT BY srcId (
          SELECT nbr, 0.15 + 0.85 * sum(prDiff)
          FROM (SELECT PRAgg(srcId, pr).{nbr, prDiff}
                FROM graph, PR
                WHERE graph.srcId = PR.srcId)
          GROUP BY nbr)";
    let (want, _) = reference::pagerank_converged(&g, 1e-10, 500);
    for mut s in graph_sessions(&g) {
        s.register_join("PRAgg", Arc::new(FlippedJoin(Arc::new(PrAgg::delta(1e-9)))));
        let r = s.query(src).unwrap();
        let got = per_vertex_doubles(&r.rows, g.n_vertices, reference::BASE_RANK);
        let diff = max_abs_diff(&got, &want);
        assert!(diff < 1e-6, "{} engine deviates from reference by {diff}", r.engine);
        assert!(r.iterations() > 5, "{} engine should iterate to convergence", r.engine);
        assert_eq!(*r.delta_sizes().last().unwrap(), 0, "{} engine converged", r.engine);
        assert!(r.cost.runtime() > 0.0, "optimizer must cost the recursive plan");
    }
}

#[test]
fn listing2_shortest_path_via_session_agrees_on_both_engines() {
    let g = graph();
    let source = 3i64;
    let src = "
        WITH SP (srcId, dist) AS (
          SELECT srcId, dist FROM start
        ) UNION ALL UNTIL FIXPOINT BY srcId (
          SELECT nbr, min(distOut)
          FROM (SELECT SPAgg(nbrId, dist).{nbr, distOut}
                FROM graph, SP
                WHERE graph.srcId = SP.srcId)
          GROUP BY nbr)";
    let want: Vec<f64> = reference::shortest_paths(&g, source as u32)
        .into_iter()
        .map(|d| if d == u32::MAX { f64::INFINITY } else { d as f64 })
        .collect();
    for mut s in graph_sessions(&g) {
        s.create_table(
            "start",
            Schema::of(&[("srcId", DataType::Int), ("dist", DataType::Double)]),
        )
        .unwrap();
        s.insert("start", vec![Tuple::new(vec![Value::Int(source), Value::Double(0.0)])]).unwrap();
        s.register_join("SPAgg", Arc::new(FlippedJoin(Arc::new(SpAgg { delta_mode: true }))));
        let r = s.query(src).unwrap();
        let got = per_vertex_doubles(&r.rows, g.n_vertices, f64::INFINITY);
        assert_eq!(got, want, "{} engine disagrees with BFS reference", r.engine);
    }
}

#[test]
fn listing3_kmeans_via_session_agrees_on_both_engines() {
    let points = generate_points(PointSpec { n_points: 150, n_clusters: 3, stddev: 1.0, seed: 41 });
    let k = 3;
    let src = "
        WITH KM (cid, x, y) AS (
          SELECT cid, x, y FROM centroids0
        ) UNION ALL UNTIL FIXPOINT BY cid (
          SELECT cid, sum(xDiff) / sum(n), sum(yDiff) / sum(n)
          FROM (SELECT KMAgg(cid, x, y).{cid, xDiff, yDiff, n}
                FROM geodata, KM)
          GROUP BY cid)";
    let init = reference::sample_centroids(&points, k);
    let (want, _, _, _) = reference::kmeans(&points, &init, 200);
    for engine in ["local", "cluster"] {
        let mut s = if engine == "cluster" { Session::cluster(4) } else { Session::local() };
        s.create_table("geodata", rex::data::points::schema()).unwrap();
        s.insert("geodata", rex::data::points::point_tuples(&points)).unwrap();
        s.create_table(
            "centroids0",
            Schema::of(&[("cid", DataType::Int), ("x", DataType::Double), ("y", DataType::Double)]),
        )
        .unwrap();
        s.insert("centroids0", rex::algos::kmeans::centroid_tuples(&points, k)).unwrap();
        s.register_join("KMAgg", Arc::new(FlippedJoin(Arc::new(KmAgg))));
        let r = s.query(src).unwrap();
        let got = rex::algos::kmeans::centroids_from_results(&r.rows, k);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                g.dist(w) < 1e-6,
                "{engine} centroid {i}: ({}, {}) vs ({}, {})",
                g.x,
                g.y,
                w.x,
                w.y
            );
        }
        assert_eq!(*r.delta_sizes().last().unwrap(), 0, "{engine} converged");
    }
}

// ---------------------------------------------------------------------------
// Fast-lane agreement: the insert-only executor lane (run-length scan
// batches + append sink) is a pure execution strategy. Lowering the same
// plan with the lane on and off, on the local executor and on a simulated
// cluster, must produce bit-identical rows.
// ---------------------------------------------------------------------------

#[test]
fn insert_only_fast_lane_is_output_invisible_on_both_engines() {
    use rex::rql::lower::{lower_with, LowerOptions};
    use rex::rql::provider::{CatalogProvider, PartitionProvider};
    use rex::rql::SchemaCatalog;

    for seed in [13u64, 4096] {
        let mut rng = StdRng::seed_from_u64(seed);
        // Small domains: duplicate rows, duplicate join keys, ties.
        let t_rows: Vec<Tuple> = (0..80)
            .map(|_| {
                Tuple::new(vec![
                    Value::Int(rng.gen_range(0..=9i64)),
                    Value::Int(rng.gen_range(0..=99i64)),
                    Value::Double(rng.gen_range(0..=40i64) as f64 * 0.5),
                ])
            })
            .collect();
        let d_rows: Vec<Tuple> = (0..=9i64)
            .map(|k| Tuple::new(vec![Value::Int(k), Value::Double(k as f64 * 1.5)]))
            .collect();

        let cat = Catalog::new();
        let t_schema =
            Schema::of(&[("k", DataType::Int), ("a", DataType::Int), ("b", DataType::Double)]);
        let d_schema = Schema::of(&[("k", DataType::Int), ("w", DataType::Double)]);
        let mut t = StoredTable::new("t", t_schema.clone(), vec![0]);
        t.load_unchecked(t_rows);
        cat.register(t);
        let mut d = StoredTable::new("d", d_schema.clone(), vec![0]);
        d.load_unchecked(d_rows);
        cat.register(d);
        let mut sc = SchemaCatalog::new();
        sc.register("t", t_schema);
        sc.register("d", d_schema);
        let reg = rex::core::udf::Registry::with_builtins();

        for sql in [
            // Pure stateless chain: scans emit Event::Rows end to end.
            "SELECT k, a + 1, b * 2.0 FROM t WHERE a < 40",
            "SELECT k, b FROM t WHERE a >= 60",
            // Insert-only join: append sink, delta-batched join inputs.
            "SELECT t.k, t.b, d.w FROM t, d WHERE t.k = d.k AND t.a < 50",
            // Not insert-only at all: both options must still agree.
            "SELECT k, count(*), sum(b) FROM t GROUP BY k",
        ] {
            let plan = rex::rql::plan_rql(sql, &sc, &reg).unwrap();
            let mut outcomes: Vec<(String, Vec<Tuple>)> = Vec::new();
            for fast in [true, false] {
                let local_opts = if fast {
                    LowerOptions::default()
                } else {
                    LowerOptions::default().without_fast_lane()
                };
                let provider = CatalogProvider::new(cat.clone());
                let g = lower_with(&plan, &provider, &reg, local_opts).unwrap();
                let (rows, _) = LocalRuntime::new().run(g).unwrap();
                outcomes.push((format!("local fast={fast}"), rows));

                let cluster_opts = if fast {
                    LowerOptions::cluster()
                } else {
                    LowerOptions::cluster().without_fast_lane()
                };
                let plan_arc = Arc::new(plan.clone());
                let reg_c = reg.clone();
                let rt = ClusterRuntime::new(ClusterConfig::new(3), cat.clone());
                let (rows, _) = rt
                    .run(Arc::new(move |w, snap, c: &Catalog| {
                        let provider = PartitionProvider::new(c.clone(), snap.clone(), w);
                        lower_with(&plan_arc, &provider, &reg_c, cluster_opts)
                    }))
                    .unwrap();
                outcomes.push((format!("cluster fast={fast}"), rows));
            }
            let (ref name0, ref rows0) = outcomes[0];
            assert!(!rows0.is_empty(), "{sql}: empty result defeats the sweep");
            for (name, rows) in &outcomes[1..] {
                assert_eq!(rows0, rows, "seed {seed}, {sql}: {name0} vs {name} disagree");
            }
        }
    }
}
