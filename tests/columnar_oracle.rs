//! Columnar-lane oracle: `REX_COLUMNAR` switches the columnar batch lane
//! (scan transposition, vectorized filter/project kernels, the batched
//! join probe loop) on and off. The lane is an execution detail — with it
//! on or off, every query must return *bit-identical* rows (same order,
//! same float bits), across random seeds, both engines, and thread
//! counts. Floats make this strict: the columnar kernels must feed each
//! group's accumulator in exactly the row-lane order, or sum low bits
//! diverge.
//!
//! The env toggle is process-global, so the whole sweep lives in one
//! `#[test]` in its own binary: cargo runs test *binaries* serially, and
//! nothing here races another toggle.

use rex_testkit::{fill_tkd, session, SEEDS};

/// Query shapes across every lane the toggle affects: pure stateless
/// chains (scan→filter→project, the `Event::Cols` path), joins with and
/// without downstream aggregation (the batched probe loop), grouped and
/// global aggregates (avg/min/max fold over batch output).
const QUERIES: &[&str] = &[
    "SELECT k, a, b FROM t WHERE a > 40",
    "SELECT k, a * 2 + 1, b FROM t WHERE b < 200.0",
    "SELECT t.k, t.b, d.w FROM t, d WHERE t.k = d.k AND t.a > 90",
    "SELECT a, count(*), sum(b) FROM t GROUP BY a",
    "SELECT t.a, count(*), sum(t.b * d.w) FROM t, d WHERE t.k = d.k GROUP BY t.a",
    "SELECT avg(b), min(a), max(a) FROM t",
    "SELECT k, b FROM t WHERE a < 50 ORDER BY b, k LIMIT 25",
];

/// Run the whole sweep in one session configuration, returning per-query
/// result sets.
fn run_all(engine: &str, seed: u64, threads: usize) -> Vec<Vec<rex::core::tuple::Tuple>> {
    let mut s = session(engine);
    s.set_threads(threads);
    fill_tkd(&mut s, seed);
    QUERIES.iter().map(|q| s.query(q).unwrap().rows).collect()
}

#[test]
fn columnar_toggle_is_bit_identical_across_seeds_engines_threads() {
    for seed in SEEDS {
        for engine in ["local", "cluster"] {
            for threads in [1usize, 4] {
                std::env::set_var("REX_COLUMNAR", "1");
                let on = run_all(engine, seed, threads);
                std::env::set_var("REX_COLUMNAR", "0");
                let off = run_all(engine, seed, threads);
                for ((a, b), q) in on.iter().zip(&off).zip(QUERIES) {
                    assert_eq!(
                        a, b,
                        "{engine}/seed {seed}/{threads} threads: columnar toggle changed: {q}"
                    );
                }
                assert!(on.iter().all(|r| !r.is_empty()), "vacuous sweep for seed {seed}");
            }
        }
    }

    // Non-vacuity: the toggle must actually steer the plan. With the lane
    // on, the local join runs the batched probe loop (prefetch_probes
    // counts its bucket prefetches); with it off, the general delta path
    // runs and the counter stays zero.
    let probes = |columnar: &str| {
        std::env::set_var("REX_COLUMNAR", columnar);
        let mut s = session("local");
        s.set_threads(1);
        s.set_telemetry(true);
        fill_tkd(&mut s, SEEDS[0]);
        let r = s.query(QUERIES[2]).unwrap();
        let trace = r.trace.as_ref().expect("trace");
        let join = trace.ops.iter().find(|o| o.name.starts_with("HashJoin")).expect("join in plan");
        join.detail.iter().find(|(k, _)| k == "prefetch_probes").map(|(_, v)| *v)
    };
    assert!(probes("1").is_some_and(|p| p > 0), "columnar on: batched probe loop ran");
    assert_eq!(probes("0").unwrap_or(0), 0, "columnar off: general delta path, no batched probes");
    std::env::remove_var("REX_COLUMNAR");
}
