//! IVM correctness: after any sequence of random insert/delete batches,
//! a materialized view's contents must equal a full recompute of its
//! defining query — on the single-node engine and on the simulated
//! cluster alike.
//!
//! This is the property the whole `rex-views` subsystem hangs on: the
//! incremental path (delta propagation through select/project/join/
//! group-by) and the oracle (re-running the defining query from scratch)
//! must agree bit-for-bit on integers and to float tolerance on sums.

use rex::core::tuple::Tuple;
use rex::core::value::Value;
use rex_data::rng::StdRng;
use rex_testkit::{assert_rows_close, edges_session as make_session, random_row};

const VIEW_SQL: &str = "SELECT e.src, count(*), sum(w.weight) \
     FROM edges e, weights w WHERE e.dst = w.node GROUP BY e.src";

/// The seed-sweep property: N random mutation batches, view state checked
/// against full recompute after every batch.
fn seed_sweep(engine: &str, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = make_session(engine);
    // Start from a small random base so the view primes over real data.
    for table in ["edges", "weights"] {
        let rows: Vec<Tuple> = (0..12).map(|_| random_row(&mut rng, table)).collect();
        s.insert(table, rows).unwrap();
    }
    s.create_materialized_view("by_src", VIEW_SQL).unwrap();
    assert!(s.view_strategy("by_src").unwrap().contains("incremental"));

    for step in 0..10 {
        let table = if rng.gen_range(0..=1i64) == 0 { "edges" } else { "weights" };
        let deleting = rng.gen_range(0..=2i64) == 0;
        if deleting {
            // Delete up to 3 random *stored* rows so validation passes.
            let stored = s.store().get(table).unwrap().rows().to_vec();
            if !stored.is_empty() {
                let k = (rng.gen_range(1..=3i64) as usize).min(stored.len());
                let victims: Vec<Tuple> =
                    (0..k).map(|_| stored[rng.gen_range(0..stored.len())].clone()).collect();
                // Duplicate picks can exceed stored multiplicity; skip those.
                if s.delete(table, victims.clone()).is_err() {
                    s.delete(table, victims[..1].to_vec()).unwrap();
                }
            }
        } else {
            let rows: Vec<Tuple> =
                (0..rng.gen_range(1..=4i64)).map(|_| random_row(&mut rng, table)).collect();
            s.insert(table, rows).unwrap();
        }
        let got = s.query("SELECT * FROM by_src").unwrap().rows;
        let want = s.query(VIEW_SQL).unwrap().rows;
        assert_rows_close(&got, &want, &format!("{engine} seed {seed} step {step}"));
    }
}

#[test]
fn ivm_matches_recompute_seed_sweep_local() {
    for seed in 0..8 {
        seed_sweep("local", seed);
    }
}

#[test]
fn ivm_matches_recompute_seed_sweep_cluster() {
    for seed in 0..4 {
        seed_sweep("cluster", seed);
    }
}

#[test]
fn self_join_view_matches_recompute() {
    let sql = "SELECT a.src, b.dst FROM edges a, edges b WHERE a.dst = b.src";
    let mut rng = StdRng::seed_from_u64(7);
    let mut s = make_session("local");
    s.insert("edges", (0..10).map(|_| random_row(&mut rng, "edges")).collect()).unwrap();
    s.create_materialized_view("two_hop", sql).unwrap();
    for _ in 0..6 {
        s.insert("edges", vec![random_row(&mut rng, "edges")]).unwrap();
        let got = s.query("SELECT * FROM two_hop").unwrap().rows;
        let want = s.query(sql).unwrap().rows;
        assert_eq!(got, want, "self-join view must handle both sides delta-ing at once");
    }
}

/// A full-recompute view at the bottom of a ≥3-level cascade, reading
/// *several* delta sources (the base table directly plus a view two levels
/// up), must re-run its defining query exactly **once** per maintenance
/// pass — and only after every upstream view is final, so the single run
/// sees fully-updated state. Dependency-depth ordering guarantees both;
/// a naive "already ran" flag would either double-run (PR 2 behaviour) or
/// risk reading not-yet-final upstream state.
#[test]
fn recompute_fallback_runs_once_per_pass_in_deep_cascades() {
    let mut s = make_session("local");
    s.insert(
        "edges",
        vec![
            Tuple::new(vec![Value::Int(0), Value::Int(1)]),
            Tuple::new(vec![Value::Int(0), Value::Int(2)]),
            Tuple::new(vec![Value::Int(1), Value::Int(2)]),
            Tuple::new(vec![Value::Int(2), Value::Int(3)]),
        ],
    )
    .unwrap();
    // Depth 1 and 2: incremental views.
    s.create_materialized_view("fanout", "SELECT src, count(*) FROM edges GROUP BY src").unwrap();
    s.create_materialized_view("hot", "SELECT src FROM fanout WHERE count > 1").unwrap();
    // Depth 3: recursive (forced full recompute), reading BOTH `edges`
    // (depth 0 source) and `hot` (depth 2 source).
    let best_sql = "WITH R (id) AS (SELECT src FROM hot) \
                    UNION UNTIL FIXPOINT BY id ( \
                      SELECT edges.dst FROM edges, R WHERE edges.src = R.id)";
    s.create_materialized_view("best", best_sql).unwrap();
    assert!(s.view_strategy("best").unwrap().contains("full recompute"));
    assert_eq!(s.views().get("best").unwrap().recomputes(), 0, "priming is not a recompute pass");
    assert_eq!(s.query("SELECT * FROM best").unwrap().rows.len(), 4); // 0,1,2,3

    // This insert changes edges AND (via the cascade) fanout and hot:
    // three delta sources feed `best` in one pass, yet it recomputes once.
    s.insert("edges", vec![Tuple::new(vec![Value::Int(1), Value::Int(4)])]).unwrap();
    assert_eq!(s.views().get("best").unwrap().recomputes(), 1, "one recompute per pass");
    // And that one run saw final upstream state: src 1 is hot now, so its
    // reachability (4) must be in the view.
    let got = s.query("SELECT * FROM best").unwrap().rows;
    let want = s.query(best_sql).unwrap().rows;
    assert_eq!(got, want);
    assert!(got.contains(&Tuple::new(vec![Value::Int(4)])), "upstream `hot` was final");

    // An insert that leaves `hot` unchanged still reaches `best` through
    // the direct edges dependency — again exactly one recompute.
    s.insert("edges", vec![Tuple::new(vec![Value::Int(7), Value::Int(6)])]).unwrap();
    assert_eq!(s.views().get("best").unwrap().recomputes(), 2);
    assert_eq!(s.query("SELECT * FROM best").unwrap().rows, s.query(best_sql).unwrap().rows);
}

#[test]
fn view_on_view_cascade_matches_recompute() {
    let mut s = make_session("local");
    let mut rng = StdRng::seed_from_u64(11);
    s.insert("edges", (0..20).map(|_| random_row(&mut rng, "edges")).collect()).unwrap();
    s.create_materialized_view("fanout", "SELECT src, count(*) FROM edges GROUP BY src").unwrap();
    s.create_materialized_view("hot", "SELECT src FROM fanout WHERE count > 2").unwrap();
    for _ in 0..8 {
        s.insert("edges", vec![random_row(&mut rng, "edges")]).unwrap();
        let got = s.query("SELECT * FROM hot").unwrap().rows;
        let want = s
            .query(
                "SELECT src FROM (SELECT src, count(*) AS c FROM edges GROUP BY src) t WHERE c > 2",
            )
            .unwrap()
            .rows;
        assert_eq!(got, want, "cascaded view must track the base tables");
    }
}

/// Seed-sweep a view definition against its full-recompute oracle on both
/// engines, asserting the view maintains *incrementally* (never by the
/// recompute fallback) through random insert/delete batches on `edges`.
fn clause_view_sweep(engine: &str, seed: u64, view_sql: &str, strategy_hint: &str) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = make_session(engine);
    s.insert("edges", (0..14).map(|_| random_row(&mut rng, "edges")).collect()).unwrap();
    s.create_materialized_view("v", view_sql).unwrap();
    let strategy = s.view_strategy("v").unwrap();
    assert!(strategy.contains("incremental"), "{view_sql}: {strategy}");
    let probe = s.explain(&format!("CREATE MATERIALIZED VIEW probe AS {view_sql}")).unwrap();
    assert!(probe.contains(strategy_hint), "explain should show {strategy_hint:?}:\n{probe}");

    for step in 0..10 {
        if rng.gen_range(0..=2i64) == 0 {
            let stored = s.store().get("edges").unwrap().rows().to_vec();
            if !stored.is_empty() {
                let victim = stored[rng.gen_range(0..stored.len())].clone();
                s.delete("edges", vec![victim]).unwrap();
            }
        } else {
            let rows: Vec<Tuple> =
                (0..rng.gen_range(1..=4i64)).map(|_| random_row(&mut rng, "edges")).collect();
            s.insert("edges", rows).unwrap();
        }
        let got = s.query("SELECT * FROM v").unwrap().rows;
        let want = s.query(view_sql).unwrap().rows;
        assert_rows_close(&got, &want, &format!("{engine} {view_sql} seed {seed} step {step}"));
    }
    assert_eq!(s.views().get("v").unwrap().recomputes(), 0, "{view_sql}: must stay incremental");
}

#[test]
fn distinct_view_matches_recompute_oracle() {
    for engine in ["local", "cluster"] {
        for seed in [3u64, 17] {
            clause_view_sweep(engine, seed, "SELECT DISTINCT dst FROM edges", "counted projection");
            clause_view_sweep(
                engine,
                seed,
                "SELECT DISTINCT src, dst FROM edges",
                "counted projection",
            );
        }
    }
}

#[test]
fn having_view_matches_recompute_oracle() {
    for engine in ["local", "cluster"] {
        for seed in [5u64, 23] {
            clause_view_sweep(
                engine,
                seed,
                "SELECT src, count(*) FROM edges GROUP BY src HAVING count(*) > 2",
                "running count",
            );
            clause_view_sweep(
                engine,
                seed,
                "SELECT src, sum(dst), count(*) FROM edges GROUP BY src HAVING sum(dst) > 6",
                "running sum",
            );
        }
    }
}

#[test]
fn expression_aggregate_view_matches_recompute_oracle() {
    for engine in ["local", "cluster"] {
        clause_view_sweep(
            engine,
            9,
            "SELECT src, sum(dst * dst) FROM edges GROUP BY src",
            "running sum",
        );
    }
}

#[test]
fn ordered_view_definition_is_rejected_not_degraded() {
    let mut s = make_session("local");
    s.insert("edges", vec![Tuple::new(vec![Value::Int(0), Value::Int(1)])]).unwrap();
    let err = s.query("CREATE MATERIALIZED VIEW top AS SELECT src FROM edges ORDER BY src LIMIT 1");
    assert!(err.is_err(), "ORDER BY/LIMIT views must be refused");
    assert!(err.unwrap_err().to_string().contains("not view-definable"));
    assert!(s.view_names().is_empty(), "nothing was created");
    // Ordering belongs in queries over the (unordered) view.
    s.create_materialized_view("fanout", "SELECT src, count(*) FROM edges GROUP BY src").unwrap();
    let rows = s.query("SELECT src, count FROM fanout ORDER BY count DESC LIMIT 1").unwrap().rows;
    assert_eq!(rows.len(), 1);
}
