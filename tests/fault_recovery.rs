//! Fault-injected recovery, proven deterministically (§4.3, Figure 12):
//! killing any worker at any point, under either `RecoveryStrategy`, must
//! leave query results and materialized-view contents **bit-identical**
//! to a failure-free run.
//!
//! Two layers are swept:
//!
//! * **queries** — [`ChaosSweep`](rex::cluster::ChaosSweep) replays
//!   recursive-fixpoint and aggregate plans with a worker killed at every
//!   stratum boundary (the paper's iteration-`k` case), comparing each
//!   recovered result against the unkilled baseline — which itself must
//!   match the single-node engine on the same data;
//! * **views** — sharded view maintenance (`rex_views::sharded`) with
//!   workers killed between write batches via `Session::inject_failure`,
//!   across seeds × kill-points × workers × strategies × view shapes
//!   (group-by, co-partitioned join, cascade), checking view contents
//!   after every batch.
//!
//! Everything is exact arithmetic (integers and dyadic floats), so even
//! restart's re-accumulation reproduces identical float bits — plain
//! `assert_eq!` is the oracle, with no tolerances.

use rex::cluster::{ChaosSweep, RecoveryStrategy};
use rex::core::tuple::{Schema, Tuple};
use rex::core::value::{DataType, Value};
use rex::Session;
use rex_data::rng::StdRng;
use rex_testkit::{canon, edges_session, random_row, SEEDS};

// ---- view-layer chaos ----------------------------------------------------

const VIEWS: [(&str, &str); 3] = [
    // Group-by sharded on the group key.
    ("by_src", "SELECT src, count(*) FROM edges GROUP BY src"),
    // Join + group-by co-partitioned on the join key (dyadic weights).
    (
        "jw",
        "SELECT e.dst, count(*), sum(w.weight) FROM edges e, weights w \
         WHERE e.dst = w.node GROUP BY e.dst",
    ),
    // Cascade: a sharded view reading another sharded view.
    ("hot", "SELECT src FROM by_src WHERE count > 3"),
];

/// Run the random mutation stream, optionally killing workers mid-way,
/// and record every view's contents after every batch.
fn view_stream(seed: u64, kills: &[(usize, usize, RecoveryStrategy)]) -> Vec<Vec<Tuple>> {
    let mut s = edges_session("cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    s.insert("edges", (0..16).map(|_| random_row(&mut rng, "edges")).collect()).unwrap();
    s.insert("weights", (0..10).map(|_| random_row(&mut rng, "weights")).collect()).unwrap();
    for (name, sql) in VIEWS {
        s.create_materialized_view(name, sql).unwrap();
        let v = s.views().get(name).unwrap();
        assert_eq!(v.shards(), 3, "{name} must shard (fallback: {:?})", v.shard_fallback());
    }
    let mut states = Vec::new();
    for step in 0..6 {
        for &(worker, at, strategy) in kills {
            if at == step {
                assert!(s.inject_failure(worker, strategy).unwrap() > 0, "kill w{worker} lost 0");
            }
        }
        let table = if rng.gen_range(0..=1i64) == 0 { "edges" } else { "weights" };
        if rng.gen_range(0..=2i64) == 0 {
            let stored = s.store().get(table).unwrap().rows().to_vec();
            if !stored.is_empty() {
                let victim = stored[rng.gen_range(0..stored.len())].clone();
                s.delete(table, vec![victim]).unwrap();
            }
        } else {
            let rows: Vec<Tuple> =
                (0..rng.gen_range(1..=4i64)).map(|_| random_row(&mut rng, table)).collect();
            s.insert(table, rows).unwrap();
        }
        for (name, _) in VIEWS {
            states.push(s.query(&format!("SELECT * FROM {name}")).unwrap().rows);
        }
    }
    states
}

/// The full matrix: every worker × every kill point × both strategies, on
/// every seed, checked after every batch.
#[test]
fn sharded_view_kill_matrix_is_bit_identical() {
    for seed in SEEDS {
        let want = view_stream(seed, &[]);
        for worker in 0..3 {
            for at in [0, 2, 5] {
                for strategy in [RecoveryStrategy::Incremental, RecoveryStrategy::Restart] {
                    let got = view_stream(seed, &[(worker, at, strategy)]);
                    assert_eq!(
                        got, want,
                        "seed {seed}: kill w{worker} before batch {at} under {strategy:?}"
                    );
                }
            }
        }
    }
}

/// Two workers die at different points — the second takes the first's
/// replicas with it, forcing the incremental path through its
/// replay-from-base fallback. Still bit-identical.
#[test]
fn double_fault_mid_stream_is_bit_identical() {
    for seed in SEEDS {
        let want = view_stream(seed, &[]);
        let got = view_stream(
            seed,
            &[(0, 1, RecoveryStrategy::Incremental), (1, 3, RecoveryStrategy::Incremental)],
        );
        assert_eq!(got, want, "seed {seed}: double fault diverged");
        let restart = view_stream(
            seed,
            &[(2, 2, RecoveryStrategy::Restart), (0, 4, RecoveryStrategy::Restart)],
        );
        assert_eq!(restart, want, "seed {seed}: double restart diverged");
    }
}

/// Recovery telemetry actually moves when shards die.
#[test]
fn view_recovery_shows_up_in_metrics() {
    let before = rex::core::faults::counters();
    let _ = view_stream(SEEDS[0], &[(1, 2, RecoveryStrategy::Incremental)]);
    let after = rex::core::faults::counters();
    assert!(after.events_total > before.events_total, "no failure events recorded");
    assert!(after.incrementals_total > before.incrementals_total);
    let mut s = edges_session("cluster");
    s.insert("edges", vec![Tuple::new(vec![Value::Int(1), Value::Int(2)])]).unwrap();
    s.create_materialized_view("d", "SELECT src, count(*) FROM edges GROUP BY src").unwrap();
    s.inject_failure(0, RecoveryStrategy::Incremental).unwrap();
    let m = s.views().get("d").unwrap().shard_stats();
    assert!(m.recoveries > 0, "view-level recovery counter");
}

// ---- query-layer chaos ---------------------------------------------------

/// A seeded random graph over a spine 0→1→…→n-1 (so reachability from 0
/// runs ~n strata — deep enough for genuinely mid-fixpoint kills).
fn graph_catalog(
    seed: u64,
    n: i64,
) -> (rex_storage::catalog::Catalog, rex_rql::SchemaCatalog, Vec<Tuple>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]);
    let mut rows: Vec<Tuple> =
        (0..n - 1).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i + 1)])).collect();
    for _ in 0..n {
        rows.push(Tuple::new(vec![
            Value::Int(rng.gen_range(0..=n - 1)),
            Value::Int(rng.gen_range(0..=n - 1)),
        ]));
    }
    let mut edges = rex_storage::table::StoredTable::new("edges", schema.clone(), vec![0]);
    for r in &rows {
        edges.insert(r.clone()).unwrap();
    }
    let mut seed_t =
        rex_storage::table::StoredTable::new("seed", Schema::of(&[("id", DataType::Int)]), vec![0]);
    seed_t.insert(Tuple::new(vec![Value::Int(0)])).unwrap();
    let cat = rex_storage::catalog::Catalog::new();
    cat.register(edges);
    cat.register(seed_t);
    let mut sc = rex_rql::SchemaCatalog::new();
    sc.register("edges", schema);
    sc.register("seed", Schema::of(&[("id", DataType::Int)]));
    (cat, sc, rows)
}

/// The same data on the single-node engine: the cross-engine oracle.
fn local_rows(rows: &[Tuple], src: &str) -> Vec<Tuple> {
    let mut s = Session::local();
    s.create_table("edges", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)])).unwrap();
    s.create_table("seed", Schema::of(&[("id", DataType::Int)])).unwrap();
    s.insert("edges", rows.to_vec()).unwrap();
    s.insert("seed", vec![Tuple::new(vec![Value::Int(0)])]).unwrap();
    s.query(src).unwrap().rows
}

const REACH: &str = "
    WITH reach (id) AS (
      SELECT id FROM seed
    ) UNION UNTIL FIXPOINT BY id (
      SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id
    )";

/// The paper's iteration-`k` case: a worker dies mid-fixpoint. Every
/// (worker × stratum boundary × strategy) case must reproduce the
/// baseline bit-for-bit, and the baseline must match the local engine.
#[test]
fn recursive_fixpoint_chaos_sweep_is_bit_identical() {
    let reg = rex::core::udf::Registry::with_builtins();
    for seed in [SEEDS[0], SEEDS[1]] {
        let (cat, sc, rows) = graph_catalog(seed, 10);
        let plan = rex_rql::plan_rql(REACH, &sc, &reg).unwrap();
        let report = ChaosSweep::new(3).run(&cat, &plan, &reg).unwrap();
        assert!(report.baseline_strata > 3, "seed {seed}: want a real fixpoint");
        assert!(report.injected() > 0, "seed {seed}: no kill fired");
        report.assert_clean();
        assert_eq!(
            canon(report.baseline.clone()),
            canon(local_rows(&rows, REACH)),
            "seed {seed}: engines disagree before any fault"
        );
    }
}

/// A recursion whose step is a two-table join (two-hop reachability) —
/// a wider per-stratum dataflow than plain reachability, so each kill
/// discards more in-flight join state. Also pins the boundary of the
/// fault model: non-recursive plans have no stratum boundaries, so a
/// sweep over them injects nothing (§4.3 recovery is about iterative
/// state; one-shot plans are simply re-run by the client).
#[test]
fn joined_recursion_sweeps_clean_and_flat_plans_have_no_kill_points() {
    const HOPS: &str = "
        WITH reach (id) AS (
          SELECT id FROM seed
        ) UNION UNTIL FIXPOINT BY id (
          SELECT b.dst FROM edges a, edges b, reach \
           WHERE a.src = reach.id AND a.dst = b.src
        )";
    let reg = rex::core::udf::Registry::with_builtins();
    let (cat, sc, rows) = graph_catalog(SEEDS[2], 12);
    let plan = rex_rql::plan_rql(HOPS, &sc, &reg).unwrap();
    let report = ChaosSweep::new(4).run(&cat, &plan, &reg).unwrap();
    assert!(report.injected() > 0, "no kill fired");
    report.assert_clean();
    assert_eq!(
        canon(report.baseline.clone()),
        canon(local_rows(&rows, HOPS)),
        "engines disagree before any fault"
    );

    let flat = "SELECT src, count(*), sum(dst) FROM edges GROUP BY src";
    let plan = rex_rql::plan_rql(flat, &sc, &reg).unwrap();
    let report = ChaosSweep::new(4).kill_strata(&[0]).run(&cat, &plan, &reg).unwrap();
    assert_eq!(report.injected(), 0, "flat plans must have no stratum boundaries");
    assert!(report.divergent().is_empty(), "un-killed runs must still match");
    assert_eq!(canon(report.baseline.clone()), canon(local_rows(&rows, flat)));
}
