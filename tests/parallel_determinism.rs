//! Parallel execution is an optimization, never an answer change: at any
//! thread count, on either engine, every query and every maintained view
//! must return results *bit-identical* to the single-threaded run — the
//! same rows, the same order, the same float bits.
//!
//! Three schedulers are under test (seed-swept random data each):
//!
//! * the morsel/shard-parallel local engine (`lower_parallel` + shared
//!   scan cursors + shard-by-key gates),
//! * the threaded cluster drain scheduler (BSP rounds over worker
//!   threads),
//! * parallel materialized-view maintenance (independent same-depth
//!   views fanned out across threads).
//!
//! Floats make this strict: a sum folded in a different order gives
//! different low bits, so plain `assert_eq!` on tuples proves the
//! parallel schedules preserve per-group accumulation order, not just
//! set equality.

use rex::core::tuple::Tuple;
use rex::core::value::Value;
use rex::Session;
use rex_data::rng::StdRng;
use rex_testkit::{fill_tkd, session, D_ROWS, SEEDS, THREADS};

/// Queries covering every parallel-lowering shape: the morsel lane
/// (stateless chains), shard gates (joins, group-bys), fallback paths
/// (global aggregates, top-k), and compound expressions.
const QUERIES: &[&str] = &[
    "SELECT k, a + 1, b * 2.0 FROM t WHERE a < 37",
    "SELECT k FROM t WHERE a >= 38 AND a < 45",
    "SELECT a, count(*), sum(b) FROM t GROUP BY a",
    "SELECT t.a, count(*), sum(d.w) FROM t, d WHERE t.k = d.k GROUP BY t.a",
    "SELECT t.k, t.a, d.w FROM t, d WHERE t.k = d.k AND t.a > 90",
    "SELECT count(*), sum(b) FROM t",
    "SELECT k, b FROM t WHERE a < 50 ORDER BY b, k LIMIT 25",
    "SELECT DISTINCT a FROM t WHERE b > 100.0",
];

/// A recursive query: per-key counters race to a bound through the
/// fixpoint operator (stratum-by-stratum on both engines).
const RECURSIVE: &str = "WITH R (k, v) AS (\
     SELECT k, 0 AS v FROM seed\
     ) UNION UNTIL FIXPOINT BY k (\
     SELECT k, v + 1 FROM R WHERE v < 4)";

fn make(engine: &str, seed: u64) -> Session {
    let mut s = session(engine);
    fill_tkd(&mut s, seed);
    s
}

fn check_engine(engine: &str) {
    for seed in SEEDS {
        let mut s = make(engine, seed);
        for q in QUERIES.iter().chain(&[RECURSIVE]) {
            s.set_threads(1);
            let want = s.query(q).unwrap().rows;
            for threads in THREADS {
                s.set_threads(threads);
                let got = s.query(q).unwrap().rows;
                assert_eq!(got, want, "{engine}/seed {seed}/{threads} threads diverges on: {q}");
            }
        }
    }
}

#[test]
fn local_engine_parallel_results_are_bit_identical() {
    check_engine("local");
}

#[test]
fn cluster_engine_threaded_results_are_bit_identical() {
    check_engine("cluster");
}

/// Parallel view maintenance: sessions that differ only in thread count
/// must hold bit-identical view contents after every random write batch.
#[test]
fn view_maintenance_is_bit_identical_across_thread_counts() {
    let views = [
        "CREATE MATERIALIZED VIEW by_a AS SELECT a, count(*), sum(b) FROM t GROUP BY a",
        "CREATE MATERIALIZED VIEW joined AS \
         SELECT t.a, sum(d.w) FROM t, d WHERE t.k = d.k GROUP BY t.a",
        "CREATE MATERIALIZED VIEW hot AS SELECT k, b FROM t WHERE b > 250.0",
    ];
    for seed in SEEDS {
        let run = |threads: usize| -> Vec<Vec<Tuple>> {
            let mut s = Session::local();
            s.set_threads(threads);
            fill_tkd(&mut s, seed);
            for v in views {
                s.query(v).unwrap();
            }
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
            let mut states = Vec::new();
            for _ in 0..4 {
                let batch: Vec<Tuple> = (0..200)
                    .map(|_| {
                        Tuple::new(vec![
                            Value::Int(rng.gen_range(0..=D_ROWS - 1)),
                            Value::Int(rng.gen_range(0..=99i64)),
                            Value::Double(rng.gen_range(0..=999i64) as f64 * 0.37),
                        ])
                    })
                    .collect();
                s.insert("t", batch).unwrap();
                for view in ["by_a", "joined", "hot"] {
                    states.push(s.query(&format!("SELECT * FROM {view}")).unwrap().rows);
                }
            }
            states
        };
        let want = run(1);
        for threads in THREADS {
            assert_eq!(run(threads), want, "seed {seed}/{threads} threads: view state diverges");
        }
    }
}
