//! Resource-vector costs with CPU/I-O overlap (§5).
//!
//! "REX models pipelined operations using a vector of resource utilization
//! levels. Rather than simply adding the execution times to produce the
//! overall runtime, the REX optimizer determines the result runtime as the
//! lowest value that allows both subplans to execute in parallel while the
//! combined utilization for any resource remains under 100%. In the
//! extreme case where the two subplans use completely disjoint resources,
//! the resulting runtime equals the maximum of the runtime of the
//! subplans, rather than their sum."

use std::ops::Add;

/// Resource *work* amounts (time each resource would need in isolation).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceVector {
    /// CPU time.
    pub cpu: f64,
    /// Disk time.
    pub disk: f64,
    /// Network time.
    pub net: f64,
}

impl ResourceVector {
    /// All-zero vector.
    pub const ZERO: ResourceVector = ResourceVector { cpu: 0.0, disk: 0.0, net: 0.0 };

    /// CPU-only work.
    pub fn cpu(t: f64) -> ResourceVector {
        ResourceVector { cpu: t, ..Self::ZERO }
    }

    /// Disk-only work.
    pub fn disk(t: f64) -> ResourceVector {
        ResourceVector { disk: t, ..Self::ZERO }
    }

    /// Network-only work.
    pub fn net(t: f64) -> ResourceVector {
        ResourceVector { net: t, ..Self::ZERO }
    }

    /// The runtime of this work when its stages pipeline: no resource can
    /// exceed 100% utilization, so the binding resource determines the
    /// runtime.
    pub fn pipelined_runtime(&self) -> f64 {
        self.cpu.max(self.disk).max(self.net)
    }

    /// The runtime when stages serialize (no overlap): times add.
    pub fn serial_runtime(&self) -> f64 {
        self.cpu + self.disk + self.net
    }

    /// Scale all components.
    pub fn scale(&self, f: f64) -> ResourceVector {
        ResourceVector { cpu: self.cpu * f, disk: self.disk * f, net: self.net * f }
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;

    fn add(self, o: ResourceVector) -> ResourceVector {
        ResourceVector { cpu: self.cpu + o.cpu, disk: self.disk + o.disk, net: self.net + o.net }
    }
}

/// Combine two *concurrently executing* subplans: each resource's
/// utilization adds; the runtime is the smallest T with every resource's
/// combined work ≤ T (i.e. the component-wise sum's binding resource).
pub fn parallel(a: ResourceVector, b: ResourceVector) -> ResourceVector {
    a + b
}

/// Per-node hardware calibration (§5 "Many-node cost estimation"): "we
/// assume that each node has run an initial calibration that provides the
/// optimizer with information about its relative CPU and disk speeds, and
/// all pairwise network bandwidths".
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Per-node CPU speed factors (1.0 = nominal; larger = faster).
    pub cpu_speed: Vec<f64>,
    /// Per-node disk speed factors.
    pub disk_speed: Vec<f64>,
    /// Pairwise bandwidth factors (`net[i][j]`, 1.0 = nominal).
    pub net_bandwidth: Vec<Vec<f64>>,
}

impl Calibration {
    /// A homogeneous cluster of `n` nominal nodes.
    pub fn uniform(n: usize) -> Calibration {
        Calibration {
            cpu_speed: vec![1.0; n],
            disk_speed: vec![1.0; n],
            net_bandwidth: vec![vec![1.0; n]; n],
        }
    }

    /// Number of calibrated nodes.
    pub fn n_nodes(&self) -> usize {
        self.cpu_speed.len()
    }

    /// Worst-case completion factors: the optimizer costs each operator at
    /// the *slowest* node ("this in essence estimates the worst-case
    /// completion time for each operation").
    pub fn worst_case(&self) -> (f64, f64, f64) {
        let min = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min).max(1e-9);
        let cpu = min(&self.cpu_speed);
        let disk = min(&self.disk_speed);
        let net = min(&self
            .net_bandwidth
            .iter()
            .enumerate()
            .flat_map(|(i, row)| {
                row.iter().enumerate().filter(move |(j, _)| i != *j).map(|(_, &b)| b)
            })
            .collect::<Vec<f64>>());
        (cpu, disk, net.min(f64::INFINITY))
    }

    /// Adjust a nominal resource vector to worst-case node speeds.
    pub fn derate(&self, v: ResourceVector) -> ResourceVector {
        if self.n_nodes() <= 1 {
            return ResourceVector { net: 0.0, ..v };
        }
        let (cpu, disk, net) = self.worst_case();
        ResourceVector { cpu: v.cpu / cpu, disk: v.disk / disk, net: v.net / net }
    }
}

/// Nominal per-unit costs used to convert cardinalities into resource
/// work; aligned with the engine's `CostModel` defaults.
#[derive(Debug, Clone, Copy)]
pub struct UnitCosts {
    /// CPU per tuple through an operator.
    pub cpu_per_tuple: f64,
    /// CPU per hash probe/insert.
    pub hash_cost: f64,
    /// Bytes per tuple (schema-independent estimate).
    pub bytes_per_tuple: f64,
    /// Network seconds per byte.
    pub net_per_byte: f64,
    /// Disk seconds per byte.
    pub disk_per_byte: f64,
    /// Default UDF invocation cost when no hint is given.
    pub udf_default_cost: f64,
}

impl Default for UnitCosts {
    fn default() -> UnitCosts {
        UnitCosts {
            cpu_per_tuple: 1.0,
            hash_cost: 0.5,
            bytes_per_tuple: 24.0,
            net_per_byte: 1.0 / 200.0,
            disk_per_byte: 1.0 / 400.0,
            udf_default_cost: 5.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_runtime_is_binding_resource() {
        let v = ResourceVector { cpu: 10.0, disk: 4.0, net: 7.0 };
        assert_eq!(v.pipelined_runtime(), 10.0);
        assert_eq!(v.serial_runtime(), 21.0);
    }

    #[test]
    fn disjoint_parallel_subplans_run_at_max() {
        // CPU-bound ∥ disk-bound: nothing contends, runtime = max.
        let a = ResourceVector::cpu(10.0);
        let b = ResourceVector::disk(8.0);
        assert_eq!(parallel(a, b).pipelined_runtime(), 10.0);
    }

    #[test]
    fn contending_parallel_subplans_add() {
        let a = ResourceVector::cpu(10.0);
        let b = ResourceVector::cpu(8.0);
        assert_eq!(parallel(a, b).pipelined_runtime(), 18.0);
    }

    #[test]
    fn calibration_worst_case_uses_slowest_node() {
        let mut c = Calibration::uniform(3);
        c.cpu_speed[1] = 0.5;
        c.net_bandwidth[0][2] = 0.25;
        let (cpu, _, net) = c.worst_case();
        assert_eq!(cpu, 0.5);
        assert_eq!(net, 0.25);
        // Work at the slowest node takes twice as long.
        let v = c.derate(ResourceVector::cpu(10.0));
        assert_eq!(v.cpu, 20.0);
    }

    #[test]
    fn single_node_has_no_network_cost() {
        let c = Calibration::uniform(1);
        let v = c.derate(ResourceVector { cpu: 1.0, disk: 1.0, net: 5.0 });
        assert_eq!(v.net, 0.0);
    }

    #[test]
    fn scale_and_add() {
        let v = ResourceVector { cpu: 1.0, disk: 2.0, net: 3.0 }.scale(2.0);
        assert_eq!(v, ResourceVector { cpu: 2.0, disk: 4.0, net: 6.0 });
        let w = v + ResourceVector::cpu(1.0);
        assert_eq!(w.cpu, 3.0);
    }
}
