//! The optimizer's typed error.
//!
//! Costing and rewriting report failures as engine errors internally;
//! [`OptimizeError`] wraps them so callers can distinguish "the optimizer
//! rejected this plan" from execution failures, and `?`-convert into
//! [`RexError`] at the session boundary without ad-hoc `map_err` strings.

use rex_core::error::RexError;
use std::fmt;

/// An error raised while optimizing a logical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeError {
    /// The underlying engine error.
    pub source: RexError,
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "optimize failed: {}", self.source)
    }
}

impl std::error::Error for OptimizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl From<RexError> for OptimizeError {
    fn from(source: RexError) -> OptimizeError {
        OptimizeError { source }
    }
}

/// Optimizer errors flow into the engine's unified error type, keeping
/// the underlying variant and tagging the message so an optimizer-stage
/// failure stays distinguishable from a planner or runtime error.
impl From<OptimizeError> for RexError {
    fn from(e: OptimizeError) -> RexError {
        match e.source {
            RexError::Plan(m) => RexError::Plan(format!("optimizer: {m}")),
            RexError::Type(m) => RexError::Type(format!("optimizer: {m}")),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_rex_error() {
        let e: OptimizeError = RexError::Plan("no stats".into()).into();
        assert!(e.to_string().contains("optimize failed"));
        let r: RexError = e.into();
        assert!(matches!(r, RexError::Plan(ref m) if m == "optimizer: no stats"));
    }
}
