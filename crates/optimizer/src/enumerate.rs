//! Top-down join-order enumeration with memoization and branch-and-bound
//! (§5, after the Volcano/Cascades style of \[10\]).
//!
//! The enumerator searches bushy trees over a join graph: each memo entry
//! is a set of relations; a set is optimized by splitting it into every
//! connected (or, when unavoidable, cross-product) partition, recursing,
//! and keeping the cheapest combination. An upper bound from the best
//! complete plan found so far prunes subproblems whose partial cost
//! already exceeds it.

use crate::stats::Statistics;
use std::collections::HashMap;

/// One base relation in the join graph.
#[derive(Debug, Clone)]
pub struct Relation {
    /// Display name.
    pub name: String,
    /// Estimated rows.
    pub rows: u64,
    /// Distinct values of its join attribute.
    pub distinct: u64,
}

/// An equi-join edge between relations `a` and `b` (indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinEdge {
    /// One endpoint.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
}

/// A join tree produced by the enumerator.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinTree {
    /// A base relation by index.
    Leaf(usize),
    /// A join of two subtrees.
    Node(Box<JoinTree>, Box<JoinTree>),
}

impl JoinTree {
    /// Relations in this tree, in-order.
    pub fn relations(&self) -> Vec<usize> {
        match self {
            JoinTree::Leaf(i) => vec![*i],
            JoinTree::Node(l, r) => {
                let mut v = l.relations();
                v.extend(r.relations());
                v
            }
        }
    }

    /// Render with parentheses, e.g. `((A ⋈ B) ⋈ C)`.
    pub fn render(&self, rels: &[Relation]) -> String {
        match self {
            JoinTree::Leaf(i) => rels[*i].name.clone(),
            JoinTree::Node(l, r) => {
                format!("({} ⋈ {})", l.render(rels), r.render(rels))
            }
        }
    }
}

/// The result of an enumeration: the best tree, its estimated output
/// cardinality and cumulative cost, and search counters.
#[derive(Debug, Clone)]
pub struct Enumeration {
    /// Best join tree.
    pub tree: JoinTree,
    /// Its output cardinality.
    pub rows: u64,
    /// Cumulative cost (sum of intermediate-result sizes, the classic
    /// C_out metric).
    pub cost: f64,
    /// Memo entries created.
    pub memo_size: usize,
    /// Subproblems pruned by branch-and-bound.
    pub pruned: usize,
}

type Set = u64; // bitset over ≤64 relations

/// Enumerate the cheapest join order for `rels` under `edges`.
pub fn best_join_order(rels: &[Relation], edges: &[JoinEdge], stats: &Statistics) -> Enumeration {
    assert!(!rels.is_empty() && rels.len() <= 64, "1..=64 relations supported");
    let mut e = Enumerator { rels, edges, stats, memo: HashMap::new(), pruned: 0 };
    let full: Set = if rels.len() == 64 { !0 } else { (1 << rels.len()) - 1 };
    let (tree, rows, cost) = e.solve(full, f64::INFINITY);
    let memo_size = e.memo.len();
    Enumeration {
        tree: tree.expect("full set is solvable"),
        rows,
        cost,
        memo_size,
        pruned: e.pruned,
    }
}

struct Enumerator<'a> {
    rels: &'a [Relation],
    edges: &'a [JoinEdge],
    stats: &'a Statistics,
    memo: HashMap<Set, (JoinTree, u64, f64)>,
    pruned: usize,
}

impl Enumerator<'_> {
    fn connected(&self, left: Set, right: Set) -> bool {
        self.edges.iter().any(|e| {
            (left & (1 << e.a) != 0 && right & (1 << e.b) != 0)
                || (left & (1 << e.b) != 0 && right & (1 << e.a) != 0)
        })
    }

    fn join_rows(&self, lrows: u64, rrows: u64, left: Set, right: Set) -> u64 {
        let connected = self.connected(left, right);
        // Use the max distinct across the joined attributes as the
        // containment divisor.
        let d = self
            .rels
            .iter()
            .enumerate()
            .filter(|(i, _)| (left | right) & (1 << i) != 0)
            .map(|(_, r)| r.distinct)
            .max()
            .unwrap_or(1);
        self.stats.join_cardinality(lrows, rrows, d, d, connected)
    }

    /// Optimize `set` with an upper bound; returns (tree, rows, cost).
    fn solve(&mut self, set: Set, bound: f64) -> (Option<JoinTree>, u64, f64) {
        if let Some((t, r, c)) = self.memo.get(&set) {
            return (Some(t.clone()), *r, *c);
        }
        if set.count_ones() == 1 {
            let i = set.trailing_zeros() as usize;
            let entry = (JoinTree::Leaf(i), self.rels[i].rows, 0.0);
            self.memo.insert(set, entry.clone());
            return (Some(entry.0), entry.1, entry.2);
        }
        let mut best: Option<(JoinTree, u64, f64)> = None;
        // Enumerate proper subsets containing the lowest bit (canonical
        // split to halve the search).
        let low = 1u64 << set.trailing_zeros();
        let rest = set & !low;
        let mut sub = rest;
        loop {
            let left = sub | low;
            let right = set & !left;
            if right != 0 {
                // Prefer connected splits; allow cross products only when
                // the graph is disconnected over this set.
                let connected = self.connected(left, right);
                if connected || !self.any_connected_split(set) {
                    let current_bound =
                        best.as_ref().map(|(_, _, c)| c.min(bound)).unwrap_or(bound);
                    let (lt, lr, lc) = self.solve(left, current_bound);
                    if lc < current_bound {
                        let (rt, rr, rc) = self.solve(right, current_bound - lc);
                        let out_rows = self.join_rows(lr, rr, left, right);
                        let cost = lc + rc + out_rows as f64;
                        if cost < current_bound {
                            if let (Some(lt), Some(rt)) = (lt, rt) {
                                best = Some((
                                    JoinTree::Node(Box::new(lt), Box::new(rt)),
                                    out_rows,
                                    cost,
                                ));
                            }
                        } else {
                            self.pruned += 1;
                        }
                    } else {
                        self.pruned += 1;
                    }
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
        match best {
            Some((t, r, c)) => {
                self.memo.insert(set, (t.clone(), r, c));
                (Some(t), r, c)
            }
            None => (None, 0, f64::INFINITY),
        }
    }

    fn any_connected_split(&mut self, set: Set) -> bool {
        let low = 1u64 << set.trailing_zeros();
        let rest = set & !low;
        let mut sub = rest;
        loop {
            let left = sub | low;
            let right = set & !left;
            if right != 0 && self.connected(left, right) {
                return true;
            }
            if sub == 0 {
                return false;
            }
            sub = (sub - 1) & rest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(name: &str, rows: u64, distinct: u64) -> Relation {
        Relation { name: name.into(), rows, distinct }
    }

    #[test]
    fn single_relation_is_a_leaf() {
        let rels = vec![rel("A", 100, 10)];
        let e = best_join_order(&rels, &[], &Statistics::new());
        assert_eq!(e.tree, JoinTree::Leaf(0));
        assert_eq!(e.rows, 100);
        assert_eq!(e.cost, 0.0);
    }

    #[test]
    fn chain_join_starts_with_smallest_pair() {
        // A(10^6) — B(1000) — C(10): best plans join B⋈C first.
        let rels = vec![rel("A", 1_000_000, 100), rel("B", 1_000, 100), rel("C", 10, 100)];
        let edges = vec![JoinEdge { a: 0, b: 1 }, JoinEdge { a: 1, b: 2 }];
        let e = best_join_order(&rels, &edges, &Statistics::new());
        let txt = e.tree.render(&rels);
        assert!(txt.contains("(B ⋈ C)") || txt.contains("(C ⋈ B)"), "{txt}");
    }

    #[test]
    fn avoids_cross_products_when_connected() {
        let rels = vec![rel("A", 100, 10), rel("B", 100, 10), rel("C", 100, 10)];
        // Star: A-B, A-C; B⋈C is a cross product and must not be chosen.
        let edges = vec![JoinEdge { a: 0, b: 1 }, JoinEdge { a: 0, b: 2 }];
        let e = best_join_order(&rels, &edges, &Statistics::new());
        fn no_cross(t: &JoinTree, edges: &[JoinEdge]) -> bool {
            match t {
                JoinTree::Leaf(_) => true,
                JoinTree::Node(l, r) => {
                    let ls = l.relations();
                    let rs = r.relations();
                    let connected = edges.iter().any(|e| {
                        (ls.contains(&e.a) && rs.contains(&e.b))
                            || (ls.contains(&e.b) && rs.contains(&e.a))
                    });
                    connected && no_cross(l, edges) && no_cross(r, edges)
                }
            }
        }
        assert!(no_cross(&e.tree, &edges), "{}", e.tree.render(&rels));
    }

    #[test]
    fn disconnected_graph_still_produces_a_plan() {
        let rels = vec![rel("A", 10, 5), rel("B", 20, 5)];
        let e = best_join_order(&rels, &[], &Statistics::new());
        assert_eq!(e.rows, 200, "cross product cardinality");
    }

    #[test]
    fn branch_and_bound_prunes() {
        // A 6-relation chain has many bad bushy splits; pruning must fire.
        let rels: Vec<Relation> =
            (0..6).map(|i| rel(&format!("R{i}"), 1000 * (i as u64 + 1), 50)).collect();
        let edges: Vec<JoinEdge> = (0..5).map(|i| JoinEdge { a: i, b: i + 1 }).collect();
        let e = best_join_order(&rels, &edges, &Statistics::new());
        assert!(e.pruned > 0, "expected pruning, memo={} pruned={}", e.memo_size, e.pruned);
        assert!(e.cost.is_finite());
    }

    #[test]
    fn memoization_bounds_search() {
        let rels: Vec<Relation> = (0..8).map(|i| rel(&format!("R{i}"), 100, 10)).collect();
        let edges: Vec<JoinEdge> = (0..7).map(|i| JoinEdge { a: i, b: i + 1 }).collect();
        let e = best_join_order(&rels, &edges, &Statistics::new());
        // The memo holds at most one entry per relation subset.
        assert!(e.memo_size <= 255);
        assert_eq!(e.tree.relations().len(), 8);
    }
}
