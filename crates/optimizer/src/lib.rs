//! # rex-optimizer
//!
//! The REX cost-based optimizer (§5): top-down join enumeration with
//! memoization and branch-and-bound ([`enumerate`]), a resource-vector
//! cost model with CPU/disk/network overlap and worst-case node
//! calibration ([`cost`]), rank-based ordering of expensive UDF predicates
//! ([`rules`]), UDA pre-aggregation pushdown with composability and
//! multiplicative-join compensation ([`rules`]), and recursive-query
//! costing by capped simulated iteration ([`plan_cost`]).
//!
//! The [`Optimizer`] facade takes an RQL [`LogicalPlan`], applies the
//! semantics-preserving rewrites, and returns the rewritten plan with its
//! estimated [`PlanCost`].

pub mod cost;
pub mod enumerate;
pub mod error;
pub mod plan_cost;
pub mod rules;
pub mod stats;

pub use cost::{Calibration, ResourceVector, UnitCosts};
pub use error::OptimizeError;
pub use plan_cost::{Coster, PlanCost};
pub use stats::{Statistics, UdfProfile};

use rex_rql::logical::LogicalPlan;

/// Result alias for optimizer operations.
pub type Result<T> = std::result::Result<T, OptimizeError>;

/// The optimizer facade. `Clone` so a point-in-time copy (statistics
/// frozen at snapshot-publish time) can ride inside an immutable
/// database snapshot and cost plans concurrently with the live session.
#[derive(Clone)]
pub struct Optimizer {
    /// Catalog statistics (row counts, UDF profiles, hints).
    pub stats: Statistics,
    /// Per-node hardware calibration.
    pub calib: Calibration,
    /// Unit resource costs.
    pub units: UnitCosts,
}

impl Optimizer {
    /// An optimizer for a homogeneous `n`-node cluster with empty stats.
    pub fn new(n_nodes: usize) -> Optimizer {
        Optimizer {
            stats: Statistics::new(),
            calib: Calibration::uniform(n_nodes),
            units: UnitCosts::default(),
        }
    }

    /// Optimize a logical plan: apply the rewrite rules — HAVING pushdown
    /// below aggregates, redundant-DISTINCT elimination, LIMIT-into-Sort
    /// top-k fusion, rank-ordered filters — then cost the result. Returns
    /// the rewritten plan and its estimate.
    pub fn optimize(&self, plan: LogicalPlan) -> Result<(LogicalPlan, PlanCost)> {
        let rewritten = rules::push_having_below_aggregate(plan);
        let rewritten = rules::eliminate_redundant_distinct(rewritten);
        let rewritten = rules::fuse_limit_into_sort(rewritten);
        let rewritten = rules::order_filters_by_rank(rewritten, &self.stats);
        let coster = Coster { stats: &self.stats, units: self.units, calib: &self.calib };
        let cost = coster.cost(&rewritten)?;
        Ok((rewritten, cost))
    }

    /// Cost a plan without rewriting (for comparing alternatives).
    pub fn cost(&self, plan: &LogicalPlan) -> Result<PlanCost> {
        let coster = Coster { stats: &self.stats, units: self.units, calib: &self.calib };
        Ok(coster.cost(plan)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple::Schema;
    use rex_core::udf::Registry;
    use rex_core::value::DataType;
    use rex_rql::logical::plan_text;
    use rex_rql::SchemaCatalog;

    fn catalog() -> SchemaCatalog {
        let mut c = SchemaCatalog::new();
        c.register(
            "t",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int), ("c", DataType::Double)]),
        );
        c
    }

    #[test]
    fn optimize_returns_finite_cost_and_runnable_plan() {
        let reg = Registry::with_builtins();
        let mut opt = Optimizer::new(4);
        opt.stats.set_table_rows("t", 50_000);
        let p = plan_text("SELECT a, count(*) FROM t WHERE b > 2 GROUP BY a", &catalog(), &reg)
            .unwrap();
        let (rewritten, cost) = opt.optimize(p).unwrap();
        assert!(cost.runtime() > 0.0 && cost.runtime().is_finite());
        assert!(cost.rows > 0);
        // The rewritten plan still lowers and runs.
        use rex_core::tuple;
        use rex_rql::lower::{lower, MemTables};
        let mut m = MemTables::new();
        m.insert("t", vec![tuple![1i64, 3i64, 0.5f64], tuple![1i64, 1i64, 0.5f64]]);
        let g = lower(&rewritten, &m, &reg).unwrap();
        let (results, _) = rex_core::exec::LocalRuntime::new().run(g).unwrap();
        assert_eq!(results, vec![tuple![1i64, 1i64]]);
    }

    #[test]
    fn slower_calibration_raises_estimates() {
        let reg = Registry::with_builtins();
        let p = plan_text("SELECT a FROM t WHERE b > 2", &catalog(), &reg).unwrap();
        let fast = Optimizer::new(4);
        let mut slow = Optimizer::new(4);
        slow.calib.cpu_speed[2] = 0.25; // one straggler
        let cf = fast.cost(&p).unwrap();
        let cs = slow.cost(&p).unwrap();
        assert!(cs.runtime() > cf.runtime(), "straggler must dominate (worst-case est.)");
    }
}
