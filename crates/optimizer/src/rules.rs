//! Rewrite rules: predicate migration for UDFs (§5.1) and UDA
//! pre-aggregation pushdown (§5.2).
//!
//! The rules are cost-guided but semantics-preserving; tests execute the
//! original and rewritten plans and compare results.

use crate::stats::Statistics;
use rex_core::error::Result;
use rex_core::expr::Expr;
use rex_core::udf::Registry;
use rex_rql::logical::{AggCall, LogicalPlan};

/// The calibrated rank of a filter predicate: `cost / (1 − selectivity)`.
/// Cheap, selective predicates rank low and run first.
fn predicate_rank(e: &Expr, stats: &Statistics) -> f64 {
    let sel = crate::stats::predicate_selectivity(e, stats);
    let cost = expr_udf_cost(e, stats) + 1.0;
    cost / (1.0 - sel).max(1e-9)
}

fn expr_udf_cost(e: &Expr, stats: &Statistics) -> f64 {
    match e {
        Expr::Udf(name, args) => {
            stats.udf(name).cost_per_tuple
                + args.iter().map(|a| expr_udf_cost(a, stats)).sum::<f64>()
        }
        Expr::Bin(_, a, b) => expr_udf_cost(a, stats) + expr_udf_cost(b, stats),
        Expr::Not(a) | Expr::Neg(a) | Expr::IsNull(a) => expr_udf_cost(a, stats),
        _ => 0.0,
    }
}

/// Reorder chains of adjacent filters by increasing rank ("the optimal
/// order of application of expensive predicates over the same relation is
/// in increasing order of rank", [13] via §5.1). Applied recursively to
/// the whole plan.
pub fn order_filters_by_rank(plan: LogicalPlan, stats: &Statistics) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            // Collect the maximal chain of filters.
            let mut chain = vec![predicate];
            let mut cur = *input;
            while let LogicalPlan::Filter { input, predicate } = cur {
                chain.push(predicate);
                cur = *input;
            }
            let rebuilt = order_filters_by_rank(cur, stats);
            // Sort by rank; the lowest rank sits deepest (runs first).
            chain.sort_by(|a, b| {
                predicate_rank(a, stats)
                    .partial_cmp(&predicate_rank(b, stats))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut out = rebuilt;
            for p in chain {
                out = LogicalPlan::Filter { input: Box::new(out), predicate: p };
            }
            out
        }
        LogicalPlan::Project { input, exprs, schema } => LogicalPlan::Project {
            input: Box::new(order_filters_by_rank(*input, stats)),
            exprs,
            schema,
        },
        LogicalPlan::Join { left, right, left_key, right_key, handler, schema } => {
            LogicalPlan::Join {
                left: Box::new(order_filters_by_rank(*left, stats)),
                right: Box::new(order_filters_by_rank(*right, stats)),
                left_key,
                right_key,
                handler,
                schema,
            }
        }
        LogicalPlan::Aggregate { input, group_cols, aggs, post, schema } => {
            LogicalPlan::Aggregate {
                input: Box::new(order_filters_by_rank(*input, stats)),
                group_cols,
                aggs,
                post,
                schema,
            }
        }
        LogicalPlan::Fixpoint { name, key_cols, base, step, schema } => LogicalPlan::Fixpoint {
            name,
            key_cols,
            base: Box::new(order_filters_by_rank(*base, stats)),
            step: Box::new(order_filters_by_rank(*step, stats)),
            schema,
        },
        leaf => leaf,
    }
}

/// Decision record for a pre-aggregation pushdown (§5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreAggPlan {
    /// The final aggregate's registered name.
    pub agg: String,
    /// The partial (pushed-down) aggregate's name.
    pub partial: String,
    /// Whether the pushdown crossed a non-key join and needs `multiply`
    /// compensation by the opposite group's cardinality.
    pub needs_multiply: bool,
}

/// Determine the legal pre-aggregation pushdowns for an aggregate above a
/// join: composable UDAs push through any join (with multiply compensation
/// when the join is not on a key); non-composable UDAs only push under a
/// key–foreign-key join. At most one pre-aggregation per UDA, maximally
/// pushed (the §5.2 heuristic).
pub fn preaggregation_plan(
    aggs: &[AggCall],
    reg: &Registry,
    join_on_key: bool,
) -> Result<Vec<Option<PreAggPlan>>> {
    let mut out = Vec::with_capacity(aggs.len());
    for a in aggs {
        let handler = reg.agg(&a.func)?;
        let plan = match handler.pre_aggregate() {
            Some(partial) if handler.composable() => {
                Some(PreAggPlan { agg: a.func.clone(), partial, needs_multiply: !join_on_key })
            }
            Some(partial) if join_on_key => {
                Some(PreAggPlan { agg: a.func.clone(), partial, needs_multiply: false })
            }
            _ => None,
        };
        out.push(plan);
    }
    Ok(out)
}

/// Estimated network benefit of pushing a pre-aggregation below a rehash:
/// shipped rows shrink from `rows` to ~`groups` (the combiner effect). The
/// optimizer pushes when the benefit is positive.
pub fn preagg_network_benefit(rows: u64, groups: u64, bytes_per_tuple: f64) -> f64 {
    (rows.saturating_sub(groups)) as f64 * bytes_per_tuple
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::UdfProfile;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;
    use rex_rql::logical::plan_text;
    use rex_rql::SchemaCatalog;

    fn catalog() -> SchemaCatalog {
        let mut c = SchemaCatalog::new();
        c.register(
            "t",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int), ("c", DataType::Double)]),
        );
        c
    }

    fn filter_chain(plan: &LogicalPlan) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = plan;
        loop {
            match cur {
                LogicalPlan::Filter { input, predicate } => {
                    out.push(format!("{predicate:?}"));
                    cur = input;
                }
                LogicalPlan::Project { input, .. } => cur = input,
                _ => return out,
            }
        }
    }

    #[test]
    fn expensive_udf_filter_moves_above_cheap_comparison() {
        let reg = Registry::with_builtins();
        let mut stats = Statistics::new();
        stats.set_udf("sqrt", UdfProfile { cost_per_tuple: 500.0, selectivity: 0.99 });
        // Written with the expensive predicate first.
        let p = plan_text("SELECT a FROM t WHERE sqrt(c) > 1 AND b = 3", &catalog(), &reg).unwrap();
        let rewritten = order_filters_by_rank(p, &stats);
        let chain = filter_chain(&rewritten);
        assert_eq!(chain.len(), 2);
        // Outermost (last-applied) filter is the expensive one.
        assert!(chain[0].contains("sqrt"), "expensive predicate should apply last: {chain:?}");
        assert!(!chain[1].contains("sqrt"));
    }

    #[test]
    fn rank_ordering_preserves_results() {
        use rex_core::exec::LocalRuntime;
        use rex_core::tuple;
        use rex_rql::lower::{lower, MemTables};
        let reg = Registry::with_builtins();
        let mut stats = Statistics::new();
        stats.set_udf("sqrt", UdfProfile { cost_per_tuple: 500.0, selectivity: 0.99 });
        let p = plan_text("SELECT a FROM t WHERE sqrt(c) > 1 AND b = 3", &catalog(), &reg).unwrap();
        let rewritten = order_filters_by_rank(p.clone(), &stats);

        let mut m = MemTables::new();
        m.insert(
            "t",
            vec![
                tuple![1i64, 3i64, 4.0f64],
                tuple![2i64, 3i64, 0.25f64],
                tuple![3i64, 9i64, 9.0f64],
            ],
        );
        let run = |lp: &LogicalPlan| {
            let g = lower(lp, &m, &reg).unwrap();
            let (mut r, _) = LocalRuntime::new().run(g).unwrap();
            r.sort();
            r
        };
        assert_eq!(run(&p), run(&rewritten));
        assert_eq!(run(&p), vec![tuple![1i64]]);
    }

    #[test]
    fn composable_uda_pushes_through_any_join() {
        let reg = Registry::with_builtins();
        let aggs =
            vec![AggCall { func: "count".into(), input_cols: vec![], return_type: DataType::Int }];
        let on_key = preaggregation_plan(&aggs, &reg, true).unwrap();
        assert_eq!(
            on_key[0],
            Some(PreAggPlan {
                agg: "count".into(),
                partial: "count".into(),
                needs_multiply: false
            })
        );
        let off_key = preaggregation_plan(&aggs, &reg, false).unwrap();
        assert!(off_key[0].as_ref().unwrap().needs_multiply);
    }

    #[test]
    fn non_composable_uda_needs_key_join() {
        let reg = Registry::with_builtins();
        // MIN keeps a buffered bag and advertises no pre-aggregate: never
        // pushed.
        let aggs = vec![AggCall {
            func: "min".into(),
            input_cols: vec![0],
            return_type: DataType::Double,
        }];
        assert_eq!(preaggregation_plan(&aggs, &reg, true).unwrap()[0], None);
        assert_eq!(preaggregation_plan(&aggs, &reg, false).unwrap()[0], None);
    }

    #[test]
    fn avg_splits_into_partial_and_final() {
        let reg = Registry::with_builtins();
        let aggs = vec![AggCall {
            func: "avg".into(),
            input_cols: vec![1],
            return_type: DataType::Double,
        }];
        let plan = preaggregation_plan(&aggs, &reg, false).unwrap();
        let p = plan[0].as_ref().expect("avg is composable via sum+count");
        assert_eq!(p.partial, "avg_partial");
    }

    #[test]
    fn network_benefit_shrinks_with_group_count() {
        assert!(preagg_network_benefit(1000, 10, 24.0) > preagg_network_benefit(1000, 900, 24.0));
        assert_eq!(preagg_network_benefit(10, 10, 24.0), 0.0);
    }
}
