//! Rewrite rules: predicate migration for UDFs (§5.1), UDA
//! pre-aggregation pushdown (§5.2), and the ORDER BY / LIMIT / DISTINCT /
//! HAVING normalizations:
//!
//! * [`fuse_limit_into_sort`] — `Limit` directly above `Sort` collapses
//!   into a top-k (the sort never materializes more than
//!   `limit + offset` rows per worker);
//! * [`push_having_below_aggregate`] — a HAVING predicate that touches
//!   only group-key columns filters input *rows* instead of groups;
//! * [`eliminate_redundant_distinct`] — `DISTINCT` over input whose rows
//!   are provably unique (an aggregate output, another DISTINCT) is a
//!   no-op and is removed.
//!
//! The rules are cost-guided but semantics-preserving; tests execute the
//! original and rewritten plans and compare results.

use crate::stats::Statistics;
use rex_core::error::Result;
use rex_core::expr::Expr;
use rex_core::udf::Registry;
use rex_rql::logical::{AggCall, LogicalPlan};

/// The calibrated rank of a filter predicate: `cost / (1 − selectivity)`.
/// Cheap, selective predicates rank low and run first.
fn predicate_rank(e: &Expr, stats: &Statistics) -> f64 {
    let sel = crate::stats::predicate_selectivity(e, stats);
    let cost = expr_udf_cost(e, stats) + 1.0;
    cost / (1.0 - sel).max(1e-9)
}

fn expr_udf_cost(e: &Expr, stats: &Statistics) -> f64 {
    match e {
        Expr::Udf(name, args) => {
            stats.udf(name).cost_per_tuple
                + args.iter().map(|a| expr_udf_cost(a, stats)).sum::<f64>()
        }
        Expr::Bin(_, a, b) => expr_udf_cost(a, stats) + expr_udf_cost(b, stats),
        Expr::Not(a) | Expr::Neg(a) | Expr::IsNull(a) => expr_udf_cost(a, stats),
        _ => 0.0,
    }
}

/// Reorder chains of adjacent filters by increasing rank ("the optimal
/// order of application of expensive predicates over the same relation is
/// in increasing order of rank", \[13\] via §5.1). Applied recursively to
/// the whole plan.
pub fn order_filters_by_rank(plan: LogicalPlan, stats: &Statistics) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            // Collect the maximal chain of filters.
            let mut chain = vec![predicate];
            let mut cur = *input;
            while let LogicalPlan::Filter { input, predicate } = cur {
                chain.push(predicate);
                cur = *input;
            }
            let rebuilt = order_filters_by_rank(cur, stats);
            // Sort by rank; the lowest rank sits deepest (runs first).
            chain.sort_by(|a, b| {
                predicate_rank(a, stats)
                    .partial_cmp(&predicate_rank(b, stats))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut out = rebuilt;
            for p in chain {
                out = LogicalPlan::Filter { input: Box::new(out), predicate: p };
            }
            out
        }
        LogicalPlan::Project { input, exprs, schema } => LogicalPlan::Project {
            input: Box::new(order_filters_by_rank(*input, stats)),
            exprs,
            schema,
        },
        LogicalPlan::Join { left, right, left_key, right_key, handler, schema } => {
            LogicalPlan::Join {
                left: Box::new(order_filters_by_rank(*left, stats)),
                right: Box::new(order_filters_by_rank(*right, stats)),
                left_key,
                right_key,
                handler,
                schema,
            }
        }
        LogicalPlan::Aggregate { input, group_cols, aggs, post, schema } => {
            LogicalPlan::Aggregate {
                input: Box::new(order_filters_by_rank(*input, stats)),
                group_cols,
                aggs,
                post,
                schema,
            }
        }
        LogicalPlan::Fixpoint { name, key_cols, base, step, schema } => LogicalPlan::Fixpoint {
            name,
            key_cols,
            base: Box::new(order_filters_by_rank(*base, stats)),
            step: Box::new(order_filters_by_rank(*step, stats)),
            schema,
        },
        LogicalPlan::Sort { input, keys, fetch, offset } => LogicalPlan::Sort {
            input: Box::new(order_filters_by_rank(*input, stats)),
            keys,
            fetch,
            offset,
        },
        LogicalPlan::Limit { input, fetch, offset } => LogicalPlan::Limit {
            input: Box::new(order_filters_by_rank(*input, stats)),
            fetch,
            offset,
        },
        leaf => leaf,
    }
}

/// Rebuild a plan with `f` applied to every node bottom-up (children
/// first, then the node itself).
fn rewrite_bottom_up(plan: LogicalPlan, f: &impl Fn(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    let rebuilt = match plan {
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(rewrite_bottom_up(*input, f)), predicate }
        }
        LogicalPlan::Project { input, exprs, schema } => {
            LogicalPlan::Project { input: Box::new(rewrite_bottom_up(*input, f)), exprs, schema }
        }
        LogicalPlan::Join { left, right, left_key, right_key, handler, schema } => {
            LogicalPlan::Join {
                left: Box::new(rewrite_bottom_up(*left, f)),
                right: Box::new(rewrite_bottom_up(*right, f)),
                left_key,
                right_key,
                handler,
                schema,
            }
        }
        LogicalPlan::Aggregate { input, group_cols, aggs, post, schema } => {
            LogicalPlan::Aggregate {
                input: Box::new(rewrite_bottom_up(*input, f)),
                group_cols,
                aggs,
                post,
                schema,
            }
        }
        LogicalPlan::Fixpoint { name, key_cols, base, step, schema } => LogicalPlan::Fixpoint {
            name,
            key_cols,
            base: Box::new(rewrite_bottom_up(*base, f)),
            step: Box::new(rewrite_bottom_up(*step, f)),
            schema,
        },
        LogicalPlan::Sort { input, keys, fetch, offset } => {
            LogicalPlan::Sort { input: Box::new(rewrite_bottom_up(*input, f)), keys, fetch, offset }
        }
        LogicalPlan::Limit { input, fetch, offset } => {
            LogicalPlan::Limit { input: Box::new(rewrite_bottom_up(*input, f)), fetch, offset }
        }
        leaf => leaf,
    };
    f(rebuilt)
}

/// Fuse `Limit` directly above a plain `Sort` into a top-k: the sort
/// carries the fetch/offset, so execution keeps at most `fetch + offset`
/// rows per worker instead of a full sorted materialization.
pub fn fuse_limit_into_sort(plan: LogicalPlan) -> LogicalPlan {
    rewrite_bottom_up(plan, &|p| match p {
        LogicalPlan::Limit { input, fetch, offset } => match *input {
            LogicalPlan::Sort { input: si, keys, fetch: None, offset: 0 } => {
                LogicalPlan::Sort { input: si, keys, fetch: Some(fetch), offset }
            }
            other => LogicalPlan::Limit { input: Box::new(other), fetch, offset },
        },
        other => other,
    })
}

/// Remap column references through `map` (index in the aggregate output →
/// index in the aggregate input).
fn remap_cols(e: &Expr, map: &[usize]) -> Expr {
    match e {
        Expr::Col(i) => Expr::Col(map[*i]),
        Expr::Bin(op, a, b) => {
            Expr::Bin(*op, Box::new(remap_cols(a, map)), Box::new(remap_cols(b, map)))
        }
        Expr::Not(a) => Expr::Not(Box::new(remap_cols(a, map))),
        Expr::Neg(a) => Expr::Neg(Box::new(remap_cols(a, map))),
        Expr::IsNull(a) => Expr::IsNull(Box::new(remap_cols(a, map))),
        Expr::Udf(n, args) => {
            Expr::Udf(n.clone(), args.iter().map(|a| remap_cols(a, map)).collect())
        }
        Expr::Case(arms, default) => Expr::Case(
            arms.iter().map(|(c, t)| (remap_cols(c, map), remap_cols(t, map))).collect(),
            Box::new(remap_cols(default, map)),
        ),
        other => other.clone(),
    }
}

/// Push a HAVING filter below its aggregate when the predicate references
/// only group-key columns: filtering the groups is then equivalent to
/// filtering the input rows (a group disappears exactly when all its rows
/// do), and the aggregate maintains fewer groups. Skipped for global
/// aggregates (no group keys): they emit a row even for empty input, so
/// the filter must stay above.
pub fn push_having_below_aggregate(plan: LogicalPlan) -> LogicalPlan {
    rewrite_bottom_up(plan, &|p| match p {
        LogicalPlan::Filter { input, predicate } => match *input {
            LogicalPlan::Aggregate { input: agg_in, group_cols, aggs, post: None, schema }
                if !group_cols.is_empty() && {
                    let mut cols = Vec::new();
                    predicate.referenced_columns(&mut cols);
                    cols.iter().all(|c| *c < group_cols.len())
                } =>
            {
                let pushed = remap_cols(&predicate, &group_cols);
                LogicalPlan::Aggregate {
                    input: Box::new(LogicalPlan::Filter { input: agg_in, predicate: pushed }),
                    group_cols,
                    aggs,
                    post: None,
                    schema,
                }
            }
            other => LogicalPlan::Filter { input: Box::new(other), predicate },
        },
        other => other,
    })
}

/// Whether every row of the plan's output is provably distinct: aggregate
/// outputs (without a post projection the row is `key ++ results`, unique
/// per key; a DISTINCT is an aggregate with no calls), optionally seen
/// through row-preserving operators (Filter/Sort/Limit).
fn produces_unique_rows(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Aggregate { post: None, .. } => true,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => produces_unique_rows(input),
        _ => false,
    }
}

/// Drop a DISTINCT (group-by-all-columns with no aggregates) whose input
/// already produces unique rows.
pub fn eliminate_redundant_distinct(plan: LogicalPlan) -> LogicalPlan {
    rewrite_bottom_up(plan, &|p| match p {
        LogicalPlan::Aggregate { input, group_cols, aggs, post, schema } => {
            let is_distinct = aggs.is_empty()
                && post.is_none()
                && group_cols.len() == input.schema().arity()
                && group_cols.iter().enumerate().all(|(i, c)| i == *c);
            if is_distinct && produces_unique_rows(&input) {
                *input
            } else {
                LogicalPlan::Aggregate { input, group_cols, aggs, post, schema }
            }
        }
        other => other,
    })
}

/// Decision record for a pre-aggregation pushdown (§5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreAggPlan {
    /// The final aggregate's registered name.
    pub agg: String,
    /// The partial (pushed-down) aggregate's name.
    pub partial: String,
    /// Whether the pushdown crossed a non-key join and needs `multiply`
    /// compensation by the opposite group's cardinality.
    pub needs_multiply: bool,
}

/// Determine the legal pre-aggregation pushdowns for an aggregate above a
/// join: composable UDAs push through any join (with multiply compensation
/// when the join is not on a key); non-composable UDAs only push under a
/// key–foreign-key join. At most one pre-aggregation per UDA, maximally
/// pushed (the §5.2 heuristic).
pub fn preaggregation_plan(
    aggs: &[AggCall],
    reg: &Registry,
    join_on_key: bool,
) -> Result<Vec<Option<PreAggPlan>>> {
    let mut out = Vec::with_capacity(aggs.len());
    for a in aggs {
        let handler = reg.agg(&a.func)?;
        let plan = match handler.pre_aggregate() {
            Some(partial) if handler.composable() => {
                Some(PreAggPlan { agg: a.func.clone(), partial, needs_multiply: !join_on_key })
            }
            Some(partial) if join_on_key => {
                Some(PreAggPlan { agg: a.func.clone(), partial, needs_multiply: false })
            }
            _ => None,
        };
        out.push(plan);
    }
    Ok(out)
}

/// Estimated network benefit of pushing a pre-aggregation below a rehash:
/// shipped rows shrink from `rows` to ~`groups` (the combiner effect). The
/// optimizer pushes when the benefit is positive.
pub fn preagg_network_benefit(rows: u64, groups: u64, bytes_per_tuple: f64) -> f64 {
    (rows.saturating_sub(groups)) as f64 * bytes_per_tuple
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::UdfProfile;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;
    use rex_rql::logical::plan_text;
    use rex_rql::SchemaCatalog;

    fn catalog() -> SchemaCatalog {
        let mut c = SchemaCatalog::new();
        c.register(
            "t",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int), ("c", DataType::Double)]),
        );
        c
    }

    fn filter_chain(plan: &LogicalPlan) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = plan;
        loop {
            match cur {
                LogicalPlan::Filter { input, predicate } => {
                    out.push(format!("{predicate:?}"));
                    cur = input;
                }
                LogicalPlan::Project { input, .. } => cur = input,
                _ => return out,
            }
        }
    }

    #[test]
    fn expensive_udf_filter_moves_above_cheap_comparison() {
        let reg = Registry::with_builtins();
        let mut stats = Statistics::new();
        stats.set_udf("sqrt", UdfProfile { cost_per_tuple: 500.0, selectivity: 0.99 });
        // Written with the expensive predicate first.
        let p = plan_text("SELECT a FROM t WHERE sqrt(c) > 1 AND b = 3", &catalog(), &reg).unwrap();
        let rewritten = order_filters_by_rank(p, &stats);
        let chain = filter_chain(&rewritten);
        assert_eq!(chain.len(), 2);
        // Outermost (last-applied) filter is the expensive one.
        assert!(chain[0].contains("sqrt"), "expensive predicate should apply last: {chain:?}");
        assert!(!chain[1].contains("sqrt"));
    }

    #[test]
    fn rank_ordering_preserves_results() {
        use rex_core::exec::LocalRuntime;
        use rex_core::tuple;
        use rex_rql::lower::{lower, MemTables};
        let reg = Registry::with_builtins();
        let mut stats = Statistics::new();
        stats.set_udf("sqrt", UdfProfile { cost_per_tuple: 500.0, selectivity: 0.99 });
        let p = plan_text("SELECT a FROM t WHERE sqrt(c) > 1 AND b = 3", &catalog(), &reg).unwrap();
        let rewritten = order_filters_by_rank(p.clone(), &stats);

        let mut m = MemTables::new();
        m.insert(
            "t",
            vec![
                tuple![1i64, 3i64, 4.0f64],
                tuple![2i64, 3i64, 0.25f64],
                tuple![3i64, 9i64, 9.0f64],
            ],
        );
        let run = |lp: &LogicalPlan| {
            let g = lower(lp, &m, &reg).unwrap();
            let (mut r, _) = LocalRuntime::new().run(g).unwrap();
            r.sort();
            r
        };
        assert_eq!(run(&p), run(&rewritten));
        assert_eq!(run(&p), vec![tuple![1i64]]);
    }

    #[test]
    fn composable_uda_pushes_through_any_join() {
        let reg = Registry::with_builtins();
        let aggs =
            vec![AggCall { func: "count".into(), input_cols: vec![], return_type: DataType::Int }];
        let on_key = preaggregation_plan(&aggs, &reg, true).unwrap();
        assert_eq!(
            on_key[0],
            Some(PreAggPlan {
                agg: "count".into(),
                partial: "count".into(),
                needs_multiply: false
            })
        );
        let off_key = preaggregation_plan(&aggs, &reg, false).unwrap();
        assert!(off_key[0].as_ref().unwrap().needs_multiply);
    }

    #[test]
    fn non_composable_uda_needs_key_join() {
        let reg = Registry::with_builtins();
        // MIN keeps a buffered bag and advertises no pre-aggregate: never
        // pushed.
        let aggs = vec![AggCall {
            func: "min".into(),
            input_cols: vec![0],
            return_type: DataType::Double,
        }];
        assert_eq!(preaggregation_plan(&aggs, &reg, true).unwrap()[0], None);
        assert_eq!(preaggregation_plan(&aggs, &reg, false).unwrap()[0], None);
    }

    #[test]
    fn avg_splits_into_partial_and_final() {
        let reg = Registry::with_builtins();
        let aggs = vec![AggCall {
            func: "avg".into(),
            input_cols: vec![1],
            return_type: DataType::Double,
        }];
        let plan = preaggregation_plan(&aggs, &reg, false).unwrap();
        let p = plan[0].as_ref().expect("avg is composable via sum+count");
        assert_eq!(p.partial, "avg_partial");
    }

    #[test]
    fn network_benefit_shrinks_with_group_count() {
        assert!(preagg_network_benefit(1000, 10, 24.0) > preagg_network_benefit(1000, 900, 24.0));
        assert_eq!(preagg_network_benefit(10, 10, 24.0), 0.0);
    }

    #[test]
    fn limit_fuses_into_sort_as_topk() {
        let reg = Registry::with_builtins();
        let p = plan_text("SELECT a FROM t ORDER BY a DESC LIMIT 3 OFFSET 1", &catalog(), &reg)
            .unwrap();
        assert!(matches!(p, LogicalPlan::Limit { .. }));
        let fused = fuse_limit_into_sort(p);
        let LogicalPlan::Sort { fetch: Some(3), offset: 1, keys, .. } = &fused else {
            panic!("expected fused top-k, got {fused:?}");
        };
        assert!(keys[0].desc);
        // A bare LIMIT (no sort beneath) stays a Limit.
        let p = plan_text("SELECT a FROM t LIMIT 3", &catalog(), &reg).unwrap();
        assert!(matches!(fuse_limit_into_sort(p), LogicalPlan::Limit { .. }));
    }

    #[test]
    fn having_on_group_keys_pushes_below_aggregate() {
        let reg = Registry::with_builtins();
        let p = plan_text("SELECT a, count(*) FROM t GROUP BY a HAVING a > 2", &catalog(), &reg)
            .unwrap();
        let pushed = push_having_below_aggregate(p);
        let LogicalPlan::Aggregate { input, .. } = &pushed else {
            panic!("filter should vanish above the aggregate: {pushed:?}");
        };
        let LogicalPlan::Filter { predicate, .. } = input.as_ref() else {
            panic!("filter should appear below: {input:?}");
        };
        // The predicate's column is remapped from output position 0 to
        // the input's group column (a = col 0 here).
        let mut cols = Vec::new();
        predicate.referenced_columns(&mut cols);
        assert_eq!(cols, vec![0]);
    }

    #[test]
    fn having_on_aggregates_stays_above() {
        let reg = Registry::with_builtins();
        let p =
            plan_text("SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2", &catalog(), &reg)
                .unwrap();
        let rewritten = push_having_below_aggregate(p);
        assert!(matches!(rewritten, LogicalPlan::Filter { .. }), "{rewritten:?}");
    }

    #[test]
    fn having_pushdown_preserves_results() {
        use rex_core::exec::LocalRuntime;
        use rex_core::tuple;
        use rex_rql::lower::{lower, MemTables};
        let reg = Registry::with_builtins();
        let p =
            plan_text("SELECT a, sum(c) FROM t GROUP BY a HAVING a > 1", &catalog(), &reg).unwrap();
        let rewritten = push_having_below_aggregate(p.clone());
        let mut m = MemTables::new();
        m.insert(
            "t",
            vec![
                tuple![1i64, 0i64, 1.0f64],
                tuple![2i64, 0i64, 2.0f64],
                tuple![2i64, 0i64, 3.0f64],
                tuple![3i64, 0i64, 4.0f64],
            ],
        );
        let run = |lp: &LogicalPlan| {
            let g = lower(lp, &m, &reg).unwrap();
            let (mut r, _) = LocalRuntime::new().run(g).unwrap();
            r.sort();
            r
        };
        assert_eq!(run(&p), run(&rewritten));
        assert_eq!(run(&p), vec![tuple![2i64, 5.0f64], tuple![3i64, 4.0f64]]);
    }

    #[test]
    fn distinct_over_aggregate_output_is_eliminated() {
        let reg = Registry::with_builtins();
        let p =
            plan_text("SELECT DISTINCT a, count(*) FROM t GROUP BY a", &catalog(), &reg).unwrap();
        let rewritten = eliminate_redundant_distinct(p);
        let LogicalPlan::Aggregate { aggs, .. } = &rewritten else {
            panic!("outer DISTINCT should be gone: {rewritten:?}");
        };
        assert_eq!(aggs.len(), 1, "only the real aggregate remains");
        // DISTINCT over a plain scan is NOT unique input: kept.
        let p = plan_text("SELECT DISTINCT a FROM t", &catalog(), &reg).unwrap();
        let kept = eliminate_redundant_distinct(p);
        let LogicalPlan::Aggregate { aggs, .. } = &kept else { panic!("{kept:?}") };
        assert!(aggs.is_empty());
    }
}
