//! Statistics: cardinalities, selectivities, and UDF cost/selectivity
//! estimates (calibration + hints, §5.1).

use rex_core::expr::{BinOp, Expr};
use std::collections::HashMap;

/// Estimated selectivity of a resolved predicate. Without histograms, REX
/// uses the classic System-R magic numbers; programmer-supplied hints
/// override them per UDF.
pub fn predicate_selectivity(e: &Expr, stats: &Statistics) -> f64 {
    match e {
        Expr::Bin(BinOp::Eq, _, _) => 0.1,
        Expr::Bin(BinOp::Ne, _, _) => 0.9,
        Expr::Bin(BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, _, _) => 1.0 / 3.0,
        Expr::Bin(BinOp::And, a, b) => {
            predicate_selectivity(a, stats) * predicate_selectivity(b, stats)
        }
        Expr::Bin(BinOp::Or, a, b) => {
            let sa = predicate_selectivity(a, stats);
            let sb = predicate_selectivity(b, stats);
            (sa + sb - sa * sb).min(1.0)
        }
        Expr::Not(inner) => 1.0 - predicate_selectivity(inner, stats),
        Expr::Udf(name, _) => stats.udf(name).selectivity,
        _ => 0.5,
    }
}

/// Per-UDF cost profile, populated by calibration queries and runtime
/// monitoring, optionally shaped by programmer hints (§5.1 "Cost
/// calibration and hints").
#[derive(Debug, Clone, Copy)]
pub struct UdfProfile {
    /// Cost units per input tuple.
    pub cost_per_tuple: f64,
    /// Fraction of tuples passing (for predicates) or produced (for
    /// generators, may exceed 1).
    pub selectivity: f64,
}

impl UdfProfile {
    /// The rank of predicate-migration ordering: `cost / (1 −
    /// selectivity)` — "predicates which are inexpensive to compute, or
    /// discard the most tuples, should be applied first" \[13\].
    pub fn rank(&self) -> f64 {
        let denom = (1.0 - self.selectivity).max(1e-9);
        self.cost_per_tuple / denom
    }
}

impl Default for UdfProfile {
    fn default() -> UdfProfile {
        UdfProfile { cost_per_tuple: 5.0, selectivity: 0.5 }
    }
}

/// Catalog statistics consulted by the optimizer.
#[derive(Debug, Clone, Default)]
pub struct Statistics {
    tables: HashMap<String, u64>,
    udfs: HashMap<String, UdfProfile>,
    /// Distinct-key counts for (table, column), used for join estimates.
    distinct: HashMap<(String, usize), u64>,
}

impl Statistics {
    /// Empty statistics (every unknown table estimates 1000 rows).
    pub fn new() -> Statistics {
        Statistics::default()
    }

    /// Record a table's row count.
    pub fn set_table_rows(&mut self, table: impl Into<String>, rows: u64) {
        self.tables.insert(table.into(), rows);
    }

    /// A table's estimated row count.
    pub fn table_rows(&self, table: &str) -> u64 {
        self.tables.get(table).copied().unwrap_or(1000)
    }

    /// Record a column's distinct-value count.
    pub fn set_distinct(&mut self, table: impl Into<String>, col: usize, n: u64) {
        self.distinct.insert((table.into(), col), n);
    }

    /// Distinct values of `(table, col)`; defaults to √rows.
    pub fn distinct(&self, table: &str, col: usize) -> u64 {
        self.distinct
            .get(&(table.to_string(), col))
            .copied()
            .unwrap_or_else(|| (self.table_rows(table) as f64).sqrt().ceil() as u64)
            .max(1)
    }

    /// Record a UDF's calibrated profile (or a programmer hint).
    pub fn set_udf(&mut self, name: impl Into<String>, profile: UdfProfile) {
        self.udfs.insert(name.into(), profile);
    }

    /// A UDF's profile.
    pub fn udf(&self, name: &str) -> UdfProfile {
        self.udfs.get(name).copied().unwrap_or_default()
    }

    /// Estimated join output cardinality: `|L|·|R| / max(d_L, d_R)` over
    /// the join key, the textbook containment estimate; cross joins
    /// multiply.
    pub fn join_cardinality(
        &self,
        left_rows: u64,
        right_rows: u64,
        left_distinct: u64,
        right_distinct: u64,
        has_key: bool,
    ) -> u64 {
        if !has_key {
            return left_rows.saturating_mul(right_rows);
        }
        let d = left_distinct.max(right_distinct).max(1);
        ((left_rows as f64) * (right_rows as f64) / d as f64).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_magic_selectivities() {
        let s = Statistics::new();
        let eq = Expr::col(0).eq(Expr::lit(1i64));
        assert_eq!(predicate_selectivity(&eq, &s), 0.1);
        let gt = Expr::col(0).gt(Expr::lit(1i64));
        assert!((predicate_selectivity(&gt, &s) - 1.0 / 3.0).abs() < 1e-12);
        let and = eq.clone().bin(BinOp::And, gt.clone());
        assert!((predicate_selectivity(&and, &s) - 0.1 / 3.0).abs() < 1e-12);
        let or = eq.bin(BinOp::Or, gt);
        assert!(predicate_selectivity(&or, &s) < 0.44);
    }

    #[test]
    fn udf_selectivity_comes_from_profile() {
        let mut s = Statistics::new();
        s.set_udf("cheap", UdfProfile { cost_per_tuple: 1.0, selectivity: 0.2 });
        let e = Expr::Udf("cheap".into(), vec![]);
        assert_eq!(predicate_selectivity(&e, &s), 0.2);
    }

    #[test]
    fn rank_orders_cheap_selective_first() {
        // Hellerstein–Stonebraker: apply low rank first.
        let cheap_selective = UdfProfile { cost_per_tuple: 1.0, selectivity: 0.1 };
        let pricey_lax = UdfProfile { cost_per_tuple: 50.0, selectivity: 0.9 };
        assert!(cheap_selective.rank() < pricey_lax.rank());
    }

    #[test]
    fn join_cardinality_containment() {
        let s = Statistics::new();
        assert_eq!(s.join_cardinality(100, 200, 10, 20, true), 1000);
        assert_eq!(s.join_cardinality(100, 200, 10, 20, false), 20000);
    }

    #[test]
    fn unknown_table_defaults() {
        let s = Statistics::new();
        assert_eq!(s.table_rows("mystery"), 1000);
        assert!(s.distinct("mystery", 0) >= 31);
    }
}
