//! Costing of logical plans, including recursive queries (§5.3).
//!
//! Cardinalities flow bottom-up; each operator contributes resource work
//! derived from [`UnitCosts`]; the plan's runtime is the pipelined
//! (binding-resource) runtime of the total vector, derated to the slowest
//! calibrated node. Recursive queries are costed by *simulated iteration*:
//! "we take the estimated output of the recursive case in the current
//! iteration, treat this as an input into the next iteration, optimize the
//! next iteration, and repeat", capping every iteration's input at the
//! previous stage's to avoid divergence.

use crate::cost::{Calibration, ResourceVector, UnitCosts};
use crate::stats::{predicate_selectivity, Statistics};
use rex_core::error::Result;
use rex_core::expr::Expr;
use rex_rql::logical::LogicalPlan;

/// Maximum simulated iterations when costing a recursive query (§5.3 "or
/// we reach a maximum number of iterations").
pub const MAX_COST_ITERATIONS: usize = 20;

/// The outcome of costing a (sub)plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Estimated output cardinality.
    pub rows: u64,
    /// Total resource work.
    pub resources: ResourceVector,
}

impl PlanCost {
    /// The estimated runtime: pipelined runtime of the work vector.
    pub fn runtime(&self) -> f64 {
        self.resources.pipelined_runtime()
    }
}

/// Plan-costing context.
pub struct Coster<'a> {
    /// Statistics source.
    pub stats: &'a Statistics,
    /// Unit costs.
    pub units: UnitCosts,
    /// Node calibration.
    pub calib: &'a Calibration,
}

impl Coster<'_> {
    /// Cost a plan tree.
    pub fn cost(&self, plan: &LogicalPlan) -> Result<PlanCost> {
        let c = self.cost_inner(plan, 0)?;
        Ok(PlanCost { rows: c.rows, resources: self.calib.derate(c.resources) })
    }

    fn udf_cost(&self, e: &Expr) -> f64 {
        match e {
            Expr::Udf(name, args) => {
                self.stats.udf(name).cost_per_tuple
                    + args.iter().map(|a| self.udf_cost(a)).sum::<f64>()
            }
            Expr::Bin(_, a, b) => self.udf_cost(a) + self.udf_cost(b),
            Expr::Not(a) | Expr::Neg(a) | Expr::IsNull(a) => self.udf_cost(a),
            Expr::Case(arms, default) => {
                arms.iter().map(|(c, t)| self.udf_cost(c) + self.udf_cost(t)).sum::<f64>()
                    + self.udf_cost(default)
            }
            _ => 0.0,
        }
    }

    fn cost_inner(&self, plan: &LogicalPlan, fixpoint_rows: u64) -> Result<PlanCost> {
        let u = self.units;
        match plan {
            LogicalPlan::Scan { table, .. } => {
                let rows = self.stats.table_rows(table);
                let bytes = rows as f64 * u.bytes_per_tuple;
                Ok(PlanCost {
                    rows,
                    resources: ResourceVector {
                        cpu: rows as f64 * u.cpu_per_tuple,
                        disk: bytes * u.disk_per_byte,
                        net: 0.0,
                    },
                })
            }
            LogicalPlan::FixpointRef { .. } => {
                Ok(PlanCost { rows: fixpoint_rows, resources: ResourceVector::ZERO })
            }
            LogicalPlan::Filter { input, predicate } => {
                let c = self.cost_inner(input, fixpoint_rows)?;
                let sel = predicate_selectivity(predicate, self.stats);
                let per_tuple = u.cpu_per_tuple + self.udf_cost(predicate);
                Ok(PlanCost {
                    rows: ((c.rows as f64) * sel).ceil() as u64,
                    resources: c.resources + ResourceVector::cpu(c.rows as f64 * per_tuple),
                })
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let c = self.cost_inner(input, fixpoint_rows)?;
                let per_tuple =
                    u.cpu_per_tuple + exprs.iter().map(|e| self.udf_cost(e)).sum::<f64>();
                Ok(PlanCost {
                    rows: c.rows,
                    resources: c.resources + ResourceVector::cpu(c.rows as f64 * per_tuple),
                })
            }
            LogicalPlan::Join { left, right, left_key, handler, .. } => {
                let l = self.cost_inner(left, fixpoint_rows)?;
                let r = self.cost_inner(right, fixpoint_rows)?;
                let probes = (l.rows + r.rows) as f64 * (u.cpu_per_tuple + u.hash_cost);
                let handler_cost = handler
                    .as_ref()
                    .map(|h| self.stats.udf(h).cost_per_tuple * (l.rows + r.rows) as f64)
                    .unwrap_or(0.0);
                let rows = if handler.is_some() {
                    // A handler join's output is governed by user code; the
                    // calibrated selectivity of the handler shapes it.
                    let sel =
                        handler.as_ref().map(|h| self.stats.udf(h).selectivity).unwrap_or(1.0);
                    ((l.rows.max(r.rows)) as f64 * sel).ceil() as u64
                } else {
                    let d = (l.rows as f64).sqrt().max((r.rows as f64).sqrt()).max(1.0) as u64;
                    self.stats.join_cardinality(l.rows, r.rows, d, d, !left_key.is_empty())
                };
                // Subplans feed the join concurrently: utilization adds per
                // resource (the §5 parallel combination).
                Ok(PlanCost {
                    rows,
                    resources: crate::cost::parallel(l.resources, r.resources)
                        + ResourceVector::cpu(probes + handler_cost),
                })
            }
            LogicalPlan::Aggregate { input, aggs, .. } => {
                let c = self.cost_inner(input, fixpoint_rows)?;
                let n = self.calib.n_nodes().max(1) as f64;
                // Rehash ships (n-1)/n of the input across the network.
                let shipped = c.rows as f64 * u.bytes_per_tuple * (n - 1.0) / n;
                let agg_cpu = c.rows as f64
                    * (u.cpu_per_tuple
                        + u.hash_cost
                        + aggs.iter().map(|a| self.stats.udf(&a.func).cost_per_tuple).sum::<f64>());
                // Group count ≈ sqrt of input (same default as distinct).
                let rows = (c.rows as f64).sqrt().ceil().max(1.0) as u64;
                Ok(PlanCost {
                    rows,
                    resources: c.resources
                        + ResourceVector::cpu(agg_cpu)
                        + ResourceVector::net(shipped * u.net_per_byte),
                })
            }
            LogicalPlan::Sort { input, keys, fetch, offset } => {
                let c = self.cost_inner(input, fixpoint_rows)?;
                // n·log n comparisons plus per-row key evaluation.
                let n = c.rows as f64;
                let key_cpu: f64 = keys.iter().map(|k| self.udf_cost(&k.expr)).sum();
                let sort_cpu = n * (n.max(2.0).log2() * u.cpu_per_tuple * 0.1 + key_cpu);
                let rows = match fetch {
                    Some(f) => c.rows.saturating_sub(*offset).min(*f),
                    None => c.rows,
                };
                Ok(PlanCost { rows, resources: c.resources + ResourceVector::cpu(sort_cpu) })
            }
            LogicalPlan::Limit { input, fetch, offset } => {
                let c = self.cost_inner(input, fixpoint_rows)?;
                Ok(PlanCost {
                    rows: c.rows.saturating_sub(*offset).min(*fetch),
                    resources: c.resources + ResourceVector::cpu(c.rows as f64 * u.cpu_per_tuple),
                })
            }
            LogicalPlan::Fixpoint { base, step, .. } => {
                let b = self.cost_inner(base, 0)?;
                let mut total = b.resources;
                let mut input = b.rows;
                let mut prev_step_cost = f64::INFINITY;
                let mut iterations = 0usize;
                while input > 0 && iterations < MAX_COST_ITERATIONS {
                    let s = self.cost_inner(step, input)?;
                    // Divergence guards (§5.3): cap the next input at the
                    // current one, and the step cost at the previous
                    // step's.
                    let step_runtime = s.resources.pipelined_runtime().min(prev_step_cost);
                    prev_step_cost = step_runtime;
                    let capped = s.resources.scale(if s.resources.pipelined_runtime() > 0.0 {
                        step_runtime / s.resources.pipelined_runtime()
                    } else {
                        1.0
                    });
                    total = total + capped;
                    let next = s.rows.min(input);
                    // A flat estimate decays geometrically so convergent
                    // recursions are not costed as infinite.
                    input = if next == input { input / 2 } else { next };
                    iterations += 1;
                }
                Ok(PlanCost { rows: b.rows.max(1), resources: total })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::UdfProfile;
    use rex_core::tuple::Schema;
    use rex_core::udf::Registry;
    use rex_core::value::DataType;
    use rex_rql::logical::plan_text;
    use rex_rql::SchemaCatalog;

    fn catalog() -> SchemaCatalog {
        let mut c = SchemaCatalog::new();
        c.register("graph", Schema::of(&[("srcId", DataType::Int), ("destId", DataType::Int)]));
        c.register("seed", Schema::of(&[("id", DataType::Int)]));
        c
    }

    fn coster<'a>(stats: &'a Statistics, calib: &'a Calibration) -> Coster<'a> {
        Coster { stats, units: UnitCosts::default(), calib }
    }

    #[test]
    fn filter_reduces_cardinality() {
        let reg = Registry::with_builtins();
        let mut stats = Statistics::new();
        stats.set_table_rows("graph", 10_000);
        let calib = Calibration::uniform(1);
        let c = coster(&stats, &calib);
        let all = plan_text("SELECT srcId FROM graph", &catalog(), &reg).unwrap();
        let some = plan_text("SELECT srcId FROM graph WHERE destId > 5", &catalog(), &reg).unwrap();
        let ca = c.cost(&all).unwrap();
        let cs = c.cost(&some).unwrap();
        assert_eq!(ca.rows, 10_000);
        assert!(cs.rows < ca.rows);
        assert!(cs.runtime() > ca.runtime(), "the filter itself costs CPU");
    }

    #[test]
    fn join_cost_grows_with_inputs() {
        let reg = Registry::with_builtins();
        let mut c2 = catalog();
        c2.register("pr", Schema::of(&[("srcId", DataType::Int), ("pr", DataType::Double)]));
        let mut stats = Statistics::new();
        stats.set_table_rows("graph", 1_000);
        stats.set_table_rows("pr", 1_000);
        let calib = Calibration::uniform(1);
        let c = coster(&stats, &calib);
        let p =
            plan_text("SELECT graph.destId FROM graph, pr WHERE graph.srcId = pr.srcId", &c2, &reg)
                .unwrap();
        let cost = c.cost(&p).unwrap();
        assert!(cost.rows > 1_000, "join fan-out expected");
        assert!(cost.runtime() > 0.0);
    }

    #[test]
    fn recursive_cost_is_finite_even_for_flat_estimates() {
        let reg = Registry::with_builtins();
        let mut stats = Statistics::new();
        stats.set_table_rows("graph", 5_000);
        stats.set_table_rows("seed", 1);
        let calib = Calibration::uniform(4);
        let c = coster(&stats, &calib);
        let p = plan_text(
            "WITH reach (id) AS (SELECT id FROM seed)
             UNION UNTIL FIXPOINT BY id (
               SELECT graph.destId FROM graph, reach WHERE graph.srcId = reach.id)",
            &catalog(),
            &reg,
        )
        .unwrap();
        let cost = c.cost(&p).unwrap();
        assert!(cost.runtime().is_finite());
        assert!(cost.runtime() > 0.0);
    }

    #[test]
    fn recursion_cost_reflects_iteration_work() {
        // Bigger graphs make each simulated iteration dearer.
        let reg = Registry::with_builtins();
        let calib = Calibration::uniform(2);
        let run = |rows: u64| {
            let mut stats = Statistics::new();
            stats.set_table_rows("graph", rows);
            stats.set_table_rows("seed", 10);
            let c = Coster { stats: &stats, units: UnitCosts::default(), calib: &calib };
            let p = plan_text(
                "WITH reach (id) AS (SELECT id FROM seed)
                 UNION UNTIL FIXPOINT BY id (
                   SELECT graph.destId FROM graph, reach WHERE graph.srcId = reach.id)",
                &catalog(),
                &reg,
            )
            .unwrap();
            c.cost(&p).unwrap().runtime()
        };
        assert!(run(50_000) > run(500));
    }

    #[test]
    fn expensive_udf_raises_filter_cost() {
        let reg = Registry::with_builtins();
        // `sqrt` is registered as a scalar built-in; give it a profile.
        let mut stats = Statistics::new();
        stats.set_table_rows("graph", 10_000);
        stats.set_udf("sqrt", UdfProfile { cost_per_tuple: 100.0, selectivity: 0.5 });
        let calib = Calibration::uniform(1);
        let c = coster(&stats, &calib);
        let cheap =
            plan_text("SELECT srcId FROM graph WHERE destId > 1", &catalog(), &reg).unwrap();
        let pricey =
            plan_text("SELECT srcId FROM graph WHERE sqrt(destId) > 1", &catalog(), &reg).unwrap();
        assert!(c.cost(&pricey).unwrap().runtime() > 2.0 * c.cost(&cheap).unwrap().runtime());
    }

    #[test]
    fn multi_node_aggregation_pays_network() {
        let reg = Registry::with_builtins();
        let mut stats = Statistics::new();
        stats.set_table_rows("graph", 100_000);
        let one = Calibration::uniform(1);
        let eight = Calibration::uniform(8);
        let p = plan_text("SELECT srcId, count(*) FROM graph GROUP BY srcId", &catalog(), &reg)
            .unwrap();
        let c1 =
            Coster { stats: &stats, units: UnitCosts::default(), calib: &one }.cost(&p).unwrap();
        let c8 =
            Coster { stats: &stats, units: UnitCosts::default(), calib: &eight }.cost(&p).unwrap();
        assert_eq!(c1.resources.net, 0.0);
        assert!(c8.resources.net > 0.0);
    }
}
