//! The incremental maintenance plan: a stateful mirror of a logical plan
//! that converts base-table delta batches into view-output deltas.
//!
//! Each stateful operator applies the classic view-maintenance delta rules
//! (Gupta/Mumick), specialized to the `+()` / `-()` count algebra of
//! [`DeltaSet`](crate::delta_set::DeltaSet):
//!
//! * **Scan** — the leaf: emits the batch when it targets this table;
//! * **Filter / Project** — stateless, per-tuple mapping of deltas;
//! * **Join** — materializes both inputs keyed by the join key and computes
//!   `Δ(L ⋈ R) = ΔL ⋈ R_old + L_new ⋈ ΔR` (which expands to the textbook
//!   `ΔL ⋈ R + L ⋈ ΔR + ΔL ⋈ ΔR`, so self-joins — both children delta-ing
//!   in one batch — stay correct);
//! * **Aggregate** — materializes its input grouped by the grouping key and
//!   re-derives *only the dirty groups*, diffing against what each group
//!   last emitted.
//!
//! Shapes the rules don't cover — recursive fixpoints, user join delta
//! handlers, table-valued UDAs — fail [`build`] with a descriptive error;
//! the view layer responds by falling back to full recomputation.

use crate::delta_set::DeltaSet;
use rex_core::delta::Delta;
use rex_core::error::{Result, RexError};
use rex_core::expr::{eval_predicate, Expr};
use rex_core::handlers::AggOutputKind;
use rex_core::tuple::Tuple;
use rex_core::udf::Registry;
use rex_core::value::Value;
use rex_rql::logical::{AggCall, LogicalPlan};
use std::collections::{BTreeMap, BTreeSet};

type Key = Vec<Value>;
/// Join-side state: the input multiset bucketed by join key.
type KeyedState = BTreeMap<Key, DeltaSet>;

/// A node of the maintenance plan. Stateful nodes own the materializations
/// the delta rules need; the tree is primed by replaying each base table's
/// current contents as an insert batch.
#[derive(Debug)]
pub enum MaintNode {
    /// Base-table leaf (table name lowercased).
    Scan {
        /// The scanned table, lowercase.
        table: String,
    },
    /// Stateless selection.
    Filter {
        /// Child node.
        input: Box<MaintNode>,
        /// Row predicate.
        predicate: Expr,
    },
    /// Stateless projection.
    Project {
        /// Child node.
        input: Box<MaintNode>,
        /// Output expressions.
        exprs: Vec<Expr>,
    },
    /// Equi-join (empty keys = cross join) with both sides materialized.
    Join {
        /// Left child.
        left: Box<MaintNode>,
        /// Right child.
        right: Box<MaintNode>,
        /// Left key columns.
        left_key: Vec<usize>,
        /// Right key columns (relative to the right schema).
        right_key: Vec<usize>,
        /// Materialized left input, bucketed by key.
        left_state: KeyedState,
        /// Materialized right input, bucketed by key.
        right_state: KeyedState,
    },
    /// Group-by with dirty-group re-derivation.
    Aggregate {
        /// Child node.
        input: Box<MaintNode>,
        /// Grouping columns (input indices).
        group_cols: Vec<usize>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
        /// Post-aggregation projection over `group cols ++ agg results`.
        post: Option<Vec<Expr>>,
        /// Materialized input rows per group.
        groups: BTreeMap<Key, DeltaSet>,
        /// What each group currently contributes to the output.
        emitted: BTreeMap<Key, DeltaSet>,
    },
}

/// Build a maintenance plan for `plan`, or explain why the plan is not
/// incrementally maintainable (the caller then falls back to full
/// recomputation).
pub fn build(plan: &LogicalPlan, reg: &Registry) -> Result<MaintNode> {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            Ok(MaintNode::Scan { table: table.to_ascii_lowercase() })
        }
        LogicalPlan::FixpointRef { .. } | LogicalPlan::Fixpoint { .. } => Err(RexError::Plan(
            "recursive fixpoint: delta rules do not cover WITH ... UNTIL FIXPOINT".into(),
        )),
        LogicalPlan::Filter { input, predicate } => Ok(MaintNode::Filter {
            input: Box::new(build(input, reg)?),
            predicate: predicate.clone(),
        }),
        LogicalPlan::Project { input, exprs, .. } => {
            Ok(MaintNode::Project { input: Box::new(build(input, reg)?), exprs: exprs.clone() })
        }
        LogicalPlan::Join { left, right, left_key, right_key, handler, .. } => {
            if let Some(h) = handler {
                return Err(RexError::Plan(format!(
                    "user join delta handler {h}: maintenance semantics are handler-defined"
                )));
            }
            Ok(MaintNode::Join {
                left: Box::new(build(left, reg)?),
                right: Box::new(build(right, reg)?),
                left_key: left_key.clone(),
                right_key: right_key.clone(),
                left_state: KeyedState::new(),
                right_state: KeyedState::new(),
            })
        }
        LogicalPlan::Aggregate { input, group_cols, aggs, post, .. } => {
            for a in aggs {
                if reg.agg(&a.func)?.output_kind() == AggOutputKind::TableValued {
                    return Err(RexError::Plan(format!(
                        "table-valued aggregate {}: output shape is handler-defined",
                        a.func
                    )));
                }
            }
            Ok(MaintNode::Aggregate {
                input: Box::new(build(input, reg)?),
                group_cols: group_cols.clone(),
                aggs: aggs.clone(),
                post: post.clone(),
                groups: BTreeMap::new(),
                emitted: BTreeMap::new(),
            })
        }
    }
}

impl MaintNode {
    /// Propagate a batch of changes to `table` through this subtree,
    /// returning the delta of this subtree's output and updating internal
    /// materializations along the way.
    pub fn apply(&mut self, table: &str, batch: &DeltaSet, reg: &Registry) -> Result<DeltaSet> {
        match self {
            MaintNode::Scan { table: t } => {
                Ok(if t == table { batch.clone() } else { DeltaSet::new() })
            }
            MaintNode::Filter { input, predicate } => {
                let din = input.apply(table, batch, reg)?;
                let mut out = DeltaSet::new();
                for (t, n) in din.iter() {
                    if eval_predicate(predicate, t, reg)? {
                        out.add(t.clone(), n);
                    }
                }
                Ok(out)
            }
            MaintNode::Project { input, exprs } => {
                let din = input.apply(table, batch, reg)?;
                let mut out = DeltaSet::new();
                for (t, n) in din.iter() {
                    let mut vals = Vec::with_capacity(exprs.len());
                    for e in exprs.iter() {
                        vals.push(e.eval(t, reg)?);
                    }
                    out.add(Tuple::new(vals), n);
                }
                Ok(out)
            }
            MaintNode::Join { left, right, left_key, right_key, left_state, right_state } => {
                let dl = left.apply(table, batch, reg)?;
                let dr = right.apply(table, batch, reg)?;
                let mut out = DeltaSet::new();
                // ΔL ⋈ R_old
                for (t, m) in dl.iter() {
                    if let Some(bucket) = right_state.get(&t.key(left_key)) {
                        for (u, n) in bucket.iter() {
                            out.add(t.concat(u), m * n);
                        }
                    }
                }
                fold_into(left_state, &dl, left_key);
                // L_new ⋈ ΔR  (= L_old ⋈ ΔR + ΔL ⋈ ΔR)
                for (u, n) in dr.iter() {
                    if let Some(bucket) = left_state.get(&u.key(right_key)) {
                        for (t, m) in bucket.iter() {
                            out.add(t.concat(u), m * n);
                        }
                    }
                }
                fold_into(right_state, &dr, right_key);
                Ok(out)
            }
            MaintNode::Aggregate { input, group_cols, aggs, post, groups, emitted } => {
                let din = input.apply(table, batch, reg)?;
                let mut dirty: BTreeSet<Key> = BTreeSet::new();
                for (t, n) in din.iter() {
                    let k = t.key(group_cols);
                    groups.entry(k.clone()).or_default().add(t.clone(), n);
                    dirty.insert(k);
                }
                let mut out = DeltaSet::new();
                for k in dirty {
                    let new_out = match groups.get(&k) {
                        Some(g) if !g.is_empty() => derive_group(&k, g, aggs, post, reg)?,
                        _ => {
                            groups.remove(&k);
                            DeltaSet::new()
                        }
                    };
                    if let Some(old) = emitted.remove(&k) {
                        out.merge_scaled(&old, -1);
                    }
                    out.merge_scaled(&new_out, 1);
                    if !new_out.is_empty() {
                        emitted.insert(k, new_out);
                    }
                }
                Ok(out)
            }
        }
    }

    /// Approximate bytes held in materializations (diagnostics).
    pub fn state_bytes(&self) -> usize {
        match self {
            MaintNode::Scan { .. } => 0,
            MaintNode::Filter { input, .. } | MaintNode::Project { input, .. } => {
                input.state_bytes()
            }
            MaintNode::Join { left, right, left_state, right_state, .. } => {
                let side = |s: &KeyedState| -> usize {
                    s.values().flat_map(|b| b.iter().map(|(t, _)| t.byte_size())).sum::<usize>()
                };
                left.state_bytes() + right.state_bytes() + side(left_state) + side(right_state)
            }
            MaintNode::Aggregate { input, groups, .. } => {
                input.state_bytes()
                    + groups
                        .values()
                        .flat_map(|g| g.iter().map(|(t, _)| t.byte_size()))
                        .sum::<usize>()
            }
        }
    }
}

/// Fold a delta into one join side's keyed state, pruning empty buckets.
fn fold_into(state: &mut KeyedState, delta: &DeltaSet, key: &[usize]) {
    for (t, n) in delta.iter() {
        let k = t.key(key);
        let bucket = state.entry(k.clone()).or_default();
        bucket.add(t.clone(), n);
        if bucket.is_empty() {
            state.remove(&k);
        }
    }
}

/// Re-derive one group's output rows from its materialized input: run each
/// aggregate handler over the group's rows, compose `key ++ results`, and
/// apply the post-projection — mirroring the engine's group-by flush.
fn derive_group(
    key: &Key,
    group: &DeltaSet,
    aggs: &[AggCall],
    post: &Option<Vec<Expr>>,
    reg: &Registry,
) -> Result<DeltaSet> {
    let mut vals = key.clone();
    for a in aggs {
        let handler = reg.agg(&a.func)?;
        let mut state = handler.init();
        for (t, n) in group.iter() {
            if n < 0 {
                return Err(RexError::Exec(format!(
                    "view maintenance: negative multiplicity for {t} in group {key:?}"
                )));
            }
            let projected = t.project(&a.input_cols);
            for _ in 0..n {
                handler.agg_state(&mut state, &Delta::insert(projected.clone()))?;
            }
        }
        let mut results = handler.agg_result(&state)?;
        vals.push(match results.pop() {
            Some(d) => d.tuple.get(0).clone(),
            None => Value::Null,
        });
    }
    let raw = Tuple::new(vals);
    let row = match post {
        None => raw,
        Some(exprs) => {
            let mut out = Vec::with_capacity(exprs.len());
            for e in exprs {
                out.push(e.eval(&raw, reg)?);
            }
            Tuple::new(out)
        }
    };
    let mut set = DeltaSet::new();
    set.add(row, 1);
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;
    use rex_rql::logical::plan_text;
    use rex_rql::SchemaCatalog;

    fn catalog() -> SchemaCatalog {
        let mut c = SchemaCatalog::new();
        c.register("edges", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]));
        c.register("weights", Schema::of(&[("node", DataType::Int), ("w", DataType::Double)]));
        c
    }

    fn node(sql: &str) -> MaintNode {
        let reg = Registry::with_builtins();
        build(&plan_text(sql, &catalog(), &reg).unwrap(), &reg).unwrap()
    }

    fn inserts(rows: Vec<Tuple>) -> DeltaSet {
        DeltaSet::from_rows(rows)
    }

    #[test]
    fn filter_project_propagate_per_tuple() {
        let reg = Registry::with_builtins();
        let mut n = node("SELECT dst FROM edges WHERE src = 0");
        let out =
            n.apply("edges", &inserts(vec![tuple![0i64, 1i64], tuple![5i64, 6i64]]), &reg).unwrap();
        assert_eq!(out.rows(), vec![tuple![1i64]]);
        // Deleting the matching row retracts its projection.
        let mut del = DeltaSet::new();
        del.add(tuple![0i64, 1i64], -1);
        let out = n.apply("edges", &del, &reg).unwrap();
        assert_eq!(out.to_deltas(), vec![Delta::delete(tuple![1i64])]);
    }

    #[test]
    fn join_maintains_both_sides_incrementally() {
        let reg = Registry::with_builtins();
        let mut n =
            node("SELECT edges.dst, weights.w FROM edges, weights WHERE edges.dst = weights.node");
        let out = n.apply("edges", &inserts(vec![tuple![0i64, 1i64]]), &reg).unwrap();
        assert!(out.is_empty(), "no matching right rows yet");
        let out = n.apply("weights", &inserts(vec![tuple![1i64, 0.5f64]]), &reg).unwrap();
        assert_eq!(out.rows(), vec![tuple![1i64, 0.5f64]]);
        // New left row joins the stored right side.
        let out = n.apply("edges", &inserts(vec![tuple![7i64, 1i64]]), &reg).unwrap();
        assert_eq!(out.rows(), vec![tuple![1i64, 0.5f64]]);
        // Deleting the right row retracts both join results.
        let mut del = DeltaSet::new();
        del.add(tuple![1i64, 0.5f64], -1);
        let out = n.apply("weights", &del, &reg).unwrap();
        assert_eq!(out.rows().len(), 0);
        assert_eq!(out.iter().map(|(_, n)| n).sum::<i64>(), -2);
    }

    #[test]
    fn self_join_handles_same_batch_on_both_sides() {
        let reg = Registry::with_builtins();
        // edges ⋈ edges on dst = src: 2-hop paths.
        let mut n = node("SELECT a.src, b.dst FROM edges a, edges b WHERE a.dst = b.src");
        let out =
            n.apply("edges", &inserts(vec![tuple![0i64, 1i64], tuple![1i64, 2i64]]), &reg).unwrap();
        // Both sides changed in one batch: the ΔL ⋈ ΔR term must fire.
        assert_eq!(out.rows(), vec![tuple![0i64, 2i64]]);
        let out = n.apply("edges", &inserts(vec![tuple![2i64, 3i64]]), &reg).unwrap();
        assert_eq!(out.rows(), vec![tuple![1i64, 3i64]]);
    }

    #[test]
    fn aggregate_rederives_only_dirty_groups() {
        let reg = Registry::with_builtins();
        let mut n = node("SELECT src, count(*), sum(dst) FROM edges GROUP BY src");
        let out = n
            .apply(
                "edges",
                &inserts(vec![tuple![0i64, 1i64], tuple![0i64, 2i64], tuple![9i64, 4i64]]),
                &reg,
            )
            .unwrap();
        assert_eq!(out.rows(), vec![tuple![0i64, 2i64, 3.0f64], tuple![9i64, 1i64, 4.0f64]]);
        // Delete the only row of group 9: its output row disappears.
        let mut del = DeltaSet::new();
        del.add(tuple![9i64, 4i64], -1);
        let out = n.apply("edges", &del, &reg).unwrap();
        assert_eq!(out.to_deltas(), vec![Delta::delete(tuple![9i64, 1i64, 4.0f64])]);
        // Group 0 untouched → no deltas for it.
        let out = n.apply("edges", &inserts(vec![tuple![0i64, 3i64]]), &reg).unwrap();
        assert_eq!(out.iter().count(), 2, "old row out, new row in");
    }

    #[test]
    fn unsupported_shapes_name_their_reason() {
        let reg = Registry::with_builtins();
        let rec = plan_text(
            "WITH R (a) AS (SELECT src FROM edges)
             UNION UNTIL FIXPOINT BY a (SELECT edges.dst FROM edges, R WHERE edges.src = R.a)",
            &catalog(),
            &reg,
        )
        .unwrap();
        let err = build(&rec, &reg).unwrap_err();
        assert!(err.to_string().contains("recursive fixpoint"));
    }
}
