//! The incremental maintenance plan: a stateful mirror of a logical plan
//! that converts base-table delta batches into view-output deltas.
//!
//! Each stateful operator applies the classic view-maintenance delta rules
//! (Gupta/Mumick), specialized to the `+()` / `-()` count algebra of
//! [`DeltaSet`]:
//!
//! * **Scan** — the leaf: emits the batch when it targets this table;
//! * **Filter / Project** — stateless, per-tuple mapping of deltas;
//! * **Join** — materializes both inputs keyed by the join key and computes
//!   `Δ(L ⋈ R) = ΔL ⋈ R_old + L_new ⋈ ΔR` (which expands to the textbook
//!   `ΔL ⋈ R + L ⋈ ΔR + ΔL ⋈ ΔR`, so self-joins — both children delta-ing
//!   in one batch — stay correct);
//! * **Aggregate** — maintains per-group state chosen at build time (see
//!   [`AggStrategy`]): *decomposable* built-ins (`sum`/`count`/`avg`/
//!   `min`/`max`) keep constant-size running state updated in O(1) — or
//!   O(log n) for the min/max multiset — per delta tuple; anything else
//!   falls back to materializing the group's input rows and re-deriving
//!   *only the dirty groups* through the registered handlers.
//!
//! Two RQL clauses ride on these rules for free: `SELECT DISTINCT` plans
//! as a group-by over every output column with *no* aggregate calls — a
//! counted projection whose only state is each row's multiplicity (the
//! row retracts when its count reaches zero) — and `HAVING` plans as a
//! stateless filter *above* the aggregate, post-filtering maintained
//! group state. Both therefore maintain incrementally, never by
//! recompute fallback.
//!
//! All keyed state (join sides, groups, the emitted-row cache) lives in
//! hash maps keyed by the deterministic in-tree
//! [`FxHasher`](rex_core::hash::FxHasher): probes are O(1), and because the
//! hasher is unseeded, every run traverses in the same order. Outputs are
//! only observable through [`DeltaSet`] emission boundaries, which sort.
//!
//! Shapes the rules don't cover — recursive fixpoints, user join delta
//! handlers, table-valued UDAs — fail [`build`] with a descriptive error;
//! the view layer responds by falling back to full recomputation.

use crate::delta_set::DeltaSet;
use rex_core::delta::Delta;
use rex_core::error::{Result, RexError};
use rex_core::expr::{eval_predicate, Expr};
use rex_core::handlers::AggOutputKind;
use rex_core::hash::{FxHashMap, KeyedTable};
use rex_core::tuple::Tuple;
use rex_core::udf::Registry;
use rex_core::value::Value;
use rex_rql::logical::{AggCall, LogicalPlan};
use std::collections::BTreeMap;

type Key = Vec<Value>;
/// Join-side state: the input multiset bucketed by join key. A
/// [`KeyedTable`] so per-row probes borrow the key columns in place.
type KeyedState = KeyedTable<DeltaSet>;

/// The per-aggregate specialization chosen at [`build`] time for the
/// decomposable built-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggSpec {
    /// Running `Σ value·count` — O(1) per delta tuple.
    Sum,
    /// Running row count — O(1) per delta tuple.
    Count,
    /// Running `(Σ, count)` pair, divided at emission — O(1) per delta.
    Avg,
    /// Count-annotated ordered multiset of values; inserts and deletes —
    /// including deleting the current minimum — are O(log n), and the new
    /// extreme is read off the multiset without replaying the group.
    Min,
    /// Symmetric to [`AggSpec::Min`].
    Max,
}

impl AggSpec {
    fn describe(&self) -> &'static str {
        match self {
            AggSpec::Sum => "O(1) running sum",
            AggSpec::Count => "O(1) running count",
            AggSpec::Avg => "O(1) running sum+count",
            AggSpec::Min | AggSpec::Max => "O(log n) ordered multiset",
        }
    }
}

/// How a [`MaintNode::Aggregate`] maintains its groups, fixed at build
/// time for the whole node: either *every* aggregate call is a
/// decomposable built-in (constant-size scalar state per group, no input
/// rows retained), or the node keeps each group's input multiset and
/// re-derives dirty groups through the handlers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggStrategy {
    /// One [`AggSpec`] per aggregate call; group state is scalars.
    Specialized(Vec<AggSpec>),
    /// Dirty-group re-derivation over materialized input rows, with the
    /// reason specialization was not possible.
    Replay {
        /// Which aggregate forced the fallback, and why.
        reason: String,
    },
}

impl AggStrategy {
    /// Render the strategy for EXPLAIN output, naming each aggregate.
    pub fn describe(&self, aggs: &[AggCall]) -> String {
        match self {
            // A group-by with no aggregate calls is DISTINCT: the group's
            // net count is the only state (a counted projection).
            AggStrategy::Specialized(specs) if specs.is_empty() => {
                "distinct[counted projection, O(1) per delta]".to_string()
            }
            AggStrategy::Specialized(specs) => {
                let parts: Vec<String> = aggs
                    .iter()
                    .zip(specs)
                    .map(|(a, s)| format!("{}: {}", a.func, s.describe()))
                    .collect();
                format!("group-by[{}]", parts.join(", "))
            }
            AggStrategy::Replay { reason } => {
                format!("group-by[dirty-group replay: {reason}]")
            }
        }
    }
}

/// Constant-size running state for one specialized aggregate call.
#[derive(Debug, Clone)]
pub enum AggAccum {
    /// Shared by `sum` and `avg`.
    SumCount {
        /// Running Σ value·count.
        sum: f64,
        /// Net row count behind the sum.
        count: i64,
    },
    /// `count(*)` / `count(col)`.
    Count(i64),
    /// `min`/`max`: value → multiplicity, ordered so either extreme is the
    /// first/last key.
    Extremes(BTreeMap<Value, i64>),
}

impl AggAccum {
    fn init(spec: &AggSpec) -> AggAccum {
        match spec {
            AggSpec::Sum | AggSpec::Avg => AggAccum::SumCount { sum: 0.0, count: 0 },
            AggSpec::Count => AggAccum::Count(0),
            AggSpec::Min | AggSpec::Max => AggAccum::Extremes(BTreeMap::new()),
        }
    }

    /// Fold one delta tuple (multiplicity `n`, possibly negative) into the
    /// running state.
    fn update(&mut self, call: &AggCall, t: &Tuple, n: i64) -> Result<()> {
        match self {
            AggAccum::SumCount { sum, count } => {
                let v = t.get(call.input_cols[0]);
                let x = v.as_double().ok_or_else(|| {
                    RexError::Type(format!(
                        "aggregate input must be numeric, got {}",
                        v.data_type()
                    ))
                })?;
                *sum += x * n as f64;
                *count += n;
            }
            AggAccum::Count(c) => *c += n,
            AggAccum::Extremes(map) => {
                let v = t.get(call.input_cols[0]);
                let slot = map.entry(v.clone()).or_insert(0);
                *slot += n;
                if *slot == 0 {
                    map.remove(v);
                } else if *slot < 0 {
                    return Err(RexError::Exec(format!(
                        "view maintenance: negative multiplicity for value {v} under {}",
                        call.func
                    )));
                }
            }
        }
        Ok(())
    }

    /// The aggregate's current result, mirroring the built-in handlers'
    /// semantics for a non-empty group.
    fn result(&self, spec: &AggSpec) -> Value {
        match (self, spec) {
            (AggAccum::SumCount { sum, .. }, AggSpec::Sum) => Value::Double(*sum),
            (AggAccum::SumCount { sum, count }, _) => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Double(*sum / *count as f64)
                }
            }
            (AggAccum::Count(c), _) => Value::Int(*c),
            (AggAccum::Extremes(map), AggSpec::Min) => {
                map.keys().next().cloned().unwrap_or(Value::Null)
            }
            (AggAccum::Extremes(map), _) => map.keys().next_back().cloned().unwrap_or(Value::Null),
        }
    }

    /// Approximate bytes held (diagnostics).
    fn byte_size(&self) -> usize {
        match self {
            AggAccum::SumCount { .. } => 16,
            AggAccum::Count(_) => 8,
            AggAccum::Extremes(map) => map.keys().map(|v| v.byte_size() + 8).sum::<usize>(),
        }
    }
}

/// Per-group maintenance state.
#[derive(Debug, Clone)]
pub enum GroupState {
    /// Specialized: the group's net row count plus one accumulator per
    /// aggregate call. No input rows are retained.
    Scalars {
        /// Net multiplicity of the group's input rows.
        total: i64,
        /// One accumulator per aggregate call.
        accums: Vec<AggAccum>,
    },
    /// Fallback: the group's input multiset, replayed on change.
    Rows(DeltaSet),
}

/// A group's state plus its intra-batch dirty flag. The flag lets the
/// batch loop collect each dirty group's owned key exactly once — per
/// dirty *group*, not per delta row — keeping the per-row path
/// allocation-free.
#[derive(Debug, Clone)]
pub struct GroupSlot {
    /// The group's maintenance state.
    state: GroupState,
    /// Whether the current batch already queued this group for re-emission.
    dirty: bool,
}

/// A node of the maintenance plan. Stateful nodes own the materializations
/// the delta rules need; the tree is primed by replaying each base table's
/// current contents as an insert batch.
///
/// `Clone` copies the full keyed state — that is the point: sharded
/// maintenance ([`crate::sharded`]) clones a shard's tree as its replica
/// snapshot after each round.
#[derive(Debug, Clone)]
pub enum MaintNode {
    /// Base-table leaf (table name lowercased).
    Scan {
        /// The scanned table, lowercase.
        table: String,
    },
    /// Stateless selection.
    Filter {
        /// Child node.
        input: Box<MaintNode>,
        /// Row predicate.
        predicate: Expr,
    },
    /// Stateless projection.
    Project {
        /// Child node.
        input: Box<MaintNode>,
        /// Output expressions.
        exprs: Vec<Expr>,
    },
    /// Equi-join (empty keys = cross join) with both sides materialized.
    Join {
        /// Left child.
        left: Box<MaintNode>,
        /// Right child.
        right: Box<MaintNode>,
        /// Left key columns.
        left_key: Vec<usize>,
        /// Right key columns (relative to the right schema).
        right_key: Vec<usize>,
        /// Materialized left input, bucketed by key.
        left_state: KeyedState,
        /// Materialized right input, bucketed by key.
        right_state: KeyedState,
    },
    /// Group-by with per-strategy group state (see [`AggStrategy`]).
    Aggregate {
        /// Child node.
        input: Box<MaintNode>,
        /// Grouping columns (input indices).
        group_cols: Vec<usize>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
        /// Post-aggregation projection over `group cols ++ agg results`.
        post: Option<Vec<Expr>>,
        /// How groups are maintained, fixed at build time.
        strategy: AggStrategy,
        /// Per-group state, probed by borrowed grouping columns.
        groups: KeyedTable<GroupSlot>,
        /// What each group currently contributes to the output (every
        /// group emits exactly one row).
        emitted: FxHashMap<Key, Tuple>,
        /// Dirty groups re-derived from retained rows (replay strategy
        /// only — a specialized node never replays).
        replays: u64,
    },
}

/// Classify one aggregate call: a decomposable built-in gets an
/// [`AggSpec`]; anything else names why the node must replay.
fn classify(call: &AggCall, reg: &Registry) -> Result<std::result::Result<AggSpec, String>> {
    let h = reg.agg(&call.func)?;
    if !h.is_builtin() {
        return Ok(Err(format!("user aggregate {} has handler-defined state", call.func)));
    }
    Ok(match h.name() {
        "sum" => Ok(AggSpec::Sum),
        "count" => Ok(AggSpec::Count),
        "avg" => Ok(AggSpec::Avg),
        "min" => Ok(AggSpec::Min),
        "max" => Ok(AggSpec::Max),
        other => Err(format!("aggregate {other} has no O(1) delta rule")),
    })
}

/// Build a maintenance plan for `plan`, or explain why the plan is not
/// incrementally maintainable (the caller then falls back to full
/// recomputation).
pub fn build(plan: &LogicalPlan, reg: &Registry) -> Result<MaintNode> {
    build_with(plan, reg, true)
}

/// [`build`], with aggregate specialization forced off when `specialize`
/// is false — every group-by node keeps input rows and replays dirty
/// groups. This is the PR-2-era behaviour; it exists so tests and
/// benchmarks can compare the O(1) path against the replay oracle on the
/// same plan.
pub fn build_with(plan: &LogicalPlan, reg: &Registry, specialize: bool) -> Result<MaintNode> {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            Ok(MaintNode::Scan { table: table.to_ascii_lowercase() })
        }
        LogicalPlan::FixpointRef { .. } | LogicalPlan::Fixpoint { .. } => Err(RexError::Plan(
            "recursive fixpoint: delta rules do not cover WITH ... UNTIL FIXPOINT".into(),
        )),
        // The session rejects ORDER BY/LIMIT view definitions outright
        // (a materialized view is an unordered relation); this arm keeps
        // `build` total for callers that probe arbitrary plans.
        LogicalPlan::Sort { .. } | LogicalPlan::Limit { .. } => Err(RexError::Plan(
            "ORDER BY/LIMIT: a materialized view is an unordered relation; order at query time"
                .into(),
        )),
        LogicalPlan::Filter { input, predicate } => Ok(MaintNode::Filter {
            input: Box::new(build_with(input, reg, specialize)?),
            predicate: predicate.clone(),
        }),
        LogicalPlan::Project { input, exprs, .. } => Ok(MaintNode::Project {
            input: Box::new(build_with(input, reg, specialize)?),
            exprs: exprs.clone(),
        }),
        LogicalPlan::Join { left, right, left_key, right_key, handler, .. } => {
            if let Some(h) = handler {
                return Err(RexError::Plan(format!(
                    "user join delta handler {h}: maintenance semantics are handler-defined"
                )));
            }
            Ok(MaintNode::Join {
                left: Box::new(build_with(left, reg, specialize)?),
                right: Box::new(build_with(right, reg, specialize)?),
                left_key: left_key.clone(),
                right_key: right_key.clone(),
                left_state: KeyedState::default(),
                right_state: KeyedState::default(),
            })
        }
        LogicalPlan::Aggregate { input, group_cols, aggs, post, .. } => {
            for a in aggs {
                if reg.agg(&a.func)?.output_kind() == AggOutputKind::TableValued {
                    return Err(RexError::Plan(format!(
                        "table-valued aggregate {}: output shape is handler-defined",
                        a.func
                    )));
                }
            }
            let mut specs = Vec::with_capacity(aggs.len());
            let mut strategy = if specialize {
                None
            } else {
                Some(AggStrategy::Replay { reason: "specialization disabled".into() })
            };
            if strategy.is_none() {
                for a in aggs {
                    match classify(a, reg)? {
                        Ok(spec) => specs.push(spec),
                        Err(reason) => {
                            strategy = Some(AggStrategy::Replay { reason });
                            break;
                        }
                    }
                }
            }
            Ok(MaintNode::Aggregate {
                input: Box::new(build_with(input, reg, specialize)?),
                group_cols: group_cols.clone(),
                aggs: aggs.clone(),
                post: post.clone(),
                strategy: strategy.unwrap_or(AggStrategy::Specialized(specs)),
                groups: KeyedTable::new(),
                emitted: FxHashMap::default(),
                replays: 0,
            })
        }
    }
}

impl MaintNode {
    /// Propagate a batch of changes to `table` through this subtree,
    /// returning the delta of this subtree's output and updating internal
    /// materializations along the way.
    pub fn apply(&mut self, table: &str, batch: &DeltaSet, reg: &Registry) -> Result<DeltaSet> {
        match self {
            MaintNode::Scan { table: t } => {
                Ok(if t == table { batch.clone() } else { DeltaSet::new() })
            }
            MaintNode::Filter { input, predicate } => {
                let din = input.apply(table, batch, reg)?;
                let mut out = DeltaSet::new();
                for (t, n) in din.iter() {
                    if eval_predicate(predicate, t, reg)? {
                        out.add(t.clone(), n);
                    }
                }
                Ok(out)
            }
            MaintNode::Project { input, exprs } => {
                let din = input.apply(table, batch, reg)?;
                let mut out = DeltaSet::new();
                for (t, n) in din.iter() {
                    let mut vals = Vec::with_capacity(exprs.len());
                    for e in exprs.iter() {
                        vals.push(e.eval(t, reg)?);
                    }
                    out.add(Tuple::new(vals), n);
                }
                Ok(out)
            }
            MaintNode::Join { left, right, left_key, right_key, left_state, right_state } => {
                let dl = left.apply(table, batch, reg)?;
                let dr = right.apply(table, batch, reg)?;
                let mut out = DeltaSet::new();
                // ΔL ⋈ R_old — probe the opposite side with the key
                // columns in place, no owned key per row.
                for (t, m) in dl.iter() {
                    if let Some(bucket) = right_state.probe(t, left_key) {
                        for (u, n) in bucket.iter() {
                            out.add(t.concat(u), m * n);
                        }
                    }
                }
                fold_into(left_state, &dl, left_key);
                // L_new ⋈ ΔR  (= L_old ⋈ ΔR + ΔL ⋈ ΔR)
                for (u, n) in dr.iter() {
                    if let Some(bucket) = left_state.probe(u, right_key) {
                        for (t, m) in bucket.iter() {
                            out.add(t.concat(u), m * n);
                        }
                    }
                }
                fold_into(right_state, &dr, right_key);
                Ok(out)
            }
            MaintNode::Aggregate {
                input,
                group_cols,
                aggs,
                post,
                strategy,
                groups,
                emitted,
                replays,
            } => {
                let din = input.apply(table, batch, reg)?;
                // One owned key per *dirty group* per batch; the per-row
                // group lookup borrows the grouping columns in place.
                let mut dirty: Vec<Key> = Vec::new();
                for (t, n) in din.iter() {
                    let slot = groups.probe_or_insert_with(t, group_cols, || GroupSlot {
                        state: match strategy {
                            AggStrategy::Specialized(specs) => GroupState::Scalars {
                                total: 0,
                                accums: specs.iter().map(AggAccum::init).collect(),
                            },
                            AggStrategy::Replay { .. } => GroupState::Rows(DeltaSet::new()),
                        },
                        dirty: false,
                    });
                    match &mut slot.state {
                        GroupState::Scalars { total, accums } => {
                            *total += n;
                            for (acc, call) in accums.iter_mut().zip(aggs.iter()) {
                                acc.update(call, t, n)?;
                            }
                        }
                        GroupState::Rows(rows) => rows.add(t.clone(), n),
                    }
                    if !slot.dirty {
                        slot.dirty = true;
                        dirty.push(t.key(group_cols));
                    }
                }
                let mut out = DeltaSet::new();
                for k in dirty {
                    if let Some(slot) = groups.get_mut(&k) {
                        slot.dirty = false;
                    }
                    let new_row = match groups.get(&k).map(|s| &s.state) {
                        Some(GroupState::Scalars { total, accums }) => {
                            if *total < 0 {
                                return Err(RexError::Exec(format!(
                                    "view maintenance: negative row count in group {k:?}"
                                )));
                            } else if *total == 0 {
                                None
                            } else {
                                let specs = match strategy {
                                    AggStrategy::Specialized(s) => s,
                                    AggStrategy::Replay { .. } => unreachable!("scalar group"),
                                };
                                Some(compose_row(&k, specs, accums, post, reg)?)
                            }
                        }
                        Some(GroupState::Rows(g)) if !g.is_empty() => {
                            *replays += 1;
                            Some(derive_group(&k, g, aggs, post, reg)?)
                        }
                        _ => None,
                    };
                    if new_row.is_none() {
                        groups.remove(&k);
                    }
                    let old_row = match &new_row {
                        Some(row) => emitted.insert(k, row.clone()),
                        None => emitted.remove(&k),
                    };
                    // Equal old/new rows cancel inside the DeltaSet, so an
                    // untouched output emits nothing.
                    if let Some(o) = old_row {
                        out.add(o, -1);
                    }
                    if let Some(r) = new_row {
                        out.add(r, 1);
                    }
                }
                Ok(out)
            }
        }
    }

    /// Approximate bytes held in materializations (diagnostics). Counts
    /// join-side and group state — for specialized groups the constant
    /// accumulator footprint, for replay groups the retained input rows.
    pub fn state_bytes(&self) -> usize {
        match self {
            MaintNode::Scan { .. } => 0,
            MaintNode::Filter { input, .. } | MaintNode::Project { input, .. } => {
                input.state_bytes()
            }
            MaintNode::Join { left, right, left_state, right_state, .. } => {
                let side = |s: &KeyedState| -> usize {
                    s.values().flat_map(|b| b.iter().map(|(t, _)| t.byte_size())).sum::<usize>()
                };
                left.state_bytes() + right.state_bytes() + side(left_state) + side(right_state)
            }
            MaintNode::Aggregate { input, groups, .. } => {
                input.state_bytes()
                    + groups
                        .values()
                        .map(|g| match &g.state {
                            GroupState::Scalars { accums, .. } => {
                                8 + accums.iter().map(AggAccum::byte_size).sum::<usize>()
                            }
                            GroupState::Rows(rows) => {
                                rows.iter().map(|(t, _)| t.byte_size()).sum::<usize>()
                            }
                        })
                        .sum::<usize>()
            }
        }
    }

    /// Total dirty groups re-derived from retained rows across every
    /// replay-strategy group-by node in this subtree. Zero on a fully
    /// specialized plan — the per-view metrics surface this so a
    /// supposedly-O(1) view that silently fell back to replay shows up.
    pub fn replayed_groups(&self) -> u64 {
        match self {
            MaintNode::Scan { .. } => 0,
            MaintNode::Filter { input, .. } | MaintNode::Project { input, .. } => {
                input.replayed_groups()
            }
            MaintNode::Join { left, right, .. } => left.replayed_groups() + right.replayed_groups(),
            MaintNode::Aggregate { input, replays, .. } => input.replayed_groups() + replays,
        }
    }

    /// One line per group-by node describing the chosen aggregate
    /// strategy, leaves-first (EXPLAIN and docs surface these).
    pub fn agg_strategies(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_agg_strategies(&mut out);
        out
    }

    fn collect_agg_strategies(&self, out: &mut Vec<String>) {
        match self {
            MaintNode::Scan { .. } => {}
            MaintNode::Filter { input, .. } | MaintNode::Project { input, .. } => {
                input.collect_agg_strategies(out)
            }
            MaintNode::Join { left, right, .. } => {
                left.collect_agg_strategies(out);
                right.collect_agg_strategies(out);
            }
            MaintNode::Aggregate { input, aggs, strategy, .. } => {
                input.collect_agg_strategies(out);
                out.push(strategy.describe(aggs));
            }
        }
    }
}

/// Fold a delta into one join side's keyed state, pruning empty buckets.
/// The bucket lookup borrows the key columns; an owned key is allocated
/// only when a join key is first seen.
fn fold_into(state: &mut KeyedState, delta: &DeltaSet, key: &[usize]) {
    for (t, n) in delta.iter() {
        let bucket = state.probe_or_insert_with(t, key, DeltaSet::new);
        bucket.add(t.clone(), n);
        if bucket.is_empty() {
            state.remove_probe(t, key);
        }
    }
}

/// Compose a specialized group's output row: `key ++ agg results`, then
/// the post-projection — without touching any input rows.
fn compose_row(
    key: &Key,
    specs: &[AggSpec],
    accums: &[AggAccum],
    post: &Option<Vec<Expr>>,
    reg: &Registry,
) -> Result<Tuple> {
    let mut vals = key.clone();
    for (spec, acc) in specs.iter().zip(accums) {
        vals.push(acc.result(spec));
    }
    project_post(Tuple::new(vals), post, reg)
}

/// Re-derive one group's output row from its materialized input: run each
/// aggregate handler over the group's rows, compose `key ++ results`, and
/// apply the post-projection — mirroring the engine's group-by flush.
fn derive_group(
    key: &Key,
    group: &DeltaSet,
    aggs: &[AggCall],
    post: &Option<Vec<Expr>>,
    reg: &Registry,
) -> Result<Tuple> {
    let mut vals = key.clone();
    for a in aggs {
        let handler = reg.agg(&a.func)?;
        let mut state = handler.init();
        for (t, n) in group.iter() {
            if n < 0 {
                return Err(RexError::Exec(format!(
                    "view maintenance: negative multiplicity for {t} in group {key:?}"
                )));
            }
            let projected = t.project(&a.input_cols);
            for _ in 0..n {
                handler.agg_state(&mut state, &Delta::insert(projected.clone()))?;
            }
        }
        let mut results = handler.agg_result(&state)?;
        vals.push(match results.pop() {
            Some(d) => d.tuple.get(0).clone(),
            None => Value::Null,
        });
    }
    project_post(Tuple::new(vals), post, reg)
}

/// Apply the post-aggregation projection, if any.
fn project_post(raw: Tuple, post: &Option<Vec<Expr>>, reg: &Registry) -> Result<Tuple> {
    match post {
        None => Ok(raw),
        Some(exprs) => {
            let mut out = Vec::with_capacity(exprs.len());
            for e in exprs {
                out.push(e.eval(&raw, reg)?);
            }
            Ok(Tuple::new(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;
    use rex_rql::logical::plan_text;
    use rex_rql::SchemaCatalog;

    fn catalog() -> SchemaCatalog {
        let mut c = SchemaCatalog::new();
        c.register("edges", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]));
        c.register("weights", Schema::of(&[("node", DataType::Int), ("w", DataType::Double)]));
        c
    }

    fn node(sql: &str) -> MaintNode {
        let reg = Registry::with_builtins();
        build(&plan_text(sql, &catalog(), &reg).unwrap(), &reg).unwrap()
    }

    fn inserts(rows: Vec<Tuple>) -> DeltaSet {
        DeltaSet::from_rows(rows)
    }

    #[test]
    fn filter_project_propagate_per_tuple() {
        let reg = Registry::with_builtins();
        let mut n = node("SELECT dst FROM edges WHERE src = 0");
        let out =
            n.apply("edges", &inserts(vec![tuple![0i64, 1i64], tuple![5i64, 6i64]]), &reg).unwrap();
        assert_eq!(out.rows(), vec![tuple![1i64]]);
        // Deleting the matching row retracts its projection.
        let mut del = DeltaSet::new();
        del.add(tuple![0i64, 1i64], -1);
        let out = n.apply("edges", &del, &reg).unwrap();
        assert_eq!(out.to_deltas(), vec![Delta::delete(tuple![1i64])]);
    }

    #[test]
    fn join_maintains_both_sides_incrementally() {
        let reg = Registry::with_builtins();
        let mut n =
            node("SELECT edges.dst, weights.w FROM edges, weights WHERE edges.dst = weights.node");
        let out = n.apply("edges", &inserts(vec![tuple![0i64, 1i64]]), &reg).unwrap();
        assert!(out.is_empty(), "no matching right rows yet");
        let out = n.apply("weights", &inserts(vec![tuple![1i64, 0.5f64]]), &reg).unwrap();
        assert_eq!(out.rows(), vec![tuple![1i64, 0.5f64]]);
        // New left row joins the stored right side.
        let out = n.apply("edges", &inserts(vec![tuple![7i64, 1i64]]), &reg).unwrap();
        assert_eq!(out.rows(), vec![tuple![1i64, 0.5f64]]);
        // Deleting the right row retracts both join results.
        let mut del = DeltaSet::new();
        del.add(tuple![1i64, 0.5f64], -1);
        let out = n.apply("weights", &del, &reg).unwrap();
        assert_eq!(out.rows().len(), 0);
        assert_eq!(out.iter().map(|(_, n)| n).sum::<i64>(), -2);
    }

    #[test]
    fn self_join_handles_same_batch_on_both_sides() {
        let reg = Registry::with_builtins();
        // edges ⋈ edges on dst = src: 2-hop paths.
        let mut n = node("SELECT a.src, b.dst FROM edges a, edges b WHERE a.dst = b.src");
        let out =
            n.apply("edges", &inserts(vec![tuple![0i64, 1i64], tuple![1i64, 2i64]]), &reg).unwrap();
        // Both sides changed in one batch: the ΔL ⋈ ΔR term must fire.
        assert_eq!(out.rows(), vec![tuple![0i64, 2i64]]);
        let out = n.apply("edges", &inserts(vec![tuple![2i64, 3i64]]), &reg).unwrap();
        assert_eq!(out.rows(), vec![tuple![1i64, 3i64]]);
    }

    #[test]
    fn aggregate_touches_only_dirty_groups() {
        let reg = Registry::with_builtins();
        let mut n = node("SELECT src, count(*), sum(dst) FROM edges GROUP BY src");
        let out = n
            .apply(
                "edges",
                &inserts(vec![tuple![0i64, 1i64], tuple![0i64, 2i64], tuple![9i64, 4i64]]),
                &reg,
            )
            .unwrap();
        assert_eq!(out.rows(), vec![tuple![0i64, 2i64, 3.0f64], tuple![9i64, 1i64, 4.0f64]]);
        // Delete the only row of group 9: its output row disappears.
        let mut del = DeltaSet::new();
        del.add(tuple![9i64, 4i64], -1);
        let out = n.apply("edges", &del, &reg).unwrap();
        assert_eq!(out.to_deltas(), vec![Delta::delete(tuple![9i64, 1i64, 4.0f64])]);
        // Group 0 untouched → no deltas for it.
        let out = n.apply("edges", &inserts(vec![tuple![0i64, 3i64]]), &reg).unwrap();
        assert_eq!(out.iter().count(), 2, "old row out, new row in");
    }

    #[test]
    fn decomposable_aggregates_are_specialized() {
        let n = node(
            "SELECT src, count(*), sum(dst), min(dst), max(dst), avg(dst) \
                      FROM edges GROUP BY src",
        );
        let strategies = n.agg_strategies();
        assert_eq!(strategies.len(), 1);
        assert!(strategies[0].contains("count: O(1) running count"), "{strategies:?}");
        assert!(strategies[0].contains("sum: O(1) running sum"), "{strategies:?}");
        assert!(strategies[0].contains("min: O(log n) ordered multiset"), "{strategies:?}");
        assert!(strategies[0].contains("avg: O(1) running sum+count"), "{strategies:?}");
    }

    #[test]
    fn min_survives_deleting_the_current_extreme() {
        let reg = Registry::with_builtins();
        let mut n = node("SELECT src, min(dst), max(dst) FROM edges GROUP BY src");
        n.apply(
            "edges",
            &inserts(vec![tuple![0i64, 3i64], tuple![0i64, 5i64], tuple![0i64, 8i64]]),
            &reg,
        )
        .unwrap();
        // Delete the current minimum: the multiset recovers 5 without a
        // group replay (there are no retained rows to replay).
        let mut del = DeltaSet::new();
        del.add(tuple![0i64, 3i64], -1);
        let out = n.apply("edges", &del, &reg).unwrap();
        assert_eq!(out.rows(), vec![tuple![0i64, 5i64, 8i64]]);
        // Delete the maximum too.
        let mut del = DeltaSet::new();
        del.add(tuple![0i64, 8i64], -1);
        let out = n.apply("edges", &del, &reg).unwrap();
        assert_eq!(out.rows(), vec![tuple![0i64, 5i64, 5i64]]);
    }

    #[test]
    fn replay_fallback_for_non_builtin_aggregates() {
        use rex_core::handlers::{AggHandler, AggState};
        struct LastAgg;
        impl AggHandler for LastAgg {
            fn name(&self) -> &str {
                "last"
            }
            fn init(&self) -> AggState {
                AggState::Value(Value::Null)
            }
            fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
                *state = AggState::Value(d.tuple.get(0).clone());
                Ok(vec![])
            }
            fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
                match state {
                    AggState::Value(v) => Ok(vec![Delta::insert(Tuple::new(vec![v.clone()]))]),
                    _ => Err(RexError::Exec("last: bad state".into())),
                }
            }
        }
        let reg = Registry::with_builtins();
        reg.register_agg("last", std::sync::Arc::new(LastAgg));
        let plan =
            plan_text("SELECT src, last(dst) FROM edges GROUP BY src", &catalog(), &reg).unwrap();
        let n = build(&plan, &reg).unwrap();
        let strategies = n.agg_strategies();
        assert!(strategies[0].contains("dirty-group replay"), "{strategies:?}");
        assert!(strategies[0].contains("last"), "{strategies:?}");
    }

    #[test]
    fn forced_replay_matches_specialized_outputs() {
        let reg = Registry::with_builtins();
        // Scalar aggregates only: their state is constant per group, so
        // the size comparison below is meaningful (a min/max multiset
        // legitimately scales with the group's distinct values).
        let sql = "SELECT src, count(*), sum(dst), avg(dst) FROM edges GROUP BY src";
        let plan = plan_text(sql, &catalog(), &reg).unwrap();
        let mut fast = build(&plan, &reg).unwrap();
        let mut slow = build_with(&plan, &reg, false).unwrap();
        assert!(fast.agg_strategies()[0].contains("O(1)"));
        assert!(slow.agg_strategies()[0].contains("replay"));
        let batches: Vec<DeltaSet> = vec![
            inserts((0..24i64).map(|i| tuple![i % 2, i]).collect()),
            {
                let mut d = DeltaSet::new();
                d.add(tuple![0i64, 0i64], -1);
                d.add(tuple![1i64, 1i64], -1);
                d
            },
            inserts(vec![tuple![0i64, 2i64], tuple![1i64, 7i64]]),
        ];
        for b in &batches {
            let a = fast.apply("edges", b, &reg).unwrap();
            let e = slow.apply("edges", b, &reg).unwrap();
            assert_eq!(a.rows(), e.rows());
        }
        // Specialized state retains no input rows; replay retains them all.
        assert!(fast.state_bytes() < slow.state_bytes());
        // The specialized node never re-derives a group; the replay node
        // re-derived both groups in every batch (3 batches × 2 groups).
        assert_eq!(fast.replayed_groups(), 0);
        assert_eq!(slow.replayed_groups(), 6);
    }

    #[test]
    fn distinct_maintains_as_counted_projection() {
        let reg = Registry::with_builtins();
        let mut n = node("SELECT DISTINCT src FROM edges");
        let strategies = n.agg_strategies();
        assert!(strategies[0].contains("counted projection"), "{strategies:?}");
        // Two rows project to src=0: one output row, counted twice.
        let out =
            n.apply("edges", &inserts(vec![tuple![0i64, 1i64], tuple![0i64, 2i64]]), &reg).unwrap();
        assert_eq!(out.rows(), vec![tuple![0i64]]);
        // Deleting one of them keeps the distinct row (count 2 → 1)…
        let mut del = DeltaSet::new();
        del.add(tuple![0i64, 1i64], -1);
        let out = n.apply("edges", &del, &reg).unwrap();
        assert!(out.is_empty(), "distinct row survives while any source row remains");
        // …and deleting the last retracts it.
        let mut del = DeltaSet::new();
        del.add(tuple![0i64, 2i64], -1);
        let out = n.apply("edges", &del, &reg).unwrap();
        assert_eq!(out.to_deltas(), vec![Delta::delete(tuple![0i64])]);
    }

    #[test]
    fn having_maintains_as_filter_over_group_state() {
        let reg = Registry::with_builtins();
        let mut n = node("SELECT src, count(*) FROM edges GROUP BY src HAVING count(*) > 1");
        assert!(n.agg_strategies()[0].contains("O(1) running count"));
        let out = n.apply("edges", &inserts(vec![tuple![0i64, 1i64]]), &reg).unwrap();
        assert!(out.is_empty(), "count=1 fails the HAVING");
        // Crossing the threshold emits the group…
        let out = n.apply("edges", &inserts(vec![tuple![0i64, 2i64]]), &reg).unwrap();
        assert_eq!(out.rows(), vec![tuple![0i64, 2i64]]);
        // …and dropping back below retracts it.
        let mut del = DeltaSet::new();
        del.add(tuple![0i64, 2i64], -1);
        let out = n.apply("edges", &del, &reg).unwrap();
        assert_eq!(out.to_deltas(), vec![Delta::delete(tuple![0i64, 2i64])]);
    }

    #[test]
    fn expression_aggregate_views_maintain_incrementally() {
        let reg = Registry::with_builtins();
        let mut n = node("SELECT src, sum(dst * dst) FROM edges GROUP BY src");
        assert!(n.agg_strategies()[0].contains("O(1) running sum"));
        let out =
            n.apply("edges", &inserts(vec![tuple![0i64, 2i64], tuple![0i64, 3i64]]), &reg).unwrap();
        assert_eq!(out.rows(), vec![tuple![0i64, 13.0f64]]);
    }

    #[test]
    fn order_by_limit_plans_are_not_maintainable() {
        let reg = Registry::with_builtins();
        let plan =
            plan_text("SELECT src FROM edges ORDER BY src LIMIT 3", &catalog(), &reg).unwrap();
        let err = build(&plan, &reg).unwrap_err();
        assert!(err.to_string().contains("unordered relation"), "{err}");
    }

    #[test]
    fn unsupported_shapes_name_their_reason() {
        let reg = Registry::with_builtins();
        let rec = plan_text(
            "WITH R (a) AS (SELECT src FROM edges)
             UNION UNTIL FIXPOINT BY a (SELECT edges.dst FROM edges, R WHERE edges.src = R.a)",
            &catalog(),
            &reg,
        )
        .unwrap();
        let err = build(&rec, &reg).unwrap_err();
        assert!(err.to_string().contains("recursive fixpoint"));
    }
}
