//! A single materialized view: definition, strategy, and maintained state.

use crate::delta_set::DeltaSet;
use crate::maintain::{build, MaintNode};
use rex_core::error::Result;
use rex_core::exec::LocalRuntime;
use rex_core::tuple::{Schema, Tuple};
use rex_core::udf::Registry;
use rex_rql::logical::LogicalPlan;
use rex_rql::lower::lower;
use rex_rql::provider::CatalogProvider;
use rex_rql::{RqlError, RqlStage};
use rex_storage::catalog::Catalog;
use std::fmt;

/// How a view is kept consistent with its base tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintenanceStrategy {
    /// Delta batches propagate through a maintenance plan; cost scales
    /// with the size of the change, not the size of the data.
    Incremental,
    /// The defining query re-runs on every base-table change. Chosen
    /// automatically when the delta rules do not cover the plan shape.
    FullRecompute {
        /// Why incremental maintenance was not possible.
        reason: String,
    },
}

impl fmt::Display for MaintenanceStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintenanceStrategy::Incremental => f.write_str("incremental delta propagation"),
            MaintenanceStrategy::FullRecompute { reason } => {
                write!(f, "full recompute ({reason})")
            }
        }
    }
}

/// An incrementally maintained materialized view: the resolved defining
/// plan plus whatever state its maintenance strategy needs.
pub struct MaterializedView {
    name: String,
    sql: String,
    plan: LogicalPlan,
    schema: Schema,
    base_tables: Vec<String>,
    strategy: MaintenanceStrategy,
    maint: Option<MaintNode>,
    output: DeltaSet,
}

impl MaterializedView {
    /// Define a view over an already-resolved plan. The maintenance
    /// strategy is chosen here: incremental when the delta rules cover the
    /// plan, full recompute otherwise.
    pub fn define(
        name: impl Into<String>,
        sql: impl Into<String>,
        plan: LogicalPlan,
        reg: &Registry,
    ) -> MaterializedView {
        let (maint, strategy) = match build(&plan, reg) {
            Ok(node) => (Some(node), MaintenanceStrategy::Incremental),
            Err(e) => (None, MaintenanceStrategy::FullRecompute { reason: e.to_string() }),
        };
        MaterializedView {
            name: name.into(),
            sql: sql.into(),
            schema: plan.schema().clone(),
            base_tables: plan.referenced_tables(),
            plan,
            strategy,
            maint,
            output: DeltaSet::new(),
        }
    }

    /// The view's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The definition text the view was created from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The view's output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The resolved defining plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The chosen maintenance strategy.
    pub fn strategy(&self) -> &MaintenanceStrategy {
        &self.strategy
    }

    /// The base relations (lowercased, sorted) the view reads.
    pub fn base_tables(&self) -> &[String] {
        &self.base_tables
    }

    /// Whether the view reads `table` (directly).
    pub fn depends_on(&self, table: &str) -> bool {
        self.base_tables.contains(&table.to_ascii_lowercase())
    }

    /// Current contents, sorted (the bag a scan of the view observes).
    pub fn rows(&self) -> Vec<Tuple> {
        self.output.rows()
    }

    /// Current cardinality.
    pub fn len(&self) -> usize {
        self.output.cardinality()
    }

    /// Whether the view is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes of maintenance state (diagnostics).
    pub fn state_bytes(&self) -> usize {
        self.maint.as_ref().map(MaintNode::state_bytes).unwrap_or(0)
    }

    /// Populate the view from the current store contents. Incremental
    /// views prime by replaying each base table as one insert batch through
    /// the maintenance plan — the same code path later changes take — so
    /// priming exercises exactly the machinery maintenance relies on.
    pub fn prime(&mut self, store: &Catalog, reg: &Registry) -> Result<()> {
        match &mut self.maint {
            Some(node) => {
                for table in self.base_tables.clone() {
                    let batch = DeltaSet::from_rows(store.get(&table)?.rows().iter().cloned());
                    let out = node.apply(&table, &batch, reg)?;
                    self.output.merge_scaled(&out, 1);
                }
                Ok(())
            }
            None => {
                self.output = DeltaSet::from_rows(evaluate(&self.plan, store, reg)?);
                Ok(())
            }
        }
    }

    /// Discard all maintained state and contents and re-populate from the
    /// current store — the consistency repair a session runs when a
    /// maintenance pass fails partway through.
    pub fn rebuild(&mut self, store: &Catalog, reg: &Registry) -> Result<()> {
        self.output = DeltaSet::new();
        if matches!(self.strategy, MaintenanceStrategy::Incremental) {
            self.maint = Some(build(&self.plan, reg)?);
        }
        self.prime(store, reg)
    }

    /// Apply a batch of changes to base relation `table`, returning the
    /// delta of the view's own output (for cascading to views that read
    /// this view). `store` must already reflect the change.
    pub fn on_change(
        &mut self,
        table: &str,
        batch: &DeltaSet,
        store: &Catalog,
        reg: &Registry,
    ) -> Result<DeltaSet> {
        match &mut self.maint {
            Some(node) => {
                let out = node.apply(&table.to_ascii_lowercase(), batch, reg)?;
                self.output.merge_scaled(&out, 1);
                Ok(out)
            }
            None => {
                let fresh = DeltaSet::from_rows(evaluate(&self.plan, store, reg)?);
                let mut diff = fresh.clone();
                diff.merge_scaled(&self.output, -1);
                self.output = fresh;
                Ok(diff)
            }
        }
    }
}

/// Evaluate a plan against the store on the single-node runtime — the
/// recompute fallback (and the oracle incremental maintenance must match).
pub fn evaluate(plan: &LogicalPlan, store: &Catalog, reg: &Registry) -> Result<Vec<Tuple>> {
    let provider = CatalogProvider::new(store.clone());
    let graph = lower(plan, &provider, reg).map_err(|e| RqlError::at(RqlStage::Lower, e))?;
    let rt = LocalRuntime::with_registry(reg.clone());
    let (rows, _report) = rt.run(graph)?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;
    use rex_core::value::DataType;
    use rex_rql::logical::plan_text;
    use rex_rql::SchemaCatalog;
    use rex_storage::table::StoredTable;

    fn setup() -> (Catalog, SchemaCatalog, Registry) {
        let store = Catalog::new();
        let schema = Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]);
        let mut t = StoredTable::new("edges", schema.clone(), vec![0]);
        t.load(vec![tuple![0i64, 1i64], tuple![1i64, 2i64], tuple![0i64, 2i64]]).unwrap();
        store.register(t);
        let mut schemas = SchemaCatalog::new();
        schemas.register("edges", schema);
        (store, schemas, Registry::with_builtins())
    }

    #[test]
    fn incremental_view_primes_and_tracks_changes() {
        let (store, schemas, reg) = setup();
        let sql = "SELECT src, count(*) FROM edges GROUP BY src";
        let plan = plan_text(sql, &schemas, &reg).unwrap();
        let mut v = MaterializedView::define("fanout", sql, plan, &reg);
        assert_eq!(*v.strategy(), MaintenanceStrategy::Incremental);
        assert_eq!(v.base_tables(), &["edges".to_string()]);
        v.prime(&store, &reg).unwrap();
        assert_eq!(v.rows(), vec![tuple![0i64, 2i64], tuple![1i64, 1i64]]);
        // An insert batch shifts only the touched group.
        store.append("edges", vec![tuple![1i64, 3i64]]).unwrap();
        let out = v
            .on_change("edges", &DeltaSet::from_rows(vec![tuple![1i64, 3i64]]), &store, &reg)
            .unwrap();
        assert_eq!(out.iter().count(), 2);
        assert_eq!(v.rows(), vec![tuple![0i64, 2i64], tuple![1i64, 2i64]]);
        assert!(v.state_bytes() > 0);
    }

    #[test]
    fn recursive_view_falls_back_to_recompute() {
        let (store, schemas, reg) = setup();
        let sql = "WITH R (id) AS (SELECT src FROM edges WHERE src = 0)
                   UNION UNTIL FIXPOINT BY id (
                     SELECT edges.dst FROM edges, R WHERE edges.src = R.id)";
        let plan = plan_text(sql, &schemas, &reg).unwrap();
        let mut v = MaterializedView::define("reach", sql, plan, &reg);
        assert!(matches!(v.strategy(), MaintenanceStrategy::FullRecompute { .. }));
        assert!(v.strategy().to_string().contains("recursive fixpoint"));
        v.prime(&store, &reg).unwrap();
        assert_eq!(v.rows(), vec![tuple![0i64], tuple![1i64], tuple![2i64]]);
        // A new edge extends reachability; recompute picks it up and the
        // emitted diff carries exactly the new row.
        store.append("edges", vec![tuple![2i64, 7i64]]).unwrap();
        let out = v
            .on_change("edges", &DeltaSet::from_rows(vec![tuple![2i64, 7i64]]), &store, &reg)
            .unwrap();
        assert_eq!(out.rows(), vec![tuple![7i64]]);
        assert_eq!(v.len(), 4);
    }
}
