//! A single materialized view: definition, strategy, and maintained state.

use crate::delta_set::DeltaSet;
use crate::maintain::{build, MaintNode};
use crate::sharded::{RecoveryStrategy, ShardStats, ShardedMaint};
use rex_core::error::Result;
use rex_core::exec::LocalRuntime;
use rex_core::hash::FxHashMap;
use rex_core::tuple::{Schema, Tuple};
use rex_core::udf::Registry;
use rex_rql::logical::LogicalPlan;
use rex_rql::lower::lower;
use rex_rql::provider::CatalogProvider;
use rex_rql::{RqlError, RqlStage};
use rex_storage::catalog::Catalog;
use std::fmt;
use std::time::Instant;

/// How a view is kept consistent with its base tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintenanceStrategy {
    /// Delta batches propagate through a maintenance plan; cost scales
    /// with the size of the change, not the size of the data.
    Incremental,
    /// The defining query re-runs on every base-table change. Chosen
    /// automatically when the delta rules do not cover the plan shape.
    FullRecompute {
        /// Why incremental maintenance was not possible.
        reason: String,
    },
}

impl fmt::Display for MaintenanceStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintenanceStrategy::Incremental => f.write_str("incremental delta propagation"),
            MaintenanceStrategy::FullRecompute { reason } => {
                write!(f, "full recompute ({reason})")
            }
        }
    }
}

/// An incrementally maintained materialized view: the resolved defining
/// plan plus whatever state its maintenance strategy needs.
pub struct MaterializedView {
    name: String,
    sql: String,
    plan: LogicalPlan,
    schema: Schema,
    base_tables: Vec<String>,
    strategy: MaintenanceStrategy,
    maint: Option<MaintNode>,
    /// Shard-partitioned maintenance state (cluster sessions). When set,
    /// `maint` is `None`: the plan's keyed state lives on the workers.
    sharded: Option<ShardedMaint>,
    /// Why sharding was not possible for an incremental view defined
    /// under a cluster session (`None` when sharded or single-node).
    shard_fallback: Option<String>,
    output: DeltaSet,
    /// Output deltas accumulated since the stored copy was last synced —
    /// what [`ViewCatalog::sync`](crate::catalog::ViewCatalog::sync)
    /// applies so sync cost is proportional to the change.
    pending: DeltaSet,
    /// Sorted expansion of `output`, kept fresh by *merging* each output
    /// delta (O(view + change), no re-sort) — what bare view scans are
    /// served from.
    sorted_cache: Option<Vec<Tuple>>,
    /// Whether the cache was read since the last maintenance batch. A
    /// cache nobody reads between writes is dropped rather than merged,
    /// so write-only streams keep maintenance O(batch) — the next reader
    /// pays one sort to rebuild it.
    cache_hot: bool,
    /// How many times the recompute fallback re-ran the defining query
    /// (diagnostics; incremental views stay at 0).
    recomputes: usize,
    /// Maintenance passes that took the incremental path (one per
    /// [`on_change`](Self::on_change) on a delta-maintained view).
    incremental_passes: u64,
    /// Input delta rows received across all maintenance passes.
    deltas_in: u64,
    /// Output delta rows emitted across all maintenance passes.
    deltas_out: u64,
    /// Wall time spent in maintenance passes, nanoseconds.
    maint_ns: u64,
}

impl MaterializedView {
    /// Define a view over an already-resolved plan. The maintenance
    /// strategy is chosen here: incremental when the delta rules cover the
    /// plan, full recompute otherwise.
    pub fn define(
        name: impl Into<String>,
        sql: impl Into<String>,
        plan: LogicalPlan,
        reg: &Registry,
    ) -> MaterializedView {
        Self::define_partitioned(name, sql, plan, reg, 1, RecoveryStrategy::default())
    }

    /// Define a view whose maintenance state is partitioned across
    /// `partitions` cluster workers (see [`crate::sharded`]). With
    /// `partitions <= 1`, or when the plan is not shardable, maintenance
    /// stays on the session node and the fallback reason is recorded.
    pub fn define_partitioned(
        name: impl Into<String>,
        sql: impl Into<String>,
        plan: LogicalPlan,
        reg: &Registry,
        partitions: usize,
        recovery: RecoveryStrategy,
    ) -> MaterializedView {
        let (mut maint, strategy) = match build(&plan, reg) {
            Ok(node) => (Some(node), MaintenanceStrategy::Incremental),
            Err(e) => (None, MaintenanceStrategy::FullRecompute { reason: e.to_string() }),
        };
        let mut sharded = None;
        let mut shard_fallback = None;
        if partitions > 1 && maint.is_some() {
            match ShardedMaint::build(&plan, reg, partitions, recovery) {
                Ok(Ok(s)) => {
                    sharded = Some(s);
                    maint = None;
                }
                Ok(Err(reason)) => shard_fallback = Some(reason),
                // A build error here would also have failed `build` above;
                // keep the single tree.
                Err(_) => {}
            }
        }
        MaterializedView {
            name: name.into(),
            sql: sql.into(),
            schema: plan.schema().clone(),
            base_tables: plan.referenced_tables(),
            plan,
            strategy,
            maint,
            sharded,
            shard_fallback,
            output: DeltaSet::new(),
            pending: DeltaSet::new(),
            sorted_cache: None,
            cache_hot: false,
            recomputes: 0,
            incremental_passes: 0,
            deltas_in: 0,
            deltas_out: 0,
            maint_ns: 0,
        }
    }

    /// The view's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The definition text the view was created from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The view's output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The resolved defining plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The chosen maintenance strategy.
    pub fn strategy(&self) -> &MaintenanceStrategy {
        &self.strategy
    }

    /// The base relations (lowercased, sorted) the view reads.
    pub fn base_tables(&self) -> &[String] {
        &self.base_tables
    }

    /// Whether the view reads `table` (directly).
    pub fn depends_on(&self, table: &str) -> bool {
        self.base_tables.contains(&table.to_ascii_lowercase())
    }

    /// Current contents, sorted (the bag a scan of the view observes).
    pub fn rows(&self) -> Vec<Tuple> {
        self.output.rows()
    }

    /// Borrowing walk over the current contents in unspecified order —
    /// for callers that only iterate (publishing, accounting) and don't
    /// need the sorted, cloned expansion of [`rows`](Self::rows).
    pub fn iter_rows(&self) -> impl Iterator<Item = &Tuple> {
        self.output.iter_rows()
    }

    /// Current contents, sorted, served from the maintained sorted cache:
    /// the first call after a structural reset sorts once, every later
    /// call costs one clone because
    /// [`on_change`](Self::on_change) *merges* output deltas into the
    /// cache instead of invalidating it. This is what the session's bare
    /// view-scan fast path serves from.
    pub fn rows_cached(&mut self) -> Vec<Tuple> {
        self.cache_hot = true;
        match &self.sorted_cache {
            Some(c) => c.clone(),
            None => {
                let rows = self.output.rows();
                self.sorted_cache = Some(rows.clone());
                rows
            }
        }
    }

    /// Current cardinality.
    pub fn len(&self) -> usize {
        self.output.cardinality()
    }

    /// Whether the view is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes of maintenance state (diagnostics).
    pub fn state_bytes(&self) -> usize {
        self.maint
            .as_ref()
            .map(MaintNode::state_bytes)
            .or_else(|| self.sharded.as_ref().map(ShardedMaint::state_bytes))
            .unwrap_or(0)
    }

    /// Shard count of the maintenance state: 1 on the session node,
    /// the worker count for sharded views.
    pub fn shards(&self) -> usize {
        self.sharded.as_ref().map(ShardedMaint::shards).unwrap_or(1)
    }

    /// Sharded-maintenance counters (zeroes for single-node views).
    pub fn shard_stats(&self) -> ShardStats {
        self.sharded.as_ref().map(|s| *s.stats()).unwrap_or_default()
    }

    /// Why the view stayed on the session node under a cluster session.
    pub fn shard_fallback(&self) -> Option<&str> {
        self.shard_fallback.as_deref()
    }

    /// Kill worker `w`'s shards of this view. The view's published output
    /// is untouched — reads keep serving — but the lost shards' trees must
    /// be recovered (see [`recover`](MaterializedView::recover)) before
    /// the next maintenance round. Returns shards lost (0 single-node).
    pub fn kill_worker(&mut self, w: usize) -> usize {
        self.sharded.as_mut().map(|s| s.kill_worker(w)).unwrap_or(0)
    }

    /// Recover any dead shards now, while `store` still equals the
    /// applied history (a restart rebuild replays it verbatim, so waiting
    /// until the next batch — when the store already includes that batch —
    /// would double-count it). No-op for single-node views.
    pub fn recover(&mut self, store: &Catalog, reg: &Registry) -> Result<()> {
        match &mut self.sharded {
            Some(s) => s.recover(store, reg),
            None => Ok(()),
        }
    }

    /// Set the recovery strategy for subsequent shard recoveries.
    pub fn set_recovery(&mut self, strategy: RecoveryStrategy) {
        if let Some(s) = &mut self.sharded {
            s.set_recovery(strategy);
        }
    }

    /// One line per group-by node of the maintenance plan describing the
    /// chosen aggregate strategy (empty for recompute-fallback views).
    pub fn agg_strategies(&self) -> Vec<String> {
        self.maint
            .as_ref()
            .map(MaintNode::agg_strategies)
            .or_else(|| self.sharded.as_ref().map(ShardedMaint::agg_strategies))
            .unwrap_or_default()
    }

    /// How many times the recompute fallback re-ran the defining query.
    /// Incremental views never recompute, so this stays 0 for them; for
    /// fallback views it counts one per maintenance pass that touched the
    /// view — the dependency-depth ordering in
    /// [`ViewCatalog::on_base_change`](crate::catalog::ViewCatalog::on_base_change)
    /// guarantees exactly one re-run per pass however many of the view's
    /// sources changed.
    pub fn recomputes(&self) -> usize {
        self.recomputes
    }

    /// Maintenance passes that propagated deltas incrementally
    /// (recompute-fallback views stay at 0).
    pub fn incremental_passes(&self) -> u64 {
        self.incremental_passes
    }

    /// Input delta rows received across all maintenance passes.
    pub fn deltas_in(&self) -> u64 {
        self.deltas_in
    }

    /// Output delta rows emitted across all maintenance passes.
    pub fn deltas_out(&self) -> u64 {
        self.deltas_out
    }

    /// Wall time spent in maintenance passes, nanoseconds.
    pub fn maint_ns(&self) -> u64 {
        self.maint_ns
    }

    /// Dirty groups re-derived from retained rows by replay-strategy
    /// group-by nodes (0 for fully specialized or recompute views).
    pub fn replayed_groups(&self) -> u64 {
        self.maint
            .as_ref()
            .map(MaintNode::replayed_groups)
            .or_else(|| self.sharded.as_ref().map(ShardedMaint::replayed_groups))
            .unwrap_or(0)
    }

    /// The output deltas not yet applied to the stored-table copy.
    pub fn pending(&self) -> &DeltaSet {
        &self.pending
    }

    /// Forget the pending deltas (the caller just applied or republished
    /// them).
    pub fn clear_pending(&mut self) {
        self.pending = DeltaSet::new();
    }

    /// Populate the view from the current store contents. Incremental
    /// views prime by replaying each base table as one insert batch through
    /// the maintenance plan — the same code path later changes take — so
    /// priming exercises exactly the machinery maintenance relies on.
    pub fn prime(&mut self, store: &Catalog, reg: &Registry) -> Result<()> {
        if let Some(sharded) = &mut self.sharded {
            for table in self.base_tables.clone() {
                let batch = DeltaSet::from_rows(store.get(&table)?.rows().iter().cloned());
                let out = sharded.apply(&table, &batch, store, reg)?;
                self.output.merge_scaled(&out, 1);
            }
        } else {
            match &mut self.maint {
                Some(node) => {
                    for table in self.base_tables.clone() {
                        let batch = DeltaSet::from_rows(store.get(&table)?.rows().iter().cloned());
                        let out = node.apply(&table, &batch, reg)?;
                        self.output.merge_scaled(&out, 1);
                    }
                }
                None => {
                    self.output = DeltaSet::from_rows(evaluate(&self.plan, store, reg)?);
                }
            }
        }
        // Priming is followed by a full publish of the contents, so no
        // deltas are owed to the stored copy.
        self.pending = DeltaSet::new();
        self.sorted_cache = None;
        self.cache_hot = false;
        Ok(())
    }

    /// Discard all maintained state and contents and re-populate from the
    /// current store — the consistency repair a session runs when a
    /// maintenance pass fails partway through.
    pub fn rebuild(&mut self, store: &Catalog, reg: &Registry) -> Result<()> {
        self.output = DeltaSet::new();
        self.pending = DeltaSet::new();
        if matches!(self.strategy, MaintenanceStrategy::Incremental) {
            if let Some(old) = self.sharded.take() {
                // Preserve the shard layout and strategy; state rebuilds
                // from the store like the single-tree path.
                if let Ok(fresh) =
                    ShardedMaint::build(&self.plan, reg, old.shards(), old.recovery())
                {
                    self.sharded = fresh.ok();
                }
            }
            if self.sharded.is_none() {
                self.maint = Some(build(&self.plan, reg)?);
            }
        }
        self.prime(store, reg)
    }

    /// Apply a batch of changes to base relation `table`, returning the
    /// delta of the view's own output (for cascading to views that read
    /// this view). `store` must already reflect the change.
    pub fn on_change(
        &mut self,
        table: &str,
        batch: &DeltaSet,
        store: &Catalog,
        reg: &Registry,
    ) -> Result<DeltaSet> {
        let start = Instant::now();
        self.deltas_in += delta_rows(batch);
        if let Some(sharded) = &mut self.sharded {
            let out = sharded.apply(&table.to_ascii_lowercase(), batch, store, reg)?;
            self.incremental_passes += 1;
            self.deltas_out += delta_rows(&out);
            self.maint_ns += start.elapsed().as_nanos() as u64;
            self.output.merge_scaled(&out, 1);
            self.pending.merge_scaled(&out, 1);
            if self.cache_hot {
                if let Some(cache) = &mut self.sorted_cache {
                    merge_sorted(cache, &out);
                }
                self.cache_hot = false;
            } else {
                self.sorted_cache = None;
            }
            return Ok(out);
        }
        match &mut self.maint {
            Some(node) => {
                let out = node.apply(&table.to_ascii_lowercase(), batch, reg)?;
                self.incremental_passes += 1;
                self.deltas_out += delta_rows(&out);
                self.maint_ns += start.elapsed().as_nanos() as u64;
                self.output.merge_scaled(&out, 1);
                self.pending.merge_scaled(&out, 1);
                // Merge the delta into the sorted cache only while it is
                // being read between batches; a write-only stream drops
                // the cache instead of paying O(view) merges nobody uses.
                if self.cache_hot {
                    if let Some(cache) = &mut self.sorted_cache {
                        merge_sorted(cache, &out);
                    }
                    self.cache_hot = false;
                } else {
                    self.sorted_cache = None;
                }
                Ok(out)
            }
            None => {
                self.recomputes += 1;
                let fresh = DeltaSet::from_rows(evaluate(&self.plan, store, reg)?);
                let mut diff = fresh.clone();
                diff.merge_scaled(&self.output, -1);
                self.deltas_out += delta_rows(&diff);
                self.maint_ns += start.elapsed().as_nanos() as u64;
                self.output = fresh;
                // Recompute-fallback views republish whole contents on
                // sync; no per-delta ledger (or merge-maintained sorted
                // cache) is kept for them.
                self.sorted_cache = None;
                self.cache_hot = false;
                Ok(diff)
            }
        }
    }
}

/// Total rows a signed delta touches: the sum of absolute multiplicities
/// (an insert and a retraction both count as one row of change).
fn delta_rows(d: &DeltaSet) -> u64 {
    d.iter().map(|(_, n)| n.unsigned_abs()).sum()
}

/// Merge a signed output delta into a sorted row vector in one pass:
/// `O(view + change·log(change))`, no re-sort of the whole bag. Negative
/// multiplicities drop that many copies of the tuple; positive ones are
/// merge-inserted at their sorted position.
fn merge_sorted(cache: &mut Vec<Tuple>, delta: &DeltaSet) {
    if delta.is_empty() {
        return;
    }
    let mut inserts: Vec<(&Tuple, i64)> = Vec::new();
    let mut removes: FxHashMap<&Tuple, i64> = FxHashMap::default();
    let mut net = 0i64;
    for (t, n) in delta.iter() {
        net += n;
        if n > 0 {
            inserts.push((t, n));
        } else {
            removes.insert(t, -n);
        }
    }
    inserts.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let mut out = Vec::with_capacity((cache.len() as i64 + net).max(0) as usize);
    let mut ins = inserts.iter().flat_map(|(t, n)| std::iter::repeat_n(*t, *n as usize));
    let mut next_ins = ins.next();
    for t in cache.drain(..) {
        while let Some(i) = next_ins {
            if *i <= t {
                out.push(i.clone());
                next_ins = ins.next();
            } else {
                break;
            }
        }
        match removes.get_mut(&t) {
            Some(c) if *c > 0 => *c -= 1,
            _ => out.push(t),
        }
    }
    while let Some(i) = next_ins {
        out.push(i.clone());
        next_ins = ins.next();
    }
    *cache = out;
}

/// Evaluate a plan against the store on the single-node runtime — the
/// recompute fallback (and the oracle incremental maintenance must match).
pub fn evaluate(plan: &LogicalPlan, store: &Catalog, reg: &Registry) -> Result<Vec<Tuple>> {
    let provider = CatalogProvider::new(store.clone());
    let graph = lower(plan, &provider, reg).map_err(|e| RqlError::at(RqlStage::Lower, e))?;
    let rt = LocalRuntime::with_registry(reg.clone());
    let (rows, _report) = rt.run(graph)?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;
    use rex_core::value::DataType;
    use rex_rql::logical::plan_text;
    use rex_rql::SchemaCatalog;
    use rex_storage::table::StoredTable;

    fn setup() -> (Catalog, SchemaCatalog, Registry) {
        let store = Catalog::new();
        let schema = Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]);
        let mut t = StoredTable::new("edges", schema.clone(), vec![0]);
        t.load(vec![tuple![0i64, 1i64], tuple![1i64, 2i64], tuple![0i64, 2i64]]).unwrap();
        store.register(t);
        let mut schemas = SchemaCatalog::new();
        schemas.register("edges", schema);
        (store, schemas, Registry::with_builtins())
    }

    #[test]
    fn incremental_view_primes_and_tracks_changes() {
        let (store, schemas, reg) = setup();
        let sql = "SELECT src, count(*) FROM edges GROUP BY src";
        let plan = plan_text(sql, &schemas, &reg).unwrap();
        let mut v = MaterializedView::define("fanout", sql, plan, &reg);
        assert_eq!(*v.strategy(), MaintenanceStrategy::Incremental);
        assert_eq!(v.base_tables(), &["edges".to_string()]);
        v.prime(&store, &reg).unwrap();
        assert_eq!(v.rows(), vec![tuple![0i64, 2i64], tuple![1i64, 1i64]]);
        // An insert batch shifts only the touched group.
        store.append("edges", vec![tuple![1i64, 3i64]]).unwrap();
        let out = v
            .on_change("edges", &DeltaSet::from_rows(vec![tuple![1i64, 3i64]]), &store, &reg)
            .unwrap();
        assert_eq!(out.iter().count(), 2);
        assert_eq!(v.rows(), vec![tuple![0i64, 2i64], tuple![1i64, 2i64]]);
        assert!(v.state_bytes() > 0);
    }

    #[test]
    fn recursive_view_falls_back_to_recompute() {
        let (store, schemas, reg) = setup();
        let sql = "WITH R (id) AS (SELECT src FROM edges WHERE src = 0)
                   UNION UNTIL FIXPOINT BY id (
                     SELECT edges.dst FROM edges, R WHERE edges.src = R.id)";
        let plan = plan_text(sql, &schemas, &reg).unwrap();
        let mut v = MaterializedView::define("reach", sql, plan, &reg);
        assert!(matches!(v.strategy(), MaintenanceStrategy::FullRecompute { .. }));
        assert!(v.strategy().to_string().contains("recursive fixpoint"));
        v.prime(&store, &reg).unwrap();
        assert_eq!(v.rows(), vec![tuple![0i64], tuple![1i64], tuple![2i64]]);
        // A new edge extends reachability; recompute picks it up and the
        // emitted diff carries exactly the new row.
        store.append("edges", vec![tuple![2i64, 7i64]]).unwrap();
        let out = v
            .on_change("edges", &DeltaSet::from_rows(vec![tuple![2i64, 7i64]]), &store, &reg)
            .unwrap();
        assert_eq!(out.rows(), vec![tuple![7i64]]);
        assert_eq!(v.len(), 4);
    }
}
