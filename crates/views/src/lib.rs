//! # rex-views
//!
//! Incrementally maintained materialized views, driven by the same delta
//! machinery (`+()`, `-()`, `→(t')` — Definition 1 of the paper) the REX
//! engine uses for recursive dataflow.
//!
//! `CREATE MATERIALIZED VIEW v AS <query>` resolves the defining query to
//! a [`LogicalPlan`](rex_rql::logical::LogicalPlan) and picks a
//! [`MaintenanceStrategy`]:
//!
//! * **incremental** — a [`MaintNode`](maintain::MaintNode) tree mirrors
//!   the plan; each base-table insert/delete batch becomes a
//!   [`DeltaSet`] and propagates through the select/project/join/group-by
//!   delta rules, touching state proportional to the *change*;
//! * **full recompute** — recursive (`WITH … UNTIL FIXPOINT`) and
//!   handler-defined shapes re-run the defining query, diffing old vs new
//!   output so cascades still see deltas.
//!
//! ## The maintenance hot path
//!
//! Three properties keep per-batch cost proportional to the batch:
//!
//! * **O(1) decomposable aggregate deltas** — group-by state is
//!   specialized at build time ([`maintain::AggStrategy`]): `sum`,
//!   `count`, and `avg` keep running scalars updated in O(1) per delta
//!   tuple (`avg` as a sum+count pair); `min`/`max` keep a
//!   count-annotated ordered multiset, so inserts and deletes — *including
//!   deleting the current extreme* — are O(log n) with the next-best
//!   value read straight off the multiset, never a group replay. Only
//!   when a group-by mixes in a non-decomposable aggregate (a UDA, or a
//!   shape with handler-defined state) does the whole node fall back to
//!   materializing group input rows and re-deriving dirty groups.
//! * **Hashed keyed state** — join sides, group state, the emitted-row
//!   cache, and [`DeltaSet`] counts are hash maps keyed by the
//!   deterministic in-tree [`FxHasher`](rex_core::hash::FxHasher): O(1)
//!   probes, reproducible iteration for a given program, and sorting only
//!   at emission boundaries where output becomes observable.
//! * **Delta-granular sync** — each view retains its output delta since
//!   the last sync; [`ViewCatalog::sync`] applies it to the stored copy
//!   through `Catalog::apply_delta` (insert/remove by signed
//!   multiplicity), so sync costs O(change), not O(view). Recompute
//!   fallbacks keep the full republish.
//!
//! The [`ViewCatalog`] tracks which views read which tables (so dropping
//! a base table can be refused) and cascades deltas through views defined
//! over other views in *dependency-depth order* — every source a view
//! reads is final before the view runs, which also lets a recompute
//! fallback reading several changed sources re-run exactly once per pass.
//! View contents are still published lazily into the session's
//! stored-table catalog — which is how views compose into larger queries
//! unchanged on every engine and how the optimizer sees view
//! cardinalities — while a *bare* `SELECT * FROM v` is served straight
//! from authoritative view state (a merge-maintained sorted cache), with
//! no sync and no engine pass at all.
//!
//! The session facade (`rex::Session`) wires this crate to RQL DDL and to
//! `insert`/`delete`; see the root crate's "Materialized views" docs for
//! the end-to-end story.

pub mod catalog;
pub mod delta_set;
pub mod maintain;
pub mod sharded;
pub mod view;

pub use catalog::{ViewCatalog, ViewMetrics};
pub use delta_set::DeltaSet;
pub use sharded::{RecoveryStrategy, ShardStats, ShardedMaint};
pub use view::{evaluate, MaintenanceStrategy, MaterializedView};
