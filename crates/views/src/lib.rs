//! # rex-views
//!
//! Incrementally maintained materialized views, driven by the same delta
//! machinery (`+()`, `-()`, `→(t')` — Definition 1 of the paper) the REX
//! engine uses for recursive dataflow.
//!
//! `CREATE MATERIALIZED VIEW v AS <query>` resolves the defining query to
//! a [`LogicalPlan`](rex_rql::logical::LogicalPlan) and picks a
//! [`MaintenanceStrategy`]:
//!
//! * **incremental** — a [`MaintNode`](maintain::MaintNode) tree mirrors
//!   the plan; each base-table insert/delete batch becomes a
//!   [`DeltaSet`] and propagates through the select/project/join/group-by
//!   delta rules, touching state proportional to the *change*;
//! * **full recompute** — recursive (`WITH … UNTIL FIXPOINT`) and
//!   handler-defined shapes re-run the defining query, diffing old vs new
//!   output so cascades still see deltas.
//!
//! The [`ViewCatalog`] tracks which views read which tables (so dropping
//! a base table can be refused), cascades deltas through views defined
//! over other views, and lazily publishes view contents into the session's
//! stored-table catalog — which is how scans of a view name work unchanged
//! on every engine and how the optimizer sees view cardinalities.
//!
//! The session facade (`rex::Session`) wires this crate to RQL DDL and to
//! `insert`/`delete`; see the root crate's "Materialized views" docs for
//! the end-to-end story.

pub mod catalog;
pub mod delta_set;
pub mod maintain;
pub mod view;

pub use catalog::ViewCatalog;
pub use delta_set::DeltaSet;
pub use view::{evaluate, MaintenanceStrategy, MaterializedView};
