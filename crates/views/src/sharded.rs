//! Sharded view maintenance: one maintenance tree per cluster worker,
//! co-partitioned with the worker's base-table shards, surviving worker
//! death (§4.3 of the paper, applied to materialized views).
//!
//! A single-node [`MaintNode`] tree holds *all* keyed state — join sides,
//! group accumulators — on the session node. [`ShardedMaint`] splits that
//! state across `n` shards, one per cluster worker: every delta batch is
//! routed once, at the base-table boundary, by hashing the view's
//! *partition columns* with the same [`shard_of`] function the cluster
//! engine uses for base tables, and each shard's tree then maintains only
//! the keys it owns. Outputs are signed multisets, so the view's output
//! delta is simply the union of the per-shard outputs.
//!
//! ## When is a view shardable?
//!
//! Exactly when one routing decision at the leaves co-partitions every
//! stateful operator — the co-partitioned maintenance the paper runs its
//! recursive state under. [`shard_routes`] walks the defining plan and
//! either derives, for each base table, the column set to route by, or
//! reports why it cannot:
//!
//! * a join routes both inputs by its key columns;
//! * a group-by routes its input by the grouping columns;
//! * stacked stateful operators must agree (a group-by over a join must
//!   group by the join key), because there is no mid-plan exchange;
//! * global aggregates, computed shard keys, cross joins, and a table
//!   scanned twice under conflicting keys are not shardable.
//!
//! Unshardable views simply stay on the session node (the pre-existing
//! single-tree path); [`MaterializedView`](crate::view::MaterializedView)
//! records the reason.
//!
//! ## Replication and recovery
//!
//! After every maintenance round each live shard's tree is snapshotted to
//! a replica hosted by the next live worker — the `(i+1) % n` ring the
//! cluster runtime also replicates checkpoints over. Killing worker `w`
//! drops the trees it owned *and* the replicas it hosted.
//! [`ShardedMaint::kill_worker`] only marks the loss;
//! [`ShardedMaint::recover`] rebuilds dead shards and is idempotent, so the
//! session invokes it eagerly at kill time (via
//! [`ViewCatalog::kill_worker`](crate::catalog::ViewCatalog::kill_worker) —
//! while the store still equals the applied history) and
//! [`ShardedMaint::apply`] calls it again as a safety net for direct users
//! of this API. Reads keep being served from published output state
//! throughout. Recovery follows the configured [`RecoveryStrategy`]:
//!
//! * **Incremental** — the successor adopts the replica clone; cost is
//!   proportional to the shard's state.
//! * **Restart** — the shard's tree is rebuilt from scratch by replaying
//!   the routed slice of every base table; cost is proportional to the
//!   shard's share of the *base data*.
//!
//! Either way the recovered shard is bit-identical to the lost one
//! whenever the accumulated arithmetic is exact (integers, dyadic
//! floats); both paths record [`rex_core::faults`] telemetry.

use crate::delta_set::DeltaSet;
use crate::maintain::{build_with, MaintNode};
use rex_core::error::Result;
use rex_core::expr::Expr;
use rex_core::faults;
use rex_core::hash::FxHashMap;
use rex_core::operators::{hash_key_cols, shard_of};
use rex_core::udf::Registry;
use rex_rql::logical::LogicalPlan;
use rex_storage::catalog::Catalog;
use std::time::Instant;

pub use rex_cluster::failure::RecoveryStrategy;

/// Per-table routing columns: tuple `t` of table `T` belongs to shard
/// `shard_of(hash_key_cols(t, routes[T]), n)`.
pub type ShardRoutes = FxHashMap<String, Vec<usize>>;

/// Cumulative counters for one sharded view.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    /// Delta rows partitioned across shards (maintenance work that left
    /// the session node).
    pub sharded_rows: u64,
    /// State bytes copied into replicas across all rounds.
    pub replicated_bytes: u64,
    /// Shard recoveries performed (one per dead shard, on the round after
    /// the kill).
    pub recoveries: u64,
    /// State bytes moved to recover (replica adopted or base rows
    /// replayed).
    pub recovered_bytes: u64,
}

/// A maintenance plan partitioned across `n` worker shards.
#[derive(Debug)]
pub struct ShardedMaint {
    n: usize,
    plan: LogicalPlan,
    routes: ShardRoutes,
    /// Shard `i`'s tree; `None` after its worker was killed, until the
    /// next round recovers it.
    shards: Vec<Option<MaintNode>>,
    /// Replica snapshot of shard `i` as of the last completed round,
    /// hosted by [`Self::replica_host`]`[i]`.
    replicas: Vec<Option<MaintNode>>,
    /// Which worker holds shard `i`'s replica.
    replica_host: Vec<usize>,
    /// Which worker currently owns shard `i` (its original worker, or the
    /// survivor that adopted it).
    owner: Vec<usize>,
    dead: Vec<bool>,
    recovery: RecoveryStrategy,
    stats: ShardStats,
}

/// Derive per-table routing columns for `plan`, or explain why a single
/// leaf-level routing cannot co-partition every stateful operator.
///
/// `pushed` carries the partitioning requirement from the nearest
/// stateful ancestor, as column indices of `plan`'s output (empty =
/// unconstrained).
pub fn shard_routes(plan: &LogicalPlan) -> std::result::Result<ShardRoutes, String> {
    let mut routes = ShardRoutes::default();
    descend(plan, &[], &mut routes)?;
    Ok(routes)
}

fn descend(
    plan: &LogicalPlan,
    pushed: &[usize],
    routes: &mut ShardRoutes,
) -> std::result::Result<(), String> {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            // A stateless view (no stateful ancestor) can shard by any
            // column; use the first so routing stays deterministic.
            let cols = if pushed.is_empty() { vec![0] } else { pushed.to_vec() };
            let key = table.to_ascii_lowercase();
            match routes.get(&key) {
                Some(prev) if *prev != cols => {
                    Err(format!("table {key} is scanned under conflicting shard keys"))
                }
                _ => {
                    routes.insert(key, cols);
                    Ok(())
                }
            }
        }
        LogicalPlan::Filter { input, .. } => descend(input, pushed, routes),
        LogicalPlan::Project { input, exprs, .. } => {
            let mut mapped = Vec::with_capacity(pushed.len());
            for &c in pushed {
                match exprs.get(c) {
                    Some(Expr::Col(j)) => mapped.push(*j),
                    _ => return Err("shard key is a computed expression".into()),
                }
            }
            descend(input, &mapped, routes)
        }
        LogicalPlan::Join { left, right, left_key, right_key, .. } => {
            if left_key.is_empty() {
                return Err("cross join has no key to shard by".into());
            }
            // The ancestor's key must be this join's key, positionally,
            // from either side — there is no exchange between operators.
            let la = left.schema().arity();
            if !pushed.is_empty() {
                if pushed.len() != left_key.len() {
                    return Err("stateful operators disagree on the shard key".into());
                }
                for (i, &c) in pushed.iter().enumerate() {
                    if c != left_key[i] && c != la + right_key[i] {
                        return Err("stateful operators disagree on the shard key".into());
                    }
                }
            }
            descend(left, left_key, routes)?;
            descend(right, right_key, routes)
        }
        LogicalPlan::Aggregate { input, group_cols, post, .. } => {
            if group_cols.is_empty() {
                return Err("global aggregate keeps one group on one node".into());
            }
            let mut mapped = Vec::with_capacity(pushed.len());
            for &c in pushed {
                let pre = match post {
                    Some(exprs) => match exprs.get(c) {
                        Some(Expr::Col(j)) => *j,
                        _ => return Err("shard key is a computed expression".into()),
                    },
                    None => c,
                };
                if pre >= group_cols.len() {
                    return Err("shard key is an aggregate result".into());
                }
                mapped.push(pre);
            }
            // The ancestor's key must be the full group key, in order;
            // a coarser key would split groups across shards.
            if !mapped.is_empty() && mapped != (0..group_cols.len()).collect::<Vec<_>>() {
                return Err("stateful operators disagree on the shard key".into());
            }
            descend(input, group_cols, routes)
        }
        other => Err(format!("{} does not maintain incrementally", plan_kind(other))),
    }
}

fn plan_kind(p: &LogicalPlan) -> &'static str {
    match p {
        LogicalPlan::Scan { .. } => "scan",
        LogicalPlan::Filter { .. } => "filter",
        LogicalPlan::Project { .. } => "project",
        LogicalPlan::Join { .. } => "join",
        LogicalPlan::Aggregate { .. } => "group-by",
        LogicalPlan::Fixpoint { .. } => "fixpoint",
        _ => "operator",
    }
}

impl ShardedMaint {
    /// Build an `n`-shard maintenance plan for `plan`. `Err` inside the
    /// `Ok` means the view is not shardable (stay single-tree); the outer
    /// `Result` carries real build failures.
    pub fn build(
        plan: &LogicalPlan,
        reg: &Registry,
        n: usize,
        recovery: RecoveryStrategy,
    ) -> Result<std::result::Result<ShardedMaint, String>> {
        debug_assert!(n > 1, "sharding needs at least two workers");
        let routes = match shard_routes(plan) {
            Ok(r) => r,
            Err(reason) => return Ok(Err(reason)),
        };
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(Some(build_with(plan, reg, true)?));
        }
        Ok(Ok(ShardedMaint {
            n,
            plan: plan.clone(),
            routes,
            shards,
            replicas: vec![None; n],
            replica_host: (0..n).map(|i| (i + 1) % n).collect(),
            owner: (0..n).collect(),
            dead: vec![false; n],
            recovery,
            stats: ShardStats::default(),
        }))
    }

    /// Number of shards (= workers at definition time).
    pub fn shards(&self) -> usize {
        self.n
    }

    /// The per-table routing columns.
    pub fn routes(&self) -> &ShardRoutes {
        &self.routes
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Which worker currently owns each shard.
    pub fn owners(&self) -> &[usize] {
        &self.owner
    }

    /// Strategy used when a dead shard is recovered.
    pub fn set_recovery(&mut self, strategy: RecoveryStrategy) {
        self.recovery = strategy;
    }

    /// The configured recovery strategy.
    pub fn recovery(&self) -> RecoveryStrategy {
        self.recovery
    }

    /// Total state bytes across live shards (replicas excluded).
    pub fn state_bytes(&self) -> usize {
        self.shards.iter().flatten().map(MaintNode::state_bytes).sum()
    }

    /// Dirty groups re-derived across all shards.
    pub fn replayed_groups(&self) -> u64 {
        self.shards.iter().flatten().map(MaintNode::replayed_groups).sum()
    }

    /// Aggregate strategy descriptions (identical on every shard; shard
    /// 0's copy — or any live shard's — is reported).
    pub fn agg_strategies(&self) -> Vec<String> {
        self.shards.iter().flatten().next().map(MaintNode::agg_strategies).unwrap_or_default()
    }

    /// Kill worker `w`: its shards and the replicas it hosted are gone.
    /// Survivors adopt the dead worker's shard range immediately;
    /// rebuilding the state is deferred to the next maintenance round.
    /// Returns how many shards lost their primary tree.
    pub fn kill_worker(&mut self, w: usize) -> usize {
        if w >= self.n || self.dead[w] || self.live_workers() <= 1 {
            return 0;
        }
        self.dead[w] = true;
        let mut lost = 0;
        for s in 0..self.n {
            if self.owner[s] == w {
                self.shards[s] = None;
                self.owner[s] = self.successor(s);
                lost += 1;
            }
            if self.replica_host[s] == w {
                self.replicas[s] = None;
            }
        }
        lost
    }

    /// Workers still alive.
    pub fn live_workers(&self) -> usize {
        self.dead.iter().filter(|d| !**d).count()
    }

    /// First live worker after `w` on the ring.
    fn successor(&self, w: usize) -> usize {
        (1..self.n).map(|k| (w + k) % self.n).find(|&c| !self.dead[c]).unwrap_or(w)
    }

    /// Route `batch` into per-shard slices by `cols`.
    fn route(&self, batch: &DeltaSet, cols: &[usize]) -> Vec<DeltaSet> {
        let mut slices = vec![DeltaSet::new(); self.n];
        for (t, m) in batch.iter() {
            let s = shard_of(hash_key_cols(t, cols), self.n);
            slices[s].add(t.clone(), m);
        }
        slices
    }

    /// Recover every dead shard per the configured strategy. Idempotent:
    /// shards that already have a tree are skipped. The session calls this
    /// eagerly at kill time — while the store still equals the applied
    /// history — and [`apply`](ShardedMaint::apply) calls it again as a
    /// safety net; callers driving `kill_worker`/`apply` directly must
    /// keep `store` in lockstep with the batches they apply, since a
    /// restart rebuild replays the store verbatim.
    pub fn recover(&mut self, store: &Catalog, reg: &Registry) -> Result<()> {
        for s in 0..self.n {
            if self.shards[s].is_some() {
                continue;
            }
            let t0 = Instant::now();
            let replica = match self.recovery {
                RecoveryStrategy::Incremental => self.replicas[s].clone(),
                RecoveryStrategy::Restart => None,
            };
            let incremental = replica.is_some();
            let (tree, bytes) = match replica {
                // Adopt the replica snapshot: state as of the last
                // completed round, which is exactly when the kill hit.
                Some(tree) => {
                    let b = tree.state_bytes() as u64;
                    (tree, b)
                }
                // Restart (or the replica died with its host): rebuild
                // from the base tables, replaying only this shard's slice.
                None => {
                    let mut tree = build_with(&self.plan, reg, true)?;
                    let mut b = 0u64;
                    for (table, cols) in &self.routes {
                        let all = DeltaSet::from_rows(store.get(table)?.rows().iter().cloned());
                        let mut slice = DeltaSet::new();
                        for (t, m) in all.iter() {
                            if shard_of(hash_key_cols(t, cols), self.n) == s {
                                b += t.byte_size() as u64;
                                slice.add(t.clone(), m);
                            }
                        }
                        // The emitted rows are discarded: the session
                        // already holds the view contents; priming only
                        // rebuilds the shard's internal state.
                        tree.apply(table, &slice, reg)?;
                    }
                    (tree, b)
                }
            };
            self.shards[s] = Some(tree);
            self.replicas[s] = None;
            self.stats.recoveries += 1;
            self.stats.recovered_bytes += bytes;
            faults::record_recovery(incremental, t0.elapsed().as_micros() as u64, bytes);
        }
        Ok(())
    }

    /// Snapshot every live shard's tree to its ring successor. The clone
    /// *is* the replication cost, charged to `replicated_bytes`.
    fn replicate(&mut self) {
        for s in 0..self.n {
            if let Some(tree) = &self.shards[s] {
                self.stats.replicated_bytes += tree.state_bytes() as u64;
                self.replicas[s] = Some(tree.clone());
                self.replica_host[s] = self.successor(self.owner[s]);
            }
        }
    }

    /// One maintenance round: recover dead shards, route the batch, apply
    /// each slice on its shard, union the outputs, replicate.
    pub fn apply(
        &mut self,
        table: &str,
        batch: &DeltaSet,
        store: &Catalog,
        reg: &Registry,
    ) -> Result<DeltaSet> {
        self.recover(store, reg)?;
        let Some(cols) = self.routes.get(table).cloned() else {
            return Ok(DeltaSet::new());
        };
        let slices = self.route(batch, &cols);
        let mut out = DeltaSet::new();
        for (s, slice) in slices.iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            self.stats.sharded_rows += slice.iter().map(|(_, m)| m.unsigned_abs()).sum::<u64>();
            let tree = self.shards[s].as_mut().expect("recovered above");
            let delta = tree.apply(table, slice, reg)?;
            out.merge_scaled(&delta, 1);
        }
        self.replicate();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple::{Schema, Tuple};
    use rex_core::value::{DataType, Value};
    use rex_rql::logical::plan_text;
    use rex_rql::resolve::SchemaCatalog;
    use rex_storage::table::StoredTable;

    fn schemas() -> SchemaCatalog {
        let mut m = SchemaCatalog::new();
        m.register(
            "t",
            Schema::of(&[("k", DataType::Int), ("a", DataType::Int), ("b", DataType::Double)]),
        );
        m.register("d", Schema::of(&[("k", DataType::Int), ("w", DataType::Double)]));
        m
    }

    fn plan(sql: &str) -> LogicalPlan {
        plan_text(sql, &schemas(), &Registry::with_builtins()).unwrap()
    }

    fn store() -> Catalog {
        let c = Catalog::new();
        let mut t = StoredTable::new("t", schemas().get("t").unwrap().clone(), vec![0]);
        t.load_unchecked(
            (0..64)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int(i % 8),
                        Value::Int(i % 5),
                        Value::Double((i % 16) as f64 * 0.5),
                    ])
                })
                .collect(),
        );
        c.register(t);
        let mut d = StoredTable::new("d", schemas().get("d").unwrap().clone(), vec![0]);
        d.load_unchecked(
            (0..8).map(|k| Tuple::new(vec![Value::Int(k), Value::Double(k as f64)])).collect(),
        );
        c.register(d);
        c
    }

    fn batch(lo: i64, hi: i64) -> DeltaSet {
        DeltaSet::from_rows((lo..hi).map(|i| {
            Tuple::new(vec![
                Value::Int(i % 8),
                Value::Int(i % 5),
                Value::Double((i % 16) as f64 * 0.25),
            ])
        }))
    }

    #[test]
    fn route_analysis_accepts_copartitioned_shapes() {
        for (sql, table_cols) in [
            ("SELECT a, count(*) FROM t GROUP BY a", vec![("t", vec![1usize])]),
            (
                "SELECT t.k, count(*), sum(d.w) FROM t, d WHERE t.k = d.k GROUP BY t.k",
                vec![("t", vec![0]), ("d", vec![0])],
            ),
            ("SELECT k, b FROM t WHERE b > 1.0", vec![("t", vec![0])]),
            ("SELECT DISTINCT a FROM t", vec![("t", vec![1])]),
        ] {
            let routes = shard_routes(&plan(sql)).unwrap_or_else(|e| panic!("{sql}: {e}"));
            for (t, cols) in table_cols {
                assert_eq!(routes[t], cols, "{sql}");
            }
        }
    }

    #[test]
    fn route_analysis_rejects_unshardable_shapes() {
        for sql in [
            "SELECT count(*), sum(b) FROM t", // global agg
            "SELECT t.a, count(*) FROM t, d WHERE t.k = d.k GROUP BY t.a", // key mismatch
            "SELECT DISTINCT a + 1 FROM t",   // computed key
            "SELECT t.k, d.w FROM t, d",      // cross join
        ] {
            assert!(shard_routes(&plan(sql)).is_err(), "{sql} should not shard");
        }
    }

    /// The sharded plan must produce the same output deltas as one tree,
    /// batch by batch — sharding is pure partitioning of state.
    #[test]
    fn sharded_output_matches_single_tree() {
        let reg = Registry::with_builtins();
        let c = store();
        for sql in [
            "SELECT a, count(*), sum(b) FROM t GROUP BY a",
            "SELECT t.k, count(*), sum(d.w) FROM t, d WHERE t.k = d.k GROUP BY t.k",
        ] {
            let p = plan(sql);
            let mut single = build_with(&p, &reg, true).unwrap();
            let mut sharded =
                ShardedMaint::build(&p, &reg, 3, RecoveryStrategy::Incremental).unwrap().unwrap();
            for step in 0..4 {
                let b = batch(step * 50, step * 50 + 50);
                let want = single.apply("t", &b, &reg).unwrap();
                let got = sharded.apply("t", &b, &c, &reg).unwrap();
                assert_eq!(got, want, "{sql} step {step}");
            }
            assert!(sharded.stats().sharded_rows > 0);
            assert!(sharded.stats().replicated_bytes > 0);
        }
    }

    /// Prime a sharded maint with the store's current contents so that
    /// tree state always equals the net of the store — the invariant that
    /// makes restart's replay-from-base-data equivalent to the live state.
    fn prime(m: &mut ShardedMaint, c: &Catalog, reg: &Registry) {
        for table in ["d", "t"] {
            let rows = DeltaSet::from_rows(c.get(table).unwrap().rows().iter().cloned());
            m.apply(table, &rows, c, reg).unwrap();
        }
    }

    /// Killing any worker at any batch boundary, under either strategy,
    /// leaves output deltas bit-identical to the unkilled run (the data is
    /// dyadic, so even restart's re-accumulation is exact).
    #[test]
    fn any_kill_point_recovers_bit_identical() {
        let reg = Registry::with_builtins();
        let sql = "SELECT t.k, count(*), sum(d.w) FROM t, d WHERE t.k = d.k GROUP BY t.k";
        let p = plan(sql);
        let n = 3;
        let run = |kill: Option<(usize, i64, RecoveryStrategy)>| -> Vec<DeltaSet> {
            let c = store();
            let strategy = kill.map(|(_, _, s)| s).unwrap_or_default();
            let mut m = ShardedMaint::build(&p, &reg, n, strategy).unwrap().unwrap();
            prime(&mut m, &c, &reg);
            let mut outs = Vec::new();
            for step in 0..4i64 {
                if let Some((w, at, _)) = kill {
                    if at == step {
                        assert!(m.kill_worker(w) > 0);
                    }
                }
                let b = batch(step * 50, step * 50 + 50);
                outs.push(m.apply("t", &b, &c, &reg).unwrap());
                // Keep the store in lockstep with applied history so a later
                // restart rebuild replays exactly what the trees saw.
                c.apply_delta("t", b.iter().map(|(t, m)| (t.clone(), m))).unwrap();
            }
            outs
        };
        let want = run(None);
        for w in 0..n {
            for at in 1..4i64 {
                for strategy in [RecoveryStrategy::Incremental, RecoveryStrategy::Restart] {
                    let got = run(Some((w, at, strategy)));
                    assert_eq!(got, want, "kill w{w} at batch {at} under {strategy:?}");
                }
            }
        }
    }

    /// Losing a replica's host along with later kills still recovers: the
    /// incremental path falls back to restart when the replica is gone.
    #[test]
    fn double_fault_falls_back_to_restart() {
        let reg = Registry::with_builtins();
        let c = store();
        let p = plan("SELECT a, count(*), sum(b) FROM t GROUP BY a");
        let mut m =
            ShardedMaint::build(&p, &reg, 3, RecoveryStrategy::Incremental).unwrap().unwrap();
        let mut single = build_with(&p, &reg, true).unwrap();
        let seed = DeltaSet::from_rows(c.get("t").unwrap().rows().iter().cloned());
        single.apply("t", &seed, &reg).unwrap();
        prime(&mut m, &c, &reg);
        let b0 = batch(0, 50);
        let want0 = single.apply("t", &b0, &reg).unwrap();
        assert_eq!(m.apply("t", &b0, &c, &reg).unwrap(), want0);
        c.apply_delta("t", b0.iter().map(|(t, n)| (t.clone(), n))).unwrap();
        // Kill worker 0 and worker 1 (which hosted shard 0's replica)
        // before the next round: shard 0 must rebuild from base data.
        assert!(m.kill_worker(0) > 0);
        assert!(m.kill_worker(1) > 0);
        let b1 = batch(50, 100);
        let want1 = single.apply("t", &b1, &reg).unwrap();
        let got1 = m.apply("t", &b1, &c, &reg).unwrap();
        assert_eq!(got1, want1);
        assert_eq!(m.stats().recoveries, 2);
        assert_eq!(m.live_workers(), 1);
    }
}
