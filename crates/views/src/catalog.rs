//! The view catalog: dependency tracking, cascading maintenance, and
//! lazy synchronization of view contents into the stored-table catalog.
//!
//! Views are *also* registered as stored tables in the session's
//! [`Catalog`], which is what lets every engine — single-node or simulated
//! cluster — answer scans of a view name from materialized state with no
//! special casing, and what gives the optimizer cardinalities for views
//! for free. The authoritative state lives here; the stored copy is
//! refreshed lazily ([`ViewCatalog::sync`]) before queries run.

use crate::delta_set::DeltaSet;
use crate::sharded::RecoveryStrategy;
use crate::view::{MaintenanceStrategy, MaterializedView};
use rex_core::delta::Delta;
use rex_core::error::{Result, RexError};
use rex_core::thread_budget;
use rex_core::udf::Registry;
use rex_storage::catalog::Catalog;
use rex_storage::table::StoredTable;
use std::collections::{BTreeMap, BTreeSet};

/// One view's maintenance counters, snapshotted by
/// [`ViewCatalog::metrics`]. Everything here is cumulative since the view
/// was created (rebuilds do not reset counters).
#[derive(Debug, Clone)]
pub struct ViewMetrics {
    /// The view's (lowercase) name.
    pub name: String,
    /// Human-readable maintenance strategy.
    pub strategy: String,
    /// Input delta rows received across all maintenance passes.
    pub deltas_in: u64,
    /// Output delta rows emitted across all maintenance passes.
    pub deltas_out: u64,
    /// Passes that propagated deltas incrementally.
    pub incremental_passes: u64,
    /// Passes that re-ran the defining query (recompute fallback).
    pub recomputes: u64,
    /// Dirty groups re-derived from retained rows by replay-strategy
    /// group-by nodes.
    pub replayed_groups: u64,
    /// Wall time spent in maintenance passes, nanoseconds.
    pub maint_ns: u64,
    /// Current cardinality.
    pub rows: usize,
    /// Approximate bytes of maintenance state.
    pub state_bytes: usize,
    /// Shards the maintenance state is partitioned into (1 = session
    /// node).
    pub shards: usize,
    /// Delta rows partitioned across worker shards.
    pub sharded_rows: u64,
    /// State bytes copied into shard replicas.
    pub replicated_bytes: u64,
    /// Shard recoveries performed after worker kills.
    pub recoveries: u64,
}

/// All materialized views of a session, keyed by lowercase name.
#[derive(Default)]
pub struct ViewCatalog {
    views: BTreeMap<String, MaterializedView>,
    /// Creation order — a stable tie-break inside each dependency depth
    /// when maintenance orders views (see
    /// [`on_base_change`](ViewCatalog::on_base_change)).
    order: Vec<String>,
    /// Views whose stored-table copy is stale.
    dirty: BTreeSet<String>,
    /// Bytes written into stored-table copies by [`sync`](ViewCatalog::sync)
    /// since the catalog was created (delta bytes for incremental flushes,
    /// whole-contents bytes for republishes).
    sync_bytes: u64,
    /// Thread ceiling for same-depth maintenance (0 and 1 both mean
    /// sequential; see [`set_threads`](ViewCatalog::set_threads)).
    threads: usize,
    /// Worker count views defined under this catalog shard across (1 =
    /// single-node maintenance; cluster sessions set their worker count).
    partitions: usize,
    /// Recovery strategy for shard recoveries after a worker kill.
    recovery: RecoveryStrategy,
}

impl ViewCatalog {
    /// An empty catalog.
    pub fn new() -> ViewCatalog {
        ViewCatalog::default()
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether no views exist.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Whether `name` is a view (case-insensitive).
    pub fn contains(&self, name: &str) -> bool {
        self.views.contains_key(&name.to_ascii_lowercase())
    }

    /// Set the thread ceiling for maintenance passes: when a base change
    /// affects several *independent* views (same dependency depth),
    /// [`on_base_change`](ViewCatalog::on_base_change) maintains up to
    /// this many of them on concurrent threads. Sequential by default;
    /// extra threads are leased from the process-wide
    /// [`thread_budget`], so a serving process stays inside its cap.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Shard views defined *from now on* across `n` workers (see
    /// [`crate::sharded`]). Existing views keep their layout.
    pub fn set_partitions(&mut self, n: usize) {
        self.partitions = n.max(1);
    }

    /// Worker count new views shard across.
    pub fn partitions(&self) -> usize {
        self.partitions.max(1)
    }

    /// Set the recovery strategy for every sharded view's future
    /// recoveries (and for views defined from now on).
    pub fn set_recovery(&mut self, strategy: RecoveryStrategy) {
        self.recovery = strategy;
        for v in self.views.values_mut() {
            v.set_recovery(strategy);
        }
    }

    /// The configured recovery strategy.
    pub fn recovery(&self) -> RecoveryStrategy {
        self.recovery
    }

    /// Kill worker `w` across every sharded view: its shards and hosted
    /// replicas are dropped, survivors adopt the shard ranges, and each
    /// view recovers immediately — while the store still equals the
    /// applied history, which is what makes a restart rebuild (replay the
    /// store) equivalent to the lost state. Stale upstream view copies
    /// are synced first so cascaded views replay current data. Returns
    /// the number of shards that lost their primary tree.
    pub fn kill_worker(&mut self, w: usize, store: &Catalog, reg: &Registry) -> Result<usize> {
        self.sync(store)?;
        let mut lost = 0;
        for v in self.views.values_mut() {
            lost += v.kill_worker(w);
            v.recover(store, reg)?;
        }
        Ok(lost)
    }

    /// Look up a view.
    pub fn get(&self, name: &str) -> Option<&MaterializedView> {
        self.views.get(&name.to_ascii_lowercase())
    }

    /// Serve a bare scan of `name` from authoritative view state (the
    /// session's fast path for `SELECT * FROM <view>`): sorted rows from
    /// the view's merge-maintained cache, with no store synchronization
    /// and no engine pass. `None` if no such view exists.
    pub fn serve_rows(&mut self, name: &str) -> Option<Vec<rex_core::tuple::Tuple>> {
        self.views.get_mut(&name.to_ascii_lowercase()).map(MaterializedView::rows_cached)
    }

    /// View names in creation order.
    pub fn names(&self) -> Vec<String> {
        self.order.clone()
    }

    /// Views that read `table` directly, in creation order.
    pub fn dependents(&self, table: &str) -> Vec<String> {
        self.order.iter().filter(|n| self.views[*n].depends_on(table)).cloned().collect()
    }

    /// Whether any view reads `table` directly.
    pub fn reads(&self, table: &str) -> bool {
        self.views.values().any(|v| v.depends_on(table))
    }

    /// Register and prime a view, and publish its contents as a stored
    /// table so engines can scan it. Fails if the name is taken.
    pub fn create(
        &mut self,
        view: MaterializedView,
        store: &Catalog,
        reg: &Registry,
    ) -> Result<()> {
        let key = view.name().to_ascii_lowercase();
        if store.contains(&key) {
            return Err(RexError::Storage(format!("table or view {} already exists", view.name())));
        }
        // Priming (and any recompute fallback) reads the store, so stale
        // upstream view copies must be flushed first.
        self.sync(store)?;
        let mut view = view;
        view.prime(store, reg)?;
        let pcols = if view.schema().arity() > 0 { vec![0] } else { Vec::new() };
        let mut t = StoredTable::new(view.name(), view.schema().clone(), pcols);
        // The stored copy is a bag: publish via the borrowing walk, no
        // sort or intermediate Vec of clones.
        t.load_unchecked(view.iter_rows().cloned().collect());
        store.register(t);
        self.order.push(key.clone());
        self.views.insert(key, view);
        Ok(())
    }

    /// Drop a view, removing its stored copy. Refuses when another view
    /// reads this one.
    pub fn drop_view(&mut self, name: &str, store: &Catalog) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if !self.views.contains_key(&key) {
            return Err(RexError::Storage(format!("unknown view: {name}")));
        }
        let readers = self.dependents(&key);
        if !readers.is_empty() {
            return Err(RexError::Storage(format!(
                "cannot drop view {name}: materialized view(s) {} depend on it",
                readers.join(", ")
            )));
        }
        self.views.remove(&key);
        self.order.retain(|n| *n != key);
        self.dirty.remove(&key);
        store.drop_table(&key)
    }

    /// Each view's dependency depth: 1 for views over base tables only,
    /// `1 + max(upstream view depth)` otherwise. Because views can only be
    /// created over relations that already exist, creation order is a
    /// topological order and one forward pass suffices.
    fn dependency_depths(&self) -> BTreeMap<String, usize> {
        let mut depths: BTreeMap<String, usize> = BTreeMap::new();
        for name in &self.order {
            let d = self.views[name]
                .base_tables()
                .iter()
                .map(|t| depths.get(t).map(|u| u + 1).unwrap_or(1))
                .max()
                .unwrap_or(1);
            depths.insert(name.clone(), d);
        }
        depths
    }

    /// Propagate a change to base relation `table` (already applied to the
    /// store) through every dependent view, cascading view-output deltas
    /// to views-on-views. Returns the names of views that changed.
    ///
    /// Views are processed in *dependency-depth* order (creation order
    /// breaking ties), so by the time any view runs, every source it reads
    /// is final for this pass. That is what lets a full-recompute view
    /// that reads several delta sources — a base table plus views over it
    /// — re-run its defining query exactly **once** per pass instead of
    /// once per source, and it is the reason a naive "already ran" flag is
    /// unnecessary: there is no second visit to suppress.
    pub fn on_base_change(
        &mut self,
        table: &str,
        deltas: &[Delta],
        store: &Catalog,
        reg: &Registry,
    ) -> Result<Vec<String>> {
        let initial = DeltaSet::from_deltas(deltas)?;
        if initial.is_empty() {
            return Ok(Vec::new());
        }
        let depths = self.dependency_depths();
        // Views grouped by dependency depth, creation order within a
        // level. Views at one depth never read each other (every source
        // of a depth-d view is at depth < d), so a level's affected
        // views are independent — free to run in any order, or on
        // concurrent threads.
        let mut levels: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for name in &self.order {
            levels.entry(depths[name]).or_default().push(name.clone());
        }
        // Deltas available to downstream readers, by source relation.
        let mut pending: BTreeMap<String, DeltaSet> = BTreeMap::new();
        pending.insert(table.to_ascii_lowercase(), initial);
        let mut touched = Vec::new();
        for names in levels.into_values() {
            let mut affected: Vec<(String, Vec<String>, bool)> = Vec::new();
            for name in names {
                let view = &self.views[&name];
                let srcs: Vec<String> = view
                    .base_tables()
                    .iter()
                    .filter(|t| pending.contains_key(*t))
                    .cloned()
                    .collect();
                if srcs.is_empty() {
                    continue;
                }
                let recompute =
                    matches!(view.strategy(), MaintenanceStrategy::FullRecompute { .. });
                affected.push((name, srcs, recompute));
            }
            if affected.is_empty() {
                continue;
            }
            let mut outputs: BTreeMap<String, DeltaSet> = BTreeMap::new();
            // Recompute fallbacks re-run the defining query against the
            // store, so stale upstream copies must be flushed first —
            // everything dirty here is at a strictly smaller depth,
            // hence final. They read catalog state and stay sequential.
            for (name, srcs, _) in affected.iter().filter(|(_, _, recompute)| *recompute) {
                self.sync(store)?;
                let view = self.views.get_mut(name).expect("view exists");
                // One re-run diffs in every changed source at once.
                let out = view.on_change(&srcs[0], &pending[&srcs[0]], store, reg)?;
                outputs.insert(name.clone(), out);
            }
            let incremental: Vec<(String, Vec<String>)> = affected
                .iter()
                .filter(|(_, _, recompute)| !*recompute)
                .map(|(name, srcs, _)| (name.clone(), srcs.clone()))
                .collect();
            self.maintain_incremental(incremental, &pending, store, reg, &mut outputs)?;
            // Merge in creation order, whatever order the work ran in.
            for (name, _, _) in affected {
                let out_total = outputs.remove(&name).expect("every affected view produced");
                // An empty output delta proves the stored copy is still
                // valid — don't force a needless republish on sync.
                if !out_total.is_empty() {
                    self.dirty.insert(name.clone());
                    touched.push(name.clone());
                    pending.insert(name, out_total);
                }
            }
        }
        Ok(touched)
    }

    /// Run one dependency level's incremental maintenance — across
    /// threads when several views are affected, the catalog's ceiling
    /// allows it, and the process-wide [`thread_budget`] grants extra
    /// threads. Each worker thread temporarily *owns* its views (moved
    /// out of the map, reinserted after the scope), so no locking is
    /// involved; results merge deterministically in the caller.
    fn maintain_incremental(
        &mut self,
        work: Vec<(String, Vec<String>)>,
        pending: &BTreeMap<String, DeltaSet>,
        store: &Catalog,
        reg: &Registry,
        outputs: &mut BTreeMap<String, DeltaSet>,
    ) -> Result<()> {
        let run = |view: &mut MaterializedView, srcs: &[String]| -> Result<DeltaSet> {
            let mut out_total = DeltaSet::new();
            for src in srcs {
                let out = view.on_change(src, &pending[src], store, reg)?;
                out_total.merge_scaled(&out, 1);
            }
            Ok(out_total)
        };
        let want = self.threads.max(1).min(work.len());
        let extra = if want > 1 { thread_budget::try_acquire(want - 1) } else { 0 };
        if extra == 0 {
            for (name, srcs) in work {
                let view = self.views.get_mut(&name).expect("view exists");
                let out = run(view, &srcs)?;
                outputs.insert(name, out);
            }
            return Ok(());
        }
        // Move each view out of the map so worker threads own them; all
        // are reinserted below regardless of maintenance errors.
        let mut owned: Vec<(String, MaterializedView, Vec<String>)> = work
            .into_iter()
            .map(|(name, srcs)| {
                let view = self.views.remove(&name).expect("view exists");
                (name, view, srcs)
            })
            .collect();
        let threads = 1 + extra;
        let run = &run;
        let results: Vec<(String, Result<DeltaSet>)> = std::thread::scope(|s| {
            let mut slots: Vec<Vec<&mut (String, MaterializedView, Vec<String>)>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (i, item) in owned.iter_mut().enumerate() {
                slots[i % threads].push(item);
            }
            let handles: Vec<_> = slots
                .into_iter()
                .map(|group| {
                    s.spawn(move || {
                        group
                            .into_iter()
                            .map(|(name, view, srcs)| (name.clone(), run(view, srcs)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("maintenance thread panicked"))
                .collect()
        });
        thread_budget::release(extra);
        for (name, view, _) in owned {
            self.views.insert(name, view);
        }
        let mut first_err = None;
        for (name, res) in results {
            match res {
                Ok(out) => {
                    outputs.insert(name, out);
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Rebuild every view's state and contents from the current store, in
    /// creation order (so views-on-views prime over fresh upstream copies).
    /// This is the consistency repair for a maintenance pass that failed
    /// after updating some views: afterwards every view again equals a
    /// full recompute of its defining query.
    pub fn rebuild_all(&mut self, store: &Catalog, reg: &Registry) -> Result<()> {
        for name in self.order.clone() {
            let view = self.views.get_mut(&name).expect("view exists");
            view.rebuild(store, reg)?;
            store.replace_rows(&name, view.rows())?;
            self.dirty.remove(&name);
        }
        Ok(())
    }

    /// Flush maintained contents of stale views into their stored-table
    /// copies. Sessions call this before running queries.
    ///
    /// Incremental views apply their retained output delta through
    /// [`Catalog::apply_delta`], so a sync costs O(changed rows), not
    /// O(view). Recompute-fallback views keep the pre-existing full
    /// republish (their change tracking is a whole-output diff anyway).
    pub fn sync(&mut self, store: &Catalog) -> Result<()> {
        // Clear each flag only after its flush succeeds: a failed flush
        // must leave the remaining views marked dirty, not silently stale
        // forever.
        while let Some(name) = self.dirty.iter().next().cloned() {
            if let Some(v) = self.views.get_mut(&name) {
                match v.strategy() {
                    MaintenanceStrategy::Incremental => {
                        let delta_bytes: u64 =
                            v.pending().iter().map(|(t, _)| t.byte_size() as u64).sum();
                        let applied = store
                            .apply_delta(&name, v.pending().iter().map(|(t, n)| (t.clone(), n)));
                        // A delta that doesn't match the stored copy means
                        // the copy diverged (e.g. an earlier half-failed
                        // pass). apply_delta fails atomically, so repair
                        // is a republish of the authoritative contents.
                        if applied.is_err() {
                            store.replace_rows(&name, v.rows())?;
                            self.sync_bytes += contents_bytes(v);
                        } else {
                            self.sync_bytes += delta_bytes;
                        }
                    }
                    MaintenanceStrategy::FullRecompute { .. } => {
                        store.replace_rows(&name, v.rows())?;
                        self.sync_bytes += contents_bytes(v);
                    }
                }
                v.clear_pending();
            }
            self.dirty.remove(&name);
        }
        Ok(())
    }

    /// Bytes written into stored-table copies by [`sync`](ViewCatalog::sync)
    /// since the catalog was created.
    pub fn sync_bytes(&self) -> u64 {
        self.sync_bytes
    }

    /// Per-view maintenance counters, in creation order.
    pub fn metrics(&self) -> Vec<ViewMetrics> {
        self.order
            .iter()
            .map(|name| {
                let v = &self.views[name];
                ViewMetrics {
                    name: name.clone(),
                    strategy: v.strategy().to_string(),
                    deltas_in: v.deltas_in(),
                    deltas_out: v.deltas_out(),
                    incremental_passes: v.incremental_passes(),
                    recomputes: v.recomputes() as u64,
                    replayed_groups: v.replayed_groups(),
                    maint_ns: v.maint_ns(),
                    rows: v.len(),
                    state_bytes: v.state_bytes(),
                    shards: v.shards(),
                    sharded_rows: v.shard_stats().sharded_rows,
                    replicated_bytes: v.shard_stats().replicated_bytes,
                    recoveries: v.shard_stats().recoveries,
                }
            })
            .collect()
    }
}

/// Whole-contents byte size of a view (the cost of a republish).
fn contents_bytes(v: &MaterializedView) -> u64 {
    v.iter_rows().map(|t| t.byte_size() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;
    use rex_rql::logical::plan_text;
    use rex_rql::SchemaCatalog;

    fn setup() -> (Catalog, SchemaCatalog, Registry) {
        let store = Catalog::new();
        let schema = Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]);
        let mut t = StoredTable::new("edges", schema.clone(), vec![0]);
        t.load(vec![tuple![0i64, 1i64], tuple![1i64, 2i64], tuple![0i64, 2i64]]).unwrap();
        store.register(t);
        let mut schemas = SchemaCatalog::new();
        schemas.register("edges", schema);
        (store, schemas, Registry::with_builtins())
    }

    fn define(name: &str, sql: &str, schemas: &SchemaCatalog, reg: &Registry) -> MaterializedView {
        MaterializedView::define(name, sql, plan_text(sql, schemas, reg).unwrap(), reg)
    }

    #[test]
    fn create_publishes_rows_and_tracks_dependencies() {
        let (store, schemas, reg) = setup();
        let mut views = ViewCatalog::new();
        let v = define("fanout", "SELECT src, count(*) FROM edges GROUP BY src", &schemas, &reg);
        views.create(v, &store, &reg).unwrap();
        assert_eq!(store.get("fanout").unwrap().len(), 2);
        assert_eq!(views.dependents("edges"), vec!["fanout".to_string()]);
        assert!(views.reads("EDGES"));
        // Name collisions with tables are refused.
        let dup = define("edges", "SELECT src FROM edges", &schemas, &reg);
        assert!(views.create(dup, &store, &reg).is_err());
    }

    #[test]
    fn rebuild_all_restores_recompute_equivalence() {
        let (store, schemas, reg) = setup();
        let mut views = ViewCatalog::new();
        let v = define("fanout", "SELECT src, count(*) FROM edges GROUP BY src", &schemas, &reg);
        views.create(v, &store, &reg).unwrap();
        // Simulate divergence: the table changes behind the catalog's back
        // (as after a maintenance pass that died before reaching the view).
        store.append("edges", vec![tuple![5i64, 6i64]]).unwrap();
        assert_eq!(views.get("fanout").unwrap().len(), 2, "view is stale");
        views.rebuild_all(&store, &reg).unwrap();
        assert_eq!(views.get("fanout").unwrap().len(), 3, "rebuilt from current table");
        assert_eq!(store.get("fanout").unwrap().len(), 3, "stored copy refreshed too");
    }

    #[test]
    fn sync_repairs_a_diverged_stored_copy() {
        let (store, schemas, reg) = setup();
        let mut views = ViewCatalog::new();
        let v = define("fanout", "SELECT src, count(*) FROM edges GROUP BY src", &schemas, &reg);
        views.create(v, &store, &reg).unwrap();
        // Corrupt the stored copy behind the catalog's back (as after a
        // half-failed earlier pass).
        store.replace_rows("fanout", vec![tuple![99i64, 99i64]]).unwrap();
        // The next maintenance pass produces a delta that cannot apply to
        // the corrupted copy; sync must repair by republishing instead of
        // erroring (or compounding) forever.
        store.append("edges", vec![tuple![0i64, 9i64]]).unwrap();
        views.on_base_change("edges", &[Delta::insert(tuple![0i64, 9i64])], &store, &reg).unwrap();
        views.sync(&store).unwrap();
        let mut stored = store.get("fanout").unwrap().rows().to_vec();
        stored.sort_unstable();
        assert_eq!(stored, views.get("fanout").unwrap().rows());
        assert_eq!(stored, vec![tuple![0i64, 3i64], tuple![1i64, 1i64]]);
    }

    #[test]
    fn metrics_track_deltas_and_sync_bytes() {
        let (store, schemas, reg) = setup();
        let mut views = ViewCatalog::new();
        let v = define("fanout", "SELECT src, count(*) FROM edges GROUP BY src", &schemas, &reg);
        views.create(v, &store, &reg).unwrap();
        assert_eq!(views.sync_bytes(), 0, "creation publishes directly, not via sync");
        store.append("edges", vec![tuple![1i64, 9i64]]).unwrap();
        views.on_base_change("edges", &[Delta::insert(tuple![1i64, 9i64])], &store, &reg).unwrap();
        views.sync(&store).unwrap();
        assert!(views.sync_bytes() > 0, "incremental flush moved delta bytes");
        let m = &views.metrics()[0];
        assert_eq!(m.name, "fanout");
        assert!(m.strategy.contains("incremental"));
        // Priming replays seed rows through the maintenance plan directly
        // (not via on_change), so counters reflect only the insert batch.
        assert_eq!(m.deltas_in, 1);
        // The touched group retracts its old row and emits the new one.
        assert_eq!(m.deltas_out, 2);
        assert_eq!(m.incremental_passes, 1);
        assert_eq!(m.recomputes, 0);
        assert_eq!(m.replayed_groups, 0, "count(*) is specialized, never replays");
        assert!(m.rows == 2 && m.state_bytes > 0);
    }

    #[test]
    fn parallel_maintenance_matches_sequential() {
        // Several independent views at one dependency depth: the threaded
        // pass must produce exactly the sequential pass's states, touched
        // list, and stored copies.
        let build = |threads: usize| {
            let (store, schemas, reg) = setup();
            let mut views = ViewCatalog::new();
            views.set_threads(threads);
            for (name, sql) in [
                ("fanout", "SELECT src, count(*) FROM edges GROUP BY src"),
                ("fanin", "SELECT dst, count(*) FROM edges GROUP BY dst"),
                ("wide", "SELECT src, dst FROM edges WHERE dst > 1"),
            ] {
                views.create(define(name, sql, &schemas, &reg), &store, &reg).unwrap();
            }
            let batch: Vec<Delta> =
                (0..50i64).map(|i| Delta::insert(tuple![i % 7, i % 5])).collect();
            store.append("edges", batch.iter().map(|d| d.tuple.clone()).collect()).unwrap();
            let touched = views.on_base_change("edges", &batch, &store, &reg).unwrap();
            views.sync(&store).unwrap();
            let states: Vec<Vec<rex_core::tuple::Tuple>> =
                ["fanout", "fanin", "wide"].iter().map(|n| views.get(n).unwrap().rows()).collect();
            let mut stored: Vec<Vec<rex_core::tuple::Tuple>> = ["fanout", "fanin", "wide"]
                .iter()
                .map(|n| store.get(n).unwrap().rows().to_vec())
                .collect();
            for s in &mut stored {
                s.sort_unstable();
            }
            (touched, states, stored)
        };
        let sequential = build(1);
        for threads in [2, 4] {
            assert_eq!(build(threads), sequential, "threads={threads}");
        }
    }

    #[test]
    fn maintenance_cascades_through_views_on_views() {
        let (store, mut schemas, reg) = setup();
        let mut views = ViewCatalog::new();
        let v1 = define("fanout", "SELECT src, count(*) FROM edges GROUP BY src", &schemas, &reg);
        views.create(v1, &store, &reg).unwrap();
        schemas.register("fanout", views.get("fanout").unwrap().schema().clone());
        let v2 = define("hot", "SELECT src FROM fanout WHERE count > 1", &schemas, &reg);
        views.create(v2, &store, &reg).unwrap();
        assert_eq!(store.get("hot").unwrap().rows(), &[tuple![0i64]]);
        // A second edge from node 1 pushes it over the threshold — via the
        // cascade, not a recompute of `hot`.
        store.append("edges", vec![tuple![1i64, 9i64]]).unwrap();
        let touched = views
            .on_base_change("edges", &[Delta::insert(tuple![1i64, 9i64])], &store, &reg)
            .unwrap();
        assert_eq!(touched, vec!["fanout".to_string(), "hot".to_string()]);
        // Stored copies are stale until sync.
        assert_eq!(store.get("hot").unwrap().len(), 1);
        views.sync(&store).unwrap();
        assert_eq!(store.get("hot").unwrap().rows(), &[tuple![0i64], tuple![1i64]]);
        // Dropping the upstream view is refused while `hot` reads it.
        let err = views.drop_view("fanout", &store).unwrap_err();
        assert!(err.to_string().contains("depend on it"));
        views.drop_view("hot", &store).unwrap();
        views.drop_view("fanout", &store).unwrap();
        assert!(views.is_empty());
        assert!(!store.contains("fanout"));
    }
}
