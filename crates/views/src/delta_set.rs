//! Signed multisets of tuples — the algebra view maintenance runs on.
//!
//! A [`DeltaSet`] maps each tuple to a signed multiplicity: `+n` means the
//! tuple gained `n` occurrences, `-n` that it lost `n`. Base-table batches,
//! intermediate operator states, and view contents are all `DeltaSet`s;
//! propagation is multiplication of multiplicities (joins) and addition
//! (unions of delta streams), exactly the count algebra the Gupta/Mumick
//! view-maintenance rules reduce to for `+()` / `-()` annotations.

use rex_core::delta::{Annotation, Delta};
use rex_core::error::{Result, RexError};
use rex_core::hash::FxHashMap;
use rex_core::tuple::Tuple;

/// A signed multiset of tuples. Zero-count entries are pruned eagerly, so
/// `is_empty()` means "no net change".
///
/// Counts live in a hash map keyed by the deterministic in-tree
/// [`FxHasher`](rex_core::hash::FxHasher), so probes on the maintenance
/// hot path cost O(1) instead of a `BTreeMap`'s O(log n) pointer chase,
/// while every run of the same program still traverses in the same
/// (arbitrary) order. Observable outputs sort at the emission boundary:
/// [`rows`](DeltaSet::rows) and [`to_deltas`](DeltaSet::to_deltas) are
/// sorted; [`iter`](DeltaSet::iter) and [`iter_rows`](DeltaSet::iter_rows)
/// are unordered and meant for count-algebra internals where order cannot
/// matter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSet {
    counts: FxHashMap<Tuple, i64>,
}

impl DeltaSet {
    /// The empty set.
    pub fn new() -> DeltaSet {
        DeltaSet::default()
    }

    /// Build from whole rows, each counted once (duplicates accumulate).
    pub fn from_rows<I: IntoIterator<Item = Tuple>>(rows: I) -> DeltaSet {
        let mut s = DeltaSet::new();
        for r in rows {
            s.add(r, 1);
        }
        s
    }

    /// Build from annotated deltas: `+()` adds, `-()` subtracts, `→(t')`
    /// subtracts the old tuple and adds the new one. Programmable `δ(E)`
    /// deltas have no set-level meaning and are rejected.
    pub fn from_deltas(deltas: &[Delta]) -> Result<DeltaSet> {
        let mut s = DeltaSet::new();
        for d in deltas {
            match &d.ann {
                Annotation::Insert => s.add(d.tuple.clone(), 1),
                Annotation::Delete => s.add(d.tuple.clone(), -1),
                Annotation::Replace(old) => {
                    s.add(old.clone(), -1);
                    s.add(d.tuple.clone(), 1);
                }
                Annotation::Update(_) => {
                    return Err(RexError::Plan(
                        "programmable δ(E) deltas cannot drive view maintenance".into(),
                    ))
                }
            }
        }
        Ok(s)
    }

    /// Adjust a tuple's multiplicity by `n`, pruning zero entries.
    pub fn add(&mut self, t: Tuple, n: i64) {
        if n == 0 {
            return;
        }
        match self.counts.entry(t) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                *o.get_mut() += n;
                if *o.get() == 0 {
                    o.remove();
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(n);
            }
        }
    }

    /// Add every entry of `other`, scaled by `factor` (`-1` to subtract).
    pub fn merge_scaled(&mut self, other: &DeltaSet, factor: i64) {
        for (t, n) in &other.counts {
            self.add(t.clone(), n * factor);
        }
    }

    /// Whether the set carries no net change.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of distinct tuples with nonzero multiplicity.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total positive multiplicity — the bag cardinality when all counts
    /// are non-negative (view contents).
    pub fn cardinality(&self) -> usize {
        self.counts.values().filter(|&&n| n > 0).map(|&n| n as usize).sum()
    }

    /// Iterate `(tuple, signed multiplicity)` in *unspecified* (but, for a
    /// given program, deterministic) order. Use only where the consumer is
    /// order-insensitive — count algebra, state folding; sort at the
    /// boundary where output becomes observable.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.counts.iter().map(|(t, &n)| (t, n))
    }

    /// Iterate the bag's rows by reference, each tuple yielded once per
    /// unit of positive multiplicity, in *unspecified* order. This is the
    /// allocation-free sibling of [`rows`](DeltaSet::rows) for callers that
    /// only need to walk the bag (state priming, delta application,
    /// byte accounting) and would otherwise clone every tuple.
    pub fn iter_rows(&self) -> impl Iterator<Item = &Tuple> {
        self.counts
            .iter()
            .filter(|(_, &n)| n > 0)
            .flat_map(|(t, &n)| std::iter::repeat_n(t, n as usize))
    }

    /// Expand to rows (each tuple repeated by its positive multiplicity),
    /// in sorted order — the bag a query over the view observes.
    pub fn rows(&self) -> Vec<Tuple> {
        let mut distinct: Vec<(&Tuple, i64)> = self.counts.iter().map(|(t, &n)| (t, n)).collect();
        distinct.sort_unstable_by(|a, b| a.0.cmp(b.0));
        let mut out = Vec::with_capacity(self.cardinality());
        for (t, n) in distinct {
            for _ in 0..n.max(0) {
                out.push(t.clone());
            }
        }
        out
    }

    /// Render as annotated deltas (`+()`×n / `-()`×n per tuple), sorted by
    /// tuple — an emission boundary, so order is stable for consumers.
    pub fn to_deltas(&self) -> Vec<Delta> {
        let mut distinct: Vec<(&Tuple, i64)> = self.counts.iter().map(|(t, &n)| (t, n)).collect();
        distinct.sort_unstable_by(|a, b| a.0.cmp(b.0));
        let mut out = Vec::new();
        for (t, n) in distinct {
            for _ in 0..n.abs() {
                out.push(if n > 0 { Delta::insert(t.clone()) } else { Delta::delete(t.clone()) });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;
    use rex_core::value::Value;

    #[test]
    fn add_prunes_cancellations() {
        let mut s = DeltaSet::new();
        s.add(tuple![1i64], 2);
        s.add(tuple![1i64], -2);
        assert!(s.is_empty());
        s.add(tuple![2i64], -1);
        assert_eq!(s.distinct(), 1);
        assert_eq!(s.cardinality(), 0, "negative counts carry no rows");
    }

    #[test]
    fn from_deltas_applies_annotation_algebra() {
        let s = DeltaSet::from_deltas(&[
            Delta::insert(tuple![1i64]),
            Delta::insert(tuple![1i64]),
            Delta::delete(tuple![2i64]),
            Delta::replace(tuple![1i64], tuple![3i64]),
        ])
        .unwrap();
        assert_eq!(s.rows(), vec![tuple![1i64], tuple![3i64]]);
        let err = DeltaSet::from_deltas(&[Delta::update(tuple![1i64], Value::Int(1))]);
        assert!(err.is_err());
    }

    #[test]
    fn rows_expand_multiplicity_sorted() {
        let mut s = DeltaSet::from_rows(vec![tuple![2i64], tuple![1i64], tuple![2i64]]);
        assert_eq!(s.rows(), vec![tuple![1i64], tuple![2i64], tuple![2i64]]);
        let mut d = DeltaSet::new();
        d.add(tuple![2i64], -1);
        s.merge_scaled(&d, 1);
        assert_eq!(s.rows(), vec![tuple![1i64], tuple![2i64]]);
        assert_eq!(d.to_deltas(), vec![Delta::delete(tuple![2i64])]);
    }

    #[test]
    fn iter_rows_borrows_and_expands_positive_counts() {
        let mut s = DeltaSet::from_rows(vec![tuple![1i64], tuple![2i64], tuple![2i64]]);
        s.add(tuple![9i64], -3);
        let mut seen: Vec<&Tuple> = s.iter_rows().collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 3, "negative entries yield no rows");
        assert_eq!(*seen[0], tuple![1i64]);
        assert_eq!(*seen[1], tuple![2i64]);
        assert_eq!(*seen[2], tuple![2i64]);
        // The borrowing walk agrees with the cloning expansion.
        let mut cloned = s.rows();
        cloned.sort_unstable();
        assert_eq!(seen.into_iter().cloned().collect::<Vec<_>>(), cloned);
    }
}
