//! Property tests for the specialized O(1) aggregate group state.
//!
//! The invariant the whole fast path hangs on: for any sequence of random
//! insert/delete batches, a group-by maintained through specialized
//! running state (`sum`/`count`/`avg` scalars, `min`/`max` multisets)
//! must produce exactly the outputs of
//!
//! 1. the PR-2-era dirty-group replay (`build_with(..., false)`) fed the
//!    same batches, and
//! 2. a full recompute: a fresh replay node fed the entire accumulated
//!    base as one batch.
//!
//! Integers compare exactly; doubles to 1e-9 relative tolerance, because
//! a running sum and a replayed sum may fold values in different orders.
//! The sweep deliberately includes delete-the-current-minimum (and
//! -maximum) steps so extreme eviction — the case where min/max must
//! recover the next-best value from the multiset — is exercised on every
//! seed.

use rex_core::tuple::{Schema, Tuple};
use rex_core::udf::Registry;
use rex_core::value::{DataType, Value};
use rex_data::rng::StdRng;
use rex_rql::logical::plan_text;
use rex_rql::SchemaCatalog;
use rex_views::delta_set::DeltaSet;
use rex_views::maintain::{build, build_with, MaintNode};

const SQL: &str = "SELECT g, count(*), sum(v), avg(v), min(v), max(v) FROM vals GROUP BY g";

fn schema_catalog() -> SchemaCatalog {
    let mut c = SchemaCatalog::new();
    c.register("vals", Schema::of(&[("g", DataType::Int), ("v", DataType::Double)]));
    c
}

fn random_row(rng: &mut StdRng) -> Tuple {
    // Few groups and a small value domain: collisions, duplicate values in
    // the min/max multisets, and frequent extreme evictions.
    Tuple::new(vec![
        Value::Int(rng.gen_range(0..=3i64)),
        Value::Double(rng.gen_range(0..=15i64) as f64 * 0.5),
    ])
}

/// Compare two output bags: identical shape, Int/Null exact, doubles to
/// 1e-9 relative tolerance.
fn assert_rows_close(got: &[Tuple], want: &[Tuple], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: cardinality\n got: {got:?}\nwant: {want:?}");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.arity(), w.arity(), "{ctx}: arity of {g} vs {w}");
        for i in 0..g.arity() {
            match (g.get(i), w.get(i)) {
                (Value::Double(a), Value::Double(b)) => {
                    let scale = b.abs().max(1.0);
                    assert!(
                        (a - b).abs() <= 1e-9 * scale,
                        "{ctx}: col {i}: {a} vs {b} in {g} vs {w}"
                    );
                }
                (a, b) => assert_eq!(a, b, "{ctx}: col {i} of {g} vs {w}"),
            }
        }
    }
}

/// The extreme row (by `v`) currently present for a random group, if any.
fn current_extreme(base: &DeltaSet, rng: &mut StdRng, smallest: bool) -> Option<Tuple> {
    let g = rng.gen_range(0..=3i64);
    let mut best: Option<&Tuple> = None;
    for t in base.iter_rows() {
        if t.get(0) != &Value::Int(g) {
            continue;
        }
        best = Some(match best {
            None => t,
            Some(b) => {
                let cmp = t.get(1).cmp(b.get(1));
                if (smallest && cmp.is_lt()) || (!smallest && cmp.is_gt()) {
                    t
                } else {
                    b
                }
            }
        });
    }
    best.cloned()
}

fn seed_sweep(seed: u64) {
    let reg = Registry::with_builtins();
    let plan = plan_text(SQL, &schema_catalog(), &reg).unwrap();
    let mut fast = build(&plan, &reg).unwrap();
    let mut slow = build_with(&plan, &reg, false).unwrap();
    assert!(fast.agg_strategies()[0].contains("O(1)"), "specialized node");
    assert!(slow.agg_strategies()[0].contains("replay"), "oracle node");

    let mut rng = StdRng::seed_from_u64(seed);
    // The accumulated base relation, and both nodes' accumulated outputs.
    let mut base = DeltaSet::new();
    let (mut out_fast, mut out_slow) = (DeltaSet::new(), DeltaSet::new());

    for step in 0..24 {
        let mut batch = DeltaSet::new();
        match rng.gen_range(0..=3i64) {
            // Insert a few random rows.
            0 | 1 => {
                for _ in 0..rng.gen_range(1..=3i64) {
                    batch.add(random_row(&mut rng), 1);
                }
            }
            // Delete a random stored row.
            2 => {
                let stored: Vec<&Tuple> = base.iter_rows().collect();
                if !stored.is_empty() {
                    batch.add(stored[rng.gen_range(0..stored.len())].clone(), -1);
                }
            }
            // Delete the current minimum (or maximum) of a random group:
            // the eviction path where the specialized multiset must
            // recover the next-best extreme.
            _ => {
                let smallest = rng.gen_range(0..=1i64) == 0;
                if let Some(t) = current_extreme(&base, &mut rng, smallest) {
                    batch.add(t, -1);
                }
            }
        }
        if batch.is_empty() {
            continue;
        }
        base.merge_scaled(&batch, 1);

        let df = fast.apply("vals", &batch, &reg).unwrap();
        let ds = slow.apply("vals", &batch, &reg).unwrap();
        let ctx = format!("seed {seed} step {step}");
        // Per-batch deltas agree...
        assert_rows_close(&df.rows(), &ds.rows(), &format!("{ctx} (delta)"));
        out_fast.merge_scaled(&df, 1);
        out_slow.merge_scaled(&ds, 1);
        // ...and so do the accumulated view contents.
        assert_rows_close(&out_fast.rows(), &out_slow.rows(), &format!("{ctx} (state)"));

        // Full-recompute oracle: a fresh replay node over the whole base.
        let mut oracle: MaintNode = build_with(&plan, &reg, false).unwrap();
        let recomputed = oracle.apply("vals", &base, &reg).unwrap();
        assert_rows_close(&out_fast.rows(), &recomputed.rows(), &format!("{ctx} (recompute)"));
    }
}

#[test]
fn specialized_state_matches_replay_and_recompute_seed_sweep() {
    for seed in 0..12 {
        seed_sweep(seed);
    }
}

#[test]
fn deleting_every_row_of_a_group_retracts_its_output() {
    let reg = Registry::with_builtins();
    let plan = plan_text(SQL, &schema_catalog(), &reg).unwrap();
    let mut fast = build(&plan, &reg).unwrap();
    let row = |g: i64, v: f64| Tuple::new(vec![Value::Int(g), Value::Double(v)]);
    let mut ins = DeltaSet::new();
    ins.add(row(1, 2.0), 2); // duplicate values: multiset multiplicity 2
    ins.add(row(1, 5.0), 1);
    fast.apply("vals", &ins, &reg).unwrap();
    // Remove one copy of the duplicated minimum: min stays 2.0.
    let mut del = DeltaSet::new();
    del.add(row(1, 2.0), -1);
    let out = fast.apply("vals", &del, &reg).unwrap();
    assert_eq!(out.distinct(), 2, "old row out, new row in");
    let new_row = &out.rows()[0];
    assert_eq!(new_row.get(4), &Value::Double(2.0), "duplicated min survives one delete");
    // Remove the rest: the group's output row disappears entirely.
    let mut del = DeltaSet::new();
    del.add(row(1, 2.0), -1);
    del.add(row(1, 5.0), -1);
    let out = fast.apply("vals", &del, &reg).unwrap();
    assert_eq!(out.cardinality(), 0, "only a retraction remains");
    assert_eq!(out.distinct(), 1);
    assert_eq!(fast.state_bytes(), 0, "empty groups are pruned");
}

#[test]
fn deleting_a_row_never_inserted_is_an_error() {
    let reg = Registry::with_builtins();
    let plan = plan_text(SQL, &schema_catalog(), &reg).unwrap();
    let mut fast = build(&plan, &reg).unwrap();
    let mut del = DeltaSet::new();
    del.add(Tuple::new(vec![Value::Int(3), Value::Double(1.0)]), -1);
    let err = fast.apply("vals", &del, &reg).unwrap_err();
    assert!(err.to_string().contains("negative"), "{err}");
}
