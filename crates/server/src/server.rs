//! The server: one listener, one thread per connection, one writer.
//!
//! ```text
//!                    ┌────────────── reader threads ──────────────┐
//!  TCP conn ──► thread: QUERY ──► clone Arc<SnapshotView> ──► execute (lock-free)
//!  TCP conn ──► thread: QUERY ──► clone Arc<SnapshotView> ──► execute
//!                    └────────────────────────────────────────────┘
//!  TCP conn ──► thread: INSERT/BATCH/SCRIPT ─► bounded channel ─► writer thread
//!                                                                   │ owns Session
//!                                                                   │ apply + IVM
//!                                                                   ▼
//!                                               publish new Arc<SnapshotView> (version++)
//! ```
//!
//! Reads never block writes and writes never block reads: readers grab
//! the current snapshot `Arc` (a briefly-held `RwLock` read of one
//! pointer) and execute against that immutable version; the writer
//! applies mutations to its own copy-on-write catalog, runs incremental
//! view maintenance, and swaps in the next version. Backpressure is the
//! bounded write channel: when the writer falls behind, connection
//! threads block in `send`, which stops them draining their sockets,
//! which fills the kernel TCP window back to the client.
//!
//! Because a published snapshot is immutable, query results are cached
//! per snapshot keyed by query text — a hit costs a hash lookup and a
//! buffer write. The cache dies with its snapshot on the next publish,
//! so it can never serve stale rows.

use crate::protocol::{self, Command};
use crate::stats::ServerStats;
use rex::snapshot::SnapshotView;
use rex::Session;
use rex_core::error::{Result, RexError};
use rex_core::tuple::Tuple;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Deterministic fault injection for chaos tests: once the writer has
/// applied `after_writes` write ops, it kills `worker`'s view-maintenance
/// shards on its session and recovers them under `strategy` (see
/// `docs/FAULT.md`). Readers never notice — published snapshots are
/// immutable — and the next write maintains against the recovered shards.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjection {
    /// Fire after this many write ops have been applied.
    pub after_writes: u64,
    /// The worker whose shards die.
    pub worker: usize,
    /// How the surviving workers recover the lost shards.
    pub strategy: rex::cluster::RecoveryStrategy,
}

/// Tunables for [`Server::start`]. The defaults serve tests, the bench,
/// and the daemon; `rex-serverd` exposes the interesting ones as flags.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Depth of the bounded write channel — the backpressure knob: how
    /// many write ops may queue before writers block at the socket.
    pub write_queue: usize,
    /// How many queued write ops the writer may coalesce under one
    /// snapshot publish (1 = publish after every op).
    pub coalesce: usize,
    /// Poll interval for shutdown checks on blocking reads/accepts.
    pub poll: Duration,
    /// Per-snapshot result-cache capacity (entries); 0 disables caching.
    pub cache_entries: usize,
    /// Largest encoded response the cache will hold, in bytes.
    pub cache_max_bytes: usize,
    /// Worker-thread ceiling for query execution and view maintenance:
    /// sets the session's per-query thread count AND caps the
    /// process-wide [`thread_budget`](rex::core::thread_budget) so
    /// concurrent reader connections share one pool instead of each
    /// bringing their own. 0 (the default) inherits the session's
    /// configuration (`REX_THREADS` or all cores, unlimited budget).
    pub threads: usize,
    /// Optional one-shot fault injected by the writer thread (chaos
    /// tests); `None` in production.
    pub fault: Option<FaultInjection>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            write_queue: 64,
            coalesce: 16,
            poll: Duration::from_millis(25),
            cache_entries: 128,
            cache_max_bytes: 256 * 1024,
            threads: 0,
            fault: None,
        }
    }
}

/// One published version: the immutable snapshot plus its result cache.
struct Published {
    view: Arc<SnapshotView>,
    /// Query text → full encoded response. Valid exactly as long as this
    /// snapshot is current; dropped wholesale on the next publish.
    cache: Mutex<ResultCache>,
}

impl Published {
    fn new(view: Arc<SnapshotView>) -> Published {
        Published { view, cache: Mutex::new(ResultCache::default()) }
    }
}

/// A capacity-capped per-snapshot result cache: FIFO eviction, so a
/// snapshot that lives through more distinct queries than `cache_entries`
/// keeps serving the *newest* ones instead of freezing on whatever
/// arrived first and refusing the rest.
#[derive(Default)]
struct ResultCache {
    map: HashMap<String, Arc<str>>,
    /// Insertion order — the eviction queue.
    order: VecDeque<String>,
}

impl ResultCache {
    fn get(&self, rql: &str) -> Option<Arc<str>> {
        self.map.get(rql).cloned()
    }

    /// Insert under the capacity cap, evicting oldest-first. Returns how
    /// many entries were evicted.
    fn insert(&mut self, rql: &str, response: Arc<str>, capacity: usize) -> u64 {
        let mut evicted = 0;
        while self.map.len() >= capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                    evicted += 1;
                }
                None => break,
            }
        }
        // Two threads can race the same miss; only the first insert may
        // enqueue the key, or eviction would pop it twice.
        if self.map.insert(rql.to_string(), response).is_none() {
            self.order.push_back(rql.to_string());
        }
        evicted
    }
}

/// State shared by the listener, every connection thread, and the writer.
struct Shared {
    published: RwLock<Arc<Published>>,
    stats: ServerStats,
    shutdown: AtomicBool,
    cfg: ServerConfig,
}

impl Shared {
    fn current(&self) -> Arc<Published> {
        self.published.read().unwrap().clone()
    }
}

/// A write operation travelling from a connection thread to the writer.
enum WriteOp {
    /// INSERT/BATCH: a stream of row batches into one table.
    Ingest { table: String, batches: Vec<Vec<Tuple>> },
    /// SCRIPT: statements (queries *or* DDL) run serialized on the
    /// writer's session.
    Script { stmts: Vec<String> },
}

struct WriteReq {
    op: WriteOp,
    reply: SyncSender<WriteReply>,
}

enum WriteReply {
    Ingest { rows: usize, version: u64 },
    Script { results: Vec<std::result::Result<usize, String>>, version: u64 },
    Failed(String),
}

/// A handle that can trigger graceful shutdown from outside the server
/// (signal handlers, admin tooling).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<Shared>);

impl ShutdownHandle {
    /// Begin graceful shutdown: stop accepting, let in-flight commands
    /// finish, then unwind all threads.
    pub fn trigger(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.shutdown.load(Ordering::SeqCst)
    }
}

/// A running rex server. Dropping it shuts it down gracefully (prefer
/// calling [`shutdown`](Server::shutdown) to observe errors).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Move `session` behind a TCP front-end bound to `addr` (use port 0
    /// for an ephemeral port; [`local_addr`](Server::local_addr) reports
    /// the bound address). The session becomes the single writer; its
    /// current state is published as snapshot version
    /// [`Session::version`] immediately, so readers can connect before
    /// the first write.
    pub fn start(mut session: Session, addr: &str, cfg: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| RexError::Exec(format!("server: cannot bind {addr}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| RexError::Exec(format!("server: no local addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| RexError::Exec(format!("server: nonblocking accept: {e}")))?;
        if cfg.threads > 0 {
            // Every query already runs on its connection's own thread, so
            // the process-wide budget counts *extra* workers: a --threads N
            // server lends out at most N-1 on top of the calling threads.
            session.set_threads(cfg.threads);
            rex::core::thread_budget::set_budget(cfg.threads.saturating_sub(1));
        }
        let initial = session.snapshot()?;
        let shared = Arc::new(Shared {
            published: RwLock::new(Arc::new(Published::new(initial))),
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
            cfg: cfg.clone(),
        });
        let (write_tx, write_rx) = mpsc::sync_channel::<WriteReq>(cfg.write_queue.max(1));
        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rex-writer".into())
                .spawn(move || writer_loop(session, write_rx, shared))
                .map_err(|e| RexError::Exec(format!("server: spawn writer: {e}")))?
        };
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("rex-accept".into())
                .spawn(move || accept_loop(listener, shared, conns, write_tx))
                .map_err(|e| RexError::Exec(format!("server: spawn accept loop: {e}")))?
        };
        Ok(Server { addr, shared, accept: Some(accept), writer: Some(writer), conns })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Traffic counters (live; shared with all threads).
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// The currently published snapshot version.
    pub fn published_version(&self) -> u64 {
        self.shared.current().view.version()
    }

    /// A cloneable handle that can request shutdown from other threads
    /// (the daemon wires SIGTERM/SIGINT to this).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared))
    }

    /// Whether the server is still accepting work (i.e. no shutdown has
    /// been requested by `SHUTDOWN`, a signal, or a handle).
    pub fn running(&self) -> bool {
        !self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Block until shutdown is requested (client `SHUTDOWN`, a signal
    /// handler's [`ShutdownHandle`], …), then unwind gracefully.
    pub fn wait(mut self) -> Result<()> {
        let poll = self.shared.cfg.poll;
        while self.running() {
            std::thread::sleep(poll);
        }
        self.unwind()
    }

    /// Graceful shutdown: stop accepting, finish in-flight commands,
    /// join every thread.
    pub fn shutdown(mut self) -> Result<()> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.unwind()
    }

    fn unwind(&mut self) -> Result<()> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            h.join().map_err(|_| RexError::Exec("server: accept thread panicked".into()))?;
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in conns {
            h.join().map_err(|_| RexError::Exec("server: connection thread panicked".into()))?;
        }
        // All write senders are gone once accept + connections exited;
        // the writer drains the channel and returns.
        if let Some(h) = self.writer.take() {
            h.join().map_err(|_| RexError::Exec("server: writer thread panicked".into()))?;
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() || self.writer.is_some() {
            let _ = self.unwind();
        }
    }
}

// ---- writer --------------------------------------------------------------

fn writer_loop(mut session: Session, rx: Receiver<WriteReq>, shared: Arc<Shared>) {
    let mut fault = shared.cfg.fault;
    while let Ok(first) = rx.recv() {
        // Coalesce a burst of queued ops under one snapshot publish; every
        // reply still waits for the publish covering its op, so a client
        // that saw `OK version=v` immediately reads its own write.
        let mut reqs = vec![first];
        while reqs.len() < shared.cfg.coalesce.max(1) {
            match rx.try_recv() {
                Ok(r) => reqs.push(r),
                Err(_) => break,
            }
        }
        let mut replies = Vec::with_capacity(reqs.len());
        for req in reqs {
            let reply = apply_write(&mut session, req.op, &shared.stats);
            replies.push((req.reply, reply));
            // One-shot chaos hook: kill a worker's view shards between
            // write ops. Recovery runs inside inject_failure; readers
            // keep the published snapshot either way.
            if let Some(f) = fault {
                if shared.stats.write_ops.load(Ordering::Relaxed) >= f.after_writes {
                    let _ = session.inject_failure(f.worker, f.strategy);
                    fault = None;
                }
            }
        }
        let t0 = Instant::now();
        match session.snapshot() {
            Ok(view) => {
                *shared.published.write().unwrap() = Arc::new(Published::new(view));
                shared.stats.record_publish(t0.elapsed());
            }
            Err(e) => {
                // The ops committed but the new version could not be
                // built; readers keep the previous consistent snapshot.
                // Tell the writers rather than claiming success.
                for (_, r) in &mut replies {
                    *r = WriteReply::Failed(format!(
                        "write applied but snapshot publish failed: {e}"
                    ));
                }
            }
        }
        for (tx, reply) in replies {
            let _ = tx.send(reply); // receiver may have hung up: its loss
        }
    }
}

fn apply_write(session: &mut Session, op: WriteOp, stats: &ServerStats) -> WriteReply {
    stats.write_ops.fetch_add(1, Ordering::Relaxed);
    match op {
        WriteOp::Ingest { table, batches } => match session.insert_stream(&table, batches) {
            Ok(rows) => {
                stats.rows_inserted.fetch_add(rows as u64, Ordering::Relaxed);
                WriteReply::Ingest { rows, version: session.version() }
            }
            Err(e) => WriteReply::Failed(e.to_string()),
        },
        WriteOp::Script { stmts } => {
            let results = stmts
                .iter()
                .map(|s| session.query(s).map(|r| r.rows.len()).map_err(|e| e.to_string()))
                .collect();
            WriteReply::Script { results, version: session.version() }
        }
    }
}

// ---- accept + connections ------------------------------------------------

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    write_tx: SyncSender<WriteReq>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                shared.stats.open_connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&shared);
                let tx = write_tx.clone();
                let spawned =
                    std::thread::Builder::new().name("rex-conn".into()).spawn(move || {
                        let _ = serve_connection(stream, &shared, tx);
                        shared.stats.open_connections.fetch_sub(1, Ordering::Relaxed);
                    });
                if let Ok(h) = spawned {
                    let mut guard = conns.lock().unwrap();
                    guard.retain(|h| !h.is_finished()); // reap quietly
                    guard.push(h);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll.min(Duration::from_millis(10)));
            }
            Err(_) => std::thread::sleep(shared.cfg.poll),
        }
    }
    // write_tx drops here; once connections unwind, the writer sees a
    // closed channel and exits.
}

/// Read one line, waking every `cfg.poll` to honor shutdown. Returns
/// `Ok(0)` on EOF *or* shutdown. Partial reads accumulate in `buf`
/// across timeouts (read_line appends), so no bytes are lost.
fn read_line_interruptible(
    reader: &mut BufReader<TcpStream>,
    buf: &mut String,
    shared: &Shared,
) -> std::io::Result<usize> {
    loop {
        match reader.read_line(buf) {
            Ok(n) => return Ok(n),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(0);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    shared: &Shared,
    write_tx: SyncSender<WriteReq>,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.cfg.poll))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if read_line_interruptible(&mut reader, &mut line, shared)? == 0 {
            return Ok(()); // EOF or shutdown
        }
        if line.trim().is_empty() {
            continue;
        }
        // Hot path: QUERY skips the command parser entirely — no verb
        // uppercasing, no argument allocation; the line's tail is the
        // cache key. (Lower-case `query` still works via the parser.)
        let quit = if let Some(rql) = line.strip_prefix("QUERY ") {
            handle_query(rql.trim_end_matches(['\r', '\n']), shared, &mut writer)?;
            false
        } else {
            match protocol::parse_command(&line) {
                Ok(cmd) => handle_command(cmd, shared, &write_tx, &mut reader, &mut writer)?,
                Err(e) => {
                    writeln!(writer, "{}", protocol::err_line(&e))?;
                    false
                }
            }
        };
        // Batch-flush: while more complete requests are already buffered
        // (a pipelining client), keep processing and amortize the flush;
        // otherwise flush now so a synchronous client gets its answer.
        if quit {
            writer.flush()?;
            return Ok(());
        }
        if !reader.buffer().contains(&b'\n') {
            writer.flush()?;
        }
    }
}

/// Handle one parsed command; returns `true` when the connection should
/// close (QUIT/SHUTDOWN).
fn handle_command(
    cmd: Command,
    shared: &Shared,
    write_tx: &SyncSender<WriteReq>,
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
) -> std::io::Result<bool> {
    match cmd {
        Command::Hello(_) => {
            let p = shared.current();
            writeln!(
                writer,
                "OK rex-server {} engine={} version={}",
                env!("CARGO_PKG_VERSION"),
                p.view.engine_name(),
                p.view.version()
            )?;
        }
        Command::Query(rql) => handle_query(&rql, shared, writer)?,
        Command::Insert { table, rows } => {
            let reply = send_write(write_tx, WriteOp::Ingest { table, batches: vec![rows] });
            write_ingest_reply(writer, reply)?;
        }
        Command::Batch { table, count } => {
            // Consume all announced row lines even if one fails to
            // decode — otherwise the protocol desynchronizes and row
            // data gets parsed as commands.
            let mut rows = Vec::with_capacity(count.min(65_536));
            let mut decode_err = None;
            let mut line = String::new();
            for _ in 0..count {
                line.clear();
                if read_line_interruptible(reader, &mut line, shared)? == 0 {
                    writeln!(writer, "ERR batch truncated by EOF/shutdown")?;
                    return Ok(true);
                }
                match protocol::decode_row(&line) {
                    Ok(t) => rows.push(t),
                    Err(e) => decode_err = Some(e),
                }
            }
            if let Some(e) = decode_err {
                writeln!(writer, "{}", protocol::err_line(&e))?;
                return Ok(false);
            }
            let reply = send_write(write_tx, WriteOp::Ingest { table, batches: vec![rows] });
            write_ingest_reply(writer, reply)?;
        }
        Command::Script { count } => {
            let mut stmts = Vec::with_capacity(count.min(4_096));
            let mut line = String::new();
            for _ in 0..count {
                line.clear();
                if read_line_interruptible(reader, &mut line, shared)? == 0 {
                    writeln!(writer, "ERR script truncated by EOF/shutdown")?;
                    return Ok(true);
                }
                stmts.push(line.trim_end_matches(['\r', '\n']).to_string());
            }
            match send_write(write_tx, WriteOp::Script { stmts }) {
                Ok(WriteReply::Script { results, version }) => {
                    writeln!(writer, "OK {} version={version}", results.len())?;
                    for r in results {
                        match r {
                            Ok(rows) => writeln!(writer, "OK {rows}")?,
                            Err(e) => writeln!(writer, "ERR {}", e.replace('\n', "; "))?,
                        }
                    }
                    writeln!(writer, ".")?;
                }
                Ok(WriteReply::Failed(e)) | Err(e) => {
                    writeln!(writer, "ERR {}", e.replace('\n', "; "))?
                }
                Ok(WriteReply::Ingest { .. }) => writeln!(writer, "ERR writer protocol mixup")?,
            }
        }
        Command::Stats => {
            let p = shared.current();
            writeln!(writer, "OK")?;
            writer.write_all(shared.stats.render().as_bytes())?;
            writer.write_all(p.view.stats_text().as_bytes())?;
            writeln!(writer, ".")?;
        }
        Command::Metrics => {
            let p = shared.current();
            writeln!(writer, "OK")?;
            writer.write_all(shared.stats.render_prometheus(p.view.version()).as_bytes())?;
            writeln!(writer, ".")?;
        }
        Command::Quit => {
            writeln!(writer, "OK bye")?;
            return Ok(true);
        }
        Command::Shutdown => {
            writeln!(writer, "OK shutting down")?;
            shared.shutdown.store(true, Ordering::SeqCst);
            return Ok(true);
        }
    }
    Ok(false)
}

/// Answer one `QUERY`: snapshot-cache hit or execute-and-cache.
fn handle_query(
    rql: &str,
    shared: &Shared,
    writer: &mut BufWriter<TcpStream>,
) -> std::io::Result<()> {
    shared.stats.queries.fetch_add(1, Ordering::Relaxed);
    let p = shared.current();
    if let Some(hit) = p.cache.lock().unwrap().get(rql) {
        shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        return writer.write_all(hit.as_bytes());
    }
    shared.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
    let response = run_query(&p.view, rql);
    if shared.cfg.cache_entries > 0 && response.len() <= shared.cfg.cache_max_bytes {
        let evicted = p.cache.lock().unwrap().insert(
            rql,
            Arc::from(response.as_str()),
            shared.cfg.cache_entries,
        );
        if evicted > 0 {
            shared.stats.cache_evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }
    writer.write_all(response.as_bytes())
}

/// Execute a query on a snapshot and encode the full response.
fn run_query(view: &SnapshotView, rql: &str) -> String {
    match view.query(rql) {
        Ok(r) => {
            let mut out = String::with_capacity(64 + r.rows.len() * 24);
            out.push_str(&format!(
                "OK {} version={} engine={}\n",
                r.rows.len(),
                view.version(),
                r.engine
            ));
            for row in &r.rows {
                out.push_str(&protocol::encode_row(row));
                out.push('\n');
            }
            out.push_str(".\n");
            out
        }
        Err(e) => format!("{}\n", protocol::err_line(&e)),
    }
}

/// Ship a write op to the writer thread and wait for its reply. The send
/// blocks when the bounded queue is full — that is the backpressure.
fn send_write(
    write_tx: &SyncSender<WriteReq>,
    op: WriteOp,
) -> std::result::Result<WriteReply, String> {
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    write_tx
        .send(WriteReq { op, reply: reply_tx })
        .map_err(|_| "writer is shut down".to_string())?;
    reply_rx.recv().map_err(|_| "writer hung up before replying".to_string())
}

fn write_ingest_reply(
    writer: &mut BufWriter<TcpStream>,
    reply: std::result::Result<WriteReply, String>,
) -> std::io::Result<()> {
    match reply {
        Ok(WriteReply::Ingest { rows, version }) => writeln!(writer, "OK {rows} version={version}"),
        Ok(WriteReply::Failed(e)) | Err(e) => writeln!(writer, "ERR {}", e.replace('\n', "; ")),
        Ok(WriteReply::Script { .. }) => writeln!(writer, "ERR writer protocol mixup"),
    }
}
