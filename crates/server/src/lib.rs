//! # rex-server — a concurrent TCP front-end for REX
//!
//! This crate puts a [`rex::Session`] behind a socket with
//! **versioned snapshot serving** (MVCC-lite):
//!
//! - One OS thread per connection; a line-oriented text protocol
//!   (`HELLO` / `QUERY` / `INSERT` / `BATCH` / `SCRIPT` / `STATS` /
//!   `METRICS` / `QUIT` / `SHUTDOWN` — grammar in `docs/SERVER.md`).
//! - Reads execute lock-free against an immutable, atomically swappable
//!   `Arc<SnapshotView>`; any number of connections query concurrently
//!   without blocking each other or the writer.
//! - Writes flow through a bounded channel to a single writer thread
//!   that owns the `Session`, applies mutations, runs incremental view
//!   maintenance, bumps the version, and publishes the next snapshot.
//!   A write is acknowledged only after a covering snapshot is
//!   published, so every client reads its own writes.
//! - Each published snapshot carries a result cache (query text →
//!   encoded response); immutability makes the cache trivially
//!   consistent, and it is dropped wholesale at the next publish.
//!
//! ```
//! use rex::Session;
//! use rex_core::tuple;
//! use rex_server::{Client, Server, ServerConfig};
//!
//! let mut session = Session::local();
//! session.query("CREATE TABLE edges (src INT, dst INT)").unwrap();
//! let server = Server::start(session, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let (mut client, _hello) = Client::connect(server.local_addr()).unwrap();
//! client.insert("edges", &[tuple![1i64, 2i64]]).unwrap();
//! let reply = client.query("SELECT * FROM edges").unwrap();
//! assert_eq!(reply.rows.len(), 1);
//! client.quit().unwrap();
//! server.shutdown().unwrap();
//! ```

pub mod client;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::{Client, QueryReply, WriteAck};
pub use server::{FaultInjection, Server, ServerConfig, ShutdownHandle};
pub use stats::{ServerStats, PUBLISH_BUCKETS_US};
