//! The rex-server wire protocol: a line-oriented text codec.
//!
//! Every request is one line (`\n`-terminated); multi-row payloads
//! (`BATCH`, `SCRIPT`) announce a line count up front and stream that
//! many following lines. Responses are `OK …` / `ERR …` status lines;
//! multi-line response bodies (query rows, stats) end with a lone `.`
//! terminator line, SMTP-style. The full grammar lives in
//! `docs/SERVER.md`.
//!
//! Values travel in a *typed* encoding so a row round-trips exactly —
//! `i:42`, `d:2.5`, `s:hello`, `b:true`, `n`, `l:[i:1,i:2]` — with
//! backslash escapes for every structural byte that may occur inside a
//! string. Fields are tab-separated; `INSERT` packs multiple rows on one
//! line with `;` separators.

use rex_core::error::{Result, RexError};
use rex_core::tuple::Tuple;
use rex_core::value::Value;
use std::fmt::Write as _;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `HELLO [client-name]` — handshake; the server answers its identity
    /// and the current snapshot version.
    Hello(Option<String>),
    /// `QUERY <rql>` — run a read-only query against the current
    /// published snapshot.
    Query(String),
    /// `INSERT <table> <row>[;<row>]*` — one-line write through the
    /// writer thread.
    Insert { table: String, rows: Vec<Tuple> },
    /// `BATCH <table> <n>` — header for a streamed batch: `n` row lines
    /// follow, then the whole batch goes through the writer as one
    /// streamed ingest.
    Batch { table: String, count: usize },
    /// `SCRIPT <n>` — header for a multi-statement script: `n` statement
    /// lines follow; they run serialized on the writer's session (the
    /// write side also accepts DDL this way).
    Script { count: usize },
    /// `STATS` — server counters plus the published snapshot's report.
    Stats,
    /// `METRICS` — the same counters in Prometheus text exposition.
    Metrics,
    /// `QUIT` — close this connection.
    Quit,
    /// `SHUTDOWN` — begin graceful server shutdown (what SIGTERM does).
    Shutdown,
}

/// Parse one request line (without its trailing newline).
pub fn parse_command(line: &str) -> Result<Command> {
    let line = line.trim_end_matches(['\r', '\n']);
    let (verb, rest) = match line.split_once(' ') {
        Some((v, r)) => (v, r.trim()),
        None => (line.trim(), ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "HELLO" => Ok(Command::Hello((!rest.is_empty()).then(|| rest.to_string()))),
        "QUERY" if !rest.is_empty() => Ok(Command::Query(rest.to_string())),
        "QUERY" => Err(proto("QUERY needs an RQL statement")),
        "INSERT" => {
            let (table, body) = rest
                .split_once(' ')
                .ok_or_else(|| proto("INSERT needs a table name and at least one row"))?;
            let rows = split_unescaped(body.trim(), ';')
                .into_iter()
                .map(|r| decode_row(&r))
                .collect::<Result<Vec<_>>>()?;
            Ok(Command::Insert { table: table.to_string(), rows })
        }
        "BATCH" => {
            let (table, n) =
                rest.split_once(' ').ok_or_else(|| proto("BATCH needs a table and a row count"))?;
            let count =
                n.trim().parse().map_err(|_| proto(&format!("bad BATCH row count: {n}")))?;
            Ok(Command::Batch { table: table.to_string(), count })
        }
        "SCRIPT" => {
            let count =
                rest.parse().map_err(|_| proto(&format!("bad SCRIPT statement count: {rest}")))?;
            Ok(Command::Script { count })
        }
        "STATS" => Ok(Command::Stats),
        "METRICS" => Ok(Command::Metrics),
        "QUIT" => Ok(Command::Quit),
        "SHUTDOWN" => Ok(Command::Shutdown),
        other => Err(proto(&format!(
            "unknown command {other:?} \
             (expected HELLO/QUERY/INSERT/BATCH/SCRIPT/STATS/METRICS/QUIT)"
        ))),
    }
}

fn proto(msg: &str) -> RexError {
    RexError::Parse { line: 0, col: 0, message: format!("protocol: {msg}") }
}

// ---- value & row codec ---------------------------------------------------

/// Bytes that must be escaped inside an encoded string: the field, row,
/// list, and line separators of the protocol, plus the escape itself.
const ESCAPED: &[(char, char)] = &[
    ('\\', '\\'),
    ('\t', 't'),
    ('\n', 'n'),
    ('\r', 'r'),
    (';', ';'),
    (',', ','),
    ('[', '['),
    (']', ']'),
];

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match ESCAPED.iter().find(|(raw, _)| *raw == c) {
            Some((_, enc)) => {
                out.push('\\');
                out.push(*enc);
            }
            None => out.push(c),
        }
    }
}

fn unescape(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        let e = chars.next().ok_or_else(|| proto("dangling escape at end of string"))?;
        match ESCAPED.iter().find(|(_, enc)| *enc == e) {
            Some((raw, _)) => out.push(*raw),
            None => return Err(proto(&format!("unknown escape \\{e}"))),
        }
    }
    Ok(out)
}

/// Encode one value in the typed wire form.
pub fn encode_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push('n'),
        Value::Bool(b) => {
            let _ = write!(out, "b:{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "i:{i}");
        }
        // Rust's `{}` for f64 prints the shortest string that parses back
        // to the same bits, so doubles round-trip exactly.
        Value::Double(d) => {
            let _ = write!(out, "d:{d}");
        }
        Value::Str(s) => {
            out.push_str("s:");
            escape_into(s, out);
        }
        Value::List(items) => {
            out.push_str("l:[");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_value(item, out);
            }
            out.push(']');
        }
    }
}

/// Decode one value from the typed wire form.
pub fn decode_value(s: &str) -> Result<Value> {
    if s == "n" {
        return Ok(Value::Null);
    }
    let (tag, body) =
        s.split_once(':').ok_or_else(|| proto(&format!("bad value encoding: {s:?}")))?;
    match tag {
        "b" => match body {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(proto(&format!("bad boolean: {body:?}"))),
        },
        "i" => body
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| proto(&format!("bad integer: {body:?}"))),
        "d" => body
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|_| proto(&format!("bad double: {body:?}"))),
        "s" => Ok(Value::str(unescape(body)?)),
        "l" => {
            let inner = body
                .strip_prefix('[')
                .and_then(|b| b.strip_suffix(']'))
                .ok_or_else(|| proto(&format!("bad list encoding: {body:?}")))?;
            if inner.is_empty() {
                return Ok(Value::list(Vec::new()));
            }
            let items = split_unescaped(inner, ',')
                .into_iter()
                .map(|e| decode_value(&e))
                .collect::<Result<Vec<_>>>()?;
            Ok(Value::list(items))
        }
        other => Err(proto(&format!("unknown value tag {other:?}"))),
    }
}

/// Encode a whole row: tab-separated typed values.
pub fn encode_row(t: &Tuple) -> String {
    let mut out = String::new();
    for (i, v) in t.values().iter().enumerate() {
        if i > 0 {
            out.push('\t');
        }
        encode_value(v, &mut out);
    }
    out
}

/// Decode a row line into a [`Tuple`]. The empty string is the 0-ary row.
pub fn decode_row(line: &str) -> Result<Tuple> {
    let line = line.trim_end_matches(['\r', '\n']);
    if line.is_empty() {
        return Ok(Tuple::empty());
    }
    let values = line.split('\t').map(decode_value).collect::<Result<Vec<_>>>()?;
    Ok(Tuple::new(values))
}

/// Split on a separator, honoring backslash escapes (a `\;` inside a
/// string does not split). List nesting is flat because `[`/`]`/`,` are
/// escaped inside strings, so bracket depth tracking suffices.
fn split_unescaped(s: &str, sep: char) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut escaped = false;
    let mut depth = 0usize;
    for c in s.chars() {
        if escaped {
            cur.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' => {
                cur.push(c);
                escaped = true;
            }
            '[' => {
                cur.push(c);
                depth += 1;
            }
            ']' => {
                cur.push(c);
                depth = depth.saturating_sub(1);
            }
            c if c == sep && depth == 0 => parts.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

/// Flatten an error into a single `ERR` status line (newlines collapsed
/// so the line framing survives any message).
pub fn err_line(e: &RexError) -> String {
    format!("ERR {}", e.to_string().replace('\n', "; "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;

    #[test]
    fn values_round_trip_exactly() {
        let gnarly = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Double(0.1 + 0.2),
            Value::Double(f64::NAN),
            Value::Double(f64::NEG_INFINITY),
            Value::Double(-0.0),
            Value::str(""),
            Value::str("tabs\tsemis;commas,brackets[]\\back\nnewline\rcr"),
            Value::str("plain"),
            Value::list(vec![]),
            Value::list(vec![Value::Int(1), Value::str("a;b"), Value::list(vec![Value::Null])]),
        ];
        for v in &gnarly {
            let mut enc = String::new();
            encode_value(v, &mut enc);
            let back = decode_value(&enc).unwrap();
            // Value's total equality: NaN == NaN here.
            assert_eq!(&back, v, "through {enc:?}");
        }
    }

    #[test]
    fn rows_round_trip_and_reject_garbage() {
        let t = tuple![1i64, 2.5f64, "x;y\tz"];
        assert_eq!(decode_row(&encode_row(&t)).unwrap(), t);
        assert_eq!(decode_row("").unwrap(), Tuple::empty());
        assert!(decode_row("i:notanint").is_err());
        assert!(decode_row("q:wat").is_err());
        assert!(decode_value("s:dangling\\").is_err());
    }

    #[test]
    fn commands_parse() {
        assert_eq!(parse_command("HELLO"), Ok(Command::Hello(None)));
        assert_eq!(parse_command("hello bench-1"), Ok(Command::Hello(Some("bench-1".into()))));
        assert_eq!(
            parse_command("QUERY SELECT * FROM t WHERE x > 1"),
            Ok(Command::Query("SELECT * FROM t WHERE x > 1".into()))
        );
        assert_eq!(
            parse_command("INSERT edges i:1\ti:2;i:3\ti:4"),
            Ok(Command::Insert {
                table: "edges".into(),
                rows: vec![tuple![1i64, 2i64], tuple![3i64, 4i64]],
            })
        );
        assert_eq!(
            parse_command("BATCH edges 128"),
            Ok(Command::Batch { table: "edges".into(), count: 128 })
        );
        assert_eq!(parse_command("SCRIPT 3"), Ok(Command::Script { count: 3 }));
        assert_eq!(parse_command("STATS"), Ok(Command::Stats));
        assert_eq!(parse_command("metrics"), Ok(Command::Metrics));
        assert_eq!(parse_command("QUIT"), Ok(Command::Quit));
        assert_eq!(parse_command("SHUTDOWN"), Ok(Command::Shutdown));
        for bad in ["", "QUERY", "INSERT t", "BATCH t x", "SCRIPT many", "NOPE 1"] {
            assert!(parse_command(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn insert_rows_with_escaped_separators_stay_whole() {
        let mut enc = String::new();
        encode_value(&Value::str("a;b"), &mut enc);
        let cmd = parse_command(&format!("INSERT t {enc}")).unwrap();
        let Command::Insert { rows, .. } = cmd else { panic!() };
        assert_eq!(rows, vec![tuple!["a;b"]]);
    }
}
