//! `rex-serverd` — the rex server daemon.
//!
//! ```text
//! rex-serverd [--addr HOST:PORT] [--engine local|cluster[:N]]
//!             [--init FILE.rql] [--write-queue N] [--coalesce N]
//!             [--threads N] [--telemetry]
//! ```
//!
//! Binds, prints `LISTENING <addr>` on stdout (port 0 resolves to the
//! real ephemeral port — scripts parse this line), then serves until a
//! client sends `SHUTDOWN` or the process receives SIGINT/SIGTERM, at
//! which point it unwinds gracefully: stop accepting, finish in-flight
//! commands, join every thread, exit 0.

use rex::Session;
use rex_server::{Server, ServerConfig};
use std::process::ExitCode;
use std::time::Duration;

/// Minimal signal hookup without any dependency: `signal(2)` is in
/// libc, which every Rust binary already links. The handler only sets
/// an atomic flag; the main loop polls it.
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static FIRED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        FIRED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    pub fn fired() -> bool {
        FIRED.load(Ordering::SeqCst)
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("rex-serverd: {err}");
    eprintln!(
        "usage: rex-serverd [--addr HOST:PORT] [--engine local|cluster[:N]] \
         [--init FILE.rql] [--write-queue N] [--coalesce N] [--threads N] [--telemetry]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7462".to_string();
    let mut engine = "local".to_string();
    let mut init: Option<String> = None;
    let mut telemetry = false;
    let mut cfg = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        let value = match flag.as_str() {
            "--addr" => take("--addr").map(|v| addr = v),
            "--engine" => take("--engine").map(|v| engine = v),
            "--init" => take("--init").map(|v| init = Some(v)),
            "--write-queue" => take("--write-queue").and_then(|v| {
                v.parse().map(|n| cfg.write_queue = n).map_err(|_| format!("bad count: {v}"))
            }),
            "--coalesce" => take("--coalesce").and_then(|v| {
                v.parse().map(|n| cfg.coalesce = n).map_err(|_| format!("bad count: {v}"))
            }),
            // Worker-thread pool shared by all connections; 0/absent
            // inherits REX_THREADS or the core count, uncapped.
            "--threads" => take("--threads").and_then(|v| {
                v.parse().map(|n| cfg.threads = n).map_err(|_| format!("bad count: {v}"))
            }),
            "--telemetry" => {
                telemetry = true;
                Ok(())
            }
            "--help" | "-h" => {
                println!(
                    "usage: rex-serverd [--addr HOST:PORT] [--engine local|cluster[:N]] \
                     [--init FILE.rql] [--write-queue N] [--coalesce N] [--threads N] \
                     [--telemetry]"
                );
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(e) = value {
            return usage(&e);
        }
    }

    let mut session = match engine.as_str() {
        "local" => Session::local(),
        other => match other.strip_prefix("cluster") {
            Some(rest) => {
                let workers = match rest.strip_prefix(':') {
                    None if rest.is_empty() => 4,
                    Some(n) => match n.parse() {
                        Ok(n) => n,
                        Err(_) => return usage(&format!("bad worker count in --engine {other}")),
                    },
                    None => return usage(&format!("unknown engine {other:?}")),
                };
                Session::cluster(workers)
            }
            None => return usage(&format!("unknown engine {other:?} (local|cluster[:N])")),
        },
    };
    if telemetry {
        session.set_telemetry(true);
    }

    if let Some(path) = init {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("rex-serverd: cannot read --init {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // One statement per non-empty, non-comment line, like docs/RQL.md
        // examples.
        for (i, line) in text.lines().enumerate() {
            let stmt = line.trim();
            if stmt.is_empty() || stmt.starts_with("--") {
                continue;
            }
            if let Err(e) = session.query(stmt) {
                eprintln!("rex-serverd: --init {path}:{}: {e}", i + 1);
                return ExitCode::FAILURE;
            }
        }
    }

    sig::install();

    let server = match Server::start(session, &addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rex-serverd: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("LISTENING {}", server.local_addr());

    // Bridge the signal flag into the server's shutdown flag, then let
    // wait() unwind everything gracefully.
    let handle = server.shutdown_handle();
    let waiter = std::thread::spawn(move || {
        while !sig::fired() && !handle.is_shutdown() {
            std::thread::sleep(Duration::from_millis(50));
        }
        handle.trigger();
    });
    let result = server.wait();
    let _ = waiter.join();
    match result {
        Ok(()) => {
            println!("rex-serverd: clean shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rex-serverd: shutdown error: {e}");
            ExitCode::FAILURE
        }
    }
}
