//! A blocking TCP client for rex-server.
//!
//! One [`Client`] is one connection: a synchronous request/response
//! conversation in the line protocol ([`crate::protocol`]). For
//! throughput, [`query_pipelined`](Client::query_pipelined) keeps a
//! window of requests in flight so the server's batch-flush path can
//! amortize syscalls across commands.

use crate::protocol::{self};
use rex_core::error::{Result, RexError};
use rex_core::tuple::Tuple;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// The decoded reply to one `QUERY`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Result rows, in the server's presentation order.
    pub rows: Vec<Tuple>,
    /// The snapshot version the query executed against.
    pub version: u64,
    /// Engine that executed it (`local` / `cluster`).
    pub engine: String,
}

/// The decoded reply to one write (`INSERT` / `BATCH`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// Rows ingested by this operation.
    pub rows: usize,
    /// The session version after the write; a snapshot at least this new
    /// is published before the ack is sent (read-your-writes).
    pub version: u64,
}

/// A blocking rex-server connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn io_err(what: &str, e: std::io::Error) -> RexError {
    RexError::Exec(format!("client: {what}: {e}"))
}

impl Client {
    /// Connect and say `HELLO`; returns the client plus the server's
    /// greeting (name, version, engine, snapshot version).
    pub fn connect<A: ToSocketAddrs + std::fmt::Debug>(addr: A) -> Result<(Client, String)> {
        let stream = TcpStream::connect(&addr)
            .map_err(|e| RexError::Exec(format!("client: connect {addr:?}: {e}")))?;
        stream.set_nodelay(true).map_err(|e| io_err("nodelay", e))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| io_err("clone stream", e))?);
        let mut client = Client { reader, writer: BufWriter::new(stream) };
        client.send_line("HELLO rex-client")?;
        let greeting = client.read_ok_line()?;
        Ok((client, greeting))
    }

    /// Run one read-only query against the current published snapshot.
    pub fn query(&mut self, rql: &str) -> Result<QueryReply> {
        self.send_line(&format!("QUERY {rql}"))?;
        self.read_query_reply()
    }

    /// Run `queries` with up to `window` requests in flight at once.
    /// Replies come back in request order.
    pub fn query_pipelined(
        &mut self,
        queries: &[String],
        window: usize,
    ) -> Result<Vec<QueryReply>> {
        let window = window.max(1);
        let mut replies = Vec::with_capacity(queries.len());
        let mut sent = 0usize;
        while replies.len() < queries.len() {
            // Refill in bursts (not one-at-a-time per reply, which would
            // degenerate to a flush syscall per query): top the window
            // up only once it has half-drained.
            if sent < queries.len() && sent - replies.len() <= window / 2 {
                while sent < queries.len() && sent - replies.len() < window {
                    writeln!(self.writer, "QUERY {}", queries[sent])
                        .map_err(|e| io_err("send", e))?;
                    sent += 1;
                }
                self.writer.flush().map_err(|e| io_err("flush", e))?;
            }
            replies.push(self.read_query_reply()?);
        }
        Ok(replies)
    }

    /// Run `queries` pipelined like
    /// [`query_pipelined`](Client::query_pipelined), but *skim* the
    /// replies: verify framing and headers, count rows, skip decoding
    /// row values. This is the lean path for throughput measurement and
    /// bulk cache warming — with `window = 1` it degenerates to strict
    /// request/response, which makes sequential-vs-pipelined
    /// comparisons apples-to-apples. Returns total rows seen and the
    /// last reply's snapshot version.
    pub fn query_pipelined_skim(
        &mut self,
        queries: &[String],
        window: usize,
    ) -> Result<(usize, u64)> {
        let window = window.max(1);
        let mut total_rows = 0usize;
        let mut last_version = 0u64;
        let mut sent = 0usize;
        let mut recvd = 0usize;
        let mut line = String::new();
        while recvd < queries.len() {
            // Burst refill once half the window has drained; see
            // `query_pipelined` for why.
            if sent < queries.len() && sent - recvd <= window / 2 {
                while sent < queries.len() && sent - recvd < window {
                    self.writer.write_all(b"QUERY ").map_err(|e| io_err("send", e))?;
                    self.writer
                        .write_all(queries[sent].as_bytes())
                        .map_err(|e| io_err("send", e))?;
                    self.writer.write_all(b"\n").map_err(|e| io_err("send", e))?;
                    sent += 1;
                }
                self.writer.flush().map_err(|e| io_err("flush", e))?;
            }
            let (rows, version) = self.skim_reply(&mut line)?;
            total_rows += rows;
            last_version = version;
            recvd += 1;
        }
        Ok((total_rows, last_version))
    }

    /// Read one query reply, checking framing but not decoding rows.
    fn skim_reply(&mut self, line: &mut String) -> Result<(usize, u64)> {
        line.clear();
        let n = self.reader.read_line(line).map_err(|e| io_err("read", e))?;
        if n == 0 {
            return Err(RexError::Exec("client: server closed the connection".into()));
        }
        let header = line.trim_end_matches(['\r', '\n']);
        let header = if let Some(rest) = header.strip_prefix("OK ") {
            rest
        } else if let Some(rest) = header.strip_prefix("ERR ") {
            return Err(RexError::Exec(format!("server: {rest}")));
        } else {
            return Err(bad_reply("status", header));
        };
        let rows: usize = header
            .split_whitespace()
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad_reply("query header", header))?;
        let version =
            field_u64(header, "version=").ok_or_else(|| bad_reply("query header", header))?;
        for _ in 0..rows + 1 {
            line.clear();
            if self.reader.read_line(line).map_err(|e| io_err("read", e))? == 0 {
                return Err(RexError::Exec("client: reply truncated".into()));
            }
        }
        if line.trim_end_matches(['\r', '\n']) != "." {
            return Err(bad_reply("terminator", line));
        }
        Ok((rows, version))
    }

    /// Insert rows with a one-line `INSERT` (fine for a handful of rows;
    /// use [`batch`](Client::batch) for bulk loads).
    pub fn insert(&mut self, table: &str, rows: &[Tuple]) -> Result<WriteAck> {
        if rows.is_empty() {
            return Err(RexError::Exec("client: INSERT needs at least one row".into()));
        }
        let body = rows.iter().map(protocol::encode_row).collect::<Vec<_>>().join(";");
        self.send_line(&format!("INSERT {table} {body}"))?;
        self.read_write_ack()
    }

    /// Stream a bulk batch: `BATCH` header + one line per row.
    pub fn batch(&mut self, table: &str, rows: &[Tuple]) -> Result<WriteAck> {
        writeln!(self.writer, "BATCH {table} {}", rows.len()).map_err(|e| io_err("send", e))?;
        for row in rows {
            writeln!(self.writer, "{}", protocol::encode_row(row))
                .map_err(|e| io_err("send", e))?;
        }
        self.writer.flush().map_err(|e| io_err("flush", e))?;
        self.read_write_ack()
    }

    /// Run statements (queries or DDL) serialized on the server's writer
    /// session. Returns per-statement results (row count or error text)
    /// plus the session version afterwards.
    pub fn script(
        &mut self,
        stmts: &[&str],
    ) -> Result<(Vec<std::result::Result<usize, String>>, u64)> {
        writeln!(self.writer, "SCRIPT {}", stmts.len()).map_err(|e| io_err("send", e))?;
        for s in stmts {
            if s.contains('\n') {
                return Err(RexError::Exec("client: script statements must be one line".into()));
            }
            writeln!(self.writer, "{s}").map_err(|e| io_err("send", e))?;
        }
        self.writer.flush().map_err(|e| io_err("flush", e))?;
        let header = self.read_ok_line()?;
        let version =
            field_u64(&header, "version=").ok_or_else(|| bad_reply("script header", &header))?;
        let count: usize = header
            .split_whitespace()
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad_reply("script header", &header))?;
        let mut results = Vec::with_capacity(count);
        for _ in 0..count {
            let line = self.read_line()?;
            if let Some(rest) = line.strip_prefix("OK") {
                let rows = rest.trim().parse().map_err(|_| bad_reply("script result", &line))?;
                results.push(Ok(rows));
            } else if let Some(rest) = line.strip_prefix("ERR ") {
                results.push(Err(rest.to_string()));
            } else {
                return Err(bad_reply("script result", &line));
            }
        }
        self.expect_terminator()?;
        Ok((results, version))
    }

    /// Fetch the `STATS` report (server counters + snapshot report) as
    /// raw `key value` lines.
    pub fn stats(&mut self) -> Result<String> {
        self.send_line("STATS")?;
        self.read_ok_line()?;
        let mut body = String::new();
        loop {
            let line = self.read_line()?;
            if line == "." {
                return Ok(body);
            }
            body.push_str(&line);
            body.push('\n');
        }
    }

    /// Fetch the `METRICS` report — the server's counters in Prometheus
    /// text exposition (see docs/OBSERVABILITY.md for the metric names).
    pub fn metrics(&mut self) -> Result<String> {
        self.send_line("METRICS")?;
        self.read_ok_line()?;
        let mut body = String::new();
        loop {
            let line = self.read_line()?;
            if line == "." {
                return Ok(body);
            }
            body.push_str(&line);
            body.push('\n');
        }
    }

    /// Close the connection politely.
    pub fn quit(mut self) -> Result<()> {
        self.send_line("QUIT")?;
        self.read_ok_line()?;
        Ok(())
    }

    /// Ask the server to shut down gracefully, then close.
    pub fn shutdown_server(mut self) -> Result<()> {
        self.send_line("SHUTDOWN")?;
        self.read_ok_line()?;
        Ok(())
    }

    // ---- wire helpers ----------------------------------------------------

    fn send_line(&mut self, line: &str) -> Result<()> {
        writeln!(self.writer, "{line}").map_err(|e| io_err("send", e))?;
        self.writer.flush().map_err(|e| io_err("flush", e))
    }

    fn read_line(&mut self) -> Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| io_err("read", e))?;
        if n == 0 {
            return Err(RexError::Exec("client: server closed the connection".into()));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Read a status line; `OK …` yields the text after `OK`, `ERR …`
    /// becomes an error.
    fn read_ok_line(&mut self) -> Result<String> {
        let line = self.read_line()?;
        if let Some(rest) = line.strip_prefix("OK") {
            Ok(rest.trim_start().to_string())
        } else if let Some(rest) = line.strip_prefix("ERR ") {
            Err(RexError::Exec(format!("server: {rest}")))
        } else {
            Err(bad_reply("status", &line))
        }
    }

    fn read_query_reply(&mut self) -> Result<QueryReply> {
        let header = self.read_ok_line()?;
        let count: usize = header
            .split_whitespace()
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad_reply("query header", &header))?;
        let version =
            field_u64(&header, "version=").ok_or_else(|| bad_reply("query header", &header))?;
        let engine = header
            .split_whitespace()
            .find_map(|f| f.strip_prefix("engine="))
            .unwrap_or("?")
            .to_string();
        let mut rows = Vec::with_capacity(count);
        for _ in 0..count {
            let line = self.read_line()?;
            rows.push(protocol::decode_row(&line)?);
        }
        self.expect_terminator()?;
        Ok(QueryReply { rows, version, engine })
    }

    fn read_write_ack(&mut self) -> Result<WriteAck> {
        let header = self.read_ok_line()?;
        let rows = header
            .split_whitespace()
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| bad_reply("write ack", &header))?;
        let version =
            field_u64(&header, "version=").ok_or_else(|| bad_reply("write ack", &header))?;
        Ok(WriteAck { rows, version })
    }

    fn expect_terminator(&mut self) -> Result<()> {
        let line = self.read_line()?;
        if line == "." {
            Ok(())
        } else {
            Err(bad_reply("terminator", &line))
        }
    }
}

fn bad_reply(what: &str, line: &str) -> RexError {
    RexError::Exec(format!("client: malformed {what} line from server: {line:?}"))
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    line.split_whitespace().find_map(|f| f.strip_prefix(key)).and_then(|v| v.parse().ok())
}
