//! Server-side traffic counters, all lock-free atomics.
//!
//! These count *traffic* (connections, queries served, cache hits, rows
//! ingested, publishes and their latency); everything about the *data* —
//! per-table row counts, view strategies, snapshot version — is read off
//! the published [`SnapshotView`](rex::snapshot::SnapshotView) via
//! [`stats_text`](rex::snapshot::SnapshotView::stats_text), the same
//! structures queries execute against, so `STATS` numbers cannot drift
//! from the engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Monotonic counters shared by every connection thread and the writer.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Connections currently open.
    pub open_connections: AtomicU64,
    /// QUERY commands answered (hits + misses).
    pub queries: AtomicU64,
    /// QUERY commands answered straight from the snapshot result cache.
    pub cache_hits: AtomicU64,
    /// Rows ingested through INSERT/BATCH.
    pub rows_inserted: AtomicU64,
    /// Write operations (INSERT/BATCH/SCRIPT) applied by the writer.
    pub write_ops: AtomicU64,
    /// Snapshots published by the writer thread.
    pub publishes: AtomicU64,
    /// Total nanoseconds spent building + swapping snapshots.
    pub publish_ns: AtomicU64,
    /// Worst single publish, nanoseconds.
    pub publish_max_ns: AtomicU64,
}

impl ServerStats {
    /// Record one snapshot publish taking `took`.
    pub fn record_publish(&self, took: Duration) {
        let ns = took.as_nanos() as u64;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.publish_ns.fetch_add(ns, Ordering::Relaxed);
        self.publish_max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Mean publish latency in microseconds (0 before the first publish).
    pub fn publish_mean_us(&self) -> f64 {
        let n = self.publishes.load(Ordering::Relaxed);
        if n == 0 {
            return 0.0;
        }
        self.publish_ns.load(Ordering::Relaxed) as f64 / n as f64 / 1_000.0
    }

    /// Render the traffic counters as `STATS` body lines.
    pub fn render(&self) -> String {
        let queries = self.queries.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        format!(
            "server.connections {}\nserver.open_connections {}\nserver.queries {}\n\
             server.cache_hits {}\nserver.rows_inserted {}\nserver.write_ops {}\n\
             server.publishes {}\nserver.publish_mean_us {:.1}\nserver.publish_max_us {:.1}\n",
            self.connections.load(Ordering::Relaxed),
            self.open_connections.load(Ordering::Relaxed),
            queries,
            hits,
            self.rows_inserted.load(Ordering::Relaxed),
            self.write_ops.load(Ordering::Relaxed),
            self.publishes.load(Ordering::Relaxed),
            self.publish_mean_us(),
            self.publish_max_ns.load(Ordering::Relaxed) as f64 / 1_000.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_latency_aggregates() {
        let s = ServerStats::default();
        assert_eq!(s.publish_mean_us(), 0.0);
        s.record_publish(Duration::from_micros(100));
        s.record_publish(Duration::from_micros(300));
        assert!((s.publish_mean_us() - 200.0).abs() < 1e-9);
        assert_eq!(s.publish_max_ns.load(Ordering::Relaxed), 300_000);
        let text = s.render();
        assert!(text.contains("server.publishes 2"), "{text}");
    }
}
