//! Server-side traffic counters, all lock-free atomics.
//!
//! These count *traffic* (connections, queries served, cache hits, rows
//! ingested, publishes and their latency); everything about the *data* —
//! per-table row counts, view strategies, snapshot version — is read off
//! the published [`SnapshotView`](rex::snapshot::SnapshotView) via
//! [`stats_text`](rex::snapshot::SnapshotView::stats_text), the same
//! structures queries execute against, so `STATS` numbers cannot drift
//! from the engine.
//!
//! The monotonic counters are enumerated once, by [`ServerStats::counters`];
//! both the `STATS` text body ([`render`](ServerStats::render)) and the
//! `METRICS` Prometheus exposition
//! ([`render_prometheus`](ServerStats::render_prometheus)) are generated
//! from that single list, so the two surfaces cannot disagree about which
//! counters exist or what they are called.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds, in microseconds, of the publish-latency histogram
/// buckets; an implicit `+Inf` bucket follows the last entry.
pub const PUBLISH_BUCKETS_US: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// Monotonic counters shared by every connection thread and the writer.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Connections currently open.
    pub open_connections: AtomicU64,
    /// QUERY commands answered (hits + misses).
    pub queries: AtomicU64,
    /// QUERY commands answered straight from the snapshot result cache.
    pub cache_hits: AtomicU64,
    /// QUERY commands that had to execute (no cache entry).
    pub cache_misses: AtomicU64,
    /// Result-cache entries dropped to make room under the capacity cap.
    pub cache_evictions: AtomicU64,
    /// Rows ingested through INSERT/BATCH.
    pub rows_inserted: AtomicU64,
    /// Write operations (INSERT/BATCH/SCRIPT) applied by the writer.
    pub write_ops: AtomicU64,
    /// Snapshots published by the writer thread.
    pub publishes: AtomicU64,
    /// Total nanoseconds spent building + swapping snapshots.
    pub publish_ns: AtomicU64,
    /// Worst single publish, nanoseconds.
    pub publish_max_ns: AtomicU64,
    /// Publish-latency histogram: one count per bucket of
    /// [`PUBLISH_BUCKETS_US`], plus the trailing `+Inf` bucket.
    publish_buckets: [AtomicU64; PUBLISH_BUCKETS_US.len() + 1],
}

impl ServerStats {
    /// Record one snapshot publish taking `took`.
    pub fn record_publish(&self, took: Duration) {
        let ns = took.as_nanos() as u64;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.publish_ns.fetch_add(ns, Ordering::Relaxed);
        self.publish_max_ns.fetch_max(ns, Ordering::Relaxed);
        let us = ns / 1_000;
        let idx =
            PUBLISH_BUCKETS_US.iter().position(|le| us <= *le).unwrap_or(PUBLISH_BUCKETS_US.len());
        self.publish_buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Mean publish latency in microseconds (0 before the first publish).
    pub fn publish_mean_us(&self) -> f64 {
        let n = self.publishes.load(Ordering::Relaxed);
        if n == 0 {
            return 0.0;
        }
        self.publish_ns.load(Ordering::Relaxed) as f64 / n as f64 / 1_000.0
    }

    /// Every monotonic counter with its stable name — the single source
    /// both `STATS` and `METRICS` render from.
    pub fn counters(&self) -> [(&'static str, u64); 8] {
        [
            ("connections", self.connections.load(Ordering::Relaxed)),
            ("queries", self.queries.load(Ordering::Relaxed)),
            ("cache_hits", self.cache_hits.load(Ordering::Relaxed)),
            ("cache_misses", self.cache_misses.load(Ordering::Relaxed)),
            ("cache_evictions", self.cache_evictions.load(Ordering::Relaxed)),
            ("rows_inserted", self.rows_inserted.load(Ordering::Relaxed)),
            ("write_ops", self.write_ops.load(Ordering::Relaxed)),
            ("publishes", self.publishes.load(Ordering::Relaxed)),
        ]
    }

    /// Render the traffic counters as `STATS` body lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            let _ = writeln!(out, "server.{name} {v}");
            // The open-connections gauge keeps its historical slot right
            // after the lifetime total.
            if name == "connections" {
                let _ = writeln!(
                    out,
                    "server.open_connections {}",
                    self.open_connections.load(Ordering::Relaxed)
                );
            }
        }
        let _ = writeln!(out, "server.publish_mean_us {:.1}", self.publish_mean_us());
        let _ = writeln!(
            out,
            "server.publish_max_us {:.1}",
            self.publish_max_ns.load(Ordering::Relaxed) as f64 / 1_000.0
        );
        out
    }

    /// Render the Prometheus text exposition the `METRICS` command
    /// serves: every monotonic counter as `rex_<name>_total`, the
    /// open-connections and snapshot-version gauges, and the
    /// publish-latency histogram with cumulative buckets.
    pub fn render_prometheus(&self, snapshot_version: u64) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            let _ = writeln!(out, "# TYPE rex_{name}_total counter");
            let _ = writeln!(out, "rex_{name}_total {v}");
        }
        let _ = writeln!(out, "# TYPE rex_open_connections gauge");
        let _ =
            writeln!(out, "rex_open_connections {}", self.open_connections.load(Ordering::Relaxed));
        let _ = writeln!(out, "# TYPE rex_snapshot_version gauge");
        let _ = writeln!(out, "rex_snapshot_version {snapshot_version}");
        // Worker-thread permits still available in the process-wide
        // budget; -1 when no `--threads` cap is configured (unlimited).
        let budget = match rex::core::thread_budget::available() {
            Some(n) => n as i64,
            None => -1,
        };
        let _ = writeln!(out, "# TYPE rex_thread_budget_available gauge");
        let _ = writeln!(out, "rex_thread_budget_available {budget}");
        let _ = writeln!(out, "# TYPE rex_publish_latency_us histogram");
        let mut cumulative = 0u64;
        for (i, le) in PUBLISH_BUCKETS_US.iter().enumerate() {
            cumulative += self.publish_buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "rex_publish_latency_us_bucket{{le=\"{le}\"}} {cumulative}");
        }
        cumulative += self.publish_buckets[PUBLISH_BUCKETS_US.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "rex_publish_latency_us_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(
            out,
            "rex_publish_latency_us_sum {}",
            self.publish_ns.load(Ordering::Relaxed) / 1_000
        );
        let _ = writeln!(
            out,
            "rex_publish_latency_us_count {}",
            self.publishes.load(Ordering::Relaxed)
        );
        // Process-wide failure/recovery telemetry (`rex_core::faults`):
        // worker deaths and recoveries recorded by the cluster runtime and
        // by sharded view maintenance, whichever layer they happened in.
        let f = rex::core::faults::counters();
        let _ = writeln!(out, "# TYPE rex_failure_events_total counter");
        let _ = writeln!(out, "rex_failure_events_total {}", f.events_total);
        let _ = writeln!(out, "# TYPE rex_recovery_restarts_total counter");
        let _ = writeln!(out, "rex_recovery_restarts_total {}", f.restarts_total);
        let _ = writeln!(out, "# TYPE rex_recovery_incrementals_total counter");
        let _ = writeln!(out, "rex_recovery_incrementals_total {}", f.incrementals_total);
        let _ = writeln!(out, "# TYPE rex_recovered_bytes_total counter");
        let _ = writeln!(out, "rex_recovered_bytes_total {}", f.recovered_bytes);
        let (buckets, sum_us, count) = rex::core::faults::latency_histogram();
        let _ = writeln!(out, "# TYPE rex_recovery_latency_us histogram");
        for (le, c) in rex::core::faults::RECOVERY_BUCKETS_US.iter().zip(buckets) {
            let _ = writeln!(out, "rex_recovery_latency_us_bucket{{le=\"{le}\"}} {c}");
        }
        let _ = writeln!(out, "rex_recovery_latency_us_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "rex_recovery_latency_us_sum {sum_us}");
        let _ = writeln!(out, "rex_recovery_latency_us_count {count}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_latency_aggregates() {
        let s = ServerStats::default();
        assert_eq!(s.publish_mean_us(), 0.0);
        s.record_publish(Duration::from_micros(100));
        s.record_publish(Duration::from_micros(300));
        assert!((s.publish_mean_us() - 200.0).abs() < 1e-9);
        assert_eq!(s.publish_max_ns.load(Ordering::Relaxed), 300_000);
        let text = s.render();
        assert!(text.contains("server.publishes 2"), "{text}");
    }

    #[test]
    fn stats_and_prometheus_render_the_same_counters() {
        let s = ServerStats::default();
        s.queries.fetch_add(3, Ordering::Relaxed);
        s.cache_misses.fetch_add(2, Ordering::Relaxed);
        let stats = s.render();
        let prom = s.render_prometheus(7);
        for (name, v) in s.counters() {
            assert!(stats.contains(&format!("server.{name} {v}")), "{name} in STATS:\n{stats}");
            assert!(prom.contains(&format!("rex_{name}_total {v}")), "{name} in METRICS:\n{prom}");
        }
        assert!(prom.contains("rex_snapshot_version 7"), "{prom}");
        assert!(prom.contains("rex_thread_budget_available "), "{prom}");
    }

    #[test]
    fn prometheus_renders_failure_telemetry() {
        let s = ServerStats::default();
        let prom = s.render_prometheus(0);
        assert!(prom.contains("rex_failure_events_total "), "{prom}");
        assert!(prom.contains("rex_recovery_restarts_total "), "{prom}");
        assert!(prom.contains("rex_recovery_incrementals_total "), "{prom}");
        assert!(prom.contains("rex_recovery_latency_us_bucket{le=\"+Inf\"}"), "{prom}");
        assert!(prom.contains("rex_recovery_latency_us_count "), "{prom}");
    }

    #[test]
    fn publish_histogram_buckets_are_cumulative() {
        let s = ServerStats::default();
        s.record_publish(Duration::from_micros(50)); // le=100
        s.record_publish(Duration::from_micros(500)); // le=1000
        s.record_publish(Duration::from_secs(10)); // +Inf
        let prom = s.render_prometheus(0);
        assert!(prom.contains("rex_publish_latency_us_bucket{le=\"100\"} 1"), "{prom}");
        assert!(prom.contains("rex_publish_latency_us_bucket{le=\"1000\"} 2"), "{prom}");
        assert!(prom.contains("rex_publish_latency_us_bucket{le=\"1000000\"} 2"), "{prom}");
        assert!(prom.contains("rex_publish_latency_us_bucket{le=\"+Inf\"} 3"), "{prom}");
        assert!(prom.contains("rex_publish_latency_us_count 3"), "{prom}");
    }
}
