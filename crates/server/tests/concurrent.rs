//! Concurrent-correctness: snapshot isolation under a live write stream.
//!
//! One writer connection streams insert batches while N reader
//! connections hammer queries. The protocol tags every query reply with
//! the snapshot version it executed against, and the write path bumps
//! the version exactly once per ingest op — so version `v0 + k` *is*
//! the database state after the first `k` batches. That gives a strict
//! oracle: every observed result must equal a full recompute over that
//! prefix (no torn reads, no half-applied batches, no stale view rows),
//! and versions must be monotone per connection.

use rex::Session;
use rex_core::tuple;
use rex_core::tuple::Tuple;
use rex_server::{Client, Server, ServerConfig};
use rex_testkit::{canon, XorShift};
use std::collections::BTreeMap;
use std::sync::Arc;

const READERS: usize = 8;
const BATCHES: usize = 30; // write ops; each bumps the version once
const ROWS_PER_BATCH: usize = 20;

/// The deterministic write stream: batch `k` inserts rows
/// `(i % 10, k * ROWS_PER_BATCH + i)`.
fn batch(k: usize) -> Vec<Tuple> {
    (0..ROWS_PER_BATCH)
        .map(|i| {
            let dst = (k * ROWS_PER_BATCH + i) as i64;
            tuple![(i % 10) as i64, dst]
        })
        .collect()
}

/// Full recompute of `SELECT * FROM edges` after `k` batches.
fn expected_edges(k: usize) -> Vec<Tuple> {
    canon((0..k).flat_map(batch).collect())
}

/// Full recompute of the `deg` view (count per src) after `k` batches.
fn expected_deg(k: usize) -> Vec<Tuple> {
    let mut counts: BTreeMap<i64, i64> = BTreeMap::new();
    for t in (0..k).flat_map(batch) {
        let src = match t.values()[0] {
            rex_core::value::Value::Int(i) => i,
            ref v => panic!("unexpected src {v:?}"),
        };
        *counts.entry(src).or_insert(0) += 1;
    }
    canon(counts.into_iter().map(|(src, n)| tuple![src, n]).collect())
}

fn run_scenario(session: Session) {
    let server = Server::start(session, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let v0 = server.published_version();

    // Oracle: the exact expected answer at every publishable version.
    let edges_at: Arc<Vec<Vec<Tuple>>> = Arc::new((0..=BATCHES).map(expected_edges).collect());
    let deg_at: Arc<Vec<Vec<Tuple>>> = Arc::new((0..=BATCHES).map(expected_deg).collect());
    let v_final = v0 + BATCHES as u64;

    let writer = std::thread::spawn(move || {
        let (mut c, _) = Client::connect(addr).unwrap();
        for k in 0..BATCHES {
            let ack = c.batch("edges", &batch(k)).unwrap();
            assert_eq!(ack.rows, ROWS_PER_BATCH);
            assert_eq!(ack.version, v0 + k as u64 + 1, "one version bump per ingest op");
            // Read-your-writes: the covering snapshot is already live.
            let reply = c.query("SELECT * FROM deg").unwrap();
            assert!(reply.version >= ack.version, "ack before publish");
        }
        c.quit().unwrap();
    });

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let edges_at = Arc::clone(&edges_at);
            let deg_at = Arc::clone(&deg_at);
            std::thread::spawn(move || {
                let (mut c, _) = Client::connect(addr).unwrap();
                let mut rng = XorShift(0x9E3779B97F4A7C15 ^ (r as u64 + 1));
                let mut last_version = 0u64;
                let mut distinct = 0usize;
                let mut iters = 0usize;
                // Keep querying until this connection has observed the
                // final version, so readers provably overlap the writes.
                while last_version < v_final {
                    iters += 1;
                    assert!(iters < 50_000, "reader {r} never saw final version {v_final}");
                    let (rql, oracle): (&str, &Vec<Vec<Tuple>>) =
                        if rng.next_u64().is_multiple_of(2) {
                            ("SELECT * FROM deg", &deg_at)
                        } else {
                            ("SELECT * FROM edges", &edges_at)
                        };
                    let reply = c.query(rql).unwrap();
                    assert!(
                        reply.version >= last_version,
                        "reader {r}: version went backwards: {} then {}",
                        last_version,
                        reply.version
                    );
                    if reply.version > last_version {
                        distinct += 1;
                    }
                    let k = (reply.version - v0) as usize;
                    assert!(k <= BATCHES, "reader {r}: impossible version {}", reply.version);
                    assert_eq!(
                        canon(reply.rows),
                        oracle[k],
                        "reader {r}: {rql} at version {} diverged from full recompute",
                        reply.version
                    );
                    last_version = reply.version;
                }
                c.quit().unwrap();
                distinct
            })
        })
        .collect();

    writer.join().unwrap();
    let mut total_distinct = 0usize;
    for h in readers {
        total_distinct += h.join().unwrap();
    }
    // Every reader saw at least the initial and the final snapshot;
    // collectively they observed genuinely intermediate versions too.
    assert!(total_distinct > READERS, "readers saw too few versions: {total_distinct}");

    let stats = server.stats();
    assert_eq!(
        stats.rows_inserted.load(std::sync::atomic::Ordering::Relaxed),
        (BATCHES * ROWS_PER_BATCH) as u64
    );
    server.shutdown().unwrap();
}

fn seeded_session(mut s: Session) -> Session {
    s.query("CREATE TABLE edges (src INT, dst INT)").unwrap();
    s.query("CREATE MATERIALIZED VIEW deg AS SELECT src, count(*) FROM edges GROUP BY src")
        .unwrap();
    s
}

#[test]
fn readers_always_see_a_published_prefix_local_engine() {
    run_scenario(seeded_session(Session::local()));
}

#[test]
fn readers_always_see_a_published_prefix_cluster_engine() {
    run_scenario(seeded_session(Session::cluster(2)));
}
