//! End-to-end protocol round-trips over real TCP.

use rex::Session;
use rex_core::tuple;
use rex_core::value::Value;
use rex_server::{Client, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn server_with_edges() -> Server {
    let mut s = Session::local();
    s.query("CREATE TABLE edges (src INT, dst INT)").unwrap();
    s.query("CREATE MATERIALIZED VIEW deg AS SELECT src, count(*) FROM edges GROUP BY src")
        .unwrap();
    Server::start(s, "127.0.0.1:0", ServerConfig::default()).unwrap()
}

#[test]
fn hello_insert_query_quit() {
    let server = server_with_edges();
    let (mut c, hello) = Client::connect(server.local_addr()).unwrap();
    assert!(hello.starts_with("rex-server"), "{hello}");
    assert!(hello.contains("engine=local"), "{hello}");

    let ack = c.insert("edges", &[tuple![1i64, 2i64], tuple![1i64, 3i64]]).unwrap();
    assert_eq!(ack.rows, 2);

    // Read-your-writes: the very next query sees the covering snapshot.
    let reply = c.query("SELECT * FROM deg").unwrap();
    assert!(reply.version >= ack.version);
    assert_eq!(reply.rows, vec![tuple![1i64, 2i64]]); // src 1, count 2
    assert_eq!(reply.engine, "local");

    let ordered = c.query("SELECT dst FROM edges ORDER BY dst DESC").unwrap();
    assert_eq!(ordered.rows, vec![tuple![3i64], tuple![2i64]]);
    c.quit().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn batch_streams_values_of_every_type() {
    let mut s = Session::local();
    s.query("CREATE TABLE things (id INT, label STRING, score DOUBLE)").unwrap();
    let server = Server::start(s, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let (mut c, _) = Client::connect(server.local_addr()).unwrap();

    let rows = vec![
        tuple![1i64, "tabs\tand;semis", 0.5f64],
        tuple![2i64, "plain", -1.25f64],
        Tuple::new(vec![Value::Int(3), Value::Null, Value::Double(f64::INFINITY)]),
    ];
    let ack = c.batch("things", &rows).unwrap();
    assert_eq!(ack.rows, 3);
    let reply = c.query("SELECT * FROM things ORDER BY id").unwrap();
    assert_eq!(reply.rows, rows);
    c.quit().unwrap();
    server.shutdown().unwrap();
}
use rex_core::tuple::Tuple;

#[test]
fn script_runs_ddl_and_reports_per_statement_errors() {
    let server = Server::start(Session::local(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let (mut c, _) = Client::connect(server.local_addr()).unwrap();

    // RQL has no INSERT statement — rows travel over the protocol's
    // INSERT/BATCH commands — so SCRIPT is the DDL + query channel.
    let (results, _) = c
        .script(&[
            "CREATE TABLE t (x INT)",
            "CREATE MATERIALIZED VIEW total AS SELECT sum(x) FROM t",
            "SELECT * FROM nope",
            "SELECT count(*) FROM t",
        ])
        .unwrap();
    assert!(results[0].is_ok());
    assert!(results[1].is_ok());
    assert!(results[2].as_ref().unwrap_err().contains("nope"), "{results:?}");
    assert!(results[3].is_ok(), "script keeps going after a failed statement");

    c.insert("t", &[tuple![1i64], tuple![2i64], tuple![3i64], tuple![4i64]]).unwrap();
    let reply = c.query("SELECT * FROM total").unwrap();
    assert_eq!(reply.rows, vec![tuple![10i64]], "script-created view maintained by inserts");
    c.quit().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn query_errors_are_lines_not_disconnects() {
    let server = server_with_edges();
    let (mut c, _) = Client::connect(server.local_addr()).unwrap();
    let err = c.query("SELECT * FROM missing").unwrap_err().to_string();
    assert!(err.contains("missing"), "{err}");
    // DDL through QUERY is refused — snapshots are read-only.
    let err = c.query("CREATE TABLE sneaky (x INT)").unwrap_err().to_string();
    assert!(err.contains("read-only"), "{err}");
    // The connection survives both errors.
    c.insert("edges", &[tuple![5i64, 6i64]]).unwrap();
    assert_eq!(c.query("SELECT * FROM edges").unwrap().rows, vec![tuple![5i64, 6i64]]);
    c.quit().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn malformed_commands_get_err_lines_on_the_raw_socket() {
    let server = server_with_edges();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut w = stream;
    let mut line = String::new();

    for (bad, expect) in [
        ("NOPE 1\n", "unknown command"),
        ("QUERY\n", "QUERY needs"),
        ("BATCH edges many\n", "row count"),
        ("INSERT edges q:wat\n", "unknown value tag"),
    ] {
        w.write_all(bad.as_bytes()).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR "), "{bad:?} -> {line:?}");
        assert!(line.contains(expect), "{bad:?} -> {line:?}");
    }
    // Still healthy afterwards.
    w.write_all(b"HELLO raw\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("OK rex-server"), "{line:?}");
    server.shutdown().unwrap();
}

#[test]
fn stats_report_traffic_and_snapshot_state() {
    let server = server_with_edges();
    let (mut c, _) = Client::connect(server.local_addr()).unwrap();
    c.insert("edges", &[tuple![1i64, 2i64]]).unwrap();
    let q = "SELECT * FROM deg";
    c.query(q).unwrap();
    c.query(q).unwrap(); // second hit comes from the snapshot cache

    let stats = c.stats().unwrap();
    let get = |key: &str| -> f64 {
        stats
            .lines()
            .find_map(|l| l.strip_prefix(key).map(|v| v.trim().parse().unwrap()))
            .unwrap_or_else(|| panic!("missing {key} in:\n{stats}"))
    };
    assert!(get("server.queries ") >= 2.0);
    assert!(get("server.cache_hits ") >= 1.0);
    assert_eq!(get("server.rows_inserted "), 1.0);
    assert!(get("server.publishes ") >= 1.0);
    assert_eq!(get("table.edges.rows "), 1.0);
    assert_eq!(get("view.deg.rows "), 1.0);
    assert!(get("snapshot.version ") >= 1.0);
    assert!(stats.contains("view.deg.strategy "), "{stats}");
    c.quit().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn metrics_serve_prometheus_exposition() {
    let server = server_with_edges();
    let (mut c, _) = Client::connect(server.local_addr()).unwrap();
    c.insert("edges", &[tuple![1i64, 2i64]]).unwrap();
    let q = "SELECT * FROM deg";
    c.query(q).unwrap(); // miss
    c.query(q).unwrap(); // hit

    let metrics = c.metrics().unwrap();
    let get = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")).map(|v| v.parse().unwrap()))
            .unwrap_or_else(|| panic!("missing {name} in:\n{metrics}"))
    };
    assert!(get("rex_queries_total") >= 2);
    assert!(get("rex_cache_hits_total") >= 1);
    assert!(get("rex_cache_misses_total") >= 1);
    assert_eq!(get("rex_cache_evictions_total"), 0);
    assert_eq!(get("rex_rows_inserted_total"), 1);
    assert!(get("rex_snapshot_version") >= 1);
    assert!(get("rex_open_connections") >= 1);
    // The publish histogram is well-formed: every publish lands in +Inf's
    // cumulative count and the count line agrees with the counter.
    assert!(metrics.contains("# TYPE rex_publish_latency_us histogram"), "{metrics}");
    assert_eq!(
        get("rex_publish_latency_us_bucket{le=\"+Inf\"}"),
        get("rex_publishes_total"),
        "{metrics}"
    );
    assert_eq!(get("rex_publish_latency_us_count"), get("rex_publishes_total"));
    c.quit().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn result_cache_evicts_fifo_under_capacity_cap() {
    let mut s = Session::local();
    s.query("CREATE TABLE edges (src INT, dst INT)").unwrap();
    let cfg = ServerConfig { cache_entries: 4, ..ServerConfig::default() };
    let server = Server::start(s, "127.0.0.1:0", cfg).unwrap();
    let (mut c, _) = Client::connect(server.local_addr()).unwrap();
    c.insert("edges", &[tuple![1i64, 2i64]]).unwrap();
    // 8 distinct queries through a 4-entry cache force 4 evictions…
    for i in 0..8 {
        c.query(&format!("SELECT src FROM edges WHERE dst > {i}")).unwrap();
    }
    // …and the newest entry survives while the oldest was dropped.
    c.query("SELECT src FROM edges WHERE dst > 7").unwrap(); // hit
    c.query("SELECT src FROM edges WHERE dst > 0").unwrap(); // re-miss
    let metrics = c.metrics().unwrap();
    let get = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")).map(|v| v.parse().unwrap()))
            .unwrap_or_else(|| panic!("missing {name} in:\n{metrics}"))
    };
    assert!(get("rex_cache_evictions_total") >= 5, "{metrics}");
    assert!(get("rex_cache_hits_total") >= 1, "{metrics}");
    assert_eq!(
        get("rex_cache_misses_total") + get("rex_cache_hits_total"),
        get("rex_queries_total")
    );
    c.quit().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn pipelined_queries_return_in_order() {
    let server = server_with_edges();
    let (mut c, _) = Client::connect(server.local_addr()).unwrap();
    c.insert("edges", &[tuple![1i64, 2i64], tuple![2i64, 3i64]]).unwrap();
    let queries: Vec<String> =
        (0..40).map(|i| format!("SELECT src FROM edges WHERE dst > {}", i % 3)).collect();
    let replies = c.query_pipelined(&queries, 16).unwrap();
    assert_eq!(replies.len(), 40);
    for (i, r) in replies.iter().enumerate() {
        let cutoff = (i % 3) as i64;
        let expect: Vec<Tuple> = [(1i64, 2i64), (2, 3)]
            .iter()
            .filter(|(_, d)| *d > cutoff)
            .map(|(s, _)| tuple![*s])
            .collect();
        let mut got = r.rows.clone();
        got.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        assert_eq!(got, expect, "pipelined reply {i}");
    }
    c.quit().unwrap();
    server.shutdown().unwrap();
}

#[test]
fn shutdown_command_unwinds_other_connections() {
    let server = server_with_edges();
    let (mut other, _) = Client::connect(server.local_addr()).unwrap();
    other.query("SELECT * FROM edges").unwrap();

    let (admin, _) = Client::connect(server.local_addr()).unwrap();
    admin.shutdown_server().unwrap();
    assert!(!server.running());
    server.shutdown().unwrap(); // joins every thread, including `other`'s
}
