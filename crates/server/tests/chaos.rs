//! Server-level chaos: a worker of the session's sharded view shards is
//! killed mid-write-stream (via [`FaultInjection`]), while a client keeps
//! reading. The server must never serve a wrong snapshot — every read
//! after every write matches an independently maintained oracle — and the
//! failure must surface in the Prometheus `METRICS` endpoint.

use rex::core::tuple::{Schema, Tuple};
use rex::core::value::{DataType, Value};
use rex::Session;
use rex_server::{Client, FaultInjection, Server, ServerConfig};
use rex_testkit::canon;
use std::collections::BTreeMap;

fn degree_session() -> Session {
    let mut s = Session::cluster(3);
    s.create_table("edges", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)])).unwrap();
    s.create_materialized_view("deg", "SELECT src, count(*) FROM edges GROUP BY src").unwrap();
    assert_eq!(s.views().get("deg").unwrap().shards(), 3, "deg must shard");
    s
}

/// Pull a counter's value out of a Prometheus text exposition.
fn metric(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// The writer thread's one-shot kill must be invisible to readers: the
/// published snapshot stays correct through the failure and recovery.
#[test]
fn killed_view_shard_keeps_serving_correct_snapshots() {
    for strategy in
        [rex::cluster::RecoveryStrategy::Incremental, rex::cluster::RecoveryStrategy::Restart]
    {
        let cfg = ServerConfig {
            coalesce: 1,
            fault: Some(FaultInjection { after_writes: 3, worker: 1, strategy }),
            ..ServerConfig::default()
        };
        let server = Server::start(degree_session(), "127.0.0.1:0", cfg).unwrap();
        let (mut c, _hello) = Client::connect(server.local_addr()).unwrap();

        let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
        for step in 0..8i64 {
            let rows: Vec<Tuple> = (0..3)
                .map(|j| Tuple::new(vec![Value::Int((step + j) % 5), Value::Int(j)]))
                .collect();
            for r in &rows {
                let Value::Int(src) = r.get(0) else { unreachable!() };
                *oracle.entry(*src).or_insert(0) += 1;
            }
            c.insert("edges", &rows).unwrap();
            let got = canon(c.query("SELECT * FROM deg").unwrap().rows);
            let want = canon(
                oracle
                    .iter()
                    .map(|(&src, &n)| Tuple::new(vec![Value::Int(src), Value::Int(n)]))
                    .collect(),
            );
            assert_eq!(got, want, "{strategy:?}: wrong snapshot after write {step}");
        }

        let body = c.metrics().unwrap();
        assert!(
            metric(&body, "rex_failure_events_total").unwrap_or(0.0) >= 1.0,
            "{strategy:?}: no failure event in METRICS:\n{body}"
        );
        assert!(
            metric(&body, "rex_recovery_latency_us_count").unwrap_or(0.0) >= 1.0,
            "{strategy:?}: no recovery latency sample in METRICS"
        );
        c.quit().unwrap();
        server.shutdown().unwrap();
    }
}
