//! The Hadoop/HaLoop cost model and emulation modes.
//!
//! The paper could not run HaLoop directly, so it emulated it by counting
//! selected costs as zero (§6 "Platforms"): HaLoop's reducer-input-cache
//! construction and its recursive stages over immutable data run free;
//! additionally, for *both* Hadoop and HaLoop lower bounds, convergence
//! tests, input/output formatting, and final result collection run free.
//! The same methodology is reproduced here, on top of the shared
//! [`CostModel`] constants so that REX and
//! the baselines are costed with identical per-tuple/byte rates.

use rex_core::metrics::CostModel;

/// Which emulation the simulator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmulationMode {
    /// Plain Hadoop: every cost is charged (used for the Figure 4
    /// non-recursive comparison).
    Hadoop,
    /// "Hadoop LB": formatting, convergence tests and result collection are
    /// free (the idealized implementation of §6).
    HadoopLowerBound,
    /// "HaLoop LB": Hadoop LB plus free reducer-input-cache construction
    /// and free recursive map/shuffle stages over immutable data.
    HaLoopLowerBound,
}

impl EmulationMode {
    /// Whether formatting / convergence / collection are free.
    pub fn zero_overheads(&self) -> bool {
        !matches!(self, EmulationMode::Hadoop)
    }

    /// Whether immutable inputs are cached at reducers (free to re-map and
    /// re-shuffle after the first iteration).
    pub fn caches_immutable(&self) -> bool {
        matches!(self, EmulationMode::HaLoopLowerBound)
    }

    /// Display label matching the paper's plot legends.
    pub fn label(&self) -> &'static str {
        match self {
            EmulationMode::Hadoop => "Hadoop",
            EmulationMode::HadoopLowerBound => "Hadoop LB",
            EmulationMode::HaLoopLowerBound => "HaLoop LB",
        }
    }
}

/// Cost constants specific to the MapReduce runtime, layered over the
/// shared [`CostModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HadoopCost {
    /// Shared per-tuple / per-byte rates (identical to REX's).
    pub base: CostModel,
    /// Fixed startup + tear-down cost per MapReduce job ("the MapReduce
    /// runtime has high startup cost, hence it is oriented towards batch
    /// jobs", §2). In cost units.
    pub job_startup: f64,
    /// CPU factor for the sort-merge shuffle: cost = records · log₂(records)
    /// · `sort_factor` (REX instead uses hash-based grouping, §6.3).
    pub sort_factor: f64,
    /// DFS replication for job outputs; every job checkpoints its output to
    /// the distributed filesystem (§4.3 "essentially checkpointing all
    /// intermediate state").
    pub dfs_replication: u32,
    /// Per-record cost of text (de)serialization on job input/output.
    pub format_cost: f64,
}

impl Default for HadoopCost {
    fn default() -> HadoopCost {
        HadoopCost {
            base: CostModel::default(),
            job_startup: 2_000.0,
            sort_factor: 0.165,
            dfs_replication: 3,
            format_cost: 4.5,
        }
    }
}

impl HadoopCost {
    /// Use the given shared base constants.
    pub fn with_base(base: CostModel) -> HadoopCost {
        HadoopCost { base, ..HadoopCost::default() }
    }

    /// CPU cost of sort-merging `n` records.
    pub fn sort_time(&self, n: u64) -> f64 {
        if n < 2 {
            return 0.0;
        }
        n as f64 * (n as f64).log2() * self.sort_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_flags() {
        assert!(!EmulationMode::Hadoop.zero_overheads());
        assert!(EmulationMode::HadoopLowerBound.zero_overheads());
        assert!(!EmulationMode::HadoopLowerBound.caches_immutable());
        assert!(EmulationMode::HaLoopLowerBound.caches_immutable());
        assert_eq!(EmulationMode::HaLoopLowerBound.label(), "HaLoop LB");
    }

    #[test]
    fn sort_time_is_n_log_n() {
        let c = HadoopCost { sort_factor: 1.0, ..HadoopCost::default() };
        assert_eq!(c.sort_time(0), 0.0);
        assert_eq!(c.sort_time(1), 0.0);
        assert_eq!(c.sort_time(8), 8.0 * 3.0);
    }

    #[test]
    fn default_has_large_startup() {
        // The startup overhead must dominate small jobs (the paper's
        // K-means gap is mostly startup).
        let c = HadoopCost::default();
        assert!(c.job_startup > 1_000.0);
    }
}
