//! The MapReduce programming interface (§2 of the paper).
//!
//! "A user-specified *map* function [...] retrieves, filters, and specifies
//! a grouping attribute for data items; an implicit *shuffle* stage that
//! uses a sort-merge algorithm to group the output of the map stage; and a
//! final user-specified *reduce* stage that performs an aggregation
//! computation over the set of items corresponding to a single key. [...]
//! an optional user-provided *combiner* may be invoked before the shuffle
//! stage."

use rex_core::value::Value;
use std::sync::Arc;

/// A key-value record, the unit of MapReduce dataflow.
pub type Record = (Value, Value);

/// Approximate serialized size of a record in bytes.
pub fn record_bytes(r: &Record) -> u64 {
    (r.0.byte_size() + r.1.byte_size()) as u64
}

/// The map function: consume one record, emit any number of records.
pub trait Mapper: Send + Sync {
    /// Class name (mirrors the paper's `MapWrap('MapClass', ...)` usage).
    fn name(&self) -> &str;

    /// Process one input record.
    fn map(&self, key: &Value, value: &Value, out: &mut dyn FnMut(Value, Value));
}

/// The reduce function: consume all values for one key, emit records.
/// Combiners implement the same interface (they are reducers run map-side).
pub trait Reducer: Send + Sync {
    /// Class name (mirrors `ReduceWrap('ReduceClass', ...)`).
    fn name(&self) -> &str;

    /// Process one key group.
    fn reduce(&self, key: &Value, values: &[Value], out: &mut dyn FnMut(Value, Value));
}

/// A mapper built from a closure.
pub struct FnMapper {
    name: String,
    #[allow(clippy::type_complexity)]
    f: Box<dyn Fn(&Value, &Value, &mut dyn FnMut(Value, Value)) + Send + Sync>,
}

impl FnMapper {
    /// Wrap a closure as a [`Mapper`].
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Value, &Value, &mut dyn FnMut(Value, Value)) + Send + Sync + 'static,
    ) -> Arc<FnMapper> {
        Arc::new(FnMapper { name: name.into(), f: Box::new(f) })
    }
}

impl Mapper for FnMapper {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, key: &Value, value: &Value, out: &mut dyn FnMut(Value, Value)) {
        (self.f)(key, value, out)
    }
}

/// A reducer built from a closure.
pub struct FnReducer {
    name: String,
    #[allow(clippy::type_complexity)]
    f: Box<dyn Fn(&Value, &[Value], &mut dyn FnMut(Value, Value)) + Send + Sync>,
}

impl FnReducer {
    /// Wrap a closure as a [`Reducer`].
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&Value, &[Value], &mut dyn FnMut(Value, Value)) + Send + Sync + 'static,
    ) -> Arc<FnReducer> {
        Arc::new(FnReducer { name: name.into(), f: Box::new(f) })
    }
}

impl Reducer for FnReducer {
    fn name(&self) -> &str {
        &self.name
    }

    fn reduce(&self, key: &Value, values: &[Value], out: &mut dyn FnMut(Value, Value)) {
        (self.f)(key, values, out)
    }
}

/// The identity mapper (pass-through), useful for reduce-only stages.
pub struct IdentityMapper;

impl Mapper for IdentityMapper {
    fn name(&self) -> &str {
        "IdentityMapper"
    }

    fn map(&self, key: &Value, value: &Value, out: &mut dyn FnMut(Value, Value)) {
        out(key.clone(), value.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_mapper_emits() {
        let m = FnMapper::new("double", |k, v, out| {
            out(k.clone(), v.clone());
            out(k.clone(), v.clone());
        });
        let mut got = Vec::new();
        m.map(&Value::Int(1), &Value::Int(2), &mut |k, v| got.push((k, v)));
        assert_eq!(got.len(), 2);
        assert_eq!(m.name(), "double");
    }

    #[test]
    fn fn_reducer_sees_group() {
        let r = FnReducer::new("sum", |k, vs, out| {
            let s: i64 = vs.iter().filter_map(Value::as_int).sum();
            out(k.clone(), Value::Int(s));
        });
        let mut got = Vec::new();
        r.reduce(&Value::Int(7), &[Value::Int(1), Value::Int(2), Value::Int(3)], &mut |k, v| {
            got.push((k, v))
        });
        assert_eq!(got, vec![(Value::Int(7), Value::Int(6))]);
    }

    #[test]
    fn identity_mapper_passes_through() {
        let mut got = Vec::new();
        IdentityMapper.map(&Value::Int(1), &Value::str("x"), &mut |k, v| got.push((k, v)));
        assert_eq!(got, vec![(Value::Int(1), Value::str("x"))]);
    }

    #[test]
    fn record_bytes_sums_key_and_value() {
        assert_eq!(record_bytes(&(Value::Int(1), Value::Int(2))), 16);
    }
}
