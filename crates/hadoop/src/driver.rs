//! Job chaining and the iterative driver.
//!
//! "Computations that require explicit iteration or recursion need to be
//! managed by external control logic" (§2): this module is that control
//! logic. The iterative driver re-runs a job, feeding each iteration's
//! reduce output back as the next iteration's mutable input alongside the
//! static inputs, until a user convergence test fires or the iteration cap
//! is reached. Per the paper's lower-bound methodology the convergence test
//! itself is free in the LB modes.

use crate::api::Record;
use crate::job::{HadoopCluster, JobInput, JobMetrics, MapReduceJob};
use std::time::Instant;

/// One iteration's record of work, matching the per-iteration series of
/// Figures 6–9.
#[derive(Debug, Clone, Default)]
pub struct IterationReport {
    /// 0-based iteration number.
    pub iteration: usize,
    /// Job metrics for this iteration (all chained jobs merged).
    pub metrics: JobMetrics,
    /// Records in the mutable set carried to the next iteration.
    pub mutable_records: u64,
}

/// A full iterative run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-iteration reports, in order.
    pub iterations: Vec<IterationReport>,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
}

impl RunReport {
    /// Total simulated time across iterations.
    pub fn total_sim_time(&self) -> f64 {
        self.iterations.iter().map(|i| i.metrics.sim_time).sum()
    }

    /// Cumulative simulated time after each iteration (the cumulative
    /// series the paper plots).
    pub fn cumulative_times(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.iterations
            .iter()
            .map(|i| {
                acc += i.metrics.sim_time;
                acc
            })
            .collect()
    }

    /// Total bytes shuffled (the paper's bandwidth numerator for
    /// Hadoop/HaLoop: "we aggregated the total amount of data shuffled per
    /// job", §6.5).
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.iterations.iter().map(|i| i.metrics.shuffle_bytes).sum()
    }

    /// Total bytes that crossed the network: shuffle plus DFS output
    /// replication.
    pub fn total_network_bytes(&self) -> u64 {
        self.iterations.iter().map(|i| i.metrics.shuffle_bytes + i.metrics.dfs_network_bytes).sum()
    }

    /// Average bandwidth per node in bytes per simulated time unit.
    pub fn avg_bandwidth_per_node(&self, nodes: usize) -> f64 {
        let t = self.total_sim_time();
        if t <= 0.0 || nodes == 0 {
            return 0.0;
        }
        self.total_network_bytes() as f64 / nodes as f64 / t
    }
}

/// Convergence test: given the previous and current mutable sets, decide
/// whether to stop. Runs in zero simulated time under the LB modes.
pub type ConvergenceFn = Box<dyn Fn(&[Record], &[Record], usize) -> bool + Send>;

/// An iterative MapReduce computation.
pub struct IterativeJob {
    /// The job run each iteration.
    pub job: MapReduceJob,
    /// Inputs that do not change across iterations (HaLoop caches these).
    pub immutable: Vec<Record>,
    /// The initial mutable set (iteration 0 input).
    pub initial: Vec<Record>,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Optional convergence test; when `None`, runs exactly
    /// `max_iterations`.
    pub convergence: Option<ConvergenceFn>,
}

impl IterativeJob {
    /// Run to convergence on the given cluster, returning the final
    /// mutable set and the per-iteration report.
    pub fn run(&self, cluster: &HadoopCluster) -> (Vec<Record>, RunReport) {
        let t0 = Instant::now();
        let mut report = RunReport::default();
        let mut mutable = self.initial.clone();
        for iteration in 0..self.max_iterations {
            let inputs =
                [JobInput::immutable(self.immutable.clone()), JobInput::mutable(mutable.clone())];
            let (out, metrics) = cluster.run_job(&self.job, &inputs, iteration);
            report.iterations.push(IterationReport {
                iteration,
                metrics,
                mutable_records: out.len() as u64,
            });
            let done = match &self.convergence {
                Some(f) => f(&mutable, &out, iteration),
                None => false,
            };
            mutable = out;
            if done {
                break;
            }
        }
        report.wall_seconds = t0.elapsed().as_secs_f64();
        (mutable, report)
    }
}

/// Run a chain of jobs, each consuming the previous one's output (the
/// "chained or branched jobs [...] expressed as nested subqueries" pattern
/// of §4.4, driven externally as Hadoop requires).
pub fn run_chain(
    cluster: &HadoopCluster,
    jobs: &[MapReduceJob],
    input: Vec<Record>,
) -> (Vec<Record>, JobMetrics) {
    let mut records = input;
    let mut total = JobMetrics::default();
    for job in jobs {
        let (out, m) = cluster.run_job(job, &[JobInput::mutable(records)], 0);
        total.merge(&m);
        records = out;
    }
    (records, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{FnMapper, FnReducer};
    use crate::cost::EmulationMode;
    use rex_core::value::Value;

    /// An iterative job: each value doubles until it exceeds 100.
    fn doubling_job() -> MapReduceJob {
        MapReduceJob::new(
            "double",
            FnMapper::new("map", |k, v, out| {
                let x = v.as_int().unwrap();
                out(k.clone(), Value::Int(if x < 100 { x * 2 } else { x }));
            }),
            FnReducer::new("reduce", |k, vs, out| out(k.clone(), vs[0].clone())),
        )
    }

    #[test]
    fn iterative_job_converges() {
        let it = IterativeJob {
            job: doubling_job(),
            immutable: vec![],
            initial: vec![(Value::Int(0), Value::Int(1)), (Value::Int(1), Value::Int(64))],
            max_iterations: 50,
            convergence: Some(Box::new(|prev, cur, _| prev == cur)),
        };
        let (out, report) = it.run(&HadoopCluster::new(2));
        assert_eq!(out[0].1, Value::Int(128));
        assert_eq!(out[1].1, Value::Int(128));
        // 1→128 takes 7 doublings, +1 iteration to observe stability.
        assert_eq!(report.iterations.len(), 8);
        assert!(report.total_sim_time() > 0.0);
    }

    #[test]
    fn iteration_cap_bounds_runs() {
        let it = IterativeJob {
            job: doubling_job(),
            immutable: vec![],
            initial: vec![(Value::Int(0), Value::Int(1))],
            max_iterations: 3,
            convergence: None,
        };
        let (_, report) = it.run(&HadoopCluster::new(1));
        assert_eq!(report.iterations.len(), 3);
    }

    #[test]
    fn haloop_beats_hadoop_with_immutable_data() {
        // An iterative job over a large immutable input and a tiny mutable
        // set: the HaLoop LB should be much cheaper per iteration.
        let imm: Vec<Record> = (0..500).map(|i| (Value::Int(i % 50), Value::Int(i))).collect();
        let job = MapReduceJob::new(
            "noop",
            FnMapper::new("m", |k, v, out| out(k.clone(), v.clone())),
            FnReducer::new("r", |k, vs, out| {
                out(k.clone(), Value::Int(vs.iter().filter_map(Value::as_int).sum()))
            }),
        );
        let mk = |mode| {
            let it = IterativeJob {
                job: job.clone(),
                immutable: imm.clone(),
                initial: vec![(Value::Int(0), Value::Int(0))],
                max_iterations: 5,
                convergence: None,
            };
            let (_, r) = it.run(&HadoopCluster::new(4).with_mode(mode));
            r
        };
        let hadoop = mk(EmulationMode::HadoopLowerBound);
        let haloop = mk(EmulationMode::HaLoopLowerBound);
        assert!(haloop.total_sim_time() < hadoop.total_sim_time());
        assert!(haloop.total_shuffle_bytes() < hadoop.total_shuffle_bytes());
        // First iterations are identical; savings start at iteration 1.
        assert_eq!(hadoop.iterations[0].metrics.sim_time, haloop.iterations[0].metrics.sim_time);
        assert!(haloop.iterations[1].metrics.sim_time < hadoop.iterations[1].metrics.sim_time);
    }

    #[test]
    fn chain_threads_output_to_input() {
        let inc = MapReduceJob::new(
            "inc",
            FnMapper::new("m", |k, v, out| out(k.clone(), Value::Int(v.as_int().unwrap() + 1))),
            FnReducer::new("r", |k, vs, out| out(k.clone(), vs[0].clone())),
        );
        let (out, m) = run_chain(
            &HadoopCluster::new(1),
            &[inc.clone(), inc.clone(), inc],
            vec![(Value::Int(0), Value::Int(0))],
        );
        assert_eq!(out[0].1, Value::Int(3));
        // Three jobs' startup costs accumulate.
        assert!(m.sim_time >= 3.0 * HadoopCluster::new(1).cost.job_startup);
    }

    #[test]
    fn cumulative_times_are_monotone() {
        let it = IterativeJob {
            job: doubling_job(),
            immutable: vec![],
            initial: vec![(Value::Int(0), Value::Int(1))],
            max_iterations: 4,
            convergence: None,
        };
        let (_, r) = it.run(&HadoopCluster::new(1));
        let c = r.cumulative_times();
        assert_eq!(c.len(), 4);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }
}
