//! Single MapReduce job execution: map → combine → sort-merge shuffle →
//! reduce, with full cost accounting.
//!
//! The simulator executes the user functions *for real* (results are exact)
//! while accounting costs according to the configured
//! [`EmulationMode`]: computation on immutable
//! inputs still happens — "the actual computation is still performed
//! repeatedly" — but HaLoop-mode charges zero for the cached portion.

use crate::api::{record_bytes, Mapper, Record, Reducer};
use crate::cost::{EmulationMode, HadoopCost};
use rex_core::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A job input: a bag of records, tagged mutable or immutable.
///
/// Immutable inputs (e.g. the graph edge relation) never change across
/// iterations; HaLoop's reducer-input cache exploits exactly this (§6
/// "recursive MapReduce stages involving immutable data" run free).
#[derive(Debug, Clone)]
pub struct JobInput {
    /// The records.
    pub records: Vec<Record>,
    /// Whether this input is immutable across iterations.
    pub immutable: bool,
}

impl JobInput {
    /// A mutable input.
    pub fn mutable(records: Vec<Record>) -> JobInput {
        JobInput { records, immutable: false }
    }

    /// An immutable input.
    pub fn immutable(records: Vec<Record>) -> JobInput {
        JobInput { records, immutable: true }
    }
}

/// A MapReduce job definition.
#[derive(Clone)]
pub struct MapReduceJob {
    /// Job name (for reports).
    pub name: String,
    /// The map class.
    pub mapper: Arc<dyn Mapper>,
    /// Optional map-side combiner.
    pub combiner: Option<Arc<dyn Reducer>>,
    /// The reduce class.
    pub reducer: Arc<dyn Reducer>,
}

impl MapReduceJob {
    /// A job without a combiner.
    pub fn new(
        name: impl Into<String>,
        mapper: Arc<dyn Mapper>,
        reducer: Arc<dyn Reducer>,
    ) -> MapReduceJob {
        MapReduceJob { name: name.into(), mapper, combiner: None, reducer }
    }

    /// Attach a combiner.
    pub fn with_combiner(mut self, c: Arc<dyn Reducer>) -> MapReduceJob {
        self.combiner = Some(c);
        self
    }
}

/// Per-job execution metrics (inputs → shuffle → output volumes plus the
/// derived simulated completion time).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JobMetrics {
    /// Records consumed by map tasks.
    pub map_input_records: u64,
    /// Records emitted by map tasks (pre-combine).
    pub map_output_records: u64,
    /// Records shipped through the shuffle (post-combine).
    pub shuffle_records: u64,
    /// Bytes shipped through the shuffle (post-combine). This is the
    /// quantity Figure 11 plots for Hadoop/HaLoop.
    pub shuffle_bytes: u64,
    /// Records consumed by reduce tasks.
    pub reduce_input_records: u64,
    /// Records produced by reduce tasks.
    pub output_records: u64,
    /// Bytes written to the DFS (output × replication).
    pub checkpoint_bytes: u64,
    /// Replica bytes that crossed the network for DFS output replication.
    pub dfs_network_bytes: u64,
    /// CPU cost units across the cluster.
    pub cpu_units: f64,
    /// Simulated completion time (per-node parallel share + startup).
    pub sim_time: f64,
}

impl JobMetrics {
    /// Merge another job's metrics (for chained jobs).
    pub fn merge(&mut self, o: &JobMetrics) {
        self.map_input_records += o.map_input_records;
        self.map_output_records += o.map_output_records;
        self.shuffle_records += o.shuffle_records;
        self.shuffle_bytes += o.shuffle_bytes;
        self.reduce_input_records += o.reduce_input_records;
        self.output_records += o.output_records;
        self.checkpoint_bytes += o.checkpoint_bytes;
        self.dfs_network_bytes += o.dfs_network_bytes;
        self.cpu_units += o.cpu_units;
        self.sim_time += o.sim_time;
    }
}

/// The simulated cluster a job runs on.
#[derive(Debug, Clone, Copy)]
pub struct HadoopCluster {
    /// Number of worker nodes.
    pub n_nodes: usize,
    /// Cost constants.
    pub cost: HadoopCost,
    /// Which lower-bound emulation (if any) applies.
    pub mode: EmulationMode,
}

impl HadoopCluster {
    /// A cluster of `n` nodes in plain-Hadoop mode.
    pub fn new(n: usize) -> HadoopCluster {
        HadoopCluster {
            n_nodes: n.max(1),
            cost: HadoopCost::default(),
            mode: EmulationMode::Hadoop,
        }
    }

    /// Switch emulation mode.
    pub fn with_mode(mut self, mode: EmulationMode) -> HadoopCluster {
        self.mode = mode;
        self
    }

    /// Use custom cost constants.
    pub fn with_cost(mut self, cost: HadoopCost) -> HadoopCluster {
        self.cost = cost;
        self
    }

    /// Execute one MapReduce job over the given inputs.
    ///
    /// `iteration` is the 0-based position within an iterative driver: in
    /// HaLoop mode, immutable inputs are free to map and shuffle for
    /// `iteration > 0` (they hit the reducer input cache, whose
    /// construction at iteration 0 is itself costed as zero per the paper).
    pub fn run_job(
        &self,
        job: &MapReduceJob,
        inputs: &[JobInput],
        iteration: usize,
    ) -> (Vec<Record>, JobMetrics) {
        let cost = &self.cost;
        let mut m = JobMetrics::default();
        let mut charged_cpu = 0.0f64;
        let mut charged_net_bytes = 0u64;
        let mut charged_disk_bytes = 0u64;

        // --- Map stage (per input, so immutable inputs can be discounted).
        // Map output partitioned by key hash into reduce groups.
        let mut groups: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
        for input in inputs {
            let cached = self.mode.caches_immutable() && input.immutable && iteration > 0;
            let mut map_out: Vec<Record> = Vec::new();
            for (k, v) in &input.records {
                job.mapper.map(k, v, &mut |ok, ov| map_out.push((ok, ov)));
            }
            m.map_input_records += input.records.len() as u64;
            m.map_output_records += map_out.len() as u64;
            if !cached {
                // read input from local disk + map CPU
                let in_bytes: u64 = input.records.iter().map(record_bytes).sum();
                charged_disk_bytes += in_bytes;
                charged_cpu += input.records.len() as f64 * cost.base.cpu_per_tuple;
                if !self.mode.zero_overheads() {
                    charged_cpu += input.records.len() as f64 * cost.format_cost;
                }
                // The map-side sort runs on the raw map output (combiners
                // operate on sorted runs in Hadoop), and the output spills
                // to local disk before and after combining.
                let out_bytes: u64 = map_out.iter().map(record_bytes).sum();
                charged_cpu += cost.sort_time(map_out.len() as u64);
                charged_disk_bytes += 2 * out_bytes;
            }

            // --- Combine stage (map-side pre-aggregation), charged only
            // for non-cached inputs.
            let shuffled: Vec<Record> = if let Some(c) = &job.combiner {
                let mut per_key: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
                for (k, v) in map_out {
                    per_key.entry(k).or_default().push(v);
                }
                let mut combined = Vec::new();
                for (k, vs) in per_key {
                    if !cached {
                        charged_cpu += vs.len() as f64 * cost.base.cpu_per_tuple;
                    }
                    c.reduce(&k, &vs, &mut |ok, ov| combined.push((ok, ov)));
                }
                combined
            } else {
                map_out
            };

            // --- Shuffle: sort-merge + network + spill-to-disk.
            let bytes: u64 = shuffled.iter().map(record_bytes).sum();
            m.shuffle_records += shuffled.len() as u64;
            if !cached {
                m.shuffle_bytes += bytes;
                charged_net_bytes += bytes;
                // Reduce-side external merge of the fetched runs (§6.3: REX
                // "avoids the relatively expensive disk-based external merge
                // sort required by the shuffle").
                charged_disk_bytes += 2 * bytes;
            }
            for (k, v) in shuffled {
                groups.entry(k).or_default().push(v);
            }
        }

        // --- Reduce stage.
        let mut output = Vec::new();
        for (k, vs) in &groups {
            m.reduce_input_records += vs.len() as u64;
            charged_cpu += vs.len() as f64 * cost.base.cpu_per_tuple;
            job.reducer.reduce(k, vs, &mut |ok, ov| output.push((ok, ov)));
        }
        m.output_records = output.len() as u64;

        // --- Output: checkpoint to DFS with replication. The replica
        // copies cross the network (HDFS pipeline replication).
        let out_bytes: u64 = output.iter().map(record_bytes).sum();
        m.checkpoint_bytes = out_bytes * cost.dfs_replication as u64;
        charged_disk_bytes += m.checkpoint_bytes;
        let replica_net = out_bytes * (cost.dfs_replication.saturating_sub(1)) as u64;
        m.dfs_network_bytes = replica_net;
        charged_net_bytes += replica_net;
        if !self.mode.zero_overheads() {
            charged_cpu += output.len() as f64 * cost.format_cost;
        }

        // --- Completion time: work divides across nodes; startup does not.
        m.cpu_units = charged_cpu;
        let per_node_cpu = charged_cpu / self.n_nodes as f64;
        let per_node_io = cost.base.net_time(charged_net_bytes / self.n_nodes as u64)
            + cost.base.disk_time(charged_disk_bytes / self.n_nodes as u64);
        // MapReduce is staged, not pipelined: map/shuffle/reduce barriers
        // prevent the CPU/IO overlap REX enjoys (§5), so times add.
        m.sim_time = cost.job_startup + per_node_cpu + per_node_io;

        (output, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{FnMapper, FnReducer, IdentityMapper};

    fn wordcount_job() -> MapReduceJob {
        let mapper = FnMapper::new("tokenize", |_k, v, out| {
            for w in v.as_str().unwrap_or("").split_whitespace() {
                out(Value::str(w), Value::Int(1));
            }
        });
        let reducer = FnReducer::new("sum", |k, vs, out| {
            out(k.clone(), Value::Int(vs.iter().filter_map(Value::as_int).sum()));
        });
        MapReduceJob::new("wordcount", mapper, reducer)
    }

    fn lines(ls: &[&str]) -> Vec<Record> {
        ls.iter().enumerate().map(|(i, l)| (Value::Int(i as i64), Value::str(*l))).collect()
    }

    #[test]
    fn wordcount_produces_exact_counts() {
        let cluster = HadoopCluster::new(4);
        let input = JobInput::mutable(lines(&["a b a", "b c"]));
        let (out, m) = cluster.run_job(&wordcount_job(), &[input], 0);
        assert_eq!(
            out,
            vec![
                (Value::str("a"), Value::Int(2)),
                (Value::str("b"), Value::Int(2)),
                (Value::str("c"), Value::Int(1)),
            ]
        );
        assert_eq!(m.map_input_records, 2);
        assert_eq!(m.map_output_records, 5);
        assert_eq!(m.output_records, 3);
        assert!(m.sim_time > cluster.cost.job_startup);
    }

    #[test]
    fn combiner_shrinks_shuffle() {
        let job = wordcount_job();
        let with = job.clone().with_combiner(FnReducer::new("combine", |k, vs, out| {
            out(k.clone(), Value::Int(vs.iter().filter_map(Value::as_int).sum()));
        }));
        let input = JobInput::mutable(lines(&["a a a a a a b"]));
        let cluster = HadoopCluster::new(1);
        let (out1, m1) = cluster.run_job(&job, std::slice::from_ref(&input), 0);
        let (out2, m2) = cluster.run_job(&with, &[input], 0);
        assert_eq!(out1, out2, "combiner must not change results");
        assert!(m2.shuffle_records < m1.shuffle_records);
        assert!(m2.shuffle_bytes < m1.shuffle_bytes);
    }

    #[test]
    fn haloop_mode_discounts_immutable_after_first_iteration() {
        let job = MapReduceJob::new(
            "pass",
            Arc::new(IdentityMapper),
            FnReducer::new("first", |k, vs, out| out(k.clone(), vs[0].clone())),
        );
        let imm = JobInput::immutable(lines(&["x", "y", "z"]));
        let hadoop = HadoopCluster::new(1).with_mode(EmulationMode::HadoopLowerBound);
        let haloop = HadoopCluster::new(1).with_mode(EmulationMode::HaLoopLowerBound);

        // Iteration 0: identical (cache construction is free but mapping is
        // still charged for HaLoop's first pass in our model — the cache
        // must be built from a full scan; its *construction* is free).
        let (_, h0) = hadoop.run_job(&job, std::slice::from_ref(&imm), 0);
        let (_, l0) = haloop.run_job(&job, std::slice::from_ref(&imm), 0);
        assert_eq!(h0.sim_time, l0.sim_time);

        // Iteration 1: HaLoop pays almost nothing beyond startup + reduce.
        let (_, h1) = hadoop.run_job(&job, std::slice::from_ref(&imm), 1);
        let (out, l1) = haloop.run_job(&job, &[imm], 1);
        assert_eq!(out.len(), 3, "results identical regardless of caching");
        assert!(l1.sim_time < h1.sim_time);
        assert_eq!(l1.shuffle_bytes, 0, "cached input does not re-shuffle");
        assert!(h1.shuffle_bytes > 0);
    }

    #[test]
    fn mutable_inputs_always_charged_in_haloop() {
        let job = MapReduceJob::new(
            "pass",
            Arc::new(IdentityMapper),
            FnReducer::new("first", |k, vs, out| out(k.clone(), vs[0].clone())),
        );
        let mu = JobInput::mutable(lines(&["x", "y"]));
        let haloop = HadoopCluster::new(1).with_mode(EmulationMode::HaLoopLowerBound);
        let (_, m) = haloop.run_job(&job, &[mu], 5);
        assert!(m.shuffle_bytes > 0);
    }

    #[test]
    fn more_nodes_reduce_completion_time() {
        let input = JobInput::mutable(lines(&["a b c d e f g h"; 64]));
        let (_, m1) =
            HadoopCluster::new(1).run_job(&wordcount_job(), std::slice::from_ref(&input), 0);
        let (_, m8) = HadoopCluster::new(8).run_job(&wordcount_job(), &[input], 0);
        assert!(m8.sim_time < m1.sim_time);
        assert!(m8.sim_time > m8.cpu_units / 8.0, "startup is not parallelized");
    }

    #[test]
    fn lower_bound_mode_skips_format_cost() {
        let input = JobInput::mutable(lines(&["a b c"; 32]));
        let plain = HadoopCluster::new(1);
        let lb = HadoopCluster::new(1).with_mode(EmulationMode::HadoopLowerBound);
        let (_, mp) = plain.run_job(&wordcount_job(), std::slice::from_ref(&input), 0);
        let (_, ml) = lb.run_job(&wordcount_job(), &[input], 0);
        assert!(ml.cpu_units < mp.cpu_units);
        assert!(ml.sim_time < mp.sim_time);
    }

    #[test]
    fn metrics_merge_adds() {
        let mut a = JobMetrics { map_input_records: 1, sim_time: 2.0, ..Default::default() };
        let b = JobMetrics { map_input_records: 3, sim_time: 4.0, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.map_input_records, 4);
        assert_eq!(a.sim_time, 6.0);
    }
}
