//! Executing Hadoop code in REX (§4.4): `MapWrap` / `ReduceWrap`.
//!
//! "REX allows direct use of compiled code for Hadoop by utilizing
//! specially designed table-valued 'wrapper' functions. [...] A driver
//! program for a single MapReduce job involving a map and a reduce class
//! can be expressed with the following query:
//!
//! ```sql
//! SELECT ReduceWrap('ReduceClass',
//!        MapWrap('MapClass', k, v).{k, v}).{k, v}
//! FROM InputTable GROUP BY MapWrap('MapClass', k, v).k
//! ```
//!
//! The adapters here turn a [`Mapper`] into a REX
//! [`DeltaMapper`] and a [`Reducer`] into
//! a REX [`AggHandler`], charging the text (de)serialization overhead the
//! paper attributes to the wrappers ("responsible for formatting the input
//! and output data as strings"). For recursive queries the formatting cost
//! is incurred "only once in the beginning and in the end of the query"
//! (§6.3) — [`MapWrap`] therefore only charges it when `boundary` is set.

use crate::api::{Mapper, Record, Reducer};
use rex_core::delta::Delta;
use rex_core::error::{Result, RexError};
use rex_core::handlers::{AggHandler, AggOutputKind, AggState, TupleSet};
use rex_core::operators::DeltaMapper;
use rex_core::tuple::Tuple;
use rex_core::udf::Registry;
use rex_core::value::{DataType, Value};
use std::sync::Arc;

/// Convert a `(key, value)` record into a 2-ary engine tuple.
pub fn record_to_tuple(r: &Record) -> Tuple {
    Tuple::new(vec![r.0.clone(), r.1.clone()])
}

/// Convert a 2-ary engine tuple into a `(key, value)` record.
pub fn tuple_to_record(t: &Tuple) -> Result<Record> {
    if t.arity() != 2 {
        return Err(RexError::Exec(format!(
            "wrap expects (key, value) tuples, got arity {}",
            t.arity()
        )));
    }
    Ok((t.get(0).clone(), t.get(1).clone()))
}

/// The per-tuple string round-trip a wrapper performs. Modelled as a cost
/// (the value content is unchanged — Hadoop text format is lossless for our
/// value types), surfaced so tests can see that formatting "happened".
fn format_round_trip(v: &Value) -> Value {
    // Simulate serialize+parse for the scalar types Hadoop text I/O uses.
    match v {
        Value::Int(i) => Value::Int(i.to_string().parse().expect("roundtrip")),
        Value::Str(s) => Value::str(s.to_string()),
        other => other.clone(),
    }
}

/// `MapWrap('MapClass', k, v)`: runs a Hadoop [`Mapper`] as a REX
/// apply-function mapper over `(k, v)` tuples.
pub struct MapWrap {
    mapper: Arc<dyn Mapper>,
    name: String,
    /// Whether this wrapper sits at a query boundary and must pay the text
    /// formatting cost per tuple.
    boundary: bool,
}

impl MapWrap {
    /// Wrap `mapper`; `boundary` charges per-tuple formatting.
    pub fn new(mapper: Arc<dyn Mapper>, boundary: bool) -> MapWrap {
        let name = format!("MapWrap({})", mapper.name());
        MapWrap { mapper, name, boundary }
    }
}

impl DeltaMapper for MapWrap {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, d: &Delta, _reg: &Registry) -> Result<Vec<Delta>> {
        let (k, v) = tuple_to_record(&d.tuple)?;
        let (k, v) =
            if self.boundary { (format_round_trip(&k), format_round_trip(&v)) } else { (k, v) };
        let mut out = Vec::new();
        self.mapper.map(&k, &v, &mut |ok, ov| {
            out.push(d.with_tuple(Tuple::new(vec![ok, ov])));
        });
        Ok(out)
    }

    fn wrap_boundary(&self) -> bool {
        self.boundary
    }
}

/// `ReduceWrap('ReduceClass', ...)`: runs a Hadoop [`Reducer`] as a REX
/// table-valued UDA. Values buffer per grouping key; at stratum end the
/// reducer runs over the buffered bag and its records are emitted as insert
/// deltas.
///
/// Group-by prefixes table-valued results with the grouping key, so the
/// operator downstream of the group-by sees `(group_key, out_key,
/// out_value)`; wrap plans append a projection onto columns `1, 2` to
/// recover the Hadoop record shape (see
/// [`reduce_output_projection`]).
pub struct ReduceWrap {
    reducer: Arc<dyn Reducer>,
    name: String,
    boundary: bool,
}

impl ReduceWrap {
    /// Wrap `reducer`; `boundary` charges per-record formatting on output.
    pub fn new(reducer: Arc<dyn Reducer>, boundary: bool) -> ReduceWrap {
        let name = format!("ReduceWrap({})", reducer.name());
        ReduceWrap { reducer, name, boundary }
    }
}

impl AggHandler for ReduceWrap {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&self) -> AggState {
        AggState::Tuples(TupleSet::new())
    }

    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        let AggState::Tuples(set) = state else {
            return Err(RexError::Exec("ReduceWrap state must be a tuple bag".into()));
        };
        match &d.ann {
            rex_core::delta::Annotation::Insert | rex_core::delta::Annotation::Update(_) => {
                set.insert(d.tuple.clone());
            }
            rex_core::delta::Annotation::Delete => {
                set.remove(&d.tuple);
            }
            rex_core::delta::Annotation::Replace(old) => {
                set.replace(old, d.tuple.clone());
            }
        }
        Ok(Vec::new())
    }

    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        let AggState::Tuples(set) = state else {
            return Err(RexError::Exec("ReduceWrap state must be a tuple bag".into()));
        };
        if set.is_empty() {
            return Ok(Vec::new());
        }
        // All buffered tuples share the grouping key (group-by routed them
        // here); the reducer sees the key of the first tuple and the bag of
        // values.
        let tuples = set.tuples();
        let key = tuples[0].get(0).clone();
        let values: Vec<Value> = tuples.iter().map(|t| t.get(1).clone()).collect();
        let mut out = Vec::new();
        self.reducer.reduce(&key, &values, &mut |ok, ov| {
            let (ok, ov) = if self.boundary {
                (format_round_trip(&ok), format_round_trip(&ov))
            } else {
                (ok, ov)
            };
            out.push(Delta::insert(Tuple::new(vec![ok, ov])));
        });
        Ok(out)
    }

    fn output_kind(&self) -> AggOutputKind {
        AggOutputKind::TableValued
    }

    fn return_type(&self) -> DataType {
        DataType::Any
    }
}

/// The projection that strips the group-by key prefix off `ReduceWrap`
/// output, restoring the `(key, value)` record shape.
pub fn reduce_output_projection() -> rex_core::operators::ProjectOp {
    use rex_core::expr::Expr;
    rex_core::operators::ProjectOp::new(vec![Expr::col(1), Expr::col(2)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{FnMapper, FnReducer};
    use rex_core::exec::{LocalRuntime, PlanGraph};
    use rex_core::operators::{AggSpec, ApplyFunctionOp, GroupByOp, ScanOp, SinkOp};

    fn tokenizer() -> Arc<dyn Mapper> {
        FnMapper::new("tok", |_k, v, out| {
            for w in v.as_str().unwrap_or("").split_whitespace() {
                out(Value::str(w), Value::Int(1));
            }
        })
    }

    fn summer() -> Arc<dyn Reducer> {
        FnReducer::new("sum", |k, vs, out| {
            out(k.clone(), Value::Int(vs.iter().filter_map(Value::as_int).sum()));
        })
    }

    #[test]
    fn record_tuple_round_trip() {
        let r = (Value::str("a"), Value::Int(3));
        let t = record_to_tuple(&r);
        assert_eq!(tuple_to_record(&t).unwrap(), r);
        assert!(tuple_to_record(&Tuple::new(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn map_wrap_runs_hadoop_mapper_over_deltas() {
        let w = MapWrap::new(tokenizer(), true);
        let d = Delta::insert(Tuple::new(vec![Value::Int(0), Value::str("x y x")]));
        let out = w.map(&d, &Registry::new()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].tuple.get(0), &Value::str("x"));
        assert_eq!(out[0].tuple.get(1), &Value::Int(1));
    }

    #[test]
    fn reduce_wrap_buffers_then_reduces() {
        let w = ReduceWrap::new(summer(), false);
        let mut st = w.init();
        for v in [1i64, 2, 3] {
            let d = Delta::insert(Tuple::new(vec![Value::str("k"), Value::Int(v)]));
            assert!(w.agg_state(&mut st, &d).unwrap().is_empty());
        }
        let out = w.agg_result(&st).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuple.get(1), &Value::Int(6));
        assert_eq!(w.output_kind(), AggOutputKind::TableValued);
    }

    #[test]
    fn reduce_wrap_handles_deletion_deltas() {
        let w = ReduceWrap::new(summer(), false);
        let mut st = w.init();
        let t1 = Tuple::new(vec![Value::str("k"), Value::Int(5)]);
        let t2 = Tuple::new(vec![Value::str("k"), Value::Int(7)]);
        w.agg_state(&mut st, &Delta::insert(t1.clone())).unwrap();
        w.agg_state(&mut st, &Delta::insert(t2)).unwrap();
        w.agg_state(&mut st, &Delta::delete(t1)).unwrap();
        let out = w.agg_result(&st).unwrap();
        assert_eq!(out[0].tuple.get(1), &Value::Int(7));
    }

    /// End-to-end "wrap" pipeline: the Hadoop wordcount classes run inside
    /// a REX plan — scan → MapWrap → group-by(ReduceWrap) → sink.
    #[test]
    fn wordcount_runs_inside_rex_plan() {
        let mut g = PlanGraph::new();
        let scan = g.add(Box::new(ScanOp::new(
            "input",
            vec![
                Tuple::new(vec![Value::Int(0), Value::str("a b a")]),
                Tuple::new(vec![Value::Int(1), Value::str("b c")]),
            ],
        )));
        let map = g.add(Box::new(ApplyFunctionOp::new(Arc::new(MapWrap::new(tokenizer(), true)))));
        let gb = g.add(Box::new(GroupByOp::new(
            vec![0],
            vec![AggSpec::new(Arc::new(ReduceWrap::new(summer(), true)), vec![0, 1])],
        )));
        let strip = g.add(Box::new(reduce_output_projection()));
        let sink = g.add(Box::new(SinkOp::new()));
        g.pipe(scan, map);
        g.pipe(map, gb);
        g.pipe(gb, strip);
        g.pipe(strip, sink);

        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(
            results,
            vec![
                Tuple::new(vec![Value::str("a"), Value::Int(2)]),
                Tuple::new(vec![Value::str("b"), Value::Int(2)]),
                Tuple::new(vec![Value::str("c"), Value::Int(1)]),
            ]
        );
    }
}
