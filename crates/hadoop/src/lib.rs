//! # rex-hadoop
//!
//! A faithful MapReduce simulator and HaLoop lower-bound emulation, the
//! comparison baselines of the REX paper's evaluation (§6), plus the
//! `MapWrap`/`ReduceWrap` adapters that execute native Hadoop code *inside*
//! REX (§4.4, the "wrap" configuration).
//!
//! The simulator executes user map/combine/reduce functions exactly (its
//! results are checked against REX's in the integration tests) while
//! accounting costs — per-job startup, sort-merge shuffle, DFS output
//! checkpointing — under the shared
//! [`CostModel`](rex_core::metrics::CostModel) constants. The paper
//! emulated HaLoop by zeroing the costs of selected stages;
//! [`EmulationMode`] reproduces exactly that methodology, so `Hadoop LB` /
//! `HaLoop LB` series here are lower bounds just as in the paper.
//!
//! ```
//! use rex_hadoop::api::{FnMapper, FnReducer};
//! use rex_hadoop::job::{HadoopCluster, JobInput, MapReduceJob};
//! use rex_core::value::Value;
//!
//! let job = MapReduceJob::new(
//!     "count",
//!     FnMapper::new("one", |_k, v, out| out(v.clone(), Value::Int(1))),
//!     FnReducer::new("sum", |k, vs, out| {
//!         out(k.clone(), Value::Int(vs.iter().filter_map(Value::as_int).sum()))
//!     }),
//! );
//! let input = JobInput::mutable(vec![
//!     (Value::Int(0), Value::str("a")),
//!     (Value::Int(1), Value::str("a")),
//! ]);
//! let (out, metrics) = HadoopCluster::new(4).run_job(&job, &[input], 0);
//! assert_eq!(out, vec![(Value::str("a"), Value::Int(2))]);
//! assert!(metrics.sim_time > 0.0);
//! ```

pub mod api;
pub mod cost;
pub mod driver;
pub mod job;
pub mod wrap;

pub use api::{FnMapper, FnReducer, IdentityMapper, Mapper, Record, Reducer};
pub use cost::{EmulationMode, HadoopCost};
pub use driver::{IterativeJob, RunReport};
pub use job::{HadoopCluster, JobInput, JobMetrics, MapReduceJob};
pub use wrap::{MapWrap, ReduceWrap};
