//! Semi-naive recursive-SQL evaluation with full state retention.

use rex_core::metrics::CostModel;
use rex_core::tuple::Tuple;
use std::collections::HashSet;
use std::time::Instant;

/// DBMS X configuration.
#[derive(Debug, Clone, Copy)]
pub struct DbmsConfig {
    /// Shared per-tuple / per-byte rates (same constants as REX, for an
    /// apples-to-apples comparison).
    pub cost: CostModel,
    /// Buffer-pool size: accumulated state beyond this spills to disk.
    pub buffer_pool_bytes: u64,
    /// Per-tuple cost of appending to the accumulated working table
    /// (heap insert + index maintenance).
    pub insert_cost: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for DbmsConfig {
    fn default() -> DbmsConfig {
        DbmsConfig {
            cost: CostModel::default(),
            buffer_pool_bytes: 4 << 20,
            insert_cost: 4.0,
            max_iterations: 100,
        }
    }
}

/// A recursive query in the SQL-92/99 shape: a base case plus a step
/// function mapping the previous delta to new candidate rows.
pub struct RecursiveQuery<'a> {
    /// Base-case rows.
    pub base: Vec<Tuple>,
    /// The recursive step: previous delta → candidate rows. `iteration` is
    /// 0-based.
    #[allow(clippy::type_complexity)]
    pub step: Box<dyn Fn(&[Tuple], usize) -> Vec<Tuple> + 'a>,
    /// Per-iteration processing cost charged per *input* tuple of the step
    /// (models the recursive block's joins/aggregations).
    pub step_cost_per_tuple: f64,
}

/// Per-iteration execution record.
#[derive(Debug, Clone, Copy, Default)]
pub struct IterationStats {
    /// 0-based iteration.
    pub iteration: usize,
    /// New (previously underived) rows this iteration.
    pub new_tuples: u64,
    /// Total rows retained in the accumulated working table.
    pub accumulated_tuples: u64,
    /// Total bytes retained.
    pub accumulated_bytes: u64,
    /// Bytes of the accumulation that live beyond the buffer pool.
    pub spilled_bytes: u64,
    /// Simulated time for the iteration.
    pub sim_time: f64,
}

/// A full recursive execution.
#[derive(Debug, Clone, Default)]
pub struct DbmsReport {
    /// Per-iteration records.
    pub iterations: Vec<IterationStats>,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
}

impl DbmsReport {
    /// Total simulated time.
    pub fn total_sim_time(&self) -> f64 {
        self.iterations.iter().map(|i| i.sim_time).sum()
    }

    /// Final accumulated state size in tuples (the cost REX avoids).
    pub fn final_state_tuples(&self) -> u64 {
        self.iterations.last().map(|i| i.accumulated_tuples).unwrap_or(0)
    }
}

/// Execute a recursive query semi-naively: each iteration feeds only the
/// previous delta to the step (SQL engines do propagate deltas), but every
/// derived row is retained in the accumulated result for the lifetime of
/// the query (SQL's `UNION` of all strata). Set semantics over whole rows.
/// Returns the accumulated rows and the report.
pub fn run_recursive(q: &RecursiveQuery<'_>, cfg: &DbmsConfig) -> (Vec<Tuple>, DbmsReport) {
    let t0 = Instant::now();
    let mut report = DbmsReport::default();
    let mut seen: HashSet<Tuple> = HashSet::new();
    let mut accumulated: Vec<Tuple> = Vec::new();
    let mut accumulated_bytes = 0u64;

    let charge_new = |rows: &[Tuple],
                      seen: &mut HashSet<Tuple>,
                      accumulated: &mut Vec<Tuple>,
                      accumulated_bytes: &mut u64|
     -> (u64, f64) {
        let mut new = 0u64;
        let mut insert_cpu = 0.0;
        for r in rows {
            if seen.insert(r.clone()) {
                *accumulated_bytes += r.byte_size() as u64;
                accumulated.push(r.clone());
                new += 1;
                insert_cpu += 1.0;
            }
        }
        (new, insert_cpu)
    };

    // Iteration 0: materialize the base case.
    let (base_new, base_inserts) =
        charge_new(&q.base, &mut seen, &mut accumulated, &mut accumulated_bytes);
    let spilled = accumulated_bytes.saturating_sub(cfg.buffer_pool_bytes);
    report.iterations.push(IterationStats {
        iteration: 0,
        new_tuples: base_new,
        accumulated_tuples: accumulated.len() as u64,
        accumulated_bytes,
        spilled_bytes: spilled,
        sim_time: base_inserts * cfg.insert_cost + cfg.cost.disk_time(spilled),
    });

    let mut delta: Vec<Tuple> = q.base.clone();
    let mut iteration = 1usize;
    while !delta.is_empty() && iteration <= cfg.max_iterations {
        let candidates = (q.step)(&delta, iteration - 1);
        let step_cpu = delta.len() as f64 * q.step_cost_per_tuple
            + candidates.len() as f64 * cfg.cost.cpu_per_tuple;
        let (new, inserts) =
            charge_new(&candidates, &mut seen, &mut accumulated, &mut accumulated_bytes);
        // Deduplication probes the *accumulated* table; the portion beyond
        // the buffer pool pays disk on every iteration — this is where
        // retention hurts.
        let spilled = accumulated_bytes.saturating_sub(cfg.buffer_pool_bytes);
        let dedup_cpu = candidates.len() as f64 * cfg.cost.hash_cost;
        let sim_time =
            step_cpu + dedup_cpu + inserts * cfg.insert_cost + cfg.cost.disk_time(spilled);
        // The next delta: only the fresh rows (semi-naive).
        delta = candidates
            .into_iter()
            .filter(|c| accumulated[accumulated.len() - new as usize..].contains(c))
            .collect();
        report.iterations.push(IterationStats {
            iteration,
            new_tuples: new,
            accumulated_tuples: accumulated.len() as u64,
            accumulated_bytes,
            spilled_bytes: spilled,
            sim_time,
        });
        iteration += 1;
    }
    report.wall_seconds = t0.elapsed().as_secs_f64();
    (accumulated, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;

    /// Transitive closure over a small chain graph.
    fn closure_query(edges: Vec<(i64, i64)>, start: i64) -> RecursiveQuery<'static> {
        RecursiveQuery {
            base: vec![tuple![start]],
            step: Box::new(move |delta, _| {
                let mut out = Vec::new();
                for d in delta {
                    let v = d.get(0).as_int().unwrap();
                    for (s, t) in &edges {
                        if *s == v {
                            out.push(tuple![*t]);
                        }
                    }
                }
                out
            }),
            step_cost_per_tuple: 2.0,
        }
    }

    #[test]
    fn closure_terminates_and_accumulates() {
        let q = closure_query(vec![(0, 1), (1, 2), (2, 3), (3, 1)], 0);
        let (rows, report) = run_recursive(&q, &DbmsConfig::default());
        let mut got: Vec<i64> = rows.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        // Cycle 3→1 re-derives 1; set semantics stop the recursion.
        assert!(report.iterations.len() <= 6);
        assert_eq!(report.final_state_tuples(), 4);
    }

    #[test]
    fn accumulated_state_is_monotone() {
        let q = closure_query(vec![(0, 1), (1, 2), (2, 3)], 0);
        let (_, report) = run_recursive(&q, &DbmsConfig::default());
        let sizes: Vec<u64> = report.iterations.iter().map(|i| i.accumulated_tuples).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "{sizes:?}");
        assert_eq!(*sizes.last().unwrap(), 4);
    }

    #[test]
    fn spill_kicks_in_beyond_buffer_pool() {
        // Wide fan-out so the accumulation quickly exceeds a tiny pool.
        let edges: Vec<(i64, i64)> = (0..200).map(|i| (0, i + 1)).collect();
        let q = closure_query(edges, 0);
        let small = DbmsConfig { buffer_pool_bytes: 100, ..DbmsConfig::default() };
        let big = DbmsConfig::default();
        let (_, r_small) = run_recursive(&q, &small);
        let (_, r_big) = run_recursive(&q, &big);
        assert!(r_small.iterations.last().unwrap().spilled_bytes > 0);
        assert_eq!(r_big.iterations.last().unwrap().spilled_bytes, 0);
        assert!(r_small.total_sim_time() > r_big.total_sim_time());
    }

    #[test]
    fn iteration_cap_halts_divergence() {
        // A step that always derives a fresh row never converges.
        let q = RecursiveQuery {
            base: vec![tuple![0i64]],
            step: Box::new(|delta, _| {
                delta.iter().map(|t| tuple![t.get(0).as_int().unwrap() + 1]).collect()
            }),
            step_cost_per_tuple: 1.0,
        };
        let cfg = DbmsConfig { max_iterations: 7, ..DbmsConfig::default() };
        let (rows, report) = run_recursive(&q, &cfg);
        assert_eq!(rows.len(), 8); // base + 7 iterations
        assert_eq!(report.iterations.len(), 8);
    }

    #[test]
    fn empty_base_is_a_noop() {
        let q = RecursiveQuery {
            base: vec![],
            step: Box::new(|_, _| vec![]),
            step_cost_per_tuple: 1.0,
        };
        let (rows, report) = run_recursive(&q, &DbmsConfig::default());
        assert!(rows.is_empty());
        assert_eq!(report.iterations.len(), 1);
    }
}
