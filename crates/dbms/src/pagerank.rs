//! PageRank as a recursive SQL query on DBMS X (the Figure 10 workload).
//!
//! Each iteration derives a complete fresh rank relation tagged with its
//! iteration number — "a recursive query does not allow us to discard the
//! prior scores when we update them" — so the accumulated working table
//! holds every iteration's scores. The *answer* is the final iteration's
//! slice; everything older is dead weight the DBMS still pays to keep and
//! to probe during set-semantics deduplication.

use crate::engine::{run_recursive, DbmsConfig, DbmsReport, RecursiveQuery};
use rex_core::tuple::Tuple;
use rex_core::value::Value;
use rex_data::graph::Graph;

/// Damping factor (matches the paper's query).
const DAMPING: f64 = 0.85;
const BASE_RANK: f64 = 0.15;

/// Run `iterations` of PageRank as a recursive SQL query. Returns the
/// final per-vertex ranks and the execution report (whose accumulated
/// sizes grow linearly with iterations — the Figure 10 handicap).
pub fn pagerank_recursive_sql(
    graph: &Graph,
    iterations: usize,
    cfg: &DbmsConfig,
) -> (Vec<f64>, DbmsReport) {
    let n = graph.n_vertices;
    let adj = graph.adjacency();
    let out_deg = graph.out_degrees();

    // Rows are (iteration, vertex, rank); iteration participates in the
    // row identity, so every stratum's scores accumulate.
    let base: Vec<Tuple> = (0..n)
        .map(|v| Tuple::new(vec![Value::Int(0), Value::Int(v as i64), Value::Double(1.0)]))
        .collect();
    let step = move |delta: &[Tuple], iteration: usize| -> Vec<Tuple> {
        if iteration + 1 > iterations {
            return Vec::new(); // explicit termination after `iterations`
        }
        let mut incoming = vec![0.0f64; n];
        for row in delta {
            let v = row.get(1).as_int().unwrap_or(0) as usize;
            let pr = row.get(2).as_double().unwrap_or(0.0);
            if v < n && out_deg[v] > 0 {
                let share = pr / out_deg[v] as f64;
                for &t in &adj[v] {
                    incoming[t as usize] += share;
                }
            }
        }
        (0..n)
            .map(|v| {
                Tuple::new(vec![
                    Value::Int(iteration as i64 + 1),
                    Value::Int(v as i64),
                    Value::Double(BASE_RANK + DAMPING * incoming[v]),
                ])
            })
            .collect()
    };
    // The recursive block joins the delta with the edge relation and
    // re-aggregates: charge the per-tuple cost of the join fan-out.
    let mean_degree = (graph.n_edges() as f64 / n.max(1) as f64).max(1.0);
    let q = RecursiveQuery {
        base,
        step: Box::new(step),
        step_cost_per_tuple: 1.0 + mean_degree * cfg.cost.hash_cost,
    };
    let mut run_cfg = *cfg;
    run_cfg.max_iterations = iterations + 1;
    let (rows, report) = run_recursive(&q, &run_cfg);

    // The answer: the last iteration's slice.
    let mut ranks = vec![BASE_RANK; n];
    let last = rows.iter().filter_map(|t| t.get(0).as_int()).max().unwrap_or(0);
    for t in &rows {
        if t.get(0).as_int() == Some(last) {
            if let (Some(v), Some(pr)) = (t.get(1).as_int(), t.get(2).as_double()) {
                ranks[v as usize] = pr;
            }
        }
    }
    (ranks, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_data::graph::{generate_graph, GraphSpec};

    fn reference(graph: &Graph, iterations: usize) -> Vec<f64> {
        // Inline power iteration (kept independent of rex-algos to avoid a
        // dependency cycle; cross-crate agreement is tested at workspace
        // level).
        let n = graph.n_vertices;
        let adj = graph.adjacency();
        let deg = graph.out_degrees();
        let mut pr = vec![1.0f64; n];
        for _ in 0..iterations {
            let mut inc = vec![0.0f64; n];
            for v in 0..n {
                if deg[v] > 0 {
                    let share = pr[v] / deg[v] as f64;
                    for &t in &adj[v] {
                        inc[t as usize] += share;
                    }
                }
            }
            for v in 0..n {
                pr[v] = 0.15 + 0.85 * inc[v];
            }
        }
        pr
    }

    fn graph() -> Graph {
        generate_graph(GraphSpec {
            n_vertices: 40,
            edges_per_vertex: 3,
            seed: 2,
            random_edge_fraction: 0.1,
            locality_window: 0,
        })
    }

    #[test]
    fn ranks_match_power_iteration() {
        let g = graph();
        let (got, _) = pagerank_recursive_sql(&g, 12, &DbmsConfig::default());
        let want = reference(&g, 12);
        for v in 0..g.n_vertices {
            assert!((got[v] - want[v]).abs() < 1e-9, "vertex {v}");
        }
    }

    #[test]
    fn state_accumulates_one_relation_per_iteration() {
        let g = graph();
        let iters = 10;
        let (_, report) = pagerank_recursive_sql(&g, iters, &DbmsConfig::default());
        // (iters + 1) strata × |V| rows, all retained.
        assert_eq!(report.final_state_tuples(), (iters as u64 + 1) * g.n_vertices as u64);
    }

    #[test]
    fn retained_state_raises_late_iteration_cost() {
        let g = graph();
        let cfg = DbmsConfig { buffer_pool_bytes: 2_000, ..DbmsConfig::default() };
        let (_, report) = pagerank_recursive_sql(&g, 20, &cfg);
        // The same logical work per iteration, but the accumulated (and
        // increasingly spilled) working table makes late iterations dearer
        // than early ones.
        let early = report.iterations[2].sim_time;
        // The final entry is the empty terminating stratum; compare the
        // last *productive* iteration.
        let late_entry = &report.iterations[report.iterations.len() - 2];
        assert!(
            late_entry.sim_time > early,
            "late iterations must pay for retained state: early={early} late={}",
            late_entry.sim_time
        );
        assert!(late_entry.spilled_bytes > 0);
    }
}
