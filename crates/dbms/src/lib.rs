//! # rex-dbms
//!
//! "DBMS X": a single-node recursive-SQL evaluator with *accumulate-only*
//! semantics, the commercial-database baseline of Figure 10.
//!
//! The paper's core observation about SQL databases (§1): "recursive SQL
//! accumulates state and does not allow it to be incrementally updated and
//! replaced. For PageRank, we only need the last PageRank score for each
//! tuple, but a recursive query does not allow us to discard the prior
//! scores when we update them." This engine reproduces exactly that
//! behavior: semi-naive evaluation where every stratum's derivations are
//! retained forever. The accumulated working table grows with every
//! iteration, and once it exceeds the buffer pool the engine pays disk I/O
//! for the spilled portion — the structural disadvantage REX's refinement
//! avoids.

pub mod engine;
pub mod pagerank;

pub use engine::{DbmsConfig, DbmsReport, IterationStats, RecursiveQuery};
pub use pagerank::pagerank_recursive_sql;
