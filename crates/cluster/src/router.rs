//! Network routing between workers.
//!
//! "Communication is achieved via TCP with destinations chosen by
//! partitions ... query processing passes batched messages" (§4.1). The
//! router partitions each rehash emission by key under the query's
//! partition snapshot, accounts the bytes that cross worker boundaries
//! (self-delivery is local and free), and aligns punctuation: a downstream
//! input sees a stratum punctuation only after *every* live worker's rehash
//! instance has punctuated that stratum.

use rex_core::delta::{Annotation, Delta, Punctuation};
use rex_core::exec::{Executor, NetEmission, NetKey, NodeId};
use rex_core::operators::{hash_key, hash_key_cols, Event};
use rex_storage::partition::PartitionSnapshot;
use std::collections::{HashMap, HashSet};

/// One routed batch: everything needed to deliver an event into a worker
/// without touching that worker's executor from the routing thread — the
/// unit the threaded cluster scheduler sends over worker-thread channels.
#[derive(Debug)]
pub struct Delivery {
    /// Receiving worker.
    pub target: usize,
    /// Network-boundary node (delivery re-enters downstream of it).
    pub node: NodeId,
    /// Output port of the boundary node.
    pub port: usize,
    /// The routed event.
    pub event: Event,
    /// Bytes this delivery moved across worker boundaries (0 for
    /// self-delivery) — credited to the target's `bytes_received`.
    pub bytes: u64,
}

/// Where a routed batch came from: sender, boundary node/port, and the
/// cluster width (bucket-table size for hash routing).
#[derive(Clone, Copy)]
struct BatchCtx {
    from_worker: usize,
    node: NodeId,
    port: usize,
    n_workers: usize,
}

/// Routes rehash traffic among a set of worker executors.
#[derive(Default)]
pub struct Router {
    /// Punctuation arrivals: (rehash node, port, punct) → workers heard.
    punct_counts: HashMap<(NodeId, usize, Punctuation), HashSet<usize>>,
    /// Total bytes that crossed worker boundaries.
    pub bytes_crossed: u64,
    /// Messages delivered across worker boundaries.
    pub messages_crossed: u64,
    /// Boundary-crossing bytes by routing mode: key-partitioned rehash.
    pub rehash_bytes: u64,
    /// Boundary-crossing bytes replicated by broadcast boundaries.
    pub broadcast_bytes: u64,
    /// Boundary-crossing bytes funneled through gather boundaries.
    pub gather_bytes: u64,
    /// Rows (deltas) delivered *into* each worker, self-delivery included
    /// — the router's view of per-worker load. Indexed by worker id;
    /// grown on demand.
    pub rows_routed: Vec<u64>,
}

impl Router {
    /// Fresh router (one per query attempt).
    pub fn new() -> Router {
        Router::default()
    }

    /// Count `rows` delivered into `worker`.
    #[inline]
    fn tally_rows(&mut self, worker: usize, rows: u64) {
        if self.rows_routed.len() <= worker {
            self.rows_routed.resize(worker + 1, 0);
        }
        self.rows_routed[worker] += rows;
    }

    /// Deliver an outbox of rehash emissions from `from_worker` into the
    /// executors of all live workers. Returns the number of injections made
    /// (used by the scheduler's quiescence check).
    pub fn route(
        &mut self,
        from_worker: usize,
        outbox: Vec<NetEmission>,
        executors: &mut [Executor],
        live: &[usize],
        snap: &PartitionSnapshot,
    ) -> usize {
        let n_workers = executors.len();
        let (deliveries, sent) = {
            let ex: &[Executor] = executors;
            let net_key = move |node: NodeId| {
                ex[from_worker]
                    .network_key(node)
                    .expect("outbox emission from a non-network node")
                    .clone()
            };
            self.route_batches(from_worker, outbox, &net_key, live, snap, n_workers)
        };
        executors[from_worker].metrics.bytes_sent += sent;
        let injected = deliveries.len();
        for d in deliveries {
            executors[d.target].metrics.bytes_received += d.bytes;
            executors[d.target].inject_downstream(d.node, d.port, d.event);
        }
        injected
    }

    /// The routing decision itself, with no executor access: partition an
    /// outbox into per-target [`Delivery`]s (in deterministic emission
    /// order) and account every router-side counter. Returns the
    /// deliveries plus the sender's total `bytes_sent` credit. [`Router::route`]
    /// is exactly this plus local injection, and the threaded cluster
    /// scheduler sends the same deliveries over worker-thread channels —
    /// so inline and threaded execution route identically by
    /// construction.
    pub fn route_batches(
        &mut self,
        from_worker: usize,
        outbox: Vec<NetEmission>,
        net_key: &dyn Fn(NodeId) -> NetKey,
        live: &[usize],
        snap: &PartitionSnapshot,
        n_workers: usize,
    ) -> (Vec<Delivery>, u64) {
        let mut deliveries = Vec::new();
        let mut sent = 0u64;
        for em in outbox {
            match em.event {
                Event::Data(deltas) => {
                    self.batch_data(
                        BatchCtx { from_worker, node: em.node, port: em.port, n_workers },
                        deltas,
                        net_key,
                        live,
                        snap,
                        &mut deliveries,
                        &mut sent,
                    );
                }
                // Fast-lane batches crossing a boundary route as the
                // insertions they are (lane plans have no network nodes
                // today, but the router must not depend on that). Columnar
                // batches additionally materialize their selected rows —
                // partition routing is per-row anyway, so nothing is lost
                // by leaving the columnar form at the network edge.
                Event::Rows(rows) => {
                    let deltas = rows.into_iter().map(Delta::insert).collect();
                    self.batch_data(
                        BatchCtx { from_worker, node: em.node, port: em.port, n_workers },
                        deltas,
                        net_key,
                        live,
                        snap,
                        &mut deliveries,
                        &mut sent,
                    );
                }
                Event::Cols(batch) => {
                    let deltas = batch.to_rows().into_iter().map(Delta::insert).collect();
                    self.batch_data(
                        BatchCtx { from_worker, node: em.node, port: em.port, n_workers },
                        deltas,
                        net_key,
                        live,
                        snap,
                        &mut deliveries,
                        &mut sent,
                    );
                }
                Event::Punct(p) => {
                    self.batch_punct(
                        from_worker,
                        em.node,
                        em.port,
                        p,
                        live,
                        &mut deliveries,
                        &mut sent,
                    );
                }
            }
        }
        (deliveries, sent)
    }

    #[allow(clippy::too_many_arguments)]
    fn batch_data(
        &mut self,
        ctx: BatchCtx,
        deltas: Vec<Delta>,
        net_key: &dyn Fn(NodeId) -> NetKey,
        live: &[usize],
        snap: &PartitionSnapshot,
        out: &mut Vec<Delivery>,
        sent: &mut u64,
    ) {
        let BatchCtx { from_worker, node, port, n_workers } = ctx;
        let key_cols: Vec<usize> = match net_key(node) {
            // A broadcast boundary replicates the full batch to every live
            // worker (small relations joined against everything, e.g.
            // K-means centroids against the point partitions).
            NetKey::Broadcast => {
                let n_rows = deltas.len() as u64;
                let event = Event::Data(deltas);
                let bytes = event.byte_size() as u64;
                for &target in live {
                    let crossed = target != from_worker;
                    if crossed {
                        *sent += bytes;
                        self.bytes_crossed += bytes;
                        self.broadcast_bytes += bytes;
                        self.messages_crossed += 1;
                    }
                    self.tally_rows(target, n_rows);
                    out.push(Delivery {
                        target,
                        node,
                        port,
                        event: event.clone(),
                        bytes: if crossed { bytes } else { 0 },
                    });
                }
                return;
            }
            // A gather boundary funnels everything to one deterministic
            // worker — the owner of the empty key (global aggregates).
            NetKey::Gather => {
                let target = snap.owner_of_hash(hash_key(&[]));
                let n_rows = deltas.len() as u64;
                let event = Event::Data(deltas);
                let crossed = target != from_worker;
                let bytes = if crossed { event.byte_size() as u64 } else { 0 };
                if crossed {
                    *sent += bytes;
                    self.bytes_crossed += bytes;
                    self.gather_bytes += bytes;
                    self.messages_crossed += 1;
                }
                self.tally_rows(target, n_rows);
                out.push(Delivery { target, node, port, event, bytes });
                return;
            }
            NetKey::Hash(cols) => cols,
        };
        // Bucket by owner with a worker-indexed table — no hashing to pick
        // the bucket a routed delta lands in.
        let mut per_target: Vec<Vec<Delta>> = vec![Vec::new(); n_workers];
        for d in deltas {
            // A replacement whose old tuple lives in a different partition
            // must be split into a routed delete plus a routed insert.
            if let Annotation::Replace(old) = &d.ann {
                let old_owner = snap.owner_of_hash(hash_key_cols(old, &key_cols));
                let new_owner = snap.owner_of_hash(hash_key_cols(&d.tuple, &key_cols));
                if old_owner != new_owner {
                    per_target[old_owner].push(Delta::delete(old.clone()));
                    per_target[new_owner].push(Delta::insert(d.tuple.clone()));
                    continue;
                }
            }
            let owner = snap.owner_of_hash(hash_key_cols(&d.tuple, &key_cols));
            per_target[owner].push(d);
        }
        for (target, batch) in per_target.into_iter().enumerate().filter(|(_, b)| !b.is_empty()) {
            let n_rows = batch.len() as u64;
            let event = Event::Data(batch);
            let crossed = target != from_worker;
            let bytes = if crossed { event.byte_size() as u64 } else { 0 };
            if crossed {
                *sent += bytes;
                self.bytes_crossed += bytes;
                self.rehash_bytes += bytes;
                self.messages_crossed += 1;
            }
            self.tally_rows(target, n_rows);
            out.push(Delivery { target, node, port, event, bytes });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn batch_punct(
        &mut self,
        from_worker: usize,
        node: NodeId,
        port: usize,
        p: Punctuation,
        live: &[usize],
        out: &mut Vec<Delivery>,
        sent: &mut u64,
    ) {
        // Broadcast cost: one tiny message to every other live worker.
        let bcast = Event::Punct(p).byte_size() as u64 * (live.len().saturating_sub(1)) as u64;
        *sent += bcast;
        self.bytes_crossed += bcast;

        let heard = self.punct_counts.entry((node, port, p)).or_default();
        heard.insert(from_worker);
        if heard.len() >= live.len() {
            self.punct_counts.remove(&(node, port, p));
            for &w in live {
                out.push(Delivery { target: w, node, port, event: Event::Punct(p), bytes: 0 });
            }
        }
    }

    /// Forget a worker's pending punctuation contributions (on failure).
    pub fn forget_worker(&mut self, worker: usize) {
        for heard in self.punct_counts.values_mut() {
            heard.remove(&worker);
        }
    }

    /// Drop all routing state.
    pub fn clear(&mut self) {
        self.punct_counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::exec::PlanGraph;
    use rex_core::operators::{SinkOp, UnionOp};
    use rex_core::tuple;

    /// Build a minimal 2-worker setup: rehash(0) -> union -> sink.
    fn setup(n: usize) -> (Vec<Executor>, PartitionSnapshot) {
        let mut executors = Vec::new();
        for w in 0..n {
            let mut g = PlanGraph::new();
            let rh = g.add_rehash(vec![0]);
            let un = g.add(Box::new(UnionOp::new(1)));
            let sink = g.add(Box::new(SinkOp::new()));
            g.pipe(rh, un);
            g.pipe(un, sink);
            executors.push(Executor::new(g, w, true));
        }
        (executors, PartitionSnapshot::new(n, 1))
    }

    #[test]
    fn data_routes_by_key_owner() {
        let (mut ex, snap) = setup(2);
        let live = vec![0, 1];
        let mut router = Router::new();
        // Find keys owned by each worker.
        let mut k0 = None;
        let mut k1 = None;
        for i in 0..100i64 {
            match snap.owner_of_key(&[rex_core::value::Value::Int(i)]) {
                0 if k0.is_none() => k0 = Some(i),
                1 if k1.is_none() => k1 = Some(i),
                _ => {}
            }
        }
        let (k0, k1) = (k0.unwrap(), k1.unwrap());
        let out = vec![NetEmission {
            node: 0,
            port: 0,
            event: Event::Data(vec![Delta::insert(tuple![k0]), Delta::insert(tuple![k1])]),
        }];
        router.route(0, out, &mut ex, &live, &snap);
        // Worker 0 self-delivered k0 (no bytes), shipped k1 to worker 1.
        assert!(router.bytes_crossed > 0);
        assert_eq!(ex[1].metrics.bytes_received, router.bytes_crossed);
        assert_eq!(router.rehash_bytes, router.bytes_crossed);
        assert_eq!(router.broadcast_bytes + router.gather_bytes, 0);
        assert_eq!(router.rows_routed, vec![1, 1]);
        let reg = rex_core::udf::Registry::new();
        let cost = rex_core::metrics::CostModel::default();
        let mut outbox = Vec::new();
        ex[0].drain(&reg, &cost, &mut outbox).unwrap();
        ex[1].drain(&reg, &cost, &mut outbox).unwrap();
        assert_eq!(ex[0].sink_results().unwrap(), vec![tuple![k0]]);
        assert_eq!(ex[1].sink_results().unwrap(), vec![tuple![k1]]);
    }

    #[test]
    fn punct_waits_for_all_workers() {
        let (mut ex, snap) = setup(3);
        let live = vec![0, 1, 2];
        let mut router = Router::new();
        let punct_em = |_w: usize| {
            vec![NetEmission {
                node: 0,
                port: 0,
                event: Event::Punct(Punctuation::EndOfStratum(0)),
            }]
        };
        assert_eq!(router.route(0, punct_em(0), &mut ex, &live, &snap), 0);
        assert_eq!(router.route(1, punct_em(1), &mut ex, &live, &snap), 0);
        // Third arrival releases the punct to all three workers.
        assert_eq!(router.route(2, punct_em(2), &mut ex, &live, &snap), 3);
    }

    #[test]
    fn empty_key_rehash_broadcasts_to_all_workers() {
        let mut executors = Vec::new();
        for w in 0..3 {
            let mut g = PlanGraph::new();
            let rh = g.add_rehash(vec![]); // broadcast
            let sink = g.add(Box::new(SinkOp::new()));
            g.pipe(rh, sink);
            executors.push(Executor::new(g, w, true));
        }
        let snap = PartitionSnapshot::new(3, 1);
        let live = vec![0, 1, 2];
        let mut router = Router::new();
        let out = vec![NetEmission {
            node: 0,
            port: 0,
            event: Event::Data(vec![Delta::insert(tuple![42i64])]),
        }];
        router.route(1, out, &mut executors, &live, &snap);
        let reg = rex_core::udf::Registry::new();
        let cost = rex_core::metrics::CostModel::default();
        for ex in &mut executors {
            ex.drain(&reg, &cost, &mut Vec::new()).unwrap();
        }
        for ex in &mut executors {
            assert_eq!(ex.sink_results().unwrap(), vec![tuple![42i64]]);
        }
        // Two cross-worker copies (self-delivery is free).
        assert_eq!(router.messages_crossed, 2);
        assert_eq!(executors[1].metrics.bytes_sent, router.bytes_crossed);
        assert_eq!(router.broadcast_bytes, router.bytes_crossed);
        assert_eq!(router.rows_routed, vec![1, 1, 1]);
    }

    #[test]
    fn cross_partition_replace_splits() {
        let (mut ex, snap) = setup(2);
        let live = vec![0, 1];
        let mut router = Router::new();
        // Find a pair of keys with different owners.
        let mut a = None;
        let mut b = None;
        for i in 0..100i64 {
            match snap.owner_of_key(&[rex_core::value::Value::Int(i)]) {
                0 if a.is_none() => a = Some(i),
                1 if b.is_none() => b = Some(i),
                _ => {}
            }
        }
        let (a, b) = (a.unwrap(), b.unwrap());
        let out = vec![NetEmission {
            node: 0,
            port: 0,
            event: Event::Data(vec![Delta::replace(tuple![a], tuple![b])]),
        }];
        router.route(0, out, &mut ex, &live, &snap);
        let reg = rex_core::udf::Registry::new();
        let cost = rex_core::metrics::CostModel::default();
        let mut outbox = Vec::new();
        ex[0].drain(&reg, &cost, &mut outbox).unwrap();
        ex[1].drain(&reg, &cost, &mut outbox).unwrap();
        // Worker 0 saw a delete (nothing in sink), worker 1 the insert.
        assert!(ex[0].sink_results().unwrap().is_empty());
        assert_eq!(ex[1].sink_results().unwrap(), vec![tuple![b]]);
    }
}
