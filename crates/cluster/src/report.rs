//! Cluster execution reports.

use crate::failure::FailureEvent;
use rex_core::metrics::{CostModel, ExecMetrics, QueryReport};
use rex_core::telemetry::ExecTrace;

/// The result record of a distributed query: the per-stratum query report
/// plus cluster-level accounting (per-worker metrics, failure events,
/// checkpoint volume).
#[derive(Debug, Clone, Default)]
pub struct ClusterReport {
    /// Per-stratum and total execution metrics. Per-stratum simulated time
    /// is the max over workers (worst-case completion, as the optimizer
    /// also assumes).
    pub query: QueryReport,
    /// Final metrics per worker (dead workers keep their last values).
    pub per_worker: Vec<ExecMetrics>,
    /// Cluster size at query start.
    pub n_workers: usize,
    /// Failures injected/recovered during the run.
    pub failures: Vec<FailureEvent>,
    /// Bytes replicated for incremental checkpoints.
    pub checkpoint_bytes: u64,
    /// Boundary-crossing bytes moved by key-partitioned rehash boundaries
    /// (summed across recovery attempts).
    pub rehash_bytes: u64,
    /// Boundary-crossing bytes replicated by broadcast boundaries.
    pub broadcast_bytes: u64,
    /// Boundary-crossing bytes funneled through gather boundaries.
    pub gather_bytes: u64,
    /// Rows the router delivered *into* each worker (self-delivery
    /// included) — the measured per-worker routing load.
    pub rows_routed: Vec<u64>,
    /// Merged per-operator execution trace across workers, present when the
    /// runtime ran with telemetry enabled.
    pub trace: Option<ExecTrace>,
}

impl ClusterReport {
    /// Total simulated time.
    pub fn simulated_time(&self) -> f64 {
        self.query.simulated_time
    }

    /// Total wall-clock seconds.
    pub fn wall_seconds(&self) -> f64 {
        self.query.wall_seconds
    }

    /// Strata executed (including re-executions after restart recovery).
    pub fn iterations(&self) -> usize {
        self.query.iterations()
    }

    /// Average per-node network bandwidth in bytes per simulated time unit:
    /// "we measured the total amount of data sent by each node and divided
    /// by the total number of nodes and the duration of the query" (§6.5).
    pub fn avg_bandwidth_per_node(&self) -> f64 {
        if self.query.simulated_time <= 0.0 || self.n_workers == 0 {
            return 0.0;
        }
        let total_sent: u64 = self.per_worker.iter().map(|m| m.bytes_sent).sum();
        total_sent as f64 / self.n_workers as f64 / self.query.simulated_time
    }

    /// Convenience: simulated time recomputed under a different cost model
    /// (used by ablation benches).
    pub fn resimulate(&self, model: &CostModel) -> f64 {
        self.query.strata.iter().map(|s| s.metrics.simulated_time(model)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::metrics::StratumReport;

    #[test]
    fn bandwidth_divides_by_nodes_and_time() {
        let mut r = ClusterReport { n_workers: 4, ..Default::default() };
        r.per_worker =
            (0..4).map(|_| ExecMetrics { bytes_sent: 250, ..Default::default() }).collect();
        r.query.simulated_time = 10.0;
        assert_eq!(r.avg_bandwidth_per_node(), 1000.0 / 4.0 / 10.0);
    }

    #[test]
    fn resimulate_uses_per_stratum_metrics() {
        let mut r = ClusterReport::default();
        r.query.strata.push(StratumReport {
            metrics: ExecMetrics { cpu_units: 100.0, ..Default::default() },
            ..Default::default()
        });
        let m = CostModel::default();
        assert_eq!(r.resimulate(&m), 100.0);
    }
}
