//! # rex-cluster
//!
//! The shared-nothing cluster runtime of REX (§4).
//!
//! Every worker executes the same optimizer-produced plan over its local
//! data partition; rehash operators re-route deltas between workers
//! according to the query's partition snapshot; punctuation coordinates
//! strata; the query requestor tallies fixpoint votes to decide termination;
//! and a hybrid checkpoint/recovery-query mechanism recovers recursive
//! queries incrementally after node failures (§4.3).
//!
//! The cluster is *simulated*: workers are in-process executors stepped by a
//! deterministic round-based scheduler, links are message queues with byte
//! accounting, and per-worker cost metrics produce a simulated completion
//! time (max over workers per stratum, as in the paper's worst-case
//! completion-time estimation). This exercises the same partitioning,
//! routing, punctuation-alignment and recovery code paths a wire cluster
//! would, while keeping experiments deterministic. See DESIGN.md.

pub mod chaos;
pub mod engine;
pub mod failure;
pub mod report;
pub mod router;
pub mod runtime;

pub use chaos::{ChaosCase, ChaosOutcome, ChaosReport, ChaosSweep};
pub use engine::{logical_plan_builder, ClusterError};
pub use failure::{FailureEvent, FailurePlan, RecoveryStrategy};
pub use report::ClusterReport;
pub use router::Router;
pub use runtime::{ClusterConfig, ClusterRuntime, PlanBuilder};
