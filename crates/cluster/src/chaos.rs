//! Deterministic fault-injection sweeps: the paper's Figure 12 experiment
//! as a CI-gated property.
//!
//! A [`ChaosSweep`] runs a query once without failures to fix the
//! baseline, then replays it once per (worker × kill-point × strategy)
//! case with a [`FailurePlan`] injected at that stratum boundary, and
//! compares every recovered result **bit-identically** against the
//! baseline. Because the cluster is a deterministic simulation (round
//! scheduler, seeded partitioning, ordered delivery), any divergence is a
//! recovery bug, not noise — the harness never needs tolerances or
//! retries.
//!
//! ```text
//! baseline = run(plan)                       // no failure
//! for worker in kill_workers:
//!   for stratum in kill_strata:              // default: every boundary
//!     for strategy in {Restart, Incremental}:
//!       got = run(plan, kill worker @ stratum, strategy)
//!       got == baseline, bit for bit — or the case is recorded divergent
//! ```
//!
//! [`ChaosReport::assert_clean`] is the single call test suites gate on.

use crate::engine::ClusterError;
use crate::failure::{FailureEvent, FailurePlan, RecoveryStrategy};
use crate::runtime::{ClusterConfig, ClusterRuntime};
use rex_core::tuple::Tuple;
use rex_core::udf::Registry;
use rex_rql::logical::LogicalPlan;
use rex_storage::catalog::Catalog;

/// One fault-injection case: kill `worker` at the end of `stratum` and
/// recover under `strategy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosCase {
    /// The worker to kill.
    pub worker: usize,
    /// The stratum boundary at which to kill it.
    pub stratum: u64,
    /// The recovery strategy under test.
    pub strategy: RecoveryStrategy,
}

/// What one case produced, compared against the failure-free baseline.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The injected case.
    pub case: ChaosCase,
    /// Failure events the runtime recorded (empty means the kill point
    /// was past the query's last boundary, so nothing was injected).
    pub failures: Vec<FailureEvent>,
    /// Whether the run's rows matched the baseline bit for bit.
    pub identical: bool,
    /// Human-readable mismatch description when not identical.
    pub divergence: Option<String>,
    /// Simulated completion time of the recovered run.
    pub simulated_time: f64,
}

/// The sweep's verdict: baseline shape plus every case outcome.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Rows the failure-free run produced (the oracle).
    pub baseline: Vec<Tuple>,
    /// Strata the failure-free run executed.
    pub baseline_strata: u64,
    /// Simulated completion time of the failure-free run.
    pub baseline_time: f64,
    /// One outcome per injected case.
    pub outcomes: Vec<ChaosOutcome>,
}

impl ChaosReport {
    /// Cases whose results diverged from the baseline.
    pub fn divergent(&self) -> Vec<&ChaosOutcome> {
        self.outcomes.iter().filter(|o| !o.identical).collect()
    }

    /// Cases where the kill actually fired (failure events recorded).
    pub fn injected(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.failures.is_empty()).count()
    }

    /// Panic with a per-case summary if any case diverged, or if no case
    /// actually injected a failure (a vacuous sweep is a harness bug).
    pub fn assert_clean(&self) {
        assert!(
            self.injected() > 0,
            "chaos sweep injected no failures over {} cases ({} baseline strata) — \
             kill points never fired",
            self.outcomes.len(),
            self.baseline_strata,
        );
        let bad = self.divergent();
        assert!(
            bad.is_empty(),
            "{} of {} chaos cases diverged from the failure-free baseline:\n{}",
            bad.len(),
            self.outcomes.len(),
            bad.iter()
                .map(|o| {
                    format!(
                        "  kill w{} @ stratum {} under {:?}: {}",
                        o.case.worker,
                        o.case.stratum,
                        o.case.strategy,
                        o.divergence.as_deref().unwrap_or("?"),
                    )
                })
                .collect::<Vec<_>>()
                .join("\n"),
        );
    }
}

/// Builder for a deterministic kill-point sweep over one query.
#[derive(Clone)]
pub struct ChaosSweep {
    n_workers: usize,
    threads: usize,
    strategies: Vec<RecoveryStrategy>,
    kill_workers: Option<Vec<usize>>,
    kill_strata: Option<Vec<u64>>,
}

impl ChaosSweep {
    /// Sweep over a cluster of `n` workers, killing every worker at every
    /// stratum boundary under both recovery strategies.
    pub fn new(n: usize) -> ChaosSweep {
        ChaosSweep {
            n_workers: n.max(1),
            threads: 1,
            strategies: vec![RecoveryStrategy::Incremental, RecoveryStrategy::Restart],
            kill_workers: None,
            kill_strata: None,
        }
    }

    /// Thread ceiling for every run in the sweep (results are
    /// schedule-invariant, so this only changes wall time).
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t.max(1);
        self
    }

    /// Restrict the strategies swept (default: both).
    pub fn strategies(mut self, s: &[RecoveryStrategy]) -> Self {
        self.strategies = s.to_vec();
        self
    }

    /// Restrict which workers get killed (default: all of them).
    pub fn kill_workers(mut self, w: &[usize]) -> Self {
        self.kill_workers = Some(w.to_vec());
        self
    }

    /// Restrict which stratum boundaries get a kill (default: every
    /// boundary the failure-free run crossed).
    pub fn kill_strata(mut self, s: &[u64]) -> Self {
        self.kill_strata = Some(s.to_vec());
        self
    }

    fn config(&self) -> ClusterConfig {
        ClusterConfig::new(self.n_workers).with_threads(self.threads)
    }

    /// Run the sweep: one failure-free baseline, then every case.
    pub fn run(
        &self,
        catalog: &Catalog,
        plan: &LogicalPlan,
        reg: &Registry,
    ) -> Result<ChaosReport, ClusterError> {
        let rt = ClusterRuntime::new(self.config(), catalog.clone());
        let (baseline, base_report) = rt.run_logical(plan, reg)?;
        let strata = base_report.query.strata.len() as u64;
        let workers: Vec<usize> =
            self.kill_workers.clone().unwrap_or_else(|| (0..self.n_workers).collect());
        let boundaries: Vec<u64> =
            self.kill_strata.clone().unwrap_or_else(|| (0..strata).collect());
        let mut outcomes = Vec::new();
        for &w in &workers {
            for &s in &boundaries {
                for &strategy in &self.strategies {
                    let case = ChaosCase { worker: w, stratum: s, strategy };
                    let cfg = self.config().with_failure(FailurePlan::kill_at(w, s), strategy);
                    let rt = ClusterRuntime::new(cfg, catalog.clone());
                    let outcome = match rt.run_logical(plan, reg) {
                        Ok((rows, report)) => {
                            let identical = rows == baseline;
                            let divergence = (!identical).then(|| {
                                format!("{} rows vs baseline {}", rows.len(), baseline.len())
                            });
                            ChaosOutcome {
                                case,
                                failures: report.failures,
                                identical,
                                divergence,
                                simulated_time: report.query.simulated_time,
                            }
                        }
                        Err(e) => ChaosOutcome {
                            case,
                            failures: Vec::new(),
                            identical: false,
                            divergence: Some(format!("run failed: {e}")),
                            simulated_time: 0.0,
                        },
                    };
                    outcomes.push(outcome);
                }
            }
        }
        Ok(ChaosReport {
            baseline,
            baseline_strata: strata,
            baseline_time: base_report.query.simulated_time,
            outcomes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;
    use rex_rql::SchemaCatalog;
    use rex_storage::table::StoredTable;

    fn graph(n: i64) -> (Catalog, SchemaCatalog) {
        let schema = Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]);
        let mut edges = StoredTable::new("edges", schema.clone(), vec![0]);
        for i in 0..n - 1 {
            edges.insert(tuple![i, i + 1]).unwrap();
        }
        let mut seed = StoredTable::new("seed", Schema::of(&[("id", DataType::Int)]), vec![0]);
        seed.insert(tuple![0i64]).unwrap();
        let cat = Catalog::new();
        cat.register(edges);
        cat.register(seed);
        let mut sc = SchemaCatalog::new();
        sc.register("edges", schema);
        sc.register("seed", Schema::of(&[("id", DataType::Int)]));
        (cat, sc)
    }

    #[test]
    fn recursive_sweep_is_clean_at_every_boundary() {
        let (cat, sc) = graph(12);
        let reg = Registry::with_builtins();
        let src = "
            WITH reach (id) AS (
              SELECT id FROM seed
            ) UNION UNTIL FIXPOINT BY id (
              SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id
            )";
        let plan = rex_rql::plan_rql(src, &sc, &reg).unwrap();
        let report = ChaosSweep::new(3).run(&cat, &plan, &reg).unwrap();
        assert_eq!(report.baseline.len(), 12);
        assert!(report.baseline_strata > 3, "want a real fixpoint, got {}", report.baseline_strata);
        assert!(report.injected() > 0);
        report.assert_clean();
    }

    #[test]
    fn divergence_is_reported_not_swallowed() {
        // A sweep whose kill points all lie past the final boundary
        // injects nothing; assert_clean must flag the vacuous sweep.
        let (cat, sc) = graph(6);
        let reg = Registry::with_builtins();
        let plan =
            rex_rql::plan_rql("SELECT src, count(*) FROM edges GROUP BY src", &sc, &reg).unwrap();
        let report = ChaosSweep::new(2).kill_strata(&[999]).run(&cat, &plan, &reg).unwrap();
        assert_eq!(report.injected(), 0);
        let r = std::panic::catch_unwind(|| report.assert_clean());
        assert!(r.is_err(), "vacuous sweep must not pass");
    }
}
