//! Running RQL logical plans on the cluster.
//!
//! Historically every distributed caller hand-wrote a [`PlanBuilder`]
//! closure wiring operators per worker. This module replaces that idiom
//! for language-level queries: [`logical_plan_builder`] turns one
//! optimizer-produced [`LogicalPlan`] into a `PlanBuilder` that lowers the
//! plan *per worker* against that worker's [`PartitionProvider`] view of
//! the catalog — exactly the paper's model, where "each worker node
//! executes in parallel the query plan specified by the optimizer" (§4)
//! over its local partition, with rehash boundaries inserted by
//! distributed lowering wherever the data's partitioning and the plan's
//! key requirements diverge.

use crate::report::ClusterReport;
use crate::runtime::{ClusterRuntime, PlanBuilder};
use rex_core::error::RexError;
use rex_core::metrics::{ExecMetrics, ReportSummary, StratumReport};
use rex_core::tuple::Tuple;
use rex_core::udf::Registry;
use rex_rql::logical::LogicalPlan;
use rex_rql::lower::{lower_with, LowerOptions};
use rex_rql::provider::{PartitionMemo, PartitionProvider};
use rex_rql::RqlError;
use std::fmt;
use std::sync::Arc;

/// A cluster-layer error: what failed while distributing or running a
/// query across workers.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterError {
    /// The underlying engine error.
    pub source: RexError,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster execution failed: {}", self.source)
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl From<RexError> for ClusterError {
    fn from(source: RexError) -> ClusterError {
        ClusterError { source }
    }
}

/// Cluster errors flow into the engine's unified error type, tagging
/// message-bearing variants so a distributed failure stays
/// distinguishable from a single-node one; structural variants
/// (`NodeFailed`, `Parse`) pass through untouched.
impl From<ClusterError> for RexError {
    fn from(e: ClusterError) -> RexError {
        match e.source {
            RexError::Exec(m) => RexError::Exec(format!("cluster: {m}")),
            RexError::Network(m) => RexError::Network(format!("cluster: {m}")),
            other => other,
        }
    }
}

/// Build a [`PlanBuilder`] that lowers `plan` for each worker against its
/// partition of the stored tables. The builder captures the plan and
/// registry; lowering runs under [`LowerOptions::cluster`] so network
/// boundaries land where partitioning requires them.
pub fn logical_plan_builder(plan: &LogicalPlan, reg: &Registry) -> PlanBuilder {
    let plan = Arc::new(plan.clone());
    let reg = reg.clone();
    // One partitioning pass per table for the whole query: the memo is
    // shared by every worker's provider (and survives recovery attempts,
    // which re-key it under the shrunken snapshot).
    let memo = PartitionMemo::new();
    Arc::new(move |worker, snapshot, catalog| {
        let provider = PartitionProvider::new(catalog.clone(), snapshot.clone(), worker)
            .with_memo(memo.clone());
        lower_with(&plan, &provider, &reg, LowerOptions::cluster())
            .map_err(|e| RqlError::at(rex_rql::RqlStage::Lower, e).into())
    })
}

impl ClusterRuntime {
    /// Execute an optimizer-produced logical plan across the cluster:
    /// lower it per worker (partition-scoped scans, network boundaries on
    /// mispartitioned edges) and run to completion.
    pub fn run_logical(
        &self,
        plan: &LogicalPlan,
        reg: &Registry,
    ) -> std::result::Result<(Vec<Tuple>, ClusterReport), ClusterError> {
        Ok(self.run(logical_plan_builder(plan, reg))?)
    }
}

impl ReportSummary for ClusterReport {
    fn iterations(&self) -> usize {
        self.query.iterations()
    }
    fn simulated_time(&self) -> f64 {
        self.query.simulated_time
    }
    fn wall_seconds(&self) -> f64 {
        self.query.wall_seconds
    }
    fn totals(&self) -> &ExecMetrics {
        &self.query.totals
    }
    fn strata(&self) -> &[StratumReport] {
        &self.query.strata
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::ClusterConfig;
    use rex_core::exec::LocalRuntime;
    use rex_core::tuple;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;
    use rex_rql::lower::{compile, MemTables};
    use rex_rql::SchemaCatalog;
    use rex_storage::catalog::Catalog;
    use rex_storage::table::StoredTable;

    /// Shared fixture: edges of a path 0→1→…→n-1 plus shortcuts, stored
    /// partitioned on src, with the matching schema catalog.
    fn fixture(n: i64) -> (Catalog, SchemaCatalog, MemTables) {
        let schema = Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]);
        let mut table = StoredTable::new("edges", schema.clone(), vec![0]);
        let mut mem = MemTables::new();
        let mut rows = Vec::new();
        for i in 0..n - 1 {
            rows.push(tuple![i, i + 1]);
        }
        rows.push(tuple![0i64, n / 2]);
        for r in &rows {
            table.insert(r.clone()).unwrap();
        }
        mem.insert("edges", rows);
        let cat = Catalog::new();
        cat.register(table);
        let mut sc = SchemaCatalog::new();
        sc.register("edges", schema);
        let mut seed = StoredTable::new("seed", Schema::of(&[("id", DataType::Int)]), vec![0]);
        seed.insert(tuple![0i64]).unwrap();
        cat.register(seed);
        sc.register("seed", Schema::of(&[("id", DataType::Int)]));
        mem.insert("seed", vec![tuple![0i64]]);
        (cat, sc, mem)
    }

    fn run_both(src: &str, workers: usize) -> (Vec<Tuple>, Vec<Tuple>) {
        let (cat, sc, mem) = fixture(24);
        let reg = Registry::with_builtins();
        let plan = rex_rql::plan_rql(src, &sc, &reg).unwrap();
        let local = compile(src, &sc, &mem, &reg).unwrap();
        let (mut local_rows, _) = LocalRuntime::new().run(local).unwrap();
        local_rows.sort();
        let rt = ClusterRuntime::new(ClusterConfig::new(workers), cat);
        let (cluster_rows, _) = rt.run_logical(&plan, &reg).unwrap();
        (local_rows, cluster_rows)
    }

    #[test]
    fn filter_agrees_with_local() {
        let (l, c) = run_both("SELECT dst FROM edges WHERE src > 9", 4);
        assert_eq!(l, c);
        assert!(!l.is_empty());
    }

    #[test]
    fn grouped_aggregate_agrees_with_local() {
        let (l, c) = run_both("SELECT src, count(*) FROM edges GROUP BY src", 3);
        assert_eq!(l, c);
    }

    #[test]
    fn global_aggregate_gathers_to_one_row() {
        let (l, c) = run_both("SELECT sum(dst), count(*) FROM edges", 4);
        assert_eq!(c.len(), 1, "global aggregate must produce exactly one row, got {c:?}");
        assert_eq!(l, c);
    }

    #[test]
    fn equi_join_agrees_with_local() {
        let (l, c) = run_both("SELECT a.src, b.dst FROM edges a, edges b WHERE a.dst = b.src", 4);
        assert_eq!(l, c);
        assert!(!l.is_empty());
    }

    #[test]
    fn recursive_reachability_agrees_with_local() {
        let src = "
            WITH reach (id) AS (
              SELECT id FROM seed
            ) UNION UNTIL FIXPOINT BY id (
              SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id
            )";
        let (l, c) = run_both(src, 4);
        assert_eq!(l, c);
        assert_eq!(l.len(), 24, "all vertices reachable from 0");
    }

    #[test]
    fn lowering_errors_carry_the_stage() {
        let cat = Catalog::new(); // no tables stored
        let mut sc = SchemaCatalog::new();
        sc.register("edges", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]));
        let reg = Registry::with_builtins();
        let plan = rex_rql::plan_rql("SELECT src FROM edges", &sc, &reg).unwrap();
        let rt = ClusterRuntime::new(ClusterConfig::new(2), cat);
        let err = rt.run_logical(&plan, &reg).unwrap_err();
        assert!(matches!(err.source, RexError::Storage(_)), "{err}");
    }
}
