//! Failure injection and recovery strategies (§4.3, Figure 12).
//!
//! Injection has three entry points, all driven by the types here:
//!
//! * **queries** — [`ClusterConfig::with_failure`](crate::runtime::ClusterConfig::with_failure)
//!   arms the BSP drain loop with a [`FailurePlan`]; the runtime kills the
//!   worker at the named stratum boundary, recovers under the configured
//!   [`RecoveryStrategy`], and records [`FailureEvent`]s in the
//!   [`ClusterReport`](crate::report::ClusterReport);
//! * **sweeps** — [`ChaosSweep`](crate::chaos::ChaosSweep) replays one
//!   query across every (worker × kill-point × strategy) case and checks
//!   each recovered result bit-identically against a failure-free run;
//! * **view maintenance** — `rex-views` sharded maintenance reuses
//!   [`RecoveryStrategy`] for shard replica adoption vs replay-from-base.

/// When and which worker to kill during a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailurePlan {
    /// The worker to kill.
    pub worker: usize,
    /// Kill at the end of this stratum (before the next one starts).
    pub at_end_of_stratum: u64,
}

impl FailurePlan {
    /// Kill `worker` once stratum `s` completes.
    ///
    /// Driving a real recursive query to failure and recovery:
    ///
    /// ```
    /// use rex_cluster::{ClusterConfig, ClusterRuntime, FailurePlan, RecoveryStrategy};
    /// use rex_core::tuple::Schema;
    /// use rex_core::udf::Registry;
    /// use rex_core::value::DataType;
    /// use rex_core::tuple;
    /// use rex_rql::SchemaCatalog;
    /// use rex_storage::{catalog::Catalog, table::StoredTable};
    ///
    /// // A path graph 0→1→…→9: reachability from 0 takes ~10 strata.
    /// let schema = Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]);
    /// let cat = Catalog::new();
    /// let mut edges = StoredTable::new("edges", schema.clone(), vec![0]);
    /// for i in 0..9i64 {
    ///     edges.insert(tuple![i, i + 1]).unwrap();
    /// }
    /// cat.register(edges);
    /// let mut seed = StoredTable::new("seed", Schema::of(&[("id", DataType::Int)]), vec![0]);
    /// seed.insert(tuple![0i64]).unwrap();
    /// cat.register(seed);
    /// let mut sc = SchemaCatalog::new();
    /// sc.register("edges", schema);
    /// sc.register("seed", Schema::of(&[("id", DataType::Int)]));
    ///
    /// let reg = Registry::with_builtins();
    /// let plan = rex_rql::plan_rql(
    ///     "WITH reach (id) AS (SELECT id FROM seed)
    ///      UNION UNTIL FIXPOINT BY id
    ///      (SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id)",
    ///     &sc,
    ///     &reg,
    /// )
    /// .unwrap();
    ///
    /// // Kill worker 1 after stratum 3; recover incrementally from the
    /// // last replicated checkpoint. Results match the unkilled run.
    /// let cfg = ClusterConfig::new(3)
    ///     .with_failure(FailurePlan::kill_at(1, 3), RecoveryStrategy::Incremental);
    /// let (rows, report) = ClusterRuntime::new(cfg, cat.clone()).run_logical(&plan, &reg).unwrap();
    /// let (baseline, _) =
    ///     ClusterRuntime::new(ClusterConfig::new(3), cat).run_logical(&plan, &reg).unwrap();
    /// assert_eq!(rows, baseline);
    /// assert_eq!(report.failures.len(), 1);
    /// assert_eq!(report.failures[0].worker, 1);
    /// assert!(report.failures[0].resumed_from > 0, "incremental resume, not restart");
    /// ```
    pub fn kill_at(worker: usize, s: u64) -> FailurePlan {
        FailurePlan { worker, at_end_of_stratum: s }
    }
}

/// How the cluster recovers from a node failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryStrategy {
    /// "Restart represents the baseline with the query simply restarted
    /// when a failure is detected, discarding work completed prior to the
    /// failure. This strategy does not need to replicate the mutable data."
    Restart,
    /// "Incremental ... utilizes work done prior to the failure ... nodes
    /// which take over the failed range resume the execution without having
    /// to recompute the mutable data up to iteration k." Requires per-
    /// stratum replication of the fixpoint's mutable set.
    #[default]
    Incremental,
}

impl RecoveryStrategy {
    /// Whether this strategy replicates per-stratum checkpoints.
    pub fn replicates_state(&self) -> bool {
        matches!(self, RecoveryStrategy::Incremental)
    }
}

/// A recorded failure/recovery event, surfaced in cluster reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureEvent {
    /// The worker that failed.
    pub worker: usize,
    /// The stratum at whose boundary the failure occurred.
    pub stratum: u64,
    /// The strategy used to recover.
    pub strategy: RecoveryStrategy,
    /// The stratum execution resumed from (0 for restart).
    pub resumed_from: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_replication_flags() {
        assert!(RecoveryStrategy::Incremental.replicates_state());
        assert!(!RecoveryStrategy::Restart.replicates_state());
    }

    #[test]
    fn plan_constructor() {
        let p = FailurePlan::kill_at(3, 7);
        assert_eq!(p.worker, 3);
        assert_eq!(p.at_end_of_stratum, 7);
    }
}
