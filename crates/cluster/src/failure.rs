//! Failure injection and recovery strategies (§4.3, Figure 12).

/// When and which worker to kill during a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailurePlan {
    /// The worker to kill.
    pub worker: usize,
    /// Kill at the end of this stratum (before the next one starts).
    pub at_end_of_stratum: u64,
}

impl FailurePlan {
    /// Kill `worker` once stratum `s` completes.
    pub fn kill_at(worker: usize, s: u64) -> FailurePlan {
        FailurePlan { worker, at_end_of_stratum: s }
    }
}

/// How the cluster recovers from a node failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryStrategy {
    /// "Restart represents the baseline with the query simply restarted
    /// when a failure is detected, discarding work completed prior to the
    /// failure. This strategy does not need to replicate the mutable data."
    Restart,
    /// "Incremental ... utilizes work done prior to the failure ... nodes
    /// which take over the failed range resume the execution without having
    /// to recompute the mutable data up to iteration k." Requires per-
    /// stratum replication of the fixpoint's mutable set.
    #[default]
    Incremental,
}

impl RecoveryStrategy {
    /// Whether this strategy replicates per-stratum checkpoints.
    pub fn replicates_state(&self) -> bool {
        matches!(self, RecoveryStrategy::Incremental)
    }
}

/// A recorded failure/recovery event, surfaced in cluster reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureEvent {
    /// The worker that failed.
    pub worker: usize,
    /// The stratum at whose boundary the failure occurred.
    pub stratum: u64,
    /// The strategy used to recover.
    pub strategy: RecoveryStrategy,
    /// The stratum execution resumed from (0 for restart).
    pub resumed_from: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_replication_flags() {
        assert!(RecoveryStrategy::Incremental.replicates_state());
        assert!(!RecoveryStrategy::Restart.replicates_state());
    }

    #[test]
    fn plan_constructor() {
        let p = FailurePlan::kill_at(3, 7);
        assert_eq!(p.worker, 3);
        assert_eq!(p.at_end_of_stratum, 7);
    }
}
