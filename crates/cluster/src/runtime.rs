//! The distributed query runtime: the requestor's coordination loop.
//!
//! "Each worker node executes in parallel the query plan specified by the
//! optimizer. The results of the plan execution are ultimately forwarded to
//! the query requestor node, which unions the received results from all
//! nodes in the cluster. There is no single node responsible for
//! checkpointing the state, coordinating flows, etc." (§4) — coordination
//! that *is* needed (stratum votes, §4.2; recovery, §4.3) is performed by
//! the query requestor, which this runtime embodies.

use crate::failure::{FailureEvent, FailurePlan, RecoveryStrategy};
use crate::report::ClusterReport;
use crate::router::{Delivery, Router};
use rex_core::error::{Result, RexError};
use rex_core::exec::{Executor, NetEmission, NetKey, NodeId, PlanGraph, MAX_STRATA};
use rex_core::metrics::{CostModel, ExecMetrics, StratumReport};
use rex_core::operators::{hash_key_cols, OperatorState};
use rex_core::telemetry::ExecTrace;
use rex_core::thread_budget;
use rex_core::tuple::Tuple;
use rex_core::udf::Registry;
use rex_storage::catalog::Catalog;
use rex_storage::checkpoint::{Checkpoint, CheckpointStore};
use rex_storage::partition::PartitionSnapshot;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// Builds one worker's copy of the physical plan. Scans must read the
/// worker's partition of stored tables under the given snapshot.
pub type PlanBuilder =
    Arc<dyn Fn(usize, &PartitionSnapshot, &Catalog) -> Result<PlanGraph> + Send + Sync>;

/// Cluster configuration.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub n_workers: usize,
    /// Replication factor for storage and checkpoints (the paper uses 3).
    pub replication: usize,
    /// Cost constants.
    pub cost: CostModel,
    /// UDF/UDA registry distributed with the query.
    pub registry: Registry,
    /// Replicate per-stratum fixpoint checkpoints (needed for incremental
    /// recovery; REX-delta runs with this on).
    pub checkpointing: bool,
    /// Optional injected failure.
    pub failure: Option<FailurePlan>,
    /// Recovery strategy when a failure occurs.
    pub recovery: RecoveryStrategy,
    /// Collect per-operator execution traces on every worker and merge
    /// them into [`ClusterReport::trace`].
    pub telemetry: bool,
    /// OS threads the drain scheduler may use for worker execution
    /// (1 = the historical inline loop). Workers are spread round-robin
    /// over at most this many threads; the process-wide
    /// [`thread_budget`] may cap what is
    /// actually spawned. Either way results are bit-identical to the
    /// single-threaded schedule.
    pub threads: usize,
}

impl ClusterConfig {
    /// A cluster of `n` workers with replication 3 and default costs.
    pub fn new(n: usize) -> ClusterConfig {
        ClusterConfig {
            n_workers: n.max(1),
            replication: 3,
            cost: CostModel::default(),
            registry: Registry::with_builtins(),
            checkpointing: true,
            failure: None,
            recovery: RecoveryStrategy::Incremental,
            telemetry: false,
            threads: 1,
        }
    }

    /// Set the drain scheduler's thread ceiling.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Toggle per-operator execution tracing.
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Set the failure plan.
    pub fn with_failure(mut self, f: FailurePlan, strategy: RecoveryStrategy) -> Self {
        self.failure = Some(f);
        self.recovery = strategy;
        self.checkpointing = strategy.replicates_state();
        self
    }

    /// Override the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Override the registry.
    pub fn with_registry(mut self, reg: Registry) -> Self {
        self.registry = reg;
        self
    }
}

/// The simulated cluster runtime.
pub struct ClusterRuntime {
    config: ClusterConfig,
    catalog: Catalog,
}

impl ClusterRuntime {
    /// Create a runtime over a shared catalog.
    pub fn new(config: ClusterConfig, catalog: Catalog) -> ClusterRuntime {
        ClusterRuntime { config, catalog }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Execute a query across the cluster.
    pub fn run(&self, build: PlanBuilder) -> Result<(Vec<Tuple>, ClusterReport)> {
        let n = self.config.n_workers;
        let reg = &self.config.registry;
        let cost = &self.config.cost;
        let threads = self.config.threads;
        let t0 = Instant::now();

        let mut report = ClusterReport { n_workers: n, ..Default::default() };
        let ckpts = CheckpointStore::new();
        let mut snapshot = PartitionSnapshot::new(n, self.config.replication);
        let mut live: Vec<usize> = (0..n).collect();
        let mut pending_failure = self.config.failure;
        // Incremental recovery: resume from this stratum with checkpointed
        // state; None means run from scratch.
        let mut resume: Option<u64> = None;
        // Metrics of finished attempts (so recovery cost is not lost).
        let mut carried: Vec<ExecMetrics> = vec![ExecMetrics::default(); n];
        // Traces of finished attempts, merged the same way.
        let mut carried_trace: Option<ExecTrace> = None;
        // Global stratum counter across attempts (drives failure injection
        // and report numbering).
        let mut strata_seen: u64 = 0;
        // Set when a worker dies; cleared (and recorded to the process-wide
        // fault telemetry) once the surviving cluster is ready to resume.
        let mut recovery_t0: Option<Instant> = None;

        'attempt: loop {
            // ---- build executors for live workers -----------------------
            let mut executors: Vec<Executor> = Vec::with_capacity(n);
            for w in 0..n {
                let alive = live.contains(&w);
                let graph = if alive {
                    (build)(w, &snapshot, &self.catalog)?
                } else {
                    PlanGraph::new() // dead placeholder keeps indices stable
                };
                let mut ex = Executor::new(graph, w, true);
                // Placeholders have no nodes; tracing them would merge
                // empty op lists into real ones.
                ex.set_telemetry(self.config.telemetry && alive);
                executors.push(ex);
            }
            let mut router = Router::new();
            let mut prev: Vec<ExecMetrics> = vec![ExecMetrics::default(); n];
            let mut prev_crossed = 0u64;
            let mut stratum_start = Instant::now();

            for &w in &live {
                executors[w].start(reg, cost)?;
            }
            drain_all(&mut executors, &mut router, &live, &snapshot, reg, cost, threads)?;

            // On incremental recovery only the failed worker's range is
            // actually cold: the survivors' scans and immutable operator
            // state stay warm on their nodes. The simulator re-executes the
            // full reload to rebuild operator state exactly, but charges
            // each survivor only the takeover share of it (§4.3: "the
            // checkpointed tuples in the failed range are streamed to the
            // nodes which have taken over that range").
            if resume.is_some() {
                let share = 1.0 / live.len().max(1) as f64;
                for &w in &live {
                    scale_metrics(&mut executors[w].metrics, share);
                }
            }

            let fixpoints = executors[live[0]].fixpoint_ids();

            // ---- non-recursive query ------------------------------------
            if fixpoints.is_empty() {
                let results = collect_results(&mut executors, &live, cost)?;
                merge_traces(&mut carried_trace, &mut executors, &live);
                let stratum_metrics = merged_diff(&executors, &carried, &prev, &live);
                let max_time = max_sim_time(&executors, &prev, &live, cost);
                report.query.strata.push(StratumReport {
                    stratum: 0,
                    delta_set_size: stratum_metrics.deltas_emitted,
                    simulated_time: max_time,
                    wall_seconds: stratum_start.elapsed().as_secs_f64(),
                    bytes_shipped: router.bytes_crossed,
                    metrics: stratum_metrics,
                });
                finalize(&mut report, &executors, &carried, cost, t0);
                absorb_router(&mut report, &router);
                if let Some(mut tr) = carried_trace.take() {
                    tr.wall_seconds = report.query.wall_seconds;
                    report.trace = Some(tr);
                }
                return Ok((results, report));
            }

            // ---- incremental resume -------------------------------------
            let mut completed: u64 = 0;
            let mut restored_bytes: u64 = 0;
            if let Some(k) = resume.take() {
                let fp0 = fixpoints[0];
                let key_cols =
                    executors[live[0]].with_fixpoint(fp0, |fp| fp.key_cols().to_vec())?;
                // Gather every original owner's recoverable checkpoint.
                let mut tuples: Vec<Tuple> = Vec::new();
                for owner in 0..n {
                    if let Some(c) = ckpts.recoverable(owner, k, &live) {
                        tuples.extend(c.state.tuples);
                    }
                }
                // Re-partition the recovered mutable set under the *new*
                // snapshot and stream it to the takeover nodes.
                let mut per_worker: Vec<Vec<Tuple>> = vec![Vec::new(); n];
                for t in tuples {
                    let owner = snapshot.owner_of_hash(hash_key_cols(&t, &key_cols));
                    per_worker[owner].push(t);
                }
                for &w in &live {
                    let state = OperatorState { tuples: std::mem::take(&mut per_worker[w]) };
                    let bytes = state.byte_size() as u64;
                    restored_bytes += bytes;
                    executors[w].metrics.bytes_received += bytes;
                    executors[w].restore_fixpoint(fp0, state, k)?;
                }
                // Resume: feed the restored state through the recursive
                // subplan (one catch-up stratum), then iterate normally.
                for &w in &live {
                    executors[w].advance_fixpoint(fp0, true, reg, cost, &mut Vec::new())?;
                    // advance emits locally; rehash traffic goes through the
                    // normal drain below.
                }
                drain_all(&mut executors, &mut router, &live, &snapshot, reg, cost, threads)?;
                completed = k + 1;
            }
            if let Some(rt0) = recovery_t0.take() {
                // Readiness, not total re-run cost: the clock stops when the
                // survivors can process the next stratum (restart's re-run
                // shows up as simulated time in the stratum reports).
                rex_core::faults::record_recovery(
                    matches!(self.config.recovery, RecoveryStrategy::Incremental),
                    rt0.elapsed().as_micros() as u64,
                    restored_bytes,
                );
            }

            // ---- stratum loop -------------------------------------------
            loop {
                // Collect votes (the requestor's global view, §4.2).
                let mut total_pending = 0usize;
                for &w in &live {
                    for &f in &fixpoints {
                        let (ready, pending) = executors[w]
                            .with_fixpoint(f, |fp| (fp.ready_for_vote(), fp.pending_count()))?;
                        if !ready {
                            return Err(RexError::Exec(format!(
                                "worker {w} fixpoint {f} missed stratum punctuation"
                            )));
                        }
                        total_pending += pending;
                    }
                }
                let mut any_continue = false;
                for &f in &fixpoints {
                    let (stratum, term) = executors[live[0]]
                        .with_fixpoint(f, |fp| (fp.stratum(), fp.termination()))?;
                    if term.wants_continue(total_pending, stratum) {
                        any_continue = true;
                    }
                }

                // Record the completed stratum.
                let stratum_metrics = merged_diff(&executors, &carried, &prev, &live);
                let max_time = max_sim_time(&executors, &prev, &live, cost);
                for &w in &live {
                    prev[w] = executors[w].metrics;
                }
                report.query.strata.push(StratumReport {
                    stratum: completed,
                    delta_set_size: total_pending as u64,
                    simulated_time: max_time,
                    wall_seconds: stratum_start.elapsed().as_secs_f64(),
                    bytes_shipped: router.bytes_crossed - prev_crossed,
                    metrics: stratum_metrics,
                });
                prev_crossed = router.bytes_crossed;
                stratum_start = Instant::now();

                // Incremental checkpointing (§4.3): replicate each live
                // worker's fixpoint state to its replicas.
                if self.config.checkpointing && any_continue {
                    for &w in &live {
                        for &f in &fixpoints {
                            if let Some(state) = executors[w].checkpoint_node(f) {
                                let replicas = next_workers(&live, w, self.config.replication - 1);
                                // Incremental checkpointing ships only the
                                // stratum's Δᵢ set; replicas maintain their
                                // accumulated copy of the mutable state
                                // (§4.3).
                                let bytes =
                                    executors[w].with_fixpoint(f, |fp| fp.pending_bytes())?;
                                executors[w].metrics.bytes_sent += bytes * replicas.len() as u64;
                                executors[w].metrics.disk_written += bytes;
                                for &r in &replicas {
                                    executors[r].metrics.disk_written += bytes;
                                }
                                report.checkpoint_bytes += bytes * (1 + replicas.len() as u64);
                                ckpts.put(Checkpoint {
                                    owner: w,
                                    stratum: completed,
                                    replicas,
                                    state,
                                });
                            }
                        }
                    }
                    // Only the last completed stratum is needed.
                    ckpts.prune_before(completed.saturating_sub(1));
                }

                // Failure injection at the stratum boundary.
                if let Some(fp) = pending_failure {
                    if strata_seen >= fp.at_end_of_stratum && live.contains(&fp.worker) {
                        pending_failure = None;
                        live.retain(|&w| w != fp.worker);
                        if live.is_empty() {
                            return Err(RexError::NodeFailed(fp.worker));
                        }
                        router.forget_worker(fp.worker);
                        snapshot = snapshot.without_node(fp.worker);
                        for w in 0..n {
                            carried[w].merge(&executors[w].metrics);
                        }
                        // The dead worker's trace is unreachable, like its
                        // node; carry the survivors' counters forward.
                        merge_traces(&mut carried_trace, &mut executors, &live);
                        absorb_router(&mut report, &router);
                        let resumed_from = match self.config.recovery {
                            RecoveryStrategy::Restart => {
                                resume = None;
                                0
                            }
                            RecoveryStrategy::Incremental => {
                                let owners: Vec<usize> = (0..n).collect();
                                match ckpts.last_complete_stratum(&owners, &live) {
                                    Some(s) => {
                                        resume = Some(s);
                                        s
                                    }
                                    None => {
                                        resume = None;
                                        0
                                    }
                                }
                            }
                        };
                        report.failures.push(FailureEvent {
                            worker: fp.worker,
                            stratum: strata_seen,
                            strategy: self.config.recovery,
                            resumed_from,
                        });
                        recovery_t0 = Some(Instant::now());
                        continue 'attempt;
                    }
                }

                strata_seen += 1;
                if strata_seen > MAX_STRATA {
                    return Err(RexError::Exec(format!(
                        "recursion exceeded {MAX_STRATA} strata without converging"
                    )));
                }

                // Advance or finish — all workers in lockstep, then drain.
                for &w in &live {
                    for &f in &fixpoints {
                        executors[w].advance_fixpoint(
                            f,
                            any_continue,
                            reg,
                            cost,
                            &mut Vec::new(),
                        )?;
                    }
                    executors[w].set_stratum(completed + 1);
                }
                // advance() queues locally; rehash traffic flows in drain.
                drain_all(&mut executors, &mut router, &live, &snapshot, reg, cost, threads)?;
                completed += 1;
                if !any_continue {
                    let results = collect_results(&mut executors, &live, cost)?;
                    merge_traces(&mut carried_trace, &mut executors, &live);
                    finalize(&mut report, &executors, &carried, cost, t0);
                    absorb_router(&mut report, &router);
                    if let Some(mut tr) = carried_trace.take() {
                        tr.wall_seconds = report.query.wall_seconds;
                        tr.iteration_deltas =
                            report.query.strata.iter().map(|s| s.delta_set_size).collect();
                        report.trace = Some(tr);
                    }
                    return Ok((results, report));
                }
            }
        }
    }
}

/// Round-based scheduler: drain every live worker, route its rehash
/// traffic, repeat until global quiescence.
///
/// One round = (1) every worker with queued work drains fully, then
/// (2) the collected outboxes are routed in worker-id order. Because
/// routing is deferred to the end of the round, the delivery order on
/// every channel is a pure function of the round schedule — so the
/// threaded variant, which runs step (1) on worker threads, produces
/// bit-identical results (and byte-identical router accounting) to the
/// serial one. FIFO per channel is the only ordering the paper's TCP
/// transport guarantees (§4.1); the round barrier gives us that plus
/// determinism.
fn drain_all(
    executors: &mut [Executor],
    router: &mut Router,
    live: &[usize],
    snap: &PartitionSnapshot,
    reg: &Registry,
    cost: &CostModel,
    threads: usize,
) -> Result<()> {
    // One thread per live worker is the useful ceiling; extra threads are
    // leased from the process-wide budget so concurrent queries cannot
    // oversubscribe the host.
    let want = threads.max(1).min(live.len());
    let extra = if want > 1 { thread_budget::try_acquire(want - 1) } else { 0 };
    let res = if extra == 0 {
        drain_all_serial(executors, router, live, snap, reg, cost)
    } else {
        drain_all_threaded(executors, router, live, snap, reg, cost, 1 + extra)
    };
    thread_budget::release(extra);
    res
}

/// The inline schedule: drain phase, then route phase, repeat.
fn drain_all_serial(
    executors: &mut [Executor],
    router: &mut Router,
    live: &[usize],
    snap: &PartitionSnapshot,
    reg: &Registry,
    cost: &CostModel,
) -> Result<()> {
    loop {
        let mut round: Vec<(usize, Vec<NetEmission>)> = Vec::new();
        for &w in live {
            if executors[w].has_work() {
                let mut outbox = Vec::new();
                executors[w].drain(reg, cost, &mut outbox)?;
                round.push((w, outbox));
            }
        }
        if round.is_empty() {
            return Ok(());
        }
        for (w, outbox) in round {
            if !outbox.is_empty() {
                router.route(w, outbox, executors, live, snap);
            }
        }
    }
}

/// A message from the coordinator to the thread owning a worker.
enum ToWorker {
    /// Inject a routed batch into `worker`'s executor.
    Deliver { worker: usize, delivery: Delivery },
    /// Credit routed-output bytes to `worker`'s `bytes_sent`.
    Sent { worker: usize, bytes: u64 },
    /// Drain every owned worker with queued work; report the outboxes.
    Round,
    /// Globally quiescent (or erred): exit the thread.
    Stop,
}

/// Bound on each worker thread's command inbox: a slow thread applies
/// backpressure to the routing coordinator instead of buffering every
/// in-flight delivery of the round.
const INBOX_DEPTH: usize = 64;

/// The threaded schedule: each of `threads` persistent worker threads
/// owns a disjoint round-robin slice of the live executors and drains
/// them on `Round` commands; the coordinator keeps the router and turns
/// outboxes into channel deliveries between rounds. Same rounds, same
/// worker-order routing, same per-channel FIFO as the serial path —
/// only the drain phase actually runs in parallel.
fn drain_all_threaded(
    executors: &mut [Executor],
    router: &mut Router,
    live: &[usize],
    snap: &PartitionSnapshot,
    reg: &Registry,
    cost: &CostModel,
    threads: usize,
) -> Result<()> {
    let n_workers = executors.len();
    // Routing needs each boundary node's key after the executors have
    // moved into their threads; every live worker runs the same plan, so
    // snapshot the keys from the first one.
    let reference = &executors[live[0]];
    let net_keys: HashMap<NodeId, NetKey> = reference
        .network_nodes()
        .into_iter()
        .map(|node| {
            let key = reference.network_key(node).expect("network node has a key").clone();
            (node, key)
        })
        .collect();
    // Round-robin ownership: worker w belongs to thread owner[w].
    let mut owner = vec![usize::MAX; n_workers];
    for (i, &w) in live.iter().enumerate() {
        owner[w] = i % threads;
    }
    let mut slots: Vec<Vec<(usize, &mut Executor)>> = (0..threads).map(|_| Vec::new()).collect();
    for (w, ex) in executors.iter_mut().enumerate() {
        if owner[w] != usize::MAX {
            slots[owner[w]].push((w, ex));
        }
    }

    std::thread::scope(|s| {
        let (res_tx, res_rx) = mpsc::channel::<Result<Vec<(usize, Vec<NetEmission>)>>>();
        let mut inboxes = Vec::with_capacity(threads);
        for group in slots {
            let (tx, rx) = mpsc::sync_channel::<ToWorker>(INBOX_DEPTH);
            let res_tx = res_tx.clone();
            s.spawn(move || {
                let mut group = group;
                fn find<'a>(
                    group: &'a mut [(usize, &mut Executor)],
                    worker: usize,
                ) -> &'a mut Executor {
                    let slot = group
                        .iter_mut()
                        .find(|(w, _)| *w == worker)
                        .expect("delivery to a worker this thread does not own");
                    slot.1
                }
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        ToWorker::Deliver { worker, delivery } => {
                            let ex = find(&mut group, worker);
                            ex.metrics.bytes_received += delivery.bytes;
                            ex.inject_downstream(delivery.node, delivery.port, delivery.event);
                        }
                        ToWorker::Sent { worker, bytes } => {
                            find(&mut group, worker).metrics.bytes_sent += bytes;
                        }
                        ToWorker::Round => {
                            let mut drained = Vec::new();
                            let mut err = None;
                            for (w, ex) in group.iter_mut() {
                                if ex.has_work() {
                                    let mut outbox = Vec::new();
                                    match ex.drain(reg, cost, &mut outbox) {
                                        Ok(()) => drained.push((*w, outbox)),
                                        Err(e) => {
                                            err = Some(e);
                                            break;
                                        }
                                    }
                                }
                            }
                            let reply = match err {
                                Some(e) => Err(e),
                                None => Ok(drained),
                            };
                            if res_tx.send(reply).is_err() {
                                return;
                            }
                        }
                        ToWorker::Stop => return,
                    }
                }
            });
            inboxes.push(tx);
        }
        drop(res_tx);

        let mut failure: Option<RexError> = None;
        loop {
            // Inbox FIFO guarantees each thread applies all of last
            // round's deliveries before draining for this one.
            for tx in &inboxes {
                let _ = tx.send(ToWorker::Round);
            }
            let mut round: Vec<(usize, Vec<NetEmission>)> = Vec::new();
            for _ in 0..threads {
                match res_rx.recv() {
                    Ok(Ok(drained)) => round.extend(drained),
                    Ok(Err(e)) => {
                        failure.get_or_insert(e);
                    }
                    Err(_) => {
                        failure.get_or_insert(RexError::Exec(
                            "cluster drain thread exited unexpectedly".into(),
                        ));
                    }
                }
            }
            if failure.is_some() || round.is_empty() {
                break;
            }
            // Route in worker-id order — the serial schedule.
            round.sort_by_key(|(w, _)| *w);
            for (w, outbox) in round {
                if outbox.is_empty() {
                    continue;
                }
                let lookup = |node: NodeId| net_keys[&node].clone();
                let (deliveries, sent) =
                    router.route_batches(w, outbox, &lookup, live, snap, n_workers);
                if sent > 0 {
                    let _ = inboxes[owner[w]].send(ToWorker::Sent { worker: w, bytes: sent });
                }
                for d in deliveries {
                    let to = owner[d.target];
                    let _ = inboxes[to].send(ToWorker::Deliver { worker: d.target, delivery: d });
                }
            }
        }
        for tx in &inboxes {
            let _ = tx.send(ToWorker::Stop);
        }
        drop(inboxes);
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })
}

/// Take and fold each live worker's execution trace into the accumulator
/// (no-op when telemetry is off — `take_trace` returns `None`).
fn merge_traces(acc: &mut Option<ExecTrace>, executors: &mut [Executor], live: &[usize]) {
    for &w in live {
        if let Some(t) = executors[w].take_trace() {
            match acc.as_mut() {
                Some(m) => m.merge(&t),
                None => *acc = Some(t),
            }
        }
    }
}

/// Fold an attempt's router counters into the report (attempts get fresh
/// routers, so counters accumulate across recoveries).
fn absorb_router(report: &mut ClusterReport, router: &Router) {
    report.rehash_bytes += router.rehash_bytes;
    report.broadcast_bytes += router.broadcast_bytes;
    report.gather_bytes += router.gather_bytes;
    if report.rows_routed.len() < router.rows_routed.len() {
        report.rows_routed.resize(router.rows_routed.len(), 0);
    }
    for (w, rows) in router.rows_routed.iter().enumerate() {
        report.rows_routed[w] += rows;
    }
}

/// The next `k` live workers after `w` in ring order (replica placement).
fn next_workers(live: &[usize], w: usize, k: usize) -> Vec<usize> {
    let mut sorted: Vec<usize> = live.to_vec();
    sorted.sort_unstable();
    let pos = sorted.iter().position(|&x| x == w).unwrap_or(0);
    (1..=k.min(sorted.len().saturating_sub(1))).map(|i| sorted[(pos + i) % sorted.len()]).collect()
}

/// Union the sinks of all live workers at the requestor, accounting the
/// result-forwarding bytes (workers other than the requestor ship results).
fn collect_results(
    executors: &mut [Executor],
    live: &[usize],
    _cost: &CostModel,
) -> Result<Vec<Tuple>> {
    let requestor = live[0];
    let mut all = Vec::new();
    for &w in live {
        // Drain each worker's sink — the query is over, no need to clone
        // every result row just to drop the sink's copy.
        let part = executors[w].take_sink_results()?;
        if w != requestor {
            let bytes: u64 = part.iter().map(|t| t.byte_size() as u64).sum();
            executors[w].metrics.bytes_sent += bytes;
        }
        all.extend(part);
    }
    rex_core::tuple::sort_rows(&mut all);
    Ok(all)
}

/// Merged per-stratum metric diff across live workers.
fn merged_diff(
    executors: &[Executor],
    _carried: &[ExecMetrics],
    prev: &[ExecMetrics],
    live: &[usize],
) -> ExecMetrics {
    let mut m = ExecMetrics::default();
    for &w in live {
        m.merge(&diff(&executors[w].metrics, &prev[w]));
    }
    m
}

/// Scale all counters of a metrics record (used to discount warm-state
/// reloads during incremental recovery).
fn scale_metrics(m: &mut ExecMetrics, f: f64) {
    m.tuples_processed = (m.tuples_processed as f64 * f) as u64;
    m.deltas_emitted = (m.deltas_emitted as f64 * f) as u64;
    m.udf_calls = (m.udf_calls as f64 * f) as u64;
    m.cpu_units *= f;
    m.bytes_sent = (m.bytes_sent as f64 * f) as u64;
    m.bytes_received = (m.bytes_received as f64 * f) as u64;
    m.disk_read = (m.disk_read as f64 * f) as u64;
    m.disk_written = (m.disk_written as f64 * f) as u64;
    m.punctuations = (m.punctuations as f64 * f) as u64;
}

fn diff(cur: &ExecMetrics, prev: &ExecMetrics) -> ExecMetrics {
    ExecMetrics {
        tuples_processed: cur.tuples_processed - prev.tuples_processed,
        deltas_emitted: cur.deltas_emitted - prev.deltas_emitted,
        udf_calls: cur.udf_calls - prev.udf_calls,
        cpu_units: cur.cpu_units - prev.cpu_units,
        bytes_sent: cur.bytes_sent - prev.bytes_sent,
        bytes_received: cur.bytes_received - prev.bytes_received,
        disk_read: cur.disk_read - prev.disk_read,
        disk_written: cur.disk_written - prev.disk_written,
        punctuations: cur.punctuations - prev.punctuations,
    }
}

/// Max-over-workers simulated time for the stratum that just completed.
fn max_sim_time(
    executors: &[Executor],
    prev: &[ExecMetrics],
    live: &[usize],
    cost: &CostModel,
) -> f64 {
    live.iter()
        .map(|&w| diff(&executors[w].metrics, &prev[w]).simulated_time(cost))
        .fold(0.0, f64::max)
}

/// Fill in totals and per-worker metrics at query end.
fn finalize(
    report: &mut ClusterReport,
    executors: &[Executor],
    carried: &[ExecMetrics],
    _cost: &CostModel,
    t0: Instant,
) {
    let n = executors.len();
    report.per_worker = (0..n)
        .map(|w| {
            let mut m = carried[w];
            m.merge(&executors[w].metrics);
            m
        })
        .collect();
    let mut totals = ExecMetrics::default();
    for m in &report.per_worker {
        totals.merge(m);
    }
    report.query.totals = totals;
    report.query.simulated_time = report.query.strata.iter().map(|s| s.simulated_time).sum();
    report.query.wall_seconds = t0.elapsed().as_secs_f64();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::aggregates::SumAgg;
    use rex_core::delta::Delta;
    use rex_core::expr::Expr;
    use rex_core::operators::{
        AggSpec, ApplyFunctionOp, FilterOp, FixpointOp, FnMapper, GroupByOp, ScanOp, SinkOp,
        Termination,
    };
    use rex_core::tuple;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;
    use rex_storage::table::StoredTable;

    fn catalog_with_numbers(n_rows: i64) -> Catalog {
        let cat = Catalog::new();
        let mut t = StoredTable::new(
            "nums",
            Schema::of(&[("k", DataType::Int), ("v", DataType::Double)]),
            vec![0],
        );
        for i in 0..n_rows {
            t.insert(tuple![i, (i % 5) as f64]).unwrap();
        }
        cat.register(t);
        cat
    }

    /// Distributed filter: every worker scans its partition and filters.
    #[test]
    fn distributed_filter_covers_all_partitions() {
        let cat = catalog_with_numbers(100);
        let rt = ClusterRuntime::new(ClusterConfig::new(4), cat);
        let build: PlanBuilder = Arc::new(|w, snap, cat| {
            let table = cat.get("nums")?;
            let mut g = PlanGraph::new();
            let scan = g.add(Box::new(ScanOp::new("nums", table.partition_for(snap, w))));
            let f = g.add(Box::new(FilterOp::new(Expr::col(1).gt(Expr::lit(2.5f64)))));
            let sink = g.add(Box::new(SinkOp::new()));
            g.pipe(scan, f);
            g.pipe(f, sink);
            Ok(g)
        });
        let (results, report) = rt.run(build).unwrap();
        // v in {3,4} → 40 of 100 rows pass.
        assert_eq!(results.len(), 40);
        assert_eq!(report.n_workers, 4);
        assert_eq!(report.iterations(), 1);
    }

    /// Distributed aggregation with a rehash: sum(v) grouped by k % 3.
    #[test]
    fn distributed_aggregation_with_rehash() {
        let cat = catalog_with_numbers(90);
        let rt = ClusterRuntime::new(ClusterConfig::new(3), cat);
        let build: PlanBuilder = Arc::new(|w, snap, cat| {
            let table = cat.get("nums")?;
            let mut g = PlanGraph::new();
            let scan = g.add(Box::new(ScanOp::new("nums", table.partition_for(snap, w))));
            // project (k%3, v) then rehash on the new key and aggregate.
            let proj =
                g.add(Box::new(ApplyFunctionOp::new(Arc::new(FnMapper::new("mod3", |d, _| {
                    let k = d.tuple.get(0).as_int().unwrap();
                    let v = d.tuple.get(1).clone();
                    Ok(vec![d.with_tuple(rex_core::tuple::Tuple::new(vec![
                        rex_core::value::Value::Int(k % 3),
                        v,
                    ]))])
                })))));
            let rh = g.add_rehash(vec![0]);
            let gb = g.add(Box::new(GroupByOp::new(
                vec![0],
                vec![AggSpec::new(Arc::new(SumAgg), vec![1])],
            )));
            let sink = g.add(Box::new(SinkOp::new()));
            g.pipe(scan, proj);
            g.pipe(proj, rh);
            g.pipe(rh, gb);
            g.pipe(gb, sink);
            Ok(g)
        });
        let (results, report) = rt.run(build).unwrap();
        assert_eq!(results.len(), 3);
        // Σ v over 90 rows with v = i%5 → 18 cycles of 0+1+2+3+4 = 180.
        let total: f64 = results.iter().map(|t| t.get(1).as_double().unwrap()).sum();
        assert!((total - 180.0).abs() < 1e-9);
        // Rehash moved data across workers, and the router attributed it.
        assert!(report.query.totals.bytes_sent > 0);
        assert!(report.rehash_bytes > 0);
        assert_eq!(report.rows_routed.iter().sum::<u64>(), 90);
    }

    /// Distributed recursion: per-key counters race to 5 via rehash.
    fn recursive_build() -> PlanBuilder {
        Arc::new(|w, snap, cat| {
            let table = cat.get("nums")?;
            let mut g = PlanGraph::new();
            let scan = g.add(Box::new(ScanOp::new("nums", table.partition_for(snap, w))));
            let fp = g.add(Box::new(FixpointOp::new(vec![0], Termination::Fixpoint)));
            let step =
                g.add(Box::new(ApplyFunctionOp::new(Arc::new(FnMapper::new("inc", |d, _| {
                    let k = d.tuple.get(0).as_int().unwrap();
                    let v = d.tuple.get(1).as_double().unwrap();
                    if v < 5.0 {
                        Ok(vec![Delta::insert(tuple![k, v + 1.0])])
                    } else {
                        Ok(vec![])
                    }
                })))));
            let rh = g.add_rehash(vec![0]);
            let sink = g.add(Box::new(SinkOp::new()));
            g.connect(scan, 0, fp, 0);
            g.connect(fp, 0, step, 0);
            g.pipe(step, rh);
            g.connect(rh, 0, fp, 1);
            g.connect(fp, 1, sink, 0);
            Ok(g)
        })
    }

    #[test]
    fn distributed_recursion_converges() {
        let cat = catalog_with_numbers(30);
        let rt = ClusterRuntime::new(ClusterConfig::new(3), cat);
        let (results, report) = rt.run(recursive_build()).unwrap();
        assert_eq!(results.len(), 30);
        for t in &results {
            assert_eq!(t.get(1).as_double().unwrap(), 5.0, "key {}", t.get(0));
        }
        assert!(report.iterations() >= 5);
        // Δ set sizes hit zero at convergence.
        assert_eq!(report.query.strata.last().unwrap().delta_set_size, 0);
    }

    #[test]
    fn telemetry_merges_worker_traces_and_router_counters() {
        let cat = catalog_with_numbers(30);
        let rt = ClusterRuntime::new(ClusterConfig::new(3).with_telemetry(true), cat);
        let (results, report) = rt.run(recursive_build()).unwrap();
        assert_eq!(results.len(), 30);
        let trace = report.trace.as_ref().expect("telemetry on → trace present");
        // Sinks across all workers saw exactly the result cardinality.
        assert_eq!(trace.sink_rows(), results.len() as u64);
        // Iteration deltas mirror the per-stratum report.
        let strata: Vec<u64> = report.query.strata.iter().map(|s| s.delta_set_size).collect();
        assert_eq!(trace.iteration_deltas, strata);
        // The scan is partitioned on the rehash key, so deltas self-deliver
        // (no bytes crossed) — but the router still saw every routed row.
        assert_eq!(report.rows_routed.len(), 3);
        assert!(report.rows_routed.iter().all(|&r| r > 0));
        // Telemetry off → no trace, same results.
        let cat = catalog_with_numbers(30);
        let rt = ClusterRuntime::new(ClusterConfig::new(3), cat);
        let (plain, report) = rt.run(recursive_build()).unwrap();
        assert!(report.trace.is_none());
        assert_eq!(plain, results);
    }

    #[test]
    fn single_worker_matches_local_semantics() {
        let cat = catalog_with_numbers(10);
        let rt = ClusterRuntime::new(ClusterConfig::new(1), cat);
        let (results, _) = rt.run(recursive_build()).unwrap();
        assert_eq!(results.len(), 10);
        assert!(results.iter().all(|t| t.get(1).as_double().unwrap() == 5.0));
    }

    /// The threaded drain scheduler shares the serial path's round
    /// schedule, so recursion results, per-worker metrics, and router
    /// accounting must all be bit-identical at any thread count.
    #[test]
    fn threaded_drain_matches_serial_bit_for_bit() {
        let serial = {
            let cat = catalog_with_numbers(30);
            let rt = ClusterRuntime::new(ClusterConfig::new(3).with_telemetry(true), cat);
            rt.run(recursive_build()).unwrap()
        };
        for threads in [2, 4] {
            let cat = catalog_with_numbers(30);
            let cfg = ClusterConfig::new(3).with_telemetry(true).with_threads(threads);
            let rt = ClusterRuntime::new(cfg, cat);
            let (rows, report) = rt.run(recursive_build()).unwrap();
            assert_eq!(rows, serial.0, "rows diverge at {threads} threads");
            assert_eq!(report.per_worker, serial.1.per_worker);
            assert_eq!(report.rows_routed, serial.1.rows_routed);
            assert_eq!(report.rehash_bytes, serial.1.rehash_bytes);
            assert_eq!(report.broadcast_bytes, serial.1.broadcast_bytes);
            assert_eq!(report.query.totals, serial.1.query.totals);
            let (t, s) = (report.trace.as_ref().unwrap(), serial.1.trace.as_ref().unwrap());
            assert_eq!(t.sink_rows(), s.sink_rows());
            assert_eq!(t.iteration_deltas, s.iteration_deltas);
        }
    }

    /// Threaded aggregation with a rehash boundary: the float sum is
    /// order-sensitive, so equality here proves delivery order matches.
    #[test]
    fn threaded_aggregation_matches_serial() {
        let run = |threads: usize| {
            let cat = catalog_with_numbers(90);
            let cfg = ClusterConfig::new(3).with_threads(threads);
            let rt = ClusterRuntime::new(cfg, cat);
            let build: PlanBuilder = Arc::new(|w, snap, cat| {
                let table = cat.get("nums")?;
                let mut g = PlanGraph::new();
                let scan = g.add(Box::new(ScanOp::new("nums", table.partition_for(snap, w))));
                let rh = g.add_rehash(vec![0]);
                let gb = g.add(Box::new(GroupByOp::new(
                    vec![0],
                    vec![AggSpec::new(Arc::new(SumAgg), vec![1])],
                )));
                let sink = g.add(Box::new(SinkOp::new()));
                g.pipe(scan, rh);
                g.pipe(rh, gb);
                g.pipe(gb, sink);
                Ok(g)
            });
            rt.run(build).unwrap()
        };
        let (rows1, rep1) = run(1);
        for threads in [2, 3] {
            let (rows, rep) = run(threads);
            assert_eq!(rows, rows1);
            assert_eq!(rep.per_worker, rep1.per_worker);
            assert_eq!(rep.rows_routed, rep1.rows_routed);
        }
    }

    #[test]
    fn incremental_recovery_completes_with_correct_results() {
        let cat = catalog_with_numbers(30);
        let cfg = ClusterConfig::new(3)
            .with_failure(FailurePlan::kill_at(1, 2), RecoveryStrategy::Incremental);
        let rt = ClusterRuntime::new(cfg, cat);
        let (results, report) = rt.run(recursive_build()).unwrap();
        assert_eq!(results.len(), 30);
        assert!(results.iter().all(|t| t.get(1).as_double().unwrap() == 5.0));
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].worker, 1);
        assert!(report.checkpoint_bytes > 0);
        // Incremental recovery resumed from a checkpointed stratum.
        assert!(report.failures[0].resumed_from > 0);
    }

    #[test]
    fn restart_recovery_completes_with_correct_results() {
        let cat = catalog_with_numbers(30);
        let cfg = ClusterConfig::new(3)
            .with_failure(FailurePlan::kill_at(2, 2), RecoveryStrategy::Restart);
        let rt = ClusterRuntime::new(cfg, cat);
        let (results, report) = rt.run(recursive_build()).unwrap();
        assert_eq!(results.len(), 30);
        assert!(results.iter().all(|t| t.get(1).as_double().unwrap() == 5.0));
        assert_eq!(report.failures[0].resumed_from, 0);
        // Restart re-executes early strata: more total strata than failure-free.
        let baseline = ClusterRuntime::new(ClusterConfig::new(3), catalog_with_numbers(30))
            .run(recursive_build())
            .unwrap()
            .1;
        assert!(report.iterations() > baseline.iterations());
    }

    #[test]
    fn restart_costs_more_than_incremental_for_late_failures() {
        let run = |strategy| {
            let cat = catalog_with_numbers(60);
            let cfg = ClusterConfig::new(4).with_failure(FailurePlan::kill_at(1, 4), strategy);
            ClusterRuntime::new(cfg, cat).run(recursive_build()).unwrap().1
        };
        let restart = run(RecoveryStrategy::Restart);
        let incremental = run(RecoveryStrategy::Incremental);
        assert!(
            incremental.simulated_time() < restart.simulated_time(),
            "incremental {} !< restart {}",
            incremental.simulated_time(),
            restart.simulated_time()
        );
    }
}
