//! # rex-testkit
//!
//! Shared fixtures and oracles for REX's integration tests. This crate is
//! a **dev-dependency only**: it exists so the seed-sweep scaffolding that
//! `tests/parallel_determinism.rs`, `tests/incremental_views.rs`,
//! `crates/server/tests/concurrent.rs`, and `tests/fault_recovery.rs` all
//! need lives in one place instead of being copied per test file.
//!
//! What lives here and why:
//!
//! * **sweep constants** — [`SEEDS`]/[`THREADS`], the canonical seed and
//!   thread-count matrices every determinism sweep iterates;
//! * **sessions and fixtures** — [`session`] (engine by name),
//!   [`fill_tkd`] (the `t`/`d`/`seed` random fixture big enough to engage
//!   parallel lowering), [`edges_session`]/[`random_row`] (the
//!   `edges`/`weights` IVM fixture);
//! * **oracles** — [`assert_rows_close`] (bag equality, doubles to
//!   relative tolerance), [`canon`] (canonical row order for queries with
//!   no ORDER BY);
//! * **determinism** — [`XorShift`], the tiny seedable RNG used where
//!   per-thread streams must be reproducible without `rex-data`'s heavier
//!   generator.

use rex::core::tuple::{Schema, Tuple};
use rex::core::value::{DataType, Value};
use rex::Session;
use rex_data::rng::StdRng;

/// The canonical seed matrix for seed-swept properties.
pub const SEEDS: [u64; 3] = [11, 29, 47];

/// The canonical thread-count matrix for parallel determinism sweeps.
pub const THREADS: [usize; 3] = [2, 4, 8];

/// Rows for the base table `t` in [`fill_tkd`]: > PARALLEL_ROWS_MIN so
/// the local engine's parallel lowering actually engages.
pub const T_ROWS: usize = 8192;

/// Distinct join keys in the `t`/`d` fixture.
pub const D_ROWS: i64 = 256;

/// A session for the named engine: `"cluster"` → a 3-worker simulated
/// cluster, anything else → the single-node engine.
pub fn session(engine: &str) -> Session {
    session_n(engine, 3)
}

/// Like [`session`], with an explicit cluster size.
pub fn session_n(engine: &str, workers: usize) -> Session {
    match engine {
        "cluster" => Session::cluster(workers),
        _ => Session::local(),
    }
}

/// Create and fill the `t(k, a, b)` / `d(k, w)` / `seed(k)` fixture with
/// seed-deterministic random data: `t` is big enough to engage parallel
/// lowering, `d` joins on `k`, `seed` feeds recursive queries.
pub fn fill_tkd(s: &mut Session, seed: u64) {
    s.create_table(
        "t",
        Schema::of(&[("k", DataType::Int), ("a", DataType::Int), ("b", DataType::Double)]),
    )
    .unwrap();
    s.create_table("d", Schema::of(&[("k", DataType::Int), ("w", DataType::Double)])).unwrap();
    s.create_table("seed", Schema::of(&[("k", DataType::Int)])).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let t: Vec<Tuple> = (0..T_ROWS).map(|i| tkd_row(&mut rng, i)).collect();
    s.insert("t", t).unwrap();
    let d: Vec<Tuple> = (0..D_ROWS)
        .map(|k| Tuple::new(vec![Value::Int(k), Value::Double(k as f64 * 1.5)]))
        .collect();
    s.insert("d", d).unwrap();
    let seeds: Vec<Tuple> = (0..40i64).map(|k| Tuple::new(vec![Value::Int(k)])).collect();
    s.insert("seed", seeds).unwrap();
}

/// One random `t` row for the [`fill_tkd`] fixture; `i` keys it onto one
/// of the `D_ROWS` join keys.
pub fn tkd_row(rng: &mut StdRng, i: usize) -> Tuple {
    Tuple::new(vec![
        Value::Int((i as i64) % D_ROWS),
        Value::Int(rng.gen_range(0..=99i64)),
        Value::Double(rng.gen_range(0..=999i64) as f64 * 0.37),
    ])
}

/// A session pre-seeded with the IVM fixture tables
/// `edges(src, dst)` / `weights(node, weight)`.
pub fn edges_session(engine: &str) -> Session {
    let mut s = session(engine);
    s.create_table("edges", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)])).unwrap();
    s.create_table("weights", Schema::of(&[("node", DataType::Int), ("weight", DataType::Double)]))
        .unwrap();
    s
}

/// A random row for the `edges` or `weights` table of [`edges_session`].
/// Weights are dyadic (`k * 0.25`) so sums stay exact under reordering.
pub fn random_row(rng: &mut StdRng, table: &str) -> Tuple {
    match table {
        "edges" => Tuple::new(vec![
            Value::Int(rng.gen_range(0..=7i64)),
            Value::Int(rng.gen_range(0..=5i64)),
        ]),
        _ => Tuple::new(vec![
            Value::Int(rng.gen_range(0..=5i64)),
            Value::Double((rng.gen_range(1..=19i64)) as f64 * 0.25),
        ]),
    }
}

/// Compare bags of rows: identical shape, Int/Null exact, doubles to 1e-9
/// relative tolerance (incremental maintenance may sum in another order
/// than a scan-ordered recompute).
pub fn assert_rows_close(got: &[Tuple], want: &[Tuple], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: cardinality\n got: {got:?}\nwant: {want:?}");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.arity(), w.arity(), "{ctx}: arity of {g} vs {w}");
        for i in 0..g.arity() {
            match (g.get(i), w.get(i)) {
                (Value::Double(a), Value::Double(b)) => {
                    let scale = b.abs().max(1.0);
                    assert!(
                        (a - b).abs() <= 1e-9 * scale,
                        "{ctx}: col {i}: {a} vs {b} in {g} vs {w}"
                    );
                }
                (a, b) => assert_eq!(a, b, "{ctx}: col {i} of {g} vs {w}"),
            }
        }
    }
}

/// Sort rows into a canonical order for comparison (for queries with no
/// ORDER BY, where presentation order is arbitrary).
pub fn canon(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

/// Tiny deterministic RNG for tests that need many independent cheap
/// streams (one per reader thread, say) without threading `StdRng` around.
pub struct XorShift(pub u64);

impl XorShift {
    /// Next value of the xorshift64 sequence.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_seed_deterministic() {
        let rows = |seed| {
            let mut s = session("local");
            fill_tkd(&mut s, seed);
            s.query("SELECT * FROM t ORDER BY k, a, b").unwrap().rows
        };
        assert_eq!(rows(11), rows(11));
        assert_ne!(rows(11), rows(29));
    }

    #[test]
    fn canon_orders_and_rows_close_tolerates_low_bits() {
        let a = Tuple::new(vec![Value::Int(1), Value::Double(0.3)]);
        let b = Tuple::new(vec![Value::Int(0), Value::Double(0.1 + 0.2)]);
        let sorted = canon(vec![a.clone(), b.clone()]);
        assert_eq!(sorted[0].get(0), &Value::Int(0));
        assert_rows_close(&[a], &[Tuple::new(vec![Value::Int(1), Value::Double(0.1 + 0.2)])], "t");
    }

    #[test]
    fn xorshift_is_reproducible() {
        let (mut a, mut b) = (XorShift(9), XorShift(9));
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
