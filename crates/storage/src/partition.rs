//! Consistent hashing and partition snapshots.
//!
//! "Data partitioning is based on keys rather than pages, and partitions are
//! chosen using a consistent hashing and data replication scheme known to
//! all nodes. ... every query in REX is distributed along with a snapshot of
//! the data partitions across the machines as seen by the query requestor.
//! All data will be routed according to this set of partitions, guaranteeing
//! that even as the network changes, data will be delivered to the same
//! place." (§4.1)

use rex_core::operators::hash_key;
use rex_core::value::Value;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Number of virtual nodes per physical node on the ring; smooths the key
/// distribution across a small cluster.
pub const VNODES_PER_NODE: usize = 64;

/// A consistent-hash ring over physical node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    /// Sorted (hash, node) pairs — the ring's virtual nodes.
    vnodes: Vec<(u64, usize)>,
    /// The physical nodes present on the ring, sorted.
    nodes: Vec<usize>,
}

fn vnode_hash(node: usize, replica: usize) -> u64 {
    let mut h = DefaultHasher::new();
    (node as u64, replica as u64, 0x5eed_u64).hash(&mut h);
    h.finish()
}

impl Ring {
    /// Build a ring over the given physical nodes.
    pub fn new(nodes: &[usize]) -> Ring {
        let mut sorted: Vec<usize> = nodes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut vnodes = Vec::with_capacity(sorted.len() * VNODES_PER_NODE);
        for &n in &sorted {
            for r in 0..VNODES_PER_NODE {
                vnodes.push((vnode_hash(n, r), n));
            }
        }
        vnodes.sort_unstable();
        Ring { vnodes, nodes: sorted }
    }

    /// The live physical nodes.
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// Number of physical nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes remain.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The primary owner of a key hash.
    pub fn primary(&self, key_hash: u64) -> usize {
        debug_assert!(!self.vnodes.is_empty(), "ring has no nodes");
        let idx = match self.vnodes.binary_search_by(|(h, _)| h.cmp(&key_hash)) {
            Ok(i) => i,
            Err(i) => i % self.vnodes.len(),
        };
        self.vnodes[idx % self.vnodes.len()].1
    }

    /// The first `r` *distinct* nodes clockwise from the key hash: the
    /// primary followed by its replicas.
    pub fn owners(&self, key_hash: u64, r: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(r.min(self.nodes.len()));
        if self.vnodes.is_empty() {
            return out;
        }
        let start = match self.vnodes.binary_search_by(|(h, _)| h.cmp(&key_hash)) {
            Ok(i) => i,
            Err(i) => i,
        };
        let n = self.vnodes.len();
        for off in 0..n {
            let node = self.vnodes[(start + off) % n].1;
            if !out.contains(&node) {
                out.push(node);
                if out.len() == r.min(self.nodes.len()) {
                    break;
                }
            }
        }
        out
    }

    /// A new ring with `node` removed (node failure).
    pub fn without(&self, node: usize) -> Ring {
        let remaining: Vec<usize> = self.nodes.iter().copied().filter(|&n| n != node).collect();
        Ring::new(&remaining)
    }
}

/// The partition map a query is distributed with: a ring plus the query's
/// replication factor. Frozen at query start; recovery derives an updated
/// snapshot via [`PartitionSnapshot::without_node`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSnapshot {
    ring: Ring,
    replication: usize,
}

impl PartitionSnapshot {
    /// Snapshot over `n` nodes (ids `0..n`) with replication factor `r`.
    pub fn new(n: usize, replication: usize) -> PartitionSnapshot {
        let nodes: Vec<usize> = (0..n).collect();
        PartitionSnapshot { ring: Ring::new(&nodes), replication: replication.max(1) }
    }

    /// Snapshot over explicit node ids.
    pub fn over(nodes: &[usize], replication: usize) -> PartitionSnapshot {
        PartitionSnapshot { ring: Ring::new(nodes), replication: replication.max(1) }
    }

    /// The replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Live nodes in this snapshot.
    pub fn nodes(&self) -> &[usize] {
        self.ring.nodes()
    }

    /// Number of live nodes.
    pub fn n_nodes(&self) -> usize {
        self.ring.len()
    }

    /// Primary owner of a key.
    pub fn owner_of_key(&self, key: &[Value]) -> usize {
        self.ring.primary(hash_key(key))
    }

    /// Primary owner of a pre-hashed key.
    pub fn owner_of_hash(&self, h: u64) -> usize {
        self.ring.primary(h)
    }

    /// Primary plus replicas for a key.
    pub fn owners_of_key(&self, key: &[Value]) -> Vec<usize> {
        self.ring.owners(hash_key(key), self.replication)
    }

    /// Replica nodes (excluding the primary) for a key.
    pub fn replicas_of_key(&self, key: &[Value]) -> Vec<usize> {
        let mut owners = self.owners_of_key(key);
        if !owners.is_empty() {
            owners.remove(0);
        }
        owners
    }

    /// The snapshot after a node failure: "during each recovery process,
    /// the data partition snapshot gets updated to reflect the new set of
    /// nodes" (§4.1).
    pub fn without_node(&self, node: usize) -> PartitionSnapshot {
        PartitionSnapshot { ring: self.ring.without(node), replication: self.replication }
    }

    /// Whether `node` is live in this snapshot.
    pub fn contains(&self, node: usize) -> bool {
        self.ring.nodes().contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::value::Value;

    #[test]
    fn primary_is_deterministic() {
        let snap = PartitionSnapshot::new(4, 2);
        let k = vec![Value::Int(42)];
        assert_eq!(snap.owner_of_key(&k), snap.owner_of_key(&k));
    }

    #[test]
    fn owners_are_distinct_and_led_by_primary() {
        let snap = PartitionSnapshot::new(5, 3);
        for i in 0..100i64 {
            let k = vec![Value::Int(i)];
            let owners = snap.owners_of_key(&k);
            assert_eq!(owners.len(), 3);
            assert_eq!(owners[0], snap.owner_of_key(&k));
            let mut sorted = owners.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "owners must be distinct nodes");
        }
    }

    #[test]
    fn replication_capped_by_cluster_size() {
        let snap = PartitionSnapshot::new(2, 5);
        let owners = snap.owners_of_key(&[Value::Int(1)]);
        assert_eq!(owners.len(), 2);
    }

    #[test]
    fn keys_spread_across_nodes() {
        let snap = PartitionSnapshot::new(8, 1);
        let mut counts = [0usize; 8];
        for i in 0..8000i64 {
            counts[snap.owner_of_key(&[Value::Int(i)])] += 1;
        }
        // Every node owns something; no node owns more than half.
        for (n, &c) in counts.iter().enumerate() {
            assert!(c > 0, "node {n} owns nothing");
            assert!(c < 4000, "node {n} owns {c} of 8000 keys");
        }
    }

    #[test]
    fn failure_only_moves_failed_nodes_keys() {
        let snap = PartitionSnapshot::new(6, 1);
        let after = snap.without_node(3);
        let mut moved = 0;
        let mut total = 0;
        for i in 0..2000i64 {
            let k = vec![Value::Int(i)];
            let before_owner = snap.owner_of_key(&k);
            let after_owner = after.owner_of_key(&k);
            total += 1;
            if before_owner != after_owner {
                moved += 1;
                assert_eq!(before_owner, 3, "key moved although its owner did not fail");
            }
        }
        // Roughly 1/6 of the keys should move.
        assert!(moved > 0 && moved < total / 3);
    }

    #[test]
    fn failed_nodes_keys_fall_to_their_replicas() {
        let snap = PartitionSnapshot::new(5, 2);
        let after = snap.without_node(2);
        for i in 0..500i64 {
            let k = vec![Value::Int(i)];
            if snap.owner_of_key(&k) == 2 {
                let new_owner = after.owner_of_key(&k);
                let old_owners = snap.owners_of_key(&k);
                assert!(
                    old_owners.contains(&new_owner),
                    "takeover node {new_owner} held no replica ({old_owners:?})"
                );
            }
        }
    }

    #[test]
    fn ring_without_removes_node() {
        let r = Ring::new(&[0, 1, 2]);
        let r2 = r.without(1);
        assert_eq!(r2.nodes(), &[0, 2]);
        assert!(!r2.is_empty());
    }
}
