//! Checkpoint store for incremental recovery (§4.3).
//!
//! "We employ incremental checkpoints: for a given stratum, every machine
//! buffers and replicates the mutable Δᵢ set processed by the local fixpoint
//! operator to replica machines. In the presence of failures, recovery
//! queries are started from the last stratum which was successfully
//! completed."
//!
//! The store is keyed by `(owner node, stratum)` and records, per
//! checkpoint, the set of replica nodes holding a copy — a checkpoint
//! survives the owner's failure iff at least one replica is still alive.

use rex_core::operators::OperatorState;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::RwLock;

/// One replicated checkpoint of a node's fixpoint state.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The node whose fixpoint state this is.
    pub owner: usize,
    /// The stratum after which the state was captured.
    pub stratum: u64,
    /// Nodes holding a replica of this checkpoint (owner excluded).
    pub replicas: Vec<usize>,
    /// The checkpointed mutable set.
    pub state: OperatorState,
}

impl Checkpoint {
    /// Bytes replicated for this checkpoint (volume accounting): state size
    /// times the number of replica copies shipped.
    pub fn replicated_bytes(&self) -> u64 {
        (self.state.byte_size() * self.replicas.len()) as u64
    }
}

/// Thread-safe checkpoint store shared by the simulated cluster (stands in
/// for each node's local disk plus its replicas').
#[derive(Clone, Default)]
pub struct CheckpointStore {
    inner: Arc<RwLock<HashMap<(usize, u64), Checkpoint>>>,
}

impl CheckpointStore {
    /// Empty store.
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// Record a checkpoint, replacing any previous one for the same
    /// `(owner, stratum)`.
    pub fn put(&self, ckpt: Checkpoint) {
        self.inner.write().unwrap().insert((ckpt.owner, ckpt.stratum), ckpt);
    }

    /// Fetch the checkpoint for `(owner, stratum)` if it is *recoverable*:
    /// either the owner is alive, or some replica node is.
    pub fn recoverable(
        &self,
        owner: usize,
        stratum: u64,
        live_nodes: &[usize],
    ) -> Option<Checkpoint> {
        let map = self.inner.read().unwrap();
        let c = map.get(&(owner, stratum))?;
        if live_nodes.contains(&owner) || c.replicas.iter().any(|r| live_nodes.contains(r)) {
            Some(c.clone())
        } else {
            None
        }
    }

    /// The latest stratum for which *every* owner in `owners` has a
    /// recoverable checkpoint: the stratum recovery restarts from.
    pub fn last_complete_stratum(&self, owners: &[usize], live_nodes: &[usize]) -> Option<u64> {
        let map = self.inner.read().unwrap();
        let mut best: Option<u64> = None;
        let strata: std::collections::BTreeSet<u64> = map.keys().map(|(_, s)| *s).collect();
        for &s in &strata {
            let all = owners.iter().all(|&o| {
                map.get(&(o, s))
                    .map(|c| {
                        live_nodes.contains(&o) || c.replicas.iter().any(|r| live_nodes.contains(r))
                    })
                    .unwrap_or(false)
            });
            if all {
                best = Some(s);
            }
        }
        best
    }

    /// Total bytes currently held (all checkpoints, all replicas).
    pub fn total_bytes(&self) -> u64 {
        self.inner
            .read()
            .unwrap()
            .values()
            .map(|c| (c.state.byte_size() as u64) * (1 + c.replicas.len() as u64))
            .sum()
    }

    /// Discard checkpoints older than `stratum` (garbage collection: only
    /// the last completed stratum is needed).
    pub fn prune_before(&self, stratum: u64) {
        self.inner.write().unwrap().retain(|(_, s), _| *s >= stratum);
    }

    /// Remove everything.
    pub fn clear(&self) {
        self.inner.write().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;

    fn state(n: i64) -> OperatorState {
        OperatorState { tuples: vec![tuple![n]] }
    }

    #[test]
    fn checkpoint_survives_owner_failure_via_replica() {
        let store = CheckpointStore::new();
        store.put(Checkpoint { owner: 0, stratum: 3, replicas: vec![1, 2], state: state(7) });
        // Owner dead, replica 2 alive.
        let c = store.recoverable(0, 3, &[2, 3]).unwrap();
        assert_eq!(c.state.tuples, vec![tuple![7i64]]);
        // Owner and all replicas dead: unrecoverable.
        assert!(store.recoverable(0, 3, &[3, 4]).is_none());
    }

    #[test]
    fn last_complete_stratum_requires_all_owners() {
        let store = CheckpointStore::new();
        for s in 0..3u64 {
            store.put(Checkpoint { owner: 0, stratum: s, replicas: vec![1], state: state(0) });
        }
        store.put(Checkpoint { owner: 1, stratum: 0, replicas: vec![0], state: state(1) });
        store.put(Checkpoint { owner: 1, stratum: 1, replicas: vec![0], state: state(1) });
        // Node 1 never checkpointed stratum 2.
        assert_eq!(store.last_complete_stratum(&[0, 1], &[0, 1]), Some(1));
    }

    #[test]
    fn prune_discards_old_strata() {
        let store = CheckpointStore::new();
        for s in 0..5u64 {
            store.put(Checkpoint { owner: 0, stratum: s, replicas: vec![], state: state(0) });
        }
        store.prune_before(3);
        assert!(store.recoverable(0, 2, &[0]).is_none());
        assert!(store.recoverable(0, 4, &[0]).is_some());
    }

    #[test]
    fn byte_accounting_counts_replicas() {
        let store = CheckpointStore::new();
        let st = state(1);
        let sz = st.byte_size() as u64;
        store.put(Checkpoint { owner: 0, stratum: 0, replicas: vec![1, 2], state: st });
        assert_eq!(store.total_bytes(), sz * 3);
    }
}
