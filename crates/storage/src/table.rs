//! Stored tables: schema + rows, partitionable by key columns.

use rex_core::error::{Result, RexError};
use rex_core::operators::hash_key_cols;
use rex_core::tuple::{Schema, Tuple};
use rex_core::value::Value;
use std::collections::HashMap;

use crate::partition::PartitionSnapshot;

/// An in-memory stored table. Rows are validated against the schema on
/// insertion; the table knows which columns it is partitioned on.
#[derive(Debug, Clone)]
pub struct StoredTable {
    name: String,
    schema: Schema,
    /// Partitioning key columns (indices into the schema).
    partition_cols: Vec<usize>,
    rows: Vec<Tuple>,
    /// Cached total byte size of `rows`, maintained by every mutation so
    /// scan cost accounting is O(1) instead of a pass over the table.
    bytes: u64,
}

impl StoredTable {
    /// Create an empty table partitioned on `partition_cols`.
    pub fn new(name: impl Into<String>, schema: Schema, partition_cols: Vec<usize>) -> StoredTable {
        StoredTable { name: name.into(), schema, partition_cols, rows: Vec::new(), bytes: 0 }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The partition key columns.
    pub fn partition_cols(&self) -> &[usize] {
        &self.partition_cols
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Validate and append a row.
    pub fn insert(&mut self, row: Tuple) -> Result<()> {
        self.schema.check(&row)?;
        self.bytes += row.byte_size() as u64;
        self.rows.push(row);
        Ok(())
    }

    /// Bulk load rows (validated).
    pub fn load(&mut self, rows: Vec<Tuple>) -> Result<()> {
        for r in rows {
            self.insert(r)?;
        }
        Ok(())
    }

    /// Bulk load without per-row validation (trusted generators).
    pub fn load_unchecked(&mut self, mut rows: Vec<Tuple>) {
        self.bytes += rows.iter().map(|t| t.byte_size() as u64).sum::<u64>();
        self.rows.append(&mut rows);
    }

    /// Remove one occurrence of each given row without validating presence
    /// (the catalog validates the whole batch first). Rows not found are
    /// ignored; returns the number actually removed. One pass over the
    /// table: O(stored + batch), not O(stored × batch).
    pub fn remove_unchecked(&mut self, rows: &[Tuple]) -> usize {
        let mut pending: HashMap<&Tuple, usize> = HashMap::new();
        for r in rows {
            *pending.entry(r).or_insert(0) += 1;
        }
        self.remove_counted(pending)
    }

    /// Remove tuples by pre-counted multiplicity (a caller that already
    /// built the count map — the catalog's validated delete — hands it
    /// over instead of recounting the batch).
    pub fn remove_counted(&mut self, mut pending: HashMap<&Tuple, usize>) -> usize {
        let before = self.rows.len();
        let mut removed_bytes = 0u64;
        self.rows.retain(|r| match pending.get_mut(r) {
            Some(n) if *n > 0 => {
                *n -= 1;
                removed_bytes += r.byte_size() as u64;
                false
            }
            _ => true,
        });
        self.bytes -= removed_bytes;
        before - self.rows.len()
    }

    /// Replace the table's entire contents (used when a materialized view
    /// syncs its maintained state into the catalog).
    pub fn replace_rows(&mut self, rows: Vec<Tuple>) {
        self.bytes = rows.iter().map(|t| t.byte_size() as u64).sum();
        self.rows = rows;
    }

    /// Apply a signed-multiplicity delta: remove `removes` (pre-counted,
    /// like [`remove_counted`](Self::remove_counted)) and append
    /// `inserts`, in one pass each — the table-level half of
    /// delta-granular view synchronization. Returns the number of rows
    /// actually removed so the caller can detect divergence between the
    /// delta and the stored contents.
    pub fn apply_delta(&mut self, removes: HashMap<&Tuple, usize>, inserts: Vec<Tuple>) -> usize {
        let removed = if removes.is_empty() { 0 } else { self.remove_counted(removes) };
        self.load_unchecked(inserts);
        removed
    }

    /// The partition key of a row.
    pub fn partition_key(&self, row: &Tuple) -> Vec<Value> {
        row.key(&self.partition_cols)
    }

    /// The rows owned by `node` under `snap` (primary ownership).
    pub fn partition_for(&self, snap: &PartitionSnapshot, node: usize) -> Vec<Tuple> {
        // Hash each row's partition columns in place: per-worker lowering
        // calls this for every worker, so an owned key per row would be
        // `workers × rows` allocations per query.
        self.rows
            .iter()
            .filter(|r| snap.owner_of_hash(hash_key_cols(r, &self.partition_cols)) == node)
            .cloned()
            .collect()
    }

    /// All nodes' primary partitions in one pass: each row's partition key
    /// is hashed exactly once, against `workers × rows` hashes when every
    /// worker calls [`partition_for`](Self::partition_for) separately.
    /// The result is indexed by node id (nodes absent from the snapshot
    /// get empty partitions).
    pub fn partition_all(&self, snap: &PartitionSnapshot) -> Vec<Vec<Tuple>> {
        let slots = snap.nodes().iter().copied().max().map_or(0, |m| m + 1);
        let mut parts: Vec<Vec<Tuple>> = vec![Vec::new(); slots];
        for r in &self.rows {
            let owner = snap.owner_of_hash(hash_key_cols(r, &self.partition_cols));
            parts[owner].push(r.clone());
        }
        parts
    }

    /// The rows for which `node` is primary *or* replica — the replicated
    /// local storage a node can serve during recovery (§4.1).
    pub fn replica_partition_for(&self, snap: &PartitionSnapshot, node: usize) -> Vec<Tuple> {
        self.rows
            .iter()
            .filter(|r| snap.owners_of_key(&self.partition_key(r)).contains(&node))
            .cloned()
            .collect()
    }

    /// Total bytes of the table (for scan cost accounting), maintained
    /// incrementally — O(1).
    pub fn byte_size(&self) -> u64 {
        self.bytes
    }

    /// Resolve a column name.
    pub fn column(&self, name: &str) -> Result<usize> {
        self.schema
            .index_of(name)
            .ok_or_else(|| RexError::Storage(format!("table {}: no column {name}", self.name)))
    }
}

impl AsRef<[Tuple]> for StoredTable {
    fn as_ref(&self) -> &[Tuple] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;
    use rex_core::value::DataType;

    fn table() -> StoredTable {
        let schema = Schema::of(&[("srcId", DataType::Int), ("destId", DataType::Int)]);
        StoredTable::new("graph", schema, vec![0])
    }

    #[test]
    fn insert_validates_schema() {
        let mut t = table();
        assert!(t.insert(tuple![1i64, 2i64]).is_ok());
        assert!(t.insert(tuple![1i64]).is_err());
        assert!(t.insert(tuple!["x", 2i64]).is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn partitions_cover_table_disjointly() {
        let mut t = table();
        for i in 0..200i64 {
            t.insert(tuple![i, i + 1]).unwrap();
        }
        let snap = PartitionSnapshot::new(4, 1);
        let mut total = 0;
        for node in 0..4 {
            total += t.partition_for(&snap, node).len();
        }
        assert_eq!(total, 200);
    }

    #[test]
    fn replica_partitions_overlap_by_replication_factor() {
        let mut t = table();
        for i in 0..100i64 {
            t.insert(tuple![i, i + 1]).unwrap();
        }
        let snap = PartitionSnapshot::new(4, 2);
        let total: usize = (0..4).map(|n| t.replica_partition_for(&snap, n).len()).sum();
        assert_eq!(total, 200, "each row stored at 2 nodes");
    }

    #[test]
    fn column_resolution() {
        let t = table();
        assert_eq!(t.column("srcid").unwrap(), 0);
        assert_eq!(t.column("destId").unwrap(), 1);
        assert!(t.column("bogus").is_err());
    }
}
