//! # rex-storage
//!
//! Partitioned, replicated local storage for REX (§4, §4.1).
//!
//! "The input data resides on partitioned replicated local storage" — this
//! crate provides the catalog of stored tables, key-based partitioning
//! (pages are *not* the partitioning unit; keys are), replica placement via
//! a consistent-hash ring, the partition-map snapshots every query is
//! distributed with, and the checkpoint store backing incremental recovery
//! (§4.3).

pub mod catalog;
pub mod checkpoint;
pub mod partition;
pub mod table;

pub use catalog::Catalog;
pub use checkpoint::CheckpointStore;
pub use partition::{PartitionSnapshot, Ring};
pub use table::StoredTable;
