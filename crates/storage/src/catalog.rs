//! The catalog: named tables shared by all workers of a simulated cluster.

use crate::table::StoredTable;
use rex_core::error::{Result, RexError};
use rex_core::tuple::Tuple;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::RwLock;

/// A thread-safe catalog of stored tables.
#[derive(Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<HashMap<String, Arc<StoredTable>>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// An isolated point-in-time snapshot of the catalog: a *new* catalog
    /// whose map holds the same `Arc<StoredTable>`s — O(tables) `Arc`
    /// bumps, no row is copied. Because every mutation path goes through
    /// [`Arc::make_mut`], a later `append`/`remove`/`apply_delta`/
    /// `replace_rows` on either catalog copies the affected table first
    /// (copy-on-write), so the snapshot keeps serving exactly the rows it
    /// captured: readers never block writers, writers never disturb
    /// readers. This is the storage half of MVCC-lite snapshot serving.
    pub fn snapshot(&self) -> Catalog {
        Catalog { inner: Arc::new(RwLock::new(self.inner.read().unwrap().clone())) }
    }

    /// Register (or replace) a table.
    pub fn register(&self, table: StoredTable) {
        self.inner.write().unwrap().insert(table.name().to_ascii_lowercase(), Arc::new(table));
    }

    /// Look up a table by name (case-insensitive).
    pub fn get(&self, name: &str) -> Result<Arc<StoredTable>> {
        self.inner
            .read()
            .unwrap()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| RexError::Storage(format!("unknown table: {name}")))
    }

    /// Append rows to an existing table in place, validating every row
    /// against the schema *before* mutating so a bad batch leaves the
    /// table untouched. Returns the number of rows appended.
    ///
    /// The stored table is copy-on-write: if no query currently holds a
    /// snapshot of it, the append mutates in place (no full-table copy).
    pub fn append(&self, name: &str, rows: Vec<Tuple>) -> Result<usize> {
        let mut map = self.inner.write().unwrap();
        let entry = map
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| RexError::Storage(format!("unknown table: {name}")))?;
        for r in &rows {
            entry.schema().check(r)?;
        }
        let n = rows.len();
        Arc::make_mut(entry).load_unchecked(rows);
        Ok(n)
    }

    /// Remove one occurrence of each given row from an existing table,
    /// mirroring [`append`](Self::append): the whole batch is validated
    /// *before* mutating — every row must match the schema and be present
    /// with sufficient multiplicity — so a bad batch leaves the table
    /// untouched. Returns the number of rows removed.
    pub fn remove(&self, name: &str, rows: &[Tuple]) -> Result<usize> {
        let mut map = self.inner.write().unwrap();
        let entry = map
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| RexError::Storage(format!("unknown table: {name}")))?;
        for r in rows {
            entry.schema().check(r)?;
        }
        // Presence check with multiplicity: deleting two copies of a row
        // requires the table to hold at least two. One counting pass over
        // the table keeps large deletes O(stored + batch).
        let mut need: HashMap<&Tuple, usize> = HashMap::new();
        for r in rows {
            *need.entry(r).or_insert(0) += 1;
        }
        let mut have: HashMap<&Tuple, usize> = need.keys().map(|r| (*r, 0)).collect();
        for r in entry.rows() {
            if let Some(n) = have.get_mut(r) {
                *n += 1;
            }
        }
        for (r, n) in &need {
            let got = have[r];
            if got < *n {
                return Err(RexError::Storage(format!(
                    "table {name}: cannot delete {n} copies of {r}: only {got} stored"
                )));
            }
        }
        drop(have);
        Ok(Arc::make_mut(entry).remove_counted(need))
    }

    /// Apply a signed-multiplicity delta to a table: each `(tuple, n)`
    /// change inserts `n` copies when positive and removes `-n` copies
    /// when negative (trusted caller: rows are assumed schema-valid, as
    /// with [`replace_rows`](Self::replace_rows)). This is how
    /// materialized-view synchronization stays proportional to the
    /// *change* instead of republishing the whole view. Returns
    /// `(inserted, removed)` row counts. A delta that asks to remove rows
    /// the table does not hold is an error naming the divergence, raised
    /// *before* any mutation — the table is untouched, so the caller can
    /// repair by republishing the authoritative contents.
    pub fn apply_delta<I>(&self, name: &str, changes: I) -> Result<(usize, usize)>
    where
        I: IntoIterator<Item = (Tuple, i64)>,
    {
        let mut inserts: Vec<Tuple> = Vec::new();
        let mut removes: Vec<(Tuple, usize)> = Vec::new();
        for (t, n) in changes {
            match n.cmp(&0) {
                std::cmp::Ordering::Greater => {
                    for _ in 1..n {
                        inserts.push(t.clone());
                    }
                    inserts.push(t);
                }
                std::cmp::Ordering::Less => removes.push((t, (-n) as usize)),
                std::cmp::Ordering::Equal => {}
            }
        }
        let mut map = self.inner.write().unwrap();
        let entry = map
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| RexError::Storage(format!("unknown table: {name}")))?;
        let want: usize = removes.iter().map(|(_, n)| n).sum();
        let inserted = inserts.len();
        let mut need: HashMap<&Tuple, usize> = HashMap::new();
        for (t, n) in &removes {
            *need.entry(t).or_insert(0) += *n;
        }
        // Pre-validate removals so a diverged delta fails atomically: one
        // counting pass over the stored rows, no mutation on error. An
        // insert-only delta (the common streaming batch) skips the pass
        // entirely so sync stays O(change), not O(table).
        if want > 0 {
            let mut have: HashMap<&Tuple, usize> = need.keys().map(|t| (*t, 0)).collect();
            for r in entry.rows() {
                if let Some(c) = have.get_mut(r) {
                    *c += 1;
                }
            }
            let stored: usize = need.iter().map(|(t, n)| (*n).min(have[t])).sum();
            if stored != want {
                return Err(RexError::Storage(format!(
                    "table {name}: delta asked to remove {want} rows but only {stored} are \
                     stored; stored copy has diverged"
                )));
            }
        }
        let removed = Arc::make_mut(entry).apply_delta(need, inserts);
        debug_assert_eq!(removed, want);
        Ok((inserted, removed))
    }

    /// Replace a table's entire contents (trusted caller: rows are assumed
    /// schema-valid). Used by materialized-view synchronization.
    pub fn replace_rows(&self, name: &str, rows: Vec<Tuple>) -> Result<()> {
        let mut map = self.inner.write().unwrap();
        let entry = map
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| RexError::Storage(format!("unknown table: {name}")))?;
        Arc::make_mut(entry).replace_rows(rows);
        Ok(())
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().unwrap().contains_key(&name.to_ascii_lowercase())
    }

    /// Drop a table. Dropping a missing table is a typed error so callers
    /// can distinguish "dropped" from "never existed".
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.inner
            .write()
            .unwrap()
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| RexError::Storage(format!("unknown table: {name}")))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().unwrap().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;

    #[test]
    fn append_validates_whole_batch_before_mutating() {
        let cat = Catalog::new();
        let mut t = StoredTable::new("t", Schema::of(&[("a", DataType::Int)]), vec![0]);
        t.insert(rex_core::tuple![1i64]).unwrap();
        cat.register(t);
        assert_eq!(cat.append("t", vec![rex_core::tuple![2i64]]).unwrap(), 1);
        assert_eq!(cat.get("t").unwrap().len(), 2);
        // One bad row rejects the whole batch and leaves the table as-is.
        let err = cat.append("t", vec![rex_core::tuple![3i64], rex_core::tuple!["x"]]);
        assert!(err.is_err());
        assert_eq!(cat.get("t").unwrap().len(), 2);
        assert!(cat.append("missing", vec![]).is_err());
    }

    #[test]
    fn register_lookup_drop() {
        let cat = Catalog::new();
        let t = StoredTable::new("Edges", Schema::of(&[("a", DataType::Int)]), vec![0]);
        cat.register(t);
        assert!(cat.contains("edges"));
        assert!(cat.get("EDGES").is_ok());
        assert_eq!(cat.table_names(), vec!["edges".to_string()]);
        assert!(cat.drop_table("edges").is_ok());
        assert!(cat.get("edges").is_err());
        let err = cat.drop_table("edges").unwrap_err();
        assert!(err.to_string().contains("unknown table"));
    }

    #[test]
    fn apply_delta_inserts_and_removes_by_signed_multiplicity() {
        let cat = Catalog::new();
        let mut t = StoredTable::new("t", Schema::of(&[("a", DataType::Int)]), vec![0]);
        t.load(vec![rex_core::tuple![1i64], rex_core::tuple![1i64], rex_core::tuple![2i64]])
            .unwrap();
        cat.register(t);
        let (ins, rem) = cat
            .apply_delta(
                "t",
                vec![
                    (rex_core::tuple![1i64], -1),
                    (rex_core::tuple![3i64], 2),
                    (rex_core::tuple![4i64], 0),
                ],
            )
            .unwrap();
        assert_eq!((ins, rem), (2, 1));
        let mut rows = cat.get("t").unwrap().rows().to_vec();
        rows.sort_unstable();
        assert_eq!(
            rows,
            vec![
                rex_core::tuple![1i64],
                rex_core::tuple![2i64],
                rex_core::tuple![3i64],
                rex_core::tuple![3i64]
            ]
        );
        // Removing more copies than stored names the divergence — and the
        // failure is atomic: neither the removal nor the piggy-backing
        // insert touches the table, so a retry cannot compound damage.
        let err = cat
            .apply_delta("t", vec![(rex_core::tuple![2i64], -5), (rex_core::tuple![9i64], 1)])
            .unwrap_err();
        assert!(err.to_string().contains("diverged"), "{err}");
        let mut after = cat.get("t").unwrap().rows().to_vec();
        after.sort_unstable();
        assert_eq!(after, rows, "failed delta left the table untouched");
        assert!(cat.apply_delta("missing", vec![]).is_err());
    }

    #[test]
    fn snapshots_are_isolated_from_every_mutation_path() {
        let cat = Catalog::new();
        let mut t = StoredTable::new("t", Schema::of(&[("a", DataType::Int)]), vec![0]);
        t.load(vec![rex_core::tuple![1i64], rex_core::tuple![2i64]]).unwrap();
        cat.register(t);
        let snap = cat.snapshot();
        // Every mutation path on the live catalog copies-on-write.
        cat.append("t", vec![rex_core::tuple![3i64]]).unwrap();
        cat.remove("t", &[rex_core::tuple![1i64]]).unwrap();
        cat.apply_delta("t", vec![(rex_core::tuple![4i64], 2)]).unwrap();
        cat.replace_rows("t", vec![rex_core::tuple![9i64]]).unwrap();
        cat.register(StoredTable::new("u", Schema::of(&[("b", DataType::Int)]), vec![0]));
        cat.drop_table("t").unwrap();
        // The snapshot still serves exactly what it captured.
        assert_eq!(
            snap.get("t").unwrap().rows(),
            &[rex_core::tuple![1i64], rex_core::tuple![2i64]]
        );
        assert!(!snap.contains("u"));
        // And the snapshot is itself mutable without touching the live
        // catalog (each version owns its map of Arc'd tables).
        snap.append("t", vec![rex_core::tuple![7i64]]).unwrap();
        assert!(!cat.contains("t"));
    }

    #[test]
    fn failed_apply_delta_leaves_live_catalog_and_published_snapshot_untouched() {
        // The atomicity contract under snapshotting: a divergent delta
        // arriving mid-publish (a snapshot is already out, the writer is
        // applying the next version) must fail *before* any mutation, so
        // both the published snapshot and the writer's catalog keep
        // serving consistent contents — including the delta's insert
        // half, which must not land when the removal half is refused.
        let cat = Catalog::new();
        let mut t = StoredTable::new("t", Schema::of(&[("a", DataType::Int)]), vec![0]);
        t.load(vec![rex_core::tuple![1i64], rex_core::tuple![2i64]]).unwrap();
        cat.register(t);
        let published = cat.snapshot();
        // Divergent: asks to remove a row the table holds zero copies of,
        // piggy-backing an insert that must not survive the failure.
        let err = cat
            .apply_delta("t", vec![(rex_core::tuple![5i64], 1), (rex_core::tuple![42i64], -1)])
            .unwrap_err();
        assert!(err.to_string().contains("diverged"), "{err}");
        let expect = [rex_core::tuple![1i64], rex_core::tuple![2i64]];
        assert_eq!(cat.get("t").unwrap().rows(), &expect, "writer copy untouched");
        assert_eq!(published.get("t").unwrap().rows(), &expect, "published snapshot untouched");
        // A valid retry then applies cleanly to the writer's copy only.
        cat.apply_delta("t", vec![(rex_core::tuple![5i64], 1), (rex_core::tuple![1i64], -1)])
            .unwrap();
        assert_eq!(cat.get("t").unwrap().rows(), &[rex_core::tuple![2i64], rex_core::tuple![5i64]]);
        assert_eq!(published.get("t").unwrap().rows(), &expect);
    }

    #[test]
    fn remove_validates_whole_batch_before_mutating() {
        let cat = Catalog::new();
        let mut t = StoredTable::new("t", Schema::of(&[("a", DataType::Int)]), vec![0]);
        t.load(vec![rex_core::tuple![1i64], rex_core::tuple![1i64], rex_core::tuple![2i64]])
            .unwrap();
        cat.register(t);
        // Deleting more copies than stored rejects the whole batch.
        let err = cat.remove("t", &[rex_core::tuple![2i64], rex_core::tuple![2i64]]);
        assert!(err.unwrap_err().to_string().contains("only 1 stored"));
        assert_eq!(cat.get("t").unwrap().len(), 3);
        // A schema-invalid row rejects the whole batch.
        assert!(cat.remove("t", &[rex_core::tuple![1i64], rex_core::tuple!["x"]]).is_err());
        assert_eq!(cat.get("t").unwrap().len(), 3);
        // A valid batch removes exactly one occurrence per row.
        assert_eq!(cat.remove("t", &[rex_core::tuple![1i64], rex_core::tuple![2i64]]).unwrap(), 2);
        assert_eq!(cat.get("t").unwrap().rows(), &[rex_core::tuple![1i64]]);
        assert!(cat.remove("missing", &[]).is_err());
    }
}
