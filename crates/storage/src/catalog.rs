//! The catalog: named tables shared by all workers of a simulated cluster.

use crate::table::StoredTable;
use parking_lot::RwLock;
use rex_core::error::{Result, RexError};
use std::collections::HashMap;
use std::sync::Arc;

/// A thread-safe catalog of stored tables.
#[derive(Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<HashMap<String, Arc<StoredTable>>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or replace) a table.
    pub fn register(&self, table: StoredTable) {
        self.inner
            .write()
            .insert(table.name().to_ascii_lowercase(), Arc::new(table));
    }

    /// Look up a table by name (case-insensitive).
    pub fn get(&self, name: &str) -> Result<Arc<StoredTable>> {
        self.inner
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| RexError::Storage(format!("unknown table: {name}")))
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().contains_key(&name.to_ascii_lowercase())
    }

    /// Drop a table; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        self.inner.write().remove(&name.to_ascii_lowercase()).is_some()
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;

    #[test]
    fn register_lookup_drop() {
        let cat = Catalog::new();
        let t = StoredTable::new("Edges", Schema::of(&[("a", DataType::Int)]), vec![0]);
        cat.register(t);
        assert!(cat.contains("edges"));
        assert!(cat.get("EDGES").is_ok());
        assert_eq!(cat.table_names(), vec!["edges".to_string()]);
        assert!(cat.drop_table("edges"));
        assert!(cat.get("edges").is_err());
        assert!(!cat.drop_table("edges"));
    }
}
