//! The catalog: named tables shared by all workers of a simulated cluster.

use crate::table::StoredTable;
use rex_core::error::{Result, RexError};
use rex_core::tuple::Tuple;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::RwLock;

/// A thread-safe catalog of stored tables.
#[derive(Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<HashMap<String, Arc<StoredTable>>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or replace) a table.
    pub fn register(&self, table: StoredTable) {
        self.inner.write().unwrap().insert(table.name().to_ascii_lowercase(), Arc::new(table));
    }

    /// Look up a table by name (case-insensitive).
    pub fn get(&self, name: &str) -> Result<Arc<StoredTable>> {
        self.inner
            .read()
            .unwrap()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| RexError::Storage(format!("unknown table: {name}")))
    }

    /// Append rows to an existing table in place, validating every row
    /// against the schema *before* mutating so a bad batch leaves the
    /// table untouched. Returns the number of rows appended.
    ///
    /// The stored table is copy-on-write: if no query currently holds a
    /// snapshot of it, the append mutates in place (no full-table copy).
    pub fn append(&self, name: &str, rows: Vec<Tuple>) -> Result<usize> {
        let mut map = self.inner.write().unwrap();
        let entry = map
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| RexError::Storage(format!("unknown table: {name}")))?;
        for r in &rows {
            entry.schema().check(r)?;
        }
        let n = rows.len();
        Arc::make_mut(entry).load_unchecked(rows);
        Ok(n)
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().unwrap().contains_key(&name.to_ascii_lowercase())
    }

    /// Drop a table; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        self.inner.write().unwrap().remove(&name.to_ascii_lowercase()).is_some()
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().unwrap().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;

    #[test]
    fn append_validates_whole_batch_before_mutating() {
        let cat = Catalog::new();
        let mut t = StoredTable::new("t", Schema::of(&[("a", DataType::Int)]), vec![0]);
        t.insert(rex_core::tuple![1i64]).unwrap();
        cat.register(t);
        assert_eq!(cat.append("t", vec![rex_core::tuple![2i64]]).unwrap(), 1);
        assert_eq!(cat.get("t").unwrap().len(), 2);
        // One bad row rejects the whole batch and leaves the table as-is.
        let err = cat.append("t", vec![rex_core::tuple![3i64], rex_core::tuple!["x"]]);
        assert!(err.is_err());
        assert_eq!(cat.get("t").unwrap().len(), 2);
        assert!(cat.append("missing", vec![]).is_err());
    }

    #[test]
    fn register_lookup_drop() {
        let cat = Catalog::new();
        let t = StoredTable::new("Edges", Schema::of(&[("a", DataType::Int)]), vec![0]);
        cat.register(t);
        assert!(cat.contains("edges"));
        assert!(cat.get("EDGES").is_ok());
        assert_eq!(cat.table_names(), vec!["edges".to_string()]);
        assert!(cat.drop_table("edges"));
        assert!(cat.get("edges").is_err());
        assert!(!cat.drop_table("edges"));
    }
}
