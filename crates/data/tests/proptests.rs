//! Property-based tests on the dataset generators' invariants.

use proptest::prelude::*;
use rex_data::graph::{generate_graph, GraphSpec};
use rex_data::lineitem::generate_lineitem;
use rex_data::points::{enlarge, generate_points, PointSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn graph_edges_are_valid_and_unique(
        n in 2usize..400,
        m in 1usize..8,
        seed in any::<u64>(),
    ) {
        let g = generate_graph(GraphSpec {
            n_vertices: n,
            edges_per_vertex: m,
            seed,
            random_edge_fraction: 0.1, locality_window: 0
        });
        prop_assert_eq!(g.n_vertices, n.max(2));
        let mut seen = std::collections::HashSet::new();
        for &(s, t) in &g.edges {
            prop_assert!(s != t);
            prop_assert!((s as usize) < g.n_vertices);
            prop_assert!((t as usize) < g.n_vertices);
            prop_assert!(seen.insert((s, t)));
        }
    }

    #[test]
    fn graph_generation_is_pure(n in 2usize..200, seed in any::<u64>()) {
        let spec = GraphSpec { n_vertices: n, edges_per_vertex: 3, seed, random_edge_fraction: 0.05, locality_window: 0 };
        prop_assert_eq!(generate_graph(spec), generate_graph(spec));
    }

    #[test]
    fn points_count_and_determinism(n in 0usize..1000, k in 1usize..10, seed in any::<u64>()) {
        let spec = PointSpec { n_points: n, n_clusters: k, stddev: 1.0, seed };
        let a = generate_points(spec);
        prop_assert_eq!(a.len(), n);
        prop_assert_eq!(generate_points(spec), a);
    }

    #[test]
    fn enlarge_scales_exactly(n in 1usize..50, factor in 1usize..12, seed in any::<u64>()) {
        let base = generate_points(PointSpec { n_points: n, n_clusters: 2, stddev: 1.0, seed });
        let big = enlarge(&base, factor, 0.01, seed ^ 1);
        prop_assert_eq!(big.len(), n * factor);
        // Every original point survives at stride `factor`.
        for (i, p) in base.iter().enumerate() {
            prop_assert_eq!(&big[i * factor], p);
        }
    }

    #[test]
    fn lineitem_rows_in_domain(n in 0usize..2000, seed in any::<u64>()) {
        let rows = generate_lineitem(n, seed);
        prop_assert_eq!(rows.len(), n);
        for r in &rows {
            prop_assert!((1..=7).contains(&r.linenumber));
            prop_assert!(r.tax >= 0.0 && r.tax <= 0.08 + 1e-9);
        }
    }
}
