//! Randomized tests on the dataset generators' invariants, swept over a
//! deterministic seed set so every run checks the same cases.

use rex_data::graph::{generate_graph, GraphSpec};
use rex_data::lineitem::generate_lineitem;
use rex_data::points::{enlarge, generate_points, PointSpec};
use rex_data::rng::StdRng;

#[test]
fn graph_edges_are_valid_and_unique() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for _ in 0..32 {
        let n = rng.gen_range(2usize..400);
        let m = rng.gen_range(1usize..8);
        let seed = rng.next_u64();
        let g = generate_graph(GraphSpec {
            n_vertices: n,
            edges_per_vertex: m,
            seed,
            random_edge_fraction: 0.1,
            locality_window: 0,
        });
        assert_eq!(g.n_vertices, n.max(2));
        let mut seen = std::collections::HashSet::new();
        for &(s, t) in &g.edges {
            assert!(s != t, "self loop at {s} (n={n} m={m} seed={seed})");
            assert!((s as usize) < g.n_vertices);
            assert!((t as usize) < g.n_vertices);
            assert!(seen.insert((s, t)), "duplicate edge ({s},{t})");
        }
    }
}

#[test]
fn graph_generation_is_pure() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for _ in 0..32 {
        let n = rng.gen_range(2usize..200);
        let seed = rng.next_u64();
        let spec = GraphSpec {
            n_vertices: n,
            edges_per_vertex: 3,
            seed,
            random_edge_fraction: 0.05,
            locality_window: 0,
        };
        assert_eq!(generate_graph(spec), generate_graph(spec));
    }
}

#[test]
fn points_count_and_determinism() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for _ in 0..32 {
        let n = rng.gen_range(0usize..1000);
        let k = rng.gen_range(1usize..10);
        let seed = rng.next_u64();
        let spec = PointSpec { n_points: n, n_clusters: k, stddev: 1.0, seed };
        let a = generate_points(spec);
        assert_eq!(a.len(), n);
        assert_eq!(generate_points(spec), a);
    }
}

#[test]
fn enlarge_scales_exactly() {
    let mut rng = StdRng::seed_from_u64(0xD00D);
    for _ in 0..32 {
        let n = rng.gen_range(1usize..50);
        let factor = rng.gen_range(1usize..12);
        let seed = rng.next_u64();
        let base = generate_points(PointSpec { n_points: n, n_clusters: 2, stddev: 1.0, seed });
        let big = enlarge(&base, factor, 0.01, seed ^ 1);
        assert_eq!(big.len(), n * factor);
        // Every original point survives at stride `factor`.
        for (i, p) in base.iter().enumerate() {
            assert_eq!(&big[i * factor], p);
        }
    }
}

#[test]
fn lineitem_rows_in_domain() {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    for _ in 0..32 {
        let n = rng.gen_range(0usize..2000);
        let seed = rng.next_u64();
        let rows = generate_lineitem(n, seed);
        assert_eq!(rows.len(), n);
        for r in &rows {
            assert!((1..=7).contains(&r.linenumber));
            assert!(r.tax >= 0.0 && r.tax <= 0.08 + 1e-9);
        }
    }
}
