//! A small, dependency-free seeded PRNG for the dataset generators.
//!
//! The generators only need reproducibility — identical seed, identical
//! dataset — not cryptographic quality. This is SplitMix64 (Steele,
//! Lea & Flood, OOPSLA 2014): a single 64-bit state, full period,
//! passes BigCrush, and trivially portable. The API mirrors the subset
//! of `rand` the generators use (`seed_from_u64`, `gen_range`) so the
//! generator code reads conventionally.

use std::ops::{Range, RangeInclusive};

/// Seeded pseudo-random generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Deterministic generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform sample from the range (half-open or inclusive).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform f64 in [0, 1) with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draw a uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        let span =
            self.end.checked_sub(self.start).filter(|&s| s > 0).expect("gen_range: empty range");
        self.start + (rng.next_u64() % span as u64) as usize
    }
}

impl SampleRange for RangeInclusive<i64> {
    type Output = i64;
    fn sample(self, rng: &mut StdRng) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let span = (hi - lo) as u64 + 1;
        lo + (rng.next_u64() % span) as i64
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
