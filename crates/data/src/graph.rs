//! Synthetic directed graphs with heavy-tailed degree distributions.
//!
//! The paper's graph experiments use the DBPedia article-link graph (48M
//! edges, 3.3M vertices) and a Twitter follower graph (1.4B edges, 41M
//! vertices). We substitute seeded preferential-attachment graphs whose
//! *shape* — a power-law out-degree distribution with a dense core and a
//! long tail, plus a small diameter — drives the same delta-convergence
//! behaviour in PageRank and shortest paths.

use crate::rng::StdRng;
use rex_core::tuple::{Schema, Tuple};
use rex_core::value::{DataType, Value};
use std::collections::BTreeSet;

/// A directed graph as an edge list over `0..n_vertices` vertex ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// Number of vertices (vertex ids are `0..n_vertices`).
    pub n_vertices: usize,
    /// Directed edges `(src, dst)`, deduplicated, sorted.
    pub edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.n_vertices];
        for &(s, _) in &self.edges {
            d[s as usize] += 1;
        }
        d
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.n_vertices];
        for &(_, t) in &self.edges {
            d[t as usize] += 1;
        }
        d
    }

    /// Adjacency lists (out-neighbors), index = vertex id.
    pub fn adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.n_vertices];
        for &(s, t) in &self.edges {
            adj[s as usize].push(t);
        }
        adj
    }

    /// The schema of the edge relation: `graph(srcId INTEGER, destId INTEGER)`.
    pub fn schema() -> Schema {
        Schema::of(&[("srcId", DataType::Int), ("destId", DataType::Int)])
    }

    /// The edge relation as engine tuples `(srcId, destId)`, the layout the
    /// paper's Figure 1 plan scans.
    pub fn edge_tuples(&self) -> Vec<Tuple> {
        self.edges
            .iter()
            .map(|&(s, t)| Tuple::new(vec![Value::Int(s as i64), Value::Int(t as i64)]))
            .collect()
    }

    /// Vertices with at least one outgoing edge.
    pub fn source_vertices(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.edges.iter().map(|&(s, _)| s).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Parameters for the preferential-attachment generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphSpec {
    /// Target number of vertices.
    pub n_vertices: usize,
    /// Out-edges attached per new vertex (mean out-degree).
    pub edges_per_vertex: usize,
    /// RNG seed: identical specs produce identical graphs.
    pub seed: u64,
    /// Extra uniformly-random "long range" edges as a fraction of the
    /// preferential edges; keeps the diameter small like real web graphs.
    pub random_edge_fraction: f64,
    /// When non-zero, preferential attachment is biased toward the most
    /// recent `locality_window` target entries, producing longer directed
    /// paths (larger BFS depth) while keeping the degree distribution
    /// heavy-tailed. Real social graphs show this temporal locality.
    pub locality_window: usize,
}

impl GraphSpec {
    /// A small default suitable for tests.
    pub fn small() -> GraphSpec {
        GraphSpec {
            n_vertices: 200,
            edges_per_vertex: 4,
            seed: 7,
            random_edge_fraction: 0.1,
            locality_window: 0,
        }
    }

    /// The "DBPedia" stand-in: mean out-degree ~14 like the paper's
    /// 48M-edges/3.3M-vertices graph, scaled down.
    pub fn dbpedia(n_vertices: usize, seed: u64) -> GraphSpec {
        GraphSpec {
            n_vertices,
            edges_per_vertex: 14,
            seed,
            random_edge_fraction: 0.05,
            locality_window: 0,
        }
    }

    /// The "Twitter" stand-in: denser core (mean degree ~34, like
    /// 1.4B/41M), heavier tail.
    pub fn twitter(n_vertices: usize, seed: u64) -> GraphSpec {
        GraphSpec {
            n_vertices,
            edges_per_vertex: 34,
            seed,
            random_edge_fraction: 0.0,
            // Temporal locality stretches the BFS depth to ~10-15 hops,
            // like the paper's Twitter crawl.
            locality_window: n_vertices / 6,
        }
    }
}

/// Generate a directed preferential-attachment (Barabási–Albert-style)
/// graph. New vertices attach `edges_per_vertex` out-edges to existing
/// vertices with probability proportional to in-degree + 1, producing a
/// power-law in-degree tail; a sprinkle of uniform edges bounds the
/// diameter.
pub fn generate_graph(spec: GraphSpec) -> Graph {
    let n = spec.n_vertices.max(2);
    let m = spec.edges_per_vertex.max(1);
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // `targets` is a repeated-node list: sampling uniformly from it is
    // sampling proportional to (in-degree + 1).
    let mut targets: Vec<u32> = (0..n.min(m + 1) as u32).collect();
    let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();

    // Seed clique among the first min(n, m+1) vertices.
    let seed_n = n.min(m + 1) as u32;
    for i in 0..seed_n {
        let j = (i + 1) % seed_n;
        if i != j {
            edges.insert((i, j));
        }
    }

    for v in seed_n as usize..n {
        let v = v as u32;
        let mut attached = 0usize;
        let mut attempts = 0usize;
        while attached < m && attempts < m * 20 {
            attempts += 1;
            let lo = if spec.locality_window > 0 {
                targets.len().saturating_sub(spec.locality_window * m)
            } else {
                0
            };
            let t = targets[rng.gen_range(lo..targets.len())];
            if t != v && edges.insert((v, t)) {
                targets.push(t);
                attached += 1;
            }
        }
        targets.push(v);
    }

    // Long-range uniform edges.
    let n_random = (edges.len() as f64 * spec.random_edge_fraction) as usize;
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < n_random && attempts < n_random * 20 {
        attempts += 1;
        let s = rng.gen_range(0..n) as u32;
        let t = rng.gen_range(0..n) as u32;
        if s != t && edges.insert((s, t)) {
            added += 1;
        }
    }

    Graph { n_vertices: n, edges: edges.into_iter().collect() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = generate_graph(GraphSpec::small());
        let b = generate_graph(GraphSpec::small());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_graph(GraphSpec { seed: 1, ..GraphSpec::small() });
        let b = generate_graph(GraphSpec { seed: 2, ..GraphSpec::small() });
        assert_ne!(a.edges, b.edges);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = generate_graph(GraphSpec::small());
        let mut seen = BTreeSet::new();
        for &(s, t) in &g.edges {
            assert_ne!(s, t, "self loop at {s}");
            assert!(seen.insert((s, t)), "duplicate edge ({s},{t})");
            assert!((s as usize) < g.n_vertices);
            assert!((t as usize) < g.n_vertices);
        }
    }

    #[test]
    fn mean_out_degree_near_spec() {
        let spec = GraphSpec {
            n_vertices: 2000,
            edges_per_vertex: 8,
            seed: 3,
            random_edge_fraction: 0.0,
            locality_window: 0,
        };
        let g = generate_graph(spec);
        let mean = g.n_edges() as f64 / g.n_vertices as f64;
        assert!(mean > 6.0 && mean < 10.0, "mean degree {mean}");
    }

    #[test]
    fn in_degree_is_heavy_tailed() {
        let g = generate_graph(GraphSpec {
            n_vertices: 3000,
            edges_per_vertex: 5,
            seed: 11,
            random_edge_fraction: 0.0,
            locality_window: 0,
        });
        let mut d = g.in_degrees();
        d.sort_unstable_by(|a, b| b.cmp(a));
        // Top 1% of vertices should hold a disproportionate share of edges.
        let top: u64 = d.iter().take(g.n_vertices / 100).map(|&x| x as u64).sum();
        let total: u64 = d.iter().map(|&x| x as u64).sum();
        assert!(
            top as f64 / total as f64 > 0.08,
            "top-1% share {} too uniform",
            top as f64 / total as f64
        );
    }

    #[test]
    fn edge_tuples_match_edges() {
        let g = generate_graph(GraphSpec {
            n_vertices: 10,
            edges_per_vertex: 2,
            seed: 5,
            random_edge_fraction: 0.0,
            locality_window: 0,
        });
        let ts = g.edge_tuples();
        assert_eq!(ts.len(), g.n_edges());
        assert_eq!(ts[0].get(0).as_int().unwrap() as u32, g.edges[0].0);
        assert_eq!(ts[0].get(1).as_int().unwrap() as u32, g.edges[0].1);
        Graph::schema().check(&ts[0]).unwrap();
    }

    #[test]
    fn degrees_sum_to_edge_count() {
        let g = generate_graph(GraphSpec::small());
        let out: u64 = g.out_degrees().iter().map(|&x| x as u64).sum();
        let inn: u64 = g.in_degrees().iter().map(|&x| x as u64).sum();
        assert_eq!(out, g.n_edges() as u64);
        assert_eq!(inn, g.n_edges() as u64);
    }

    #[test]
    fn adjacency_consistent_with_edges() {
        let g = generate_graph(GraphSpec::small());
        let adj = g.adjacency();
        let total: usize = adj.iter().map(Vec::len).sum();
        assert_eq!(total, g.n_edges());
        for &(s, t) in g.edges.iter().take(20) {
            assert!(adj[s as usize].contains(&t));
        }
    }

    #[test]
    fn presets_scale_density() {
        let d = generate_graph(GraphSpec::dbpedia(500, 1));
        let t = generate_graph(GraphSpec::twitter(500, 1));
        assert!(t.n_edges() > d.n_edges(), "twitter should be denser");
    }
}
