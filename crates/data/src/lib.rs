//! # rex-data
//!
//! Seeded synthetic dataset generators standing in for the paper's
//! proprietary/large datasets (see `DESIGN.md` "Substitutions"):
//!
//! * [`graph`] — preferential-attachment directed graphs ("DBPedia",
//!   "Twitter" presets) for PageRank and shortest paths;
//! * [`points`] — Gaussian-mixture 2-D points ("geodata") for K-means,
//!   including the paper's enlargement procedure;
//! * [`lineitem`] — a TPC-H-like `lineitem` relation for the Figure 4
//!   OLAP/UDF-overhead experiment.
//!
//! All generators are deterministic in their seed, so experiments are
//! exactly reproducible.

pub mod graph;
pub mod lineitem;
pub mod points;
pub mod rng;

pub use graph::{generate_graph, Graph, GraphSpec};
pub use lineitem::{generate_lineitem, lineitem_tuples, LineItem};
pub use points::{enlarge, generate_points, point_tuples, Point, PointSpec};
