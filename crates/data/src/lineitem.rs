//! Deterministic TPC-H-like `lineitem` generator.
//!
//! The paper's Figure 4 runs `SELECT sum(tax), count(*) FROM lineitem WHERE
//! linenumber > 1` over a 10 GB TPC-H `lineitem` (60M rows). The query only
//! touches `linenumber` and `tax`, so the generator reproduces TPC-H's
//! column distributions for those (linenumber uniform in 1..=7 per the
//! order-lines-per-order rule; tax uniform in {0.00,...,0.08}) plus enough
//! companion columns (orderkey, quantity, extendedprice, discount) to make
//! the relation realistic for other queries.

use crate::rng::StdRng;
use rex_core::tuple::{Schema, Tuple};
use rex_core::value::{DataType, Value};

/// One generated lineitem row.
#[derive(Debug, Clone, PartialEq)]
pub struct LineItem {
    /// Order this line belongs to.
    pub orderkey: i64,
    /// Line number within the order, 1..=7.
    pub linenumber: i64,
    /// Quantity, 1..=50.
    pub quantity: i64,
    /// Extended price.
    pub extendedprice: f64,
    /// Discount, 0.00..=0.10.
    pub discount: f64,
    /// Tax, 0.00..=0.08 in cent steps (TPC-H rule).
    pub tax: f64,
}

/// The lineitem schema used across the workspace.
pub fn schema() -> Schema {
    Schema::of(&[
        ("orderkey", DataType::Int),
        ("linenumber", DataType::Int),
        ("quantity", DataType::Int),
        ("extendedprice", DataType::Double),
        ("discount", DataType::Double),
        ("tax", DataType::Double),
    ])
}

/// Column index of `linenumber` in [`schema`].
pub const COL_LINENUMBER: usize = 1;
/// Column index of `tax` in [`schema`].
pub const COL_TAX: usize = 5;

/// Generate `n` rows deterministically from `seed`. Rows are grouped into
/// orders of 1–7 lines like TPC-H.
pub fn generate_lineitem(n: usize, seed: u64) -> Vec<LineItem> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut orderkey = 1i64;
    while rows.len() < n {
        let lines = rng.gen_range(1..=7);
        for ln in 1..=lines {
            if rows.len() >= n {
                break;
            }
            let quantity = rng.gen_range(1..=50);
            rows.push(LineItem {
                orderkey,
                linenumber: ln,
                quantity,
                extendedprice: quantity as f64 * rng.gen_range(900.0..1100.0),
                discount: rng.gen_range(0..=10) as f64 / 100.0,
                tax: rng.gen_range(0..=8) as f64 / 100.0,
            });
        }
        orderkey += 1;
    }
    rows
}

/// Rows as engine tuples matching [`schema`].
pub fn lineitem_tuples(rows: &[LineItem]) -> Vec<Tuple> {
    rows.iter()
        .map(|r| {
            Tuple::new(vec![
                Value::Int(r.orderkey),
                Value::Int(r.linenumber),
                Value::Int(r.quantity),
                Value::Double(r.extendedprice),
                Value::Double(r.discount),
                Value::Double(r.tax),
            ])
        })
        .collect()
}

/// The reference answer for the Figure 4 query: `(sum(tax), count(*))` over
/// rows with `linenumber > 1`. Benches and tests cross-check every engine
/// against this.
pub fn reference_fig4_answer(rows: &[LineItem]) -> (f64, i64) {
    let mut sum = 0.0;
    let mut count = 0i64;
    for r in rows {
        if r.linenumber > 1 {
            sum += r.tax;
            count += 1;
        }
    }
    (sum, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(generate_lineitem(100, 7), generate_lineitem(100, 7));
    }

    #[test]
    fn row_count_is_exact() {
        assert_eq!(generate_lineitem(1234, 1).len(), 1234);
    }

    #[test]
    fn columns_respect_tpch_domains() {
        for r in generate_lineitem(2000, 2) {
            assert!((1..=7).contains(&r.linenumber));
            assert!((1..=50).contains(&r.quantity));
            assert!((0.0..=0.08 + 1e-9).contains(&r.tax));
            assert!((0.0..=0.10 + 1e-9).contains(&r.discount));
            assert!(r.extendedprice > 0.0);
        }
    }

    #[test]
    fn orders_have_consecutive_linenumbers() {
        let rows = generate_lineitem(500, 3);
        let mut prev_order = 0;
        let mut prev_line = 0;
        for r in &rows {
            if r.orderkey == prev_order {
                assert_eq!(r.linenumber, prev_line + 1);
            } else {
                assert_eq!(r.linenumber, 1);
                assert!(r.orderkey > prev_order);
            }
            prev_order = r.orderkey;
            prev_line = r.linenumber;
        }
    }

    #[test]
    fn tuples_match_schema() {
        let rows = generate_lineitem(5, 4);
        let ts = lineitem_tuples(&rows);
        schema().check(&ts[0]).unwrap();
        assert_eq!(ts[0].get(COL_LINENUMBER).as_int(), Some(rows[0].linenumber));
        assert_eq!(ts[0].get(COL_TAX).as_double(), Some(rows[0].tax));
    }

    #[test]
    fn reference_answer_counts_filtered_rows() {
        let rows = vec![
            LineItem {
                orderkey: 1,
                linenumber: 1,
                quantity: 1,
                extendedprice: 1.0,
                discount: 0.0,
                tax: 0.05,
            },
            LineItem {
                orderkey: 1,
                linenumber: 2,
                quantity: 1,
                extendedprice: 1.0,
                discount: 0.0,
                tax: 0.03,
            },
            LineItem {
                orderkey: 1,
                linenumber: 3,
                quantity: 1,
                extendedprice: 1.0,
                discount: 0.0,
                tax: 0.02,
            },
        ];
        let (s, c) = reference_fig4_answer(&rows);
        assert_eq!(c, 2);
        assert!((s - 0.05).abs() < 1e-12);
    }
}
