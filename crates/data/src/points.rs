//! Gaussian-mixture 2-D point generator for the K-means experiments.
//!
//! Stands in for the paper's DBPedia geo dataset (328K article coordinates,
//! enlarged to 382M points by sampling around each original coordinate).
//! K-means' convergence trace — how many points switch centroids each
//! iteration — depends on the cluster structure of the data, which a
//! mixture of Gaussians reproduces. Like the paper's enlargement procedure,
//! [`enlarge`] jitters extra points around existing ones.

use crate::rng::StdRng;
use rex_core::tuple::{Schema, Tuple};
use rex_core::value::{DataType, Value};

/// A 2-D point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Longitude-like coordinate.
    pub x: f64,
    /// Latitude-like coordinate.
    pub y: f64,
}

impl Point {
    /// Euclidean distance to another point.
    pub fn dist(&self, o: &Point) -> f64 {
        ((self.x - o.x).powi(2) + (self.y - o.y).powi(2)).sqrt()
    }
}

/// Parameters for the mixture generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointSpec {
    /// Total number of points.
    pub n_points: usize,
    /// Number of mixture components (true underlying clusters).
    pub n_clusters: usize,
    /// Standard deviation of each component.
    pub stddev: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PointSpec {
    /// A small default suitable for tests.
    pub fn small() -> PointSpec {
        PointSpec { n_points: 500, n_clusters: 5, stddev: 2.0, seed: 13 }
    }

    /// The "geodata" stand-in: clusters spread over a world-sized
    /// coordinate box, like cities on a map.
    pub fn geodata(n_points: usize, seed: u64) -> PointSpec {
        PointSpec { n_points, n_clusters: 24, stddev: 3.0, seed }
    }
}

/// Box–Muller standard normal sample.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generate points from a seeded Gaussian mixture. Component means are
/// uniform in a [-180,180]×[-90,90] box (longitude/latitude ranges);
/// component weights are uniform.
pub fn generate_points(spec: PointSpec) -> Vec<Point> {
    let k = spec.n_clusters.max(1);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let means: Vec<Point> = (0..k)
        .map(|_| Point { x: rng.gen_range(-180.0..180.0), y: rng.gen_range(-90.0..90.0) })
        .collect();
    (0..spec.n_points)
        .map(|_| {
            let c = means[rng.gen_range(0..k)];
            Point {
                x: c.x + normal(&mut rng) * spec.stddev,
                y: c.y + normal(&mut rng) * spec.stddev,
            }
        })
        .collect()
}

/// Enlarge a dataset by simulating extra points around each original
/// coordinate, the paper's procedure for scaling the geo dataset up to 382M
/// tuples ("we also enlarge by simulating up to 1000 additional points
/// around each original coordinate").
pub fn enlarge(points: &[Point], factor: usize, jitter: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(points.len() * factor.max(1));
    for p in points {
        out.push(*p);
        for _ in 1..factor.max(1) {
            out.push(Point {
                x: p.x + normal(&mut rng) * jitter,
                y: p.y + normal(&mut rng) * jitter,
            });
        }
    }
    out
}

/// The schema of the point relation: `geodata(nid INTEGER, lng DOUBLE, lat
/// DOUBLE)`.
pub fn schema() -> Schema {
    Schema::of(&[("nid", DataType::Int), ("lng", DataType::Double), ("lat", DataType::Double)])
}

/// Points as engine tuples `(nid, lng, lat)`.
pub fn point_tuples(points: &[Point]) -> Vec<Tuple> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            Tuple::new(vec![Value::Int(i as i64), Value::Double(p.x), Value::Double(p.y)])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = generate_points(PointSpec::small());
        let b = generate_points(PointSpec::small());
        assert_eq!(a, b);
    }

    #[test]
    fn produces_requested_count() {
        let p = generate_points(PointSpec { n_points: 321, ..PointSpec::small() });
        assert_eq!(p.len(), 321);
    }

    #[test]
    fn points_cluster_around_few_centers() {
        // With tiny stddev, average nearest-neighbor distance within the
        // data is far below the distance between cluster means.
        let p = generate_points(PointSpec { n_points: 400, n_clusters: 4, stddev: 0.1, seed: 5 });
        // Every point should be within 1.0 of at least 50 other points
        // (its own cluster's population ~100).
        let close = p
            .iter()
            .map(|a| p.iter().filter(|b| a.dist(b) < 1.0).count())
            .filter(|&c| c >= 50)
            .count();
        assert!(close as f64 / p.len() as f64 > 0.9, "only {close} points in dense clusters");
    }

    #[test]
    fn enlarge_multiplies_and_jitters() {
        let base = generate_points(PointSpec { n_points: 20, ..PointSpec::small() });
        let big = enlarge(&base, 10, 0.01, 99);
        assert_eq!(big.len(), 200);
        // Originals preserved at stride `factor`.
        assert_eq!(big[0], base[0]);
        assert_eq!(big[10], base[1]);
        // Jittered copies stay near their source.
        assert!(big[1].dist(&base[0]) < 0.2);
    }

    #[test]
    fn tuples_carry_ids_and_coordinates() {
        let p = generate_points(PointSpec { n_points: 3, ..PointSpec::small() });
        let ts = point_tuples(&p);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[2].get(0).as_int(), Some(2));
        assert_eq!(ts[1].get(1).as_double(), Some(p[1].x));
        schema().check(&ts[0]).unwrap();
    }

    #[test]
    fn dist_is_euclidean() {
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 3.0, y: 4.0 };
        assert_eq!(a.dist(&b), 5.0);
    }
}
