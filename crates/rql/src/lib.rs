//! # rex-rql
//!
//! The RQL language front-end (§3): a SQL dialect extended with
//!
//! * recursion — `WITH R (cols) AS (base) UNION [ALL] UNTIL FIXPOINT BY
//!   key (step)` — executed stratum-by-stratum on the REX engine;
//! * user-defined aggregators and delta handlers referenced by name, with
//!   table-valued destructuring `F(args).{a, b}` (Listings 1–3);
//! * seamless use of user code registered in the engine's
//!   [`Registry`](rex_core::udf::Registry) without DDL.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`resolve`] (names & types against a
//! schema catalog) → [`logical`] plan → [`lower`] to a physical
//! [`PlanGraph`](rex_core::exec::PlanGraph) runnable on the local or
//! cluster runtime.

pub mod ast;
pub mod lexer;
pub mod logical;
pub mod lower;
pub mod parser;
pub mod resolve;

pub use ast::{Query, Statement};
pub use logical::LogicalPlan;
pub use lower::compile;
pub use parser::parse;
pub use resolve::SchemaCatalog;
