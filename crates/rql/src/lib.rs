//! # rex-rql
//!
//! The RQL language front-end (§3): a SQL dialect extended with
//!
//! * recursion — `WITH R (cols) AS (base) UNION [ALL] UNTIL FIXPOINT BY
//!   key (step)` — executed stratum-by-stratum on the REX engine;
//! * user-defined aggregators and delta handlers referenced by name, with
//!   table-valued destructuring `F(args).{a, b}` (Listings 1–3);
//! * seamless use of user code registered in the engine's
//!   [`Registry`](rex_core::udf::Registry) without DDL.
//!
//! The relational surface is complete: `SELECT [DISTINCT] … [WHERE]
//! [GROUP BY] [HAVING] [ORDER BY … [LIMIT n [OFFSET m]]]` with
//! aggregates over arbitrary scalar expressions, plus `CREATE TABLE`,
//! `CREATE MATERIALIZED VIEW`, and `DROP` DDL. The authoritative
//! language reference is `docs/RQL.md` at the repository root.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`resolve`] (names & types against a
//! schema catalog) → [`logical`] plan → [`lower`] to a physical
//! [`PlanGraph`](rex_core::exec::PlanGraph) runnable on the local or
//! cluster runtime.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod logical;
pub mod lower;
pub mod parser;
pub mod provider;
pub mod resolve;

pub use ast::{Query, Statement};
pub use error::{RqlError, RqlStage};
pub use logical::LogicalPlan;
pub use lower::{compile, lower_parallel, lower_with, LowerOptions, TableProvider};
pub use parser::parse;
pub use provider::{CatalogProvider, PartitionProvider};
pub use resolve::SchemaCatalog;

/// Parse and plan RQL text into a [`LogicalPlan`], tagging failures with
/// the front-end stage ([`RqlStage::Parse`] vs [`RqlStage::Plan`]) so the
/// caller can `?`-convert them into engine errors without losing where
/// the query died.
pub fn plan_rql(
    src: &str,
    catalog: &SchemaCatalog,
    reg: &rex_core::udf::Registry,
) -> std::result::Result<LogicalPlan, RqlError> {
    let stmt = parser::parse(src).map_err(|e| RqlError::at(RqlStage::Parse, e))?;
    logical::plan(&stmt, catalog, reg).map_err(|e| RqlError::at(RqlStage::Plan, e))
}
