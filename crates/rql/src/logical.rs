//! Logical query plans and the AST → logical planner.
//!
//! The planner resolves a parsed [`Query`] against a [`SchemaCatalog`] and
//! the UDF/UDA [`Registry`] into a tree of [`LogicalPlan`] nodes. Two
//! special shapes are recognized:
//!
//! * **handler joins** (Listing 1's inner block): a block whose single
//!   projection is a destructured UDA call `H(args).{a, b}` over a
//!   two-table equi-join lowers to a join with the registered
//!   [`JoinHandler`](rex_core::handlers::JoinHandler) `H`;
//! * **recursion**: `WITH … UNION [ALL] UNTIL FIXPOINT BY k (…)` lowers to
//!   a [`LogicalPlan::Fixpoint`] whose step subplan reads the recursive
//!   relation through [`LogicalPlan::FixpointRef`].

use crate::ast::{AstExpr, Projection, Query, SelectBlock, Statement, TableRef};
use crate::resolve::{bin_op, projection_name, resolve_scalar, SchemaCatalog, Scope};
use rex_core::error::{Result, RexError};
use rex_core::expr::Expr;
use rex_core::tuple::{Field, Schema};
use rex_core::udf::Registry;
use rex_core::value::DataType;

/// One aggregate computation inside an [`LogicalPlan::Aggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// Registered aggregate / UDA name.
    pub func: String,
    /// Input columns projected into the handler.
    pub input_cols: Vec<usize>,
    /// Result type.
    pub return_type: DataType,
}

/// One `ORDER BY` key inside a [`LogicalPlan::Sort`].
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// The key expression, resolved over the sort input's row.
    pub expr: Expr,
    /// `true` for `DESC`.
    pub desc: bool,
}

/// A logical plan node. Every node knows its output schema.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Scan a stored table.
    Scan {
        /// Table name.
        table: String,
        /// Table schema.
        schema: Schema,
    },
    /// Reference to the enclosing recursive relation.
    FixpointRef {
        /// Recursive relation name.
        name: String,
        /// Declared schema.
        schema: Schema,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate over the input row.
        predicate: Expr,
    },
    /// Projection.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions.
        exprs: Vec<Expr>,
        /// Output schema.
        schema: Schema,
    },
    /// Equi-join (empty keys = cross join), optionally delegated to a user
    /// join delta handler.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Left key columns.
        left_key: Vec<usize>,
        /// Right key columns.
        right_key: Vec<usize>,
        /// Registered join handler, when this is a handler join.
        handler: Option<String>,
        /// Output schema (left ++ right, or the handler's declared fields).
        schema: Schema,
    },
    /// Group-by with aggregate calls; output = group cols ++ agg results.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping columns (input indices).
        group_cols: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggCall>,
        /// Post-aggregation projection (over group cols ++ agg results),
        /// when projections are expressions of aggregates.
        post: Option<Vec<Expr>>,
        /// Output schema (after `post`, when present).
        schema: Schema,
    },
    /// Recursive fixpoint.
    Fixpoint {
        /// Recursive relation name.
        name: String,
        /// `FIXPOINT BY` key columns within the declared schema.
        key_cols: Vec<usize>,
        /// Base-case plan.
        base: Box<LogicalPlan>,
        /// Recursive-step plan (contains a [`LogicalPlan::FixpointRef`]).
        step: Box<LogicalPlan>,
        /// Declared schema of the recursive relation.
        schema: Schema,
    },
    /// `ORDER BY`, optionally carrying a fused `LIMIT` (top-k) after the
    /// optimizer collapses a [`LogicalPlan::Limit`] directly above it.
    /// Ordering is total: ties resolve by full-tuple comparison, so the
    /// selected rows are identical on every engine. Schema = input schema.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
        /// Fused LIMIT (maximum rows), when present.
        fetch: Option<u64>,
        /// Fused OFFSET (rows skipped before the first kept row).
        offset: u64,
    },
    /// `LIMIT n [OFFSET m]`. Selection is deterministic: rows are taken in
    /// the input's ORDER BY order when one is directly beneath, in total
    /// tuple order otherwise. Schema = input schema.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows returned.
        fetch: u64,
        /// Rows skipped before the first returned row.
        offset: u64,
    },
}

impl LogicalPlan {
    /// This node's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::FixpointRef { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::Fixpoint { schema, .. } => schema,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Names of all stored tables this plan scans (deduplicated,
    /// lowercased, sorted) — the base relations a materialized view over
    /// this plan depends on.
    pub fn referenced_tables(&self) -> Vec<String> {
        fn walk(p: &LogicalPlan, out: &mut Vec<String>) {
            match p {
                LogicalPlan::Scan { table, .. } => out.push(table.to_ascii_lowercase()),
                LogicalPlan::FixpointRef { .. } => {}
                LogicalPlan::Filter { input, .. } => walk(input, out),
                LogicalPlan::Project { input, .. } => walk(input, out),
                LogicalPlan::Join { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
                LogicalPlan::Aggregate { input, .. } => walk(input, out),
                LogicalPlan::Sort { input, .. } | LogicalPlan::Limit { input, .. } => {
                    walk(input, out)
                }
                LogicalPlan::Fixpoint { base, step, .. } => {
                    walk(base, out);
                    walk(step, out);
                }
            }
        }
        let mut v = Vec::new();
        walk(self, &mut v);
        v.sort();
        v.dedup();
        v
    }

    /// Whether the plan contains a recursive fixpoint (such views fall
    /// back to full recomputation on maintenance).
    pub fn is_recursive(&self) -> bool {
        match self {
            LogicalPlan::Fixpoint { .. } | LogicalPlan::FixpointRef { .. } => true,
            LogicalPlan::Scan { .. } => false,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.is_recursive(),
            LogicalPlan::Join { left, right, .. } => left.is_recursive() || right.is_recursive(),
        }
    }

    /// Whether the plan contains an `ORDER BY` or `LIMIT` node anywhere.
    /// Such plans are *query-only*: a materialized view is an unordered
    /// relation, so the session rejects them as view definitions instead
    /// of letting the order silently evaporate on maintenance.
    pub fn has_order_or_limit(&self) -> bool {
        match self {
            LogicalPlan::Sort { .. } | LogicalPlan::Limit { .. } => true,
            LogicalPlan::Scan { .. } | LogicalPlan::FixpointRef { .. } => false,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. } => input.has_order_or_limit(),
            LogicalPlan::Join { left, right, .. } => {
                left.has_order_or_limit() || right.has_order_or_limit()
            }
            LogicalPlan::Fixpoint { base, step, .. } => {
                base.has_order_or_limit() || step.has_order_or_limit()
            }
        }
    }

    /// Render as an indented tree (EXPLAIN-style).
    pub fn explain(&self) -> String {
        fn walk(p: &LogicalPlan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match p {
                LogicalPlan::Scan { table, .. } => {
                    out.push_str(&format!("{pad}Scan {table}\n"));
                }
                LogicalPlan::FixpointRef { name, .. } => {
                    out.push_str(&format!("{pad}FixpointRef {name}\n"));
                }
                LogicalPlan::Filter { input, predicate } => {
                    out.push_str(&format!("{pad}Filter {predicate:?}\n"));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Project { input, exprs, .. } => {
                    out.push_str(&format!("{pad}Project ({} exprs)\n", exprs.len()));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Join { left, right, handler, left_key, right_key, .. } => {
                    let h = handler.as_ref().map(|h| format!(" handler={h}")).unwrap_or_default();
                    out.push_str(&format!("{pad}Join{h} on {left_key:?}={right_key:?}\n"));
                    walk(left, depth + 1, out);
                    walk(right, depth + 1, out);
                }
                LogicalPlan::Aggregate { input, group_cols, aggs, .. } => {
                    let names: Vec<&str> = aggs.iter().map(|a| a.func.as_str()).collect();
                    out.push_str(&format!(
                        "{pad}Aggregate by {group_cols:?} [{}]\n",
                        names.join(",")
                    ));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Fixpoint { name, key_cols, base, step, .. } => {
                    out.push_str(&format!("{pad}Fixpoint {name} by {key_cols:?}\n"));
                    walk(base, depth + 1, out);
                    walk(step, depth + 1, out);
                }
                LogicalPlan::Sort { input, keys, fetch, offset } => {
                    let ks: Vec<String> = keys
                        .iter()
                        .map(|k| format!("{:?}{}", k.expr, if k.desc { " desc" } else { "" }))
                        .collect();
                    let fused = match fetch {
                        Some(f) => format!(" fetch={f} offset={offset}"),
                        None => String::new(),
                    };
                    out.push_str(&format!("{pad}Sort [{}]{}\n", ks.join(", "), fused));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Limit { input, fetch, offset } => {
                    out.push_str(&format!("{pad}Limit {fetch} offset {offset}\n"));
                    walk(input, depth + 1, out);
                }
            }
        }
        let mut s = String::new();
        walk(self, 0, &mut s);
        s
    }
}

/// Plan a parsed statement. DDL statements (view creation, drops) have no
/// dataflow plan — they are executed by the session against its catalogs —
/// so planning one here is an error.
pub fn plan(stmt: &Statement, catalog: &SchemaCatalog, reg: &Registry) -> Result<LogicalPlan> {
    match stmt {
        Statement::Query(q) => plan_query(q, catalog, reg),
        Statement::CreateView { query, .. } => plan_query(query, catalog, reg),
        Statement::CreateTable { name, .. } => Err(RexError::Plan(format!(
            "CREATE TABLE {name} is a DDL statement; execute it through a session"
        ))),
        Statement::DropView { name } | Statement::DropTable { name } => Err(RexError::Plan(
            format!("DROP {name} is a DDL statement; execute it through a session"),
        )),
        // EXPLAIN plans whatever it wraps — the session decides whether to
        // execute (ANALYZE) or just render.
        Statement::Explain { inner, .. } => plan(inner, catalog, reg),
    }
}

fn plan_query(q: &Query, catalog: &SchemaCatalog, reg: &Registry) -> Result<LogicalPlan> {
    match (&q.with, &q.select) {
        (None, Some(sel)) => plan_select(sel, catalog, reg, None),
        (Some(w), outer) => {
            let base = plan_select(&w.base, catalog, reg, None)?;
            if base.schema().arity() != w.columns.len() {
                return Err(RexError::Plan(format!(
                    "recursive relation {} declares {} columns but its base case produces {}",
                    w.name,
                    w.columns.len(),
                    base.schema().arity()
                )));
            }
            // Declared schema: names from the WITH head, types from the base.
            let declared = Schema::new(
                w.columns
                    .iter()
                    .zip(base.schema().fields())
                    .map(|(n, f)| Field::new(n.clone(), f.ty))
                    .collect(),
            );
            let mut key_cols = Vec::with_capacity(w.fixpoint_key.len());
            for k in &w.fixpoint_key {
                let i = declared.index_of(k).ok_or_else(|| {
                    RexError::Plan(format!("FIXPOINT BY column {k} not in {:?}", w.columns))
                })?;
                key_cols.push(i);
            }
            let step = plan_select(&w.step, catalog, reg, Some((&w.name, &declared)))?;
            if step.schema().arity() != declared.arity() {
                return Err(RexError::Plan(format!(
                    "recursive step of {} produces {} columns, expected {}",
                    w.name,
                    step.schema().arity(),
                    declared.arity()
                )));
            }
            let fp = LogicalPlan::Fixpoint {
                name: w.name.clone(),
                key_cols,
                base: Box::new(base),
                step: Box::new(step),
                schema: declared,
            };
            match outer {
                None => Ok(fp),
                Some(_) => Err(RexError::Plan(
                    "post-processing SELECT after a recursive WITH is not yet supported".into(),
                )),
            }
        }
        (None, None) => Err(RexError::Plan("empty query".into())),
    }
}

/// Context for resolving the recursive relation inside a step block.
type RecCtx<'a> = Option<(&'a str, &'a Schema)>;

fn plan_select(
    block: &SelectBlock,
    catalog: &SchemaCatalog,
    reg: &Registry,
    rec: RecCtx<'_>,
) -> Result<LogicalPlan> {
    // ---- FROM items ------------------------------------------------------
    let mut items: Vec<(Option<String>, LogicalPlan)> = Vec::with_capacity(block.from.len());
    for f in &block.from {
        match f {
            TableRef::Table { name, alias } => {
                let plan = if let Some((rname, rschema)) = rec {
                    if name == rname {
                        LogicalPlan::FixpointRef { name: name.clone(), schema: rschema.clone() }
                    } else {
                        LogicalPlan::Scan {
                            table: name.clone(),
                            schema: catalog.get(name)?.clone(),
                        }
                    }
                } else {
                    LogicalPlan::Scan { table: name.clone(), schema: catalog.get(name)?.clone() }
                };
                items.push((Some(alias.clone().unwrap_or_else(|| name.clone())), plan));
            }
            TableRef::Subquery { query, alias } => {
                let plan = plan_select(query, catalog, reg, rec)?;
                items.push((alias.clone(), plan));
            }
        }
    }
    if items.is_empty() {
        return Err(RexError::Plan("FROM clause is empty".into()));
    }
    let scope = Scope::new(items.iter().map(|(n, p)| (n.clone(), p.schema().clone())).collect());

    // ---- handler-join shape ---------------------------------------------
    if let Some(plan) = try_handler_join(block, &items, &scope, reg)? {
        if block.having.is_some() {
            return Err(RexError::Plan("HAVING requires a grouped aggregation".into()));
        }
        return finish_block(block, plan, reg, rec);
    }

    // ---- general joins + residual filter ---------------------------------
    let mut conjuncts = Vec::new();
    if let Some(w) = &block.selection {
        split_conjuncts(w, &mut conjuncts);
    }
    let (mut plan, consumed) = fold_joins(items, &scope, &conjuncts, reg)?;
    for (i, c) in conjuncts.iter().enumerate() {
        if !consumed.contains(&i) {
            let predicate = resolve_scalar(c, &scope, reg)?;
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
        }
    }

    // ---- aggregation or plain projection ---------------------------------
    let agg_test = |n: &str| reg.has_agg(n) || reg.has_agg(&n.to_ascii_lowercase());
    let has_aggs = block
        .projections
        .iter()
        .any(|p| matches!(p, Projection::Expr { expr, .. } if expr.contains_call_to(&agg_test)));
    let plan = if !block.group_by.is_empty() || has_aggs || block.having.is_some() {
        plan_aggregate(block, plan, &scope, reg)?
    } else {
        plan_projection(block, plan, &scope, reg)?
    };
    finish_block(block, plan, reg, rec)
}

/// Apply the post-relational clauses — DISTINCT, then ORDER BY, then
/// LIMIT/OFFSET — to a block's relational result.
fn finish_block(
    block: &SelectBlock,
    mut plan: LogicalPlan,
    reg: &Registry,
    rec: RecCtx<'_>,
) -> Result<LogicalPlan> {
    if block.distinct {
        plan = plan_distinct(plan);
    }
    if block.order_by.is_empty() && block.limit.is_none() {
        return Ok(plan);
    }
    // Inside a recursive step the stream is delta-driven across strata; a
    // buffered total-order selection has no well-defined semantics there.
    if rec.is_some() {
        return Err(RexError::Plan(
            "ORDER BY/LIMIT are not supported inside a recursive WITH step".into(),
        ));
    }
    if !block.order_by.is_empty() {
        // ORDER BY resolves against the block's *output* row: by alias or
        // column name, by 1-based position (`ORDER BY 2`), or by matching
        // the select-list expression verbatim (`ORDER BY price * qty`
        // when that product is projected). Projections map 1:1 onto
        // output columns unless `*` is present, so the structural match
        // is only attempted star-free.
        let out_scope = Scope::new(vec![(None, plan.schema().clone())]);
        let arity = plan.schema().arity();
        let star_free = !block.projections.iter().any(|p| matches!(p, Projection::Star));
        let mut keys = Vec::with_capacity(block.order_by.len());
        for item in &block.order_by {
            let expr = match &item.expr {
                AstExpr::Int(i) => {
                    if *i < 1 || *i as usize > arity {
                        return Err(RexError::Plan(format!(
                            "ORDER BY position {i} is out of range (1..={arity})"
                        )));
                    }
                    Expr::Col(*i as usize - 1)
                }
                e => {
                    let projected = star_free.then(|| {
                        block
                            .projections
                            .iter()
                            .position(|p| matches!(p, Projection::Expr { expr, .. } if expr == e))
                    });
                    match projected.flatten() {
                        Some(pos) => Expr::Col(pos),
                        None => resolve_scalar(e, &out_scope, reg).map_err(|err| {
                            RexError::Plan(format!(
                                "ORDER BY key {e}: {err} (ORDER BY resolves against the \
                                 SELECT output — project or alias a column to order by it)"
                            ))
                        })?,
                    }
                }
            };
            keys.push(SortKey { expr, desc: item.desc });
        }
        plan = LogicalPlan::Sort { input: Box::new(plan), keys, fetch: None, offset: 0 };
    }
    if let Some(l) = &block.limit {
        plan = LogicalPlan::Limit { input: Box::new(plan), fetch: l.fetch, offset: l.offset };
    }
    Ok(plan)
}

/// `SELECT DISTINCT` as a counted projection: group by every output
/// column with no aggregates. One output row survives per distinct input
/// row — and the same shape gives views an O(change) maintenance rule
/// (the group's count tracks multiplicity; the row retracts when it hits
/// zero).
fn plan_distinct(input: LogicalPlan) -> LogicalPlan {
    let schema = input.schema().clone();
    let group_cols = (0..schema.arity()).collect();
    LogicalPlan::Aggregate {
        input: Box::new(input),
        group_cols,
        aggs: Vec::new(),
        post: None,
        schema,
    }
}

/// Recognize the Listing-1 pattern: single destructured UDA projection
/// over a two-item equi-join where the UDA is a registered join handler.
fn try_handler_join(
    block: &SelectBlock,
    items: &[(Option<String>, LogicalPlan)],
    scope: &Scope,
    reg: &Registry,
) -> Result<Option<LogicalPlan>> {
    let [Projection::Expr { expr: AstExpr::Call { name, destructure: Some(fields), .. }, .. }] =
        block.projections.as_slice()
    else {
        return Ok(None);
    };
    if reg.join(name).is_err() {
        return Ok(None);
    }
    if items.len() != 2 {
        return Err(RexError::Plan(format!("handler join {name} requires exactly two FROM items")));
    }
    // Find the equi-join conjunct.
    let mut conjuncts = Vec::new();
    if let Some(w) = &block.selection {
        split_conjuncts(w, &mut conjuncts);
    }
    let (split_at, _) = scope
        .bindings()
        .get(1)
        .map(|b| (b.offset, ()))
        .ok_or_else(|| RexError::Plan("missing join input".into()))?;
    let mut left_key = Vec::new();
    let mut right_key = Vec::new();
    for c in &conjuncts {
        if let Some((l, r)) = as_equi_join(c, scope, split_at, reg)? {
            left_key.push(l);
            right_key.push(r - split_at);
        }
    }
    // A handler join with no key is a broadcast/cross handler join.
    let schema = Schema::new(fields.iter().map(|f| Field::new(f.clone(), DataType::Any)).collect());
    let mut items = items.to_vec();
    let (_, right) = items.pop().expect("two items");
    let (_, left) = items.pop().expect("two items");
    Ok(Some(LogicalPlan::Join {
        left: Box::new(left),
        right: Box::new(right),
        left_key,
        right_key,
        handler: Some(name.clone()),
        schema,
    }))
}

/// Split an expression into AND-ed conjuncts.
fn split_conjuncts(e: &AstExpr, out: &mut Vec<AstExpr>) {
    if let AstExpr::Binary { op: crate::ast::AstBinOp::And, left, right } = e {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(e.clone());
    }
}

/// If `e` is `colA = colB` with the columns on opposite sides of
/// `split_at`, return `(left_abs, right_abs)`.
fn as_equi_join(
    e: &AstExpr,
    scope: &Scope,
    split_at: usize,
    reg: &Registry,
) -> Result<Option<(usize, usize)>> {
    let AstExpr::Binary { op: crate::ast::AstBinOp::Eq, left, right } = e else {
        return Ok(None);
    };
    let (Ok(Expr::Col(a)), Ok(Expr::Col(b))) =
        (resolve_scalar(left, scope, reg), resolve_scalar(right, scope, reg))
    else {
        return Ok(None);
    };
    if a < split_at && b >= split_at {
        Ok(Some((a, b)))
    } else if b < split_at && a >= split_at {
        Ok(Some((b, a)))
    } else {
        Ok(None)
    }
}

/// Left-fold FROM items into binary joins, consuming equi-join conjuncts.
/// Only two-item FROMs extract keys (n-way joins become cross joins with a
/// residual filter, which stays correct if slower). Returns the plan and
/// the set of consumed conjunct indices.
fn fold_joins(
    mut items: Vec<(Option<String>, LogicalPlan)>,
    scope: &Scope,
    conjuncts: &[AstExpr],
    reg: &Registry,
) -> Result<(LogicalPlan, Vec<usize>)> {
    let mut consumed = Vec::new();
    if items.len() == 1 {
        return Ok((items.pop().expect("one item").1, consumed));
    }
    if items.len() == 2 {
        let split_at = scope.bindings()[1].offset;
        let mut left_key = Vec::new();
        let mut right_key = Vec::new();
        for (i, c) in conjuncts.iter().enumerate() {
            if let Some((l, r)) = as_equi_join(c, scope, split_at, reg)? {
                left_key.push(l);
                right_key.push(r - split_at);
                consumed.push(i);
            }
        }
        let (_, right) = items.pop().expect("two items");
        let (_, left) = items.pop().expect("two items");
        let schema = left.schema().concat(right.schema());
        return Ok((
            LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                left_key,
                right_key,
                handler: None,
                schema,
            },
            consumed,
        ));
    }
    // n-way: chain cross joins; all conjuncts become residual filters.
    let (_, first) = items.remove(0);
    let mut plan = first;
    for (_, next) in items {
        let schema = plan.schema().concat(next.schema());
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(next),
            left_key: vec![],
            right_key: vec![],
            handler: None,
            schema,
        };
    }
    Ok((plan, consumed))
}

fn plan_projection(
    block: &SelectBlock,
    input: LogicalPlan,
    scope: &Scope,
    reg: &Registry,
) -> Result<LogicalPlan> {
    let mut exprs = Vec::new();
    let mut fields = Vec::new();
    for (i, p) in block.projections.iter().enumerate() {
        match p {
            Projection::Star => {
                for (j, f) in input.schema().fields().iter().enumerate() {
                    exprs.push(Expr::Col(j));
                    fields.push(f.clone());
                }
            }
            Projection::Expr { expr, alias } => {
                let e = resolve_scalar(expr, scope, reg)?;
                let ty = e.data_type(input.schema(), reg)?;
                fields.push(Field::new(projection_name(expr, alias.as_deref(), i), ty));
                exprs.push(e);
            }
        }
    }
    let schema = Schema::new(fields);
    Ok(LogicalPlan::Project { input: Box::new(input), exprs, schema })
}

/// An aggregate call discovered while rewriting projections/HAVING, with
/// its argument *expressions* still unresolved to input columns.
struct PendingAgg {
    func: String,
    args: Vec<Expr>,
    return_type: DataType,
}

fn plan_aggregate(
    block: &SelectBlock,
    input: LogicalPlan,
    scope: &Scope,
    reg: &Registry,
) -> Result<LogicalPlan> {
    // Group columns must be plain column references.
    let mut group_cols = Vec::new();
    for g in &block.group_by {
        match resolve_scalar(g, scope, reg) {
            Ok(Expr::Col(i)) => group_cols.push(i),
            _ => return Err(RexError::Plan(format!("GROUP BY supports plain columns, got {g}"))),
        }
    }

    // Walk projections and HAVING: collect aggregate calls (arguments may
    // be arbitrary scalar expressions), build post expressions over
    // [group cols ++ agg results].
    let mut calls: Vec<PendingAgg> = Vec::new();
    let mut post: Vec<Expr> = Vec::new();
    let mut fields: Vec<Field> = Vec::new();
    let mut any_post_needed = false;
    for (i, p) in block.projections.iter().enumerate() {
        let Projection::Expr { expr, alias } = p else {
            return Err(RexError::Plan("'*' cannot be mixed with aggregates".into()));
        };
        let e = rewrite_agg_expr(expr, scope, reg, &group_cols, &mut calls)?;
        if !matches!(e, Expr::Col(_)) {
            any_post_needed = true;
        }
        let name = projection_name(expr, alias.as_deref(), i);
        fields.push(Field::new(name, DataType::Any));
        post.push(e);
    }
    // HAVING filters groups: it may reference group columns and aggregate
    // calls (aggregates shared with the SELECT list are computed once).
    let having = block
        .having
        .as_ref()
        .map(|h| rewrite_agg_expr(h, scope, reg, &group_cols, &mut calls))
        .transpose()?;

    // Resolve aggregate arguments to input columns, synthesizing a
    // pre-aggregation projection when any argument is a non-column
    // expression (`SUM(price * (1 - discount))`).
    let all_plain = calls.iter().all(|c| c.args.iter().all(|a| matches!(a, Expr::Col(_))));
    let (input, group_cols, aggs) = if all_plain {
        let aggs = calls
            .into_iter()
            .map(|c| AggCall {
                input_cols: c
                    .args
                    .iter()
                    .map(|a| match a {
                        Expr::Col(i) => *i,
                        _ => unreachable!("all_plain checked"),
                    })
                    .collect(),
                func: c.func,
                return_type: c.return_type,
            })
            .collect();
        (input, group_cols, aggs)
    } else {
        synthesize_preagg_projection(input, group_cols, calls, reg)?
    };

    // The aggregate's raw output schema: group cols ++ agg results.
    let mut raw_fields: Vec<Field> =
        group_cols.iter().map(|&c| input.schema().fields()[c].clone()).collect();
    for a in &aggs {
        raw_fields.push(Field::new(a.func.clone(), a.return_type));
    }
    let raw_schema = Schema::new(raw_fields);

    // Fix up output field types now that we can infer over the raw schema.
    for (f, e) in fields.iter_mut().zip(&post) {
        if let Ok(t) = e.data_type(&raw_schema, reg) {
            *f = Field::new(f.name.clone(), t);
        }
    }

    // Identity post-projection is dropped.
    let is_identity = !any_post_needed
        && post.len() == raw_schema.arity()
        && post.iter().enumerate().all(|(i, e)| matches!(e, Expr::Col(c) if *c == i));
    let schema = Schema::new(fields);
    match having {
        None => Ok(LogicalPlan::Aggregate {
            input: Box::new(input),
            group_cols,
            aggs,
            post: if is_identity { None } else { Some(post) },
            schema,
        }),
        Some(predicate) => {
            // HAVING sits between aggregation and the SELECT projection:
            // Aggregate (raw output) → Filter → Project. This is also the
            // shape the view-maintenance delta rules cover (a stateless
            // filter over maintained group state).
            let agg = LogicalPlan::Aggregate {
                input: Box::new(input),
                group_cols,
                aggs,
                post: None,
                schema: raw_schema,
            };
            let filtered = LogicalPlan::Filter { input: Box::new(agg), predicate };
            if is_identity {
                Ok(filtered)
            } else {
                Ok(LogicalPlan::Project { input: Box::new(filtered), exprs: post, schema })
            }
        }
    }
}

/// Project `[group cols ++ one column per aggregate-argument expression]`
/// beneath the aggregate so every aggregate sees plain input columns.
/// Identical argument expressions (and arguments that are group columns)
/// share one projected column.
fn synthesize_preagg_projection(
    input: LogicalPlan,
    group_cols: Vec<usize>,
    calls: Vec<PendingAgg>,
    reg: &Registry,
) -> Result<(LogicalPlan, Vec<usize>, Vec<AggCall>)> {
    let mut exprs: Vec<Expr> = Vec::with_capacity(group_cols.len() + calls.len());
    let mut fields: Vec<Field> = Vec::with_capacity(group_cols.len() + calls.len());
    for &c in &group_cols {
        exprs.push(Expr::Col(c));
        fields.push(input.schema().fields()[c].clone());
    }
    let mut aggs = Vec::with_capacity(calls.len());
    for c in calls {
        let mut input_cols = Vec::with_capacity(c.args.len());
        for a in c.args {
            let pos = match exprs.iter().position(|e| *e == a) {
                Some(p) => p,
                None => {
                    let ty = a.data_type(input.schema(), reg).unwrap_or(DataType::Any);
                    fields.push(Field::new(format!("arg{}", exprs.len()), ty));
                    exprs.push(a);
                    exprs.len() - 1
                }
            };
            input_cols.push(pos);
        }
        aggs.push(AggCall { func: c.func, input_cols, return_type: c.return_type });
    }
    let schema = Schema::new(fields);
    let new_group_cols = (0..group_cols.len()).collect();
    Ok((LogicalPlan::Project { input: Box::new(input), exprs, schema }, new_group_cols, aggs))
}

/// Rewrite a projection/HAVING expression into an expression over the
/// aggregate's raw output `[group cols ++ agg results]`, appending newly
/// discovered aggregate calls to `calls` (identical calls are shared).
fn rewrite_agg_expr(
    e: &AstExpr,
    scope: &Scope,
    reg: &Registry,
    group_cols: &[usize],
    calls: &mut Vec<PendingAgg>,
) -> Result<Expr> {
    match e {
        AstExpr::Call { name, args, destructure } => {
            let lookup = if reg.has_agg(name) {
                Some(name.clone())
            } else if reg.has_agg(&name.to_ascii_lowercase()) {
                Some(name.to_ascii_lowercase())
            } else {
                None
            };
            let Some(func) = lookup else {
                return Err(RexError::Plan(format!("unknown aggregate {name}")));
            };
            if destructure.is_some() {
                return Err(RexError::Plan(format!(
                    "table-valued aggregate {name} cannot appear in a scalar projection"
                )));
            }
            let mut resolved = Vec::with_capacity(args.len());
            for a in args {
                match a {
                    AstExpr::Star => {} // count(*): no input columns
                    other => resolved.push(resolve_scalar(other, scope, reg)?),
                }
            }
            let return_type = reg.agg(&func)?.return_type();
            let idx = match calls.iter().position(|c| c.func == func && c.args == resolved) {
                Some(i) => i,
                None => {
                    calls.push(PendingAgg { func, args: resolved, return_type });
                    calls.len() - 1
                }
            };
            Ok(Expr::Col(group_cols.len() + idx))
        }
        AstExpr::Column { qualifier, name } => {
            let (abs, _) = scope.resolve_column(qualifier.as_deref(), name)?;
            let pos = group_cols.iter().position(|&g| g == abs).ok_or_else(|| {
                RexError::Plan(format!("column {name} is neither grouped nor aggregated"))
            })?;
            Ok(Expr::Col(pos))
        }
        AstExpr::Binary { op, left, right } => Ok(Expr::Bin(
            bin_op(*op),
            Box::new(rewrite_agg_expr(left, scope, reg, group_cols, calls)?),
            Box::new(rewrite_agg_expr(right, scope, reg, group_cols, calls)?),
        )),
        AstExpr::Neg(inner) => {
            Ok(Expr::Neg(Box::new(rewrite_agg_expr(inner, scope, reg, group_cols, calls)?)))
        }
        AstExpr::Not(inner) => {
            Ok(Expr::Not(Box::new(rewrite_agg_expr(inner, scope, reg, group_cols, calls)?)))
        }
        AstExpr::Int(_)
        | AstExpr::Float(_)
        | AstExpr::Str(_)
        | AstExpr::Bool(_)
        | AstExpr::Null => resolve_scalar(e, &Scope::default(), reg),
        other => {
            Err(RexError::Plan(format!("unsupported expression in aggregate projection: {other}")))
        }
    }
}

/// Plan straight from source text.
pub fn plan_text(src: &str, catalog: &SchemaCatalog, reg: &Registry) -> Result<LogicalPlan> {
    let stmt = crate::parser::parse(src)?;
    plan(&stmt, catalog, reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::delta::Delta;
    use rex_core::handlers::{JoinHandler, TupleSet};
    use std::sync::Arc;

    fn catalog() -> SchemaCatalog {
        let mut c = SchemaCatalog::new();
        c.register(
            "lineitem",
            Schema::of(&[
                ("orderkey", DataType::Int),
                ("linenumber", DataType::Int),
                ("quantity", DataType::Int),
                ("extendedprice", DataType::Double),
                ("discount", DataType::Double),
                ("tax", DataType::Double),
            ]),
        );
        c.register("graph", Schema::of(&[("srcId", DataType::Int), ("destId", DataType::Int)]));
        c
    }

    struct NoopJoin;
    impl JoinHandler for NoopJoin {
        fn name(&self) -> &str {
            "PRAgg"
        }
        fn update(
            &self,
            _l: &mut TupleSet,
            _r: &mut TupleSet,
            _d: &Delta,
            _from_left: bool,
        ) -> Result<Vec<Delta>> {
            Ok(vec![])
        }
    }

    #[test]
    fn plans_fig4_query() {
        let reg = Registry::with_builtins();
        let p = plan_text(
            "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1",
            &catalog(),
            &reg,
        )
        .unwrap();
        match &p {
            LogicalPlan::Aggregate { input, group_cols, aggs, post, .. } => {
                assert!(group_cols.is_empty());
                assert_eq!(aggs.len(), 2);
                assert_eq!(aggs[0].func, "sum");
                assert_eq!(aggs[0].input_cols, vec![5]);
                assert_eq!(aggs[1].func, "count");
                assert!(aggs[1].input_cols.is_empty());
                assert!(post.is_none(), "identity post projection dropped");
                assert!(matches!(**input, LogicalPlan::Filter { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plans_equi_join() {
        let reg = Registry::with_builtins();
        let mut c = catalog();
        c.register("pr", Schema::of(&[("srcId", DataType::Int), ("pr", DataType::Double)]));
        let p = plan_text(
            "SELECT graph.destId, pr.pr FROM graph, pr WHERE graph.srcId = pr.srcId",
            &c,
            &reg,
        )
        .unwrap();
        match &p {
            LogicalPlan::Project { input, exprs, .. } => {
                assert_eq!(exprs.len(), 2);
                match &**input {
                    LogicalPlan::Join { left_key, right_key, handler, .. } => {
                        assert_eq!(left_key, &vec![0]);
                        assert_eq!(right_key, &vec![0]);
                        assert!(handler.is_none());
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plans_listing1_fixpoint_with_handler_join() {
        let reg = Registry::with_builtins();
        reg.register_join("PRAgg", Arc::new(NoopJoin));
        let src = "
            WITH PR (srcId, pr) AS (
              SELECT srcId, 1.0 AS pr FROM graph
            ) UNION UNTIL FIXPOINT BY srcId (
              SELECT nbr, 0.15 + 0.85 * sum(prDiff)
              FROM (SELECT PRAgg(srcId, pr).{nbr, prDiff}
                    FROM graph, PR
                    WHERE graph.srcId = PR.srcId GROUP BY srcId)
              GROUP BY nbr)";
        let p = plan_text(src, &catalog(), &reg).unwrap();
        let LogicalPlan::Fixpoint { key_cols, base, step, schema, .. } = &p else {
            panic!("expected fixpoint, got {p:?}");
        };
        assert_eq!(key_cols, &vec![0]);
        assert_eq!(schema.index_of("pr"), Some(1));
        assert!(matches!(**base, LogicalPlan::Project { .. }));
        // Step: aggregate over the handler join.
        let LogicalPlan::Aggregate { input, aggs, post, .. } = &**step else {
            panic!("expected aggregate step, got {step:?}");
        };
        assert_eq!(aggs[0].func, "sum");
        assert!(post.is_some(), "0.15 + 0.85*sum needs a post projection");
        let LogicalPlan::Join { handler, left_key, right_key, .. } = &**input else {
            panic!("expected handler join, got {input:?}");
        };
        assert_eq!(handler.as_deref(), Some("PRAgg"));
        assert_eq!(left_key, &vec![0]);
        assert_eq!(right_key, &vec![0]);
        let text = p.explain();
        assert!(text.contains("Fixpoint PR"));
        assert!(text.contains("handler=PRAgg"));
    }

    #[test]
    fn referenced_tables_dedup_and_skip_fixpoint_refs() {
        let reg = Registry::with_builtins();
        let mut c = catalog();
        c.register("pr", Schema::of(&[("srcId", DataType::Int), ("pr", DataType::Double)]));
        let p =
            plan_text("SELECT graph.destId FROM graph, pr WHERE graph.srcId = pr.srcId", &c, &reg)
                .unwrap();
        assert_eq!(p.referenced_tables(), vec!["graph".to_string(), "pr".to_string()]);
        assert!(!p.is_recursive());
        let rec = plan_text(
            "WITH R (a) AS (SELECT srcId FROM graph)
             UNION UNTIL FIXPOINT BY a (SELECT graph.destId FROM graph, R WHERE graph.srcId = R.a)",
            &c,
            &reg,
        )
        .unwrap();
        assert_eq!(rec.referenced_tables(), vec!["graph".to_string()]);
        assert!(rec.is_recursive());
    }

    #[test]
    fn ddl_statements_do_not_plan() {
        let reg = Registry::with_builtins();
        let stmt = crate::parser::parse("DROP VIEW v").unwrap();
        let err = plan(&stmt, &catalog(), &reg).unwrap_err();
        assert!(err.to_string().contains("DDL"));
        // CREATE MATERIALIZED VIEW plans its defining query.
        let stmt =
            crate::parser::parse("CREATE MATERIALIZED VIEW v AS SELECT srcId FROM graph").unwrap();
        assert!(plan(&stmt, &catalog(), &reg).is_ok());
    }

    #[test]
    fn rejects_mismatched_recursive_arity() {
        let reg = Registry::with_builtins();
        let src = "
            WITH R (a, b, c) AS (SELECT srcId, destId FROM graph)
            UNION UNTIL FIXPOINT BY a (SELECT srcId, destId FROM graph)";
        let err = plan_text(src, &catalog(), &reg).unwrap_err();
        assert!(err.to_string().contains("declares 3 columns"));
    }

    #[test]
    fn rejects_unknown_fixpoint_key() {
        let reg = Registry::with_builtins();
        let src = "
            WITH R (a, b) AS (SELECT srcId, destId FROM graph)
            UNION UNTIL FIXPOINT BY zzz (SELECT a, b FROM R)";
        let err = plan_text(src, &catalog(), &reg).unwrap_err();
        assert!(err.to_string().contains("FIXPOINT BY column zzz"));
    }

    #[test]
    fn rejects_ungrouped_column() {
        let reg = Registry::with_builtins();
        let err =
            plan_text("SELECT destId, sum(srcId) FROM graph GROUP BY srcId", &catalog(), &reg)
                .unwrap_err();
        assert!(err.to_string().contains("neither grouped nor aggregated"));
    }

    #[test]
    fn subquery_in_from_resolves() {
        let reg = Registry::with_builtins();
        let p = plan_text(
            "SELECT s FROM (SELECT srcId AS s FROM graph WHERE destId > 5) AS x",
            &catalog(),
            &reg,
        )
        .unwrap();
        assert_eq!(p.schema().index_of("s"), Some(0));
    }

    #[test]
    fn unknown_table_is_an_error() {
        let reg = Registry::with_builtins();
        assert!(plan_text("SELECT x FROM missing", &catalog(), &reg).is_err());
    }

    #[test]
    fn plans_order_by_and_limit_nodes() {
        let reg = Registry::with_builtins();
        let p = plan_text(
            "SELECT srcId, destId FROM graph ORDER BY destId DESC, srcId LIMIT 5 OFFSET 2",
            &catalog(),
            &reg,
        )
        .unwrap();
        let LogicalPlan::Limit { input, fetch: 5, offset: 2 } = &p else {
            panic!("expected Limit root, got {p:?}");
        };
        let LogicalPlan::Sort { keys, fetch: None, offset: 0, .. } = input.as_ref() else {
            panic!("expected Sort under Limit, got {input:?}");
        };
        assert_eq!(keys.len(), 2);
        assert!(keys[0].desc);
        assert_eq!(keys[0].expr, Expr::Col(1));
        assert!(!keys[1].desc);
        assert_eq!(p.schema().arity(), 2, "Sort/Limit keep the input schema");
        assert!(p.has_order_or_limit());
        let text = p.explain();
        assert!(text.contains("Limit 5 offset 2"), "{text}");
        assert!(text.contains("Sort ["), "{text}");
    }

    #[test]
    fn order_by_resolves_aliases_and_positions() {
        let reg = Registry::with_builtins();
        let p = plan_text(
            "SELECT srcId AS s, count(*) AS n FROM graph GROUP BY srcId ORDER BY n DESC, 1",
            &catalog(),
            &reg,
        )
        .unwrap();
        let LogicalPlan::Sort { keys, .. } = &p else { panic!("{p:?}") };
        assert_eq!(keys[0].expr, Expr::Col(1), "alias n is output column 1");
        assert_eq!(keys[1].expr, Expr::Col(0), "ORDER BY 1 is positional");
        let err = plan_text("SELECT srcId FROM graph ORDER BY 4", &catalog(), &reg).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn plans_distinct_as_group_by_all_columns() {
        let reg = Registry::with_builtins();
        let p = plan_text("SELECT DISTINCT srcId, destId FROM graph", &catalog(), &reg).unwrap();
        let LogicalPlan::Aggregate { group_cols, aggs, post, input, .. } = &p else {
            panic!("expected Aggregate, got {p:?}");
        };
        assert_eq!(group_cols, &vec![0, 1]);
        assert!(aggs.is_empty());
        assert!(post.is_none());
        assert!(matches!(**input, LogicalPlan::Project { .. }));
        assert_eq!(p.schema().arity(), 2);
    }

    #[test]
    fn plans_having_as_filter_above_raw_aggregate() {
        let reg = Registry::with_builtins();
        let p = plan_text(
            "SELECT srcId, sum(destId) FROM graph GROUP BY srcId HAVING count(*) > 2",
            &catalog(),
            &reg,
        )
        .unwrap();
        // count(*) is HAVING-only, so the SELECT projection is not the
        // identity over the raw output: Project(Filter(Aggregate)).
        let LogicalPlan::Project { input, exprs, .. } = &p else { panic!("{p:?}") };
        assert_eq!(exprs.len(), 2);
        let LogicalPlan::Filter { input: agg, predicate } = input.as_ref() else {
            panic!("{input:?}")
        };
        assert!(matches!(predicate, Expr::Bin(..)));
        let LogicalPlan::Aggregate { aggs, post: None, .. } = agg.as_ref() else {
            panic!("{agg:?}")
        };
        assert_eq!(aggs.len(), 2, "sum from SELECT + count from HAVING");
        assert_eq!(p.schema().arity(), 2, "HAVING-only aggregates are not projected");
    }

    #[test]
    fn shared_aggregate_between_select_and_having_is_computed_once() {
        let reg = Registry::with_builtins();
        let p = plan_text(
            "SELECT srcId, count(*) FROM graph GROUP BY srcId HAVING count(*) > 2",
            &catalog(),
            &reg,
        )
        .unwrap();
        // Identity projection: Filter directly above the aggregate.
        let LogicalPlan::Filter { input, .. } = &p else { panic!("{p:?}") };
        let LogicalPlan::Aggregate { aggs, .. } = input.as_ref() else { panic!("{input:?}") };
        assert_eq!(aggs.len(), 1, "the shared count(*) appears once");
    }

    #[test]
    fn expression_aggregate_arguments_synthesize_a_projection() {
        let reg = Registry::with_builtins();
        let p = plan_text(
            "SELECT orderkey, sum(extendedprice * (1 - discount)) FROM lineitem GROUP BY orderkey",
            &catalog(),
            &reg,
        )
        .unwrap();
        let LogicalPlan::Aggregate { input, group_cols, aggs, .. } = &p else { panic!("{p:?}") };
        assert_eq!(group_cols, &vec![0], "group key remapped to the synthesized projection");
        assert_eq!(aggs[0].input_cols, vec![1]);
        let LogicalPlan::Project { exprs, .. } = input.as_ref() else { panic!("{input:?}") };
        assert_eq!(exprs.len(), 2, "group col + one argument expression");
        assert_eq!(exprs[0], Expr::Col(0));
        assert!(matches!(exprs[1], Expr::Bin(..)));
    }

    #[test]
    fn identical_expression_arguments_share_a_synthesized_column() {
        let reg = Registry::with_builtins();
        let p = plan_text(
            "SELECT orderkey, sum(tax + discount), avg(tax + discount), min(tax) \
             FROM lineitem GROUP BY orderkey",
            &catalog(),
            &reg,
        )
        .unwrap();
        let LogicalPlan::Aggregate { input, aggs, .. } = &p else { panic!("{p:?}") };
        assert_eq!(aggs[0].input_cols, aggs[1].input_cols, "sum and avg share the column");
        let LogicalPlan::Project { exprs, .. } = input.as_ref() else { panic!("{input:?}") };
        assert_eq!(exprs.len(), 3, "group col + shared expr + tax");
        assert_eq!(aggs[2].input_cols, vec![2]);
    }

    #[test]
    fn order_by_limit_rejected_in_recursive_step() {
        let reg = Registry::with_builtins();
        let err = plan_text(
            "WITH R (a) AS (SELECT srcId FROM graph)
             UNION UNTIL FIXPOINT BY a (
               SELECT graph.destId FROM graph, R WHERE graph.srcId = R.a ORDER BY destId LIMIT 3)",
            &catalog(),
            &reg,
        )
        .unwrap_err();
        assert!(err.to_string().contains("recursive"), "{err}");
    }

    #[test]
    fn create_table_does_not_plan() {
        let reg = Registry::with_builtins();
        let stmt = crate::parser::parse("CREATE TABLE t (x int)").unwrap();
        let err = plan(&stmt, &catalog(), &reg).unwrap_err();
        assert!(err.to_string().contains("DDL"));
    }

    #[test]
    fn having_without_aggregates_still_groups() {
        let reg = Registry::with_builtins();
        let p =
            plan_text("SELECT srcId FROM graph GROUP BY srcId HAVING srcId > 3", &catalog(), &reg)
                .unwrap();
        let LogicalPlan::Filter { input, .. } = &p else { panic!("{p:?}") };
        assert!(matches!(input.as_ref(), LogicalPlan::Aggregate { .. }));
    }
}
