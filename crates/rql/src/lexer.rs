//! RQL lexer.
//!
//! Tokenizes the SQL-derived RQL surface syntax, including the recursion
//! extension keywords (`UNTIL`, `FIXPOINT`) and the UDF destructuring
//! syntax `f(x).{a, b}`.

use rex_core::error::{Result, RexError};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (uppercased; see [`KEYWORDS`]).
    Keyword(String),
    /// Identifier (original case preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// Punctuation / operator.
    Symbol(Sym),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Neq,
    Lt,
    Lte,
    Gt,
    Gte,
    Semicolon,
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sym::LParen => "(",
            Sym::RParen => ")",
            Sym::LBrace => "{",
            Sym::RBrace => "}",
            Sym::Comma => ",",
            Sym::Dot => ".",
            Sym::Star => "*",
            Sym::Plus => "+",
            Sym::Minus => "-",
            Sym::Slash => "/",
            Sym::Eq => "=",
            Sym::Neq => "<>",
            Sym::Lt => "<",
            Sym::Lte => "<=",
            Sym::Gt => ">",
            Sym::Gte => ">=",
            Sym::Semicolon => ";",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(i) => write!(f, "{i}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Symbol(s) => write!(f, "{s}"),
        }
    }
}

/// Reserved words recognized as keywords (case-insensitive).
pub const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "AS",
    "WITH",
    "UNION",
    "ALL",
    "UNTIL",
    "FIXPOINT",
    "AND",
    "OR",
    "NOT",
    "NULL",
    "TRUE",
    "FALSE",
    "HAVING",
    "DISTINCT",
    "CREATE",
    "MATERIALIZED",
    "VIEW",
    "DROP",
    "TABLE",
    "ORDER",
    "LIMIT",
    "OFFSET",
    "ASC",
    "DESC",
    "EXPLAIN",
    "ANALYZE",
];

/// Line/column (1-based) of byte offset `i` in `src`.
fn pos(src: &str, i: usize) -> (usize, usize) {
    let prefix = &src[..i.min(src.len())];
    let line = prefix.bytes().filter(|&b| b == b'\n').count() + 1;
    let col = prefix.rfind('\n').map(|n| i - n).unwrap_or(i + 1);
    (line, col)
}

fn perr(src: &str, i: usize, message: impl Into<String>) -> RexError {
    let (line, col) = pos(src, i);
    RexError::Parse { message: message.into(), line, col }
}

/// Tokenize RQL source text. `--` starts a line comment.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push_sym(&mut out, Sym::LParen, &mut i),
            ')' => push_sym(&mut out, Sym::RParen, &mut i),
            '{' => push_sym(&mut out, Sym::LBrace, &mut i),
            '}' => push_sym(&mut out, Sym::RBrace, &mut i),
            ',' => push_sym(&mut out, Sym::Comma, &mut i),
            '.' => {
                // A dot starting a fractional literal (".5") only occurs
                // after non-numeric context; RQL requires a leading digit,
                // so "." is always punctuation here.
                push_sym(&mut out, Sym::Dot, &mut i)
            }
            '*' => push_sym(&mut out, Sym::Star, &mut i),
            '+' => push_sym(&mut out, Sym::Plus, &mut i),
            '-' => push_sym(&mut out, Sym::Minus, &mut i),
            '/' => push_sym(&mut out, Sym::Slash, &mut i),
            ';' => push_sym(&mut out, Sym::Semicolon, &mut i),
            '=' => push_sym(&mut out, Sym::Eq, &mut i),
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Sym::Lte));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Symbol(Sym::Neq));
                    i += 2;
                } else {
                    push_sym(&mut out, Sym::Lt, &mut i);
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Sym::Gte));
                    i += 2;
                } else {
                    push_sym(&mut out, Sym::Gt, &mut i);
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Symbol(Sym::Neq));
                i += 2;
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(perr(src, i, "unterminated string literal"));
                }
                out.push(Token::Str(src[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || (bytes[i] == b'.'
                            && bytes.get(i + 1).map(|b| b.is_ascii_digit()).unwrap_or(false)
                            && !is_float))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|e| perr(src, start, format!("bad float {text}: {e}")))?;
                    out.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|e| perr(src, start, format!("bad integer {text}: {e}")))?;
                    out.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    out.push(Token::Keyword(upper));
                } else {
                    out.push(Token::Ident(word.to_string()));
                }
            }
            other => {
                return Err(perr(src, i, format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(out)
}

fn push_sym(out: &mut Vec<Token>, s: Sym, i: &mut usize) {
    out.push(Token::Symbol(s));
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_select() {
        let toks =
            tokenize("SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Ident("sum".into()));
        assert!(toks.contains(&Token::Symbol(Sym::Star)));
        assert_eq!(*toks.last().unwrap(), Token::Int(1));
    }

    #[test]
    fn ddl_keywords_tokenize() {
        let toks = tokenize("CREATE MATERIALIZED VIEW v AS SELECT 1 FROM t").unwrap();
        assert_eq!(toks[0], Token::Keyword("CREATE".into()));
        assert_eq!(toks[1], Token::Keyword("MATERIALIZED".into()));
        assert_eq!(toks[2], Token::Keyword("VIEW".into()));
        assert_eq!(toks[3], Token::Ident("v".into()));
        let toks = tokenize("drop view v; drop table t").unwrap();
        assert_eq!(toks[0], Token::Keyword("DROP".into()));
        assert_eq!(toks[5], Token::Keyword("TABLE".into()));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = tokenize("select From wHeRe").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("FROM".into()),
                Token::Keyword("WHERE".into()),
            ]
        );
    }

    #[test]
    fn identifiers_keep_case() {
        let toks = tokenize("srcId PRAgg").unwrap();
        assert_eq!(toks, vec![Token::Ident("srcId".into()), Token::Ident("PRAgg".into())]);
    }

    #[test]
    fn numbers_and_floats() {
        let toks = tokenize("0.15 0.85 42 1.0").unwrap();
        assert_eq!(
            toks,
            vec![Token::Float(0.15), Token::Float(0.85), Token::Int(42), Token::Float(1.0)]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT 1 -- the answer\nFROM t").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn destructuring_braces() {
        let toks = tokenize("PRAgg(srcId, pr).{nbr, prDiff}").unwrap();
        assert!(toks.contains(&Token::Symbol(Sym::LBrace)));
        assert!(toks.contains(&Token::Symbol(Sym::RBrace)));
        assert!(toks.contains(&Token::Symbol(Sym::Dot)));
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a >= 1 b <= 2 c <> 3 d != 4").unwrap();
        assert!(toks.contains(&Token::Symbol(Sym::Gte)));
        assert!(toks.contains(&Token::Symbol(Sym::Lte)));
        assert_eq!(toks.iter().filter(|t| **t == Token::Symbol(Sym::Neq)).count(), 2);
    }

    #[test]
    fn string_literals() {
        let toks = tokenize("MapWrap('MapClass', k, v)").unwrap();
        assert_eq!(toks[2], Token::Str("MapClass".into()));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn qualified_names() {
        let toks = tokenize("graph.srcId = PR.srcId").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("graph".into()),
                Token::Symbol(Sym::Dot),
                Token::Ident("srcId".into()),
                Token::Symbol(Sym::Eq),
                Token::Ident("PR".into()),
                Token::Symbol(Sym::Dot),
                Token::Ident("srcId".into()),
            ]
        );
    }
}
