//! Name resolution and type checking.
//!
//! Resolution turns AST column references into absolute column indices
//! over the row produced by a block's FROM clause (the concatenation of
//! all FROM items' schemas, left to right), and AST expressions into
//! engine [`Expr`]s. UDF references are checked against the
//! [`Registry`]; "typechecking is performed by the query processor"
//! (§3.3).

use crate::ast::{AstBinOp, AstExpr};
use rex_core::error::{Result, RexError};
use rex_core::expr::{BinOp, Expr};
use rex_core::tuple::{Field, Schema};
use rex_core::udf::Registry;
use rex_core::value::{DataType, Value};
use std::collections::HashMap;

/// Table-name → schema map used by the resolver (the query-facing slice of
/// the storage catalog).
#[derive(Debug, Clone, Default)]
pub struct SchemaCatalog {
    tables: HashMap<String, Schema>,
}

impl SchemaCatalog {
    /// An empty catalog.
    pub fn new() -> SchemaCatalog {
        SchemaCatalog::default()
    }

    /// Register a table schema.
    pub fn register(&mut self, name: impl Into<String>, schema: Schema) {
        self.tables.insert(name.into(), schema);
    }

    /// Look up a table schema.
    pub fn get(&self, name: &str) -> Result<&Schema> {
        self.tables.get(name).ok_or_else(|| RexError::Plan(format!("unknown table {name}")))
    }

    /// Whether `name` is a registered table.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Remove a table's schema (dropping a table or view); returns whether
    /// it was registered. Matching is case-insensitive: the storage layer
    /// keys tables by lowercase name, so a table registered here as
    /// `"Edges"` must still be removable via `drop_table("edges")` —
    /// otherwise the orphaned schema would block re-creation forever.
    pub fn remove(&mut self, name: &str) -> bool {
        if self.tables.remove(name).is_some() {
            return true;
        }
        let found: Vec<String> =
            self.tables.keys().filter(|k| k.eq_ignore_ascii_case(name)).cloned().collect();
        for k in &found {
            self.tables.remove(k);
        }
        !found.is_empty()
    }
}

/// One FROM-item binding in a resolution scope.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Name the item is visible under (alias or table name); `None` for an
    /// anonymous subquery.
    pub name: Option<String>,
    /// The item's output schema.
    pub schema: Schema,
    /// Column offset of this item within the concatenated row.
    pub offset: usize,
}

/// A resolution scope: the bindings of one SELECT block's FROM clause.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    bindings: Vec<Binding>,
}

impl Scope {
    /// Build a scope from `(name, schema)` FROM items, assigning offsets.
    pub fn new(items: Vec<(Option<String>, Schema)>) -> Scope {
        let mut bindings = Vec::with_capacity(items.len());
        let mut offset = 0;
        for (name, schema) in items {
            let arity = schema.arity();
            bindings.push(Binding { name, schema, offset });
            offset += arity;
        }
        Scope { bindings }
    }

    /// The bindings.
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// Total arity of the concatenated row.
    pub fn arity(&self) -> usize {
        self.bindings.iter().map(|b| b.schema.arity()).sum()
    }

    /// Resolve `[qualifier.]name` to `(absolute column, type)`.
    pub fn resolve_column(&self, qualifier: Option<&str>, name: &str) -> Result<(usize, DataType)> {
        let mut found: Option<(usize, DataType)> = None;
        for b in &self.bindings {
            if let Some(q) = qualifier {
                if b.name.as_deref() != Some(q) {
                    continue;
                }
            }
            if let Some(i) = b.schema.index_of(name) {
                if found.is_some() {
                    return Err(RexError::Plan(format!("ambiguous column {name}")));
                }
                found = Some((b.offset + i, b.schema.field_type(i)));
            }
        }
        found.ok_or_else(|| {
            let q = qualifier.map(|q| format!("{q}.")).unwrap_or_default();
            RexError::Plan(format!("unknown column {q}{name}"))
        })
    }

    /// The index range `[offset, offset+arity)` of a named binding.
    pub fn binding_range(&self, name: &str) -> Option<(usize, usize)> {
        self.bindings
            .iter()
            .find(|b| b.name.as_deref() == Some(name))
            .map(|b| (b.offset, b.offset + b.schema.arity()))
    }
}

/// Map an AST operator onto the engine's.
pub fn bin_op(op: AstBinOp) -> BinOp {
    match op {
        AstBinOp::Add => BinOp::Add,
        AstBinOp::Sub => BinOp::Sub,
        AstBinOp::Mul => BinOp::Mul,
        AstBinOp::Div => BinOp::Div,
        AstBinOp::Eq => BinOp::Eq,
        AstBinOp::Ne => BinOp::Ne,
        AstBinOp::Lt => BinOp::Lt,
        AstBinOp::Le => BinOp::Le,
        AstBinOp::Gt => BinOp::Gt,
        AstBinOp::Ge => BinOp::Ge,
        AstBinOp::And => BinOp::And,
        AstBinOp::Or => BinOp::Or,
    }
}

/// Resolve a *scalar* AST expression to an engine [`Expr`]. Aggregate and
/// destructured calls are rejected here (the planner routes them through
/// group-by / join lowering instead).
pub fn resolve_scalar(e: &AstExpr, scope: &Scope, reg: &Registry) -> Result<Expr> {
    match e {
        AstExpr::Column { qualifier, name } => {
            let (idx, _) = scope.resolve_column(qualifier.as_deref(), name)?;
            Ok(Expr::Col(idx))
        }
        AstExpr::Int(i) => Ok(Expr::Lit(Value::Int(*i))),
        AstExpr::Float(x) => Ok(Expr::Lit(Value::Double(*x))),
        AstExpr::Str(s) => Ok(Expr::Lit(Value::str(s.clone()))),
        AstExpr::Bool(b) => Ok(Expr::Lit(Value::Bool(*b))),
        AstExpr::Null => Ok(Expr::Lit(Value::Null)),
        AstExpr::Binary { op, left, right } => Ok(Expr::Bin(
            bin_op(*op),
            Box::new(resolve_scalar(left, scope, reg)?),
            Box::new(resolve_scalar(right, scope, reg)?),
        )),
        AstExpr::Neg(inner) => Ok(Expr::Neg(Box::new(resolve_scalar(inner, scope, reg)?))),
        AstExpr::Not(inner) => Ok(Expr::Not(Box::new(resolve_scalar(inner, scope, reg)?))),
        AstExpr::Call { name, args, destructure } => {
            if destructure.is_some() {
                return Err(RexError::Plan(format!(
                    "table-valued call {name}(...).{{...}} is only allowed as the sole \
                     projection of a join block"
                )));
            }
            if reg.has_agg(name) || reg.has_agg(&name.to_ascii_lowercase()) {
                return Err(RexError::Plan(format!(
                    "aggregate {name} used outside GROUP BY context"
                )));
            }
            let mut resolved = Vec::with_capacity(args.len());
            for a in args {
                resolved.push(resolve_scalar(a, scope, reg)?);
            }
            // Verify the scalar UDF exists; typecheck its arity lazily.
            reg.scalar(name).map_err(|_| RexError::Plan(format!("unknown function {name}")))?;
            Ok(Expr::Udf(name.clone(), resolved))
        }
        AstExpr::Star => Err(RexError::Plan("'*' is only valid in count(*)".into())),
    }
}

/// Infer the output name for a projection expression (for result schemas).
pub fn projection_name(e: &AstExpr, alias: Option<&str>, index: usize) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match e {
        AstExpr::Column { name, .. } => name.clone(),
        AstExpr::Call { name, .. } => name.to_ascii_lowercase(),
        _ => format!("col{index}"),
    }
}

/// Infer a resolved expression's type over `schema`.
pub fn expr_type(e: &Expr, schema: &Schema, reg: &Registry) -> Result<DataType> {
    e.data_type(schema, reg)
}

/// Make a schema out of `(name, type)` pairs.
pub fn schema_of(fields: Vec<(String, DataType)>) -> Schema {
    Schema::new(fields.into_iter().map(|(n, t)| Field::new(n, t)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope2() -> Scope {
        Scope::new(vec![
            (
                Some("graph".into()),
                Schema::of(&[("srcId", DataType::Int), ("destId", DataType::Int)]),
            ),
            (Some("PR".into()), Schema::of(&[("srcId", DataType::Int), ("pr", DataType::Double)])),
        ])
    }

    #[test]
    fn qualified_resolution_disambiguates() {
        let s = scope2();
        assert_eq!(s.resolve_column(Some("graph"), "srcId").unwrap(), (0, DataType::Int));
        assert_eq!(s.resolve_column(Some("PR"), "srcId").unwrap(), (2, DataType::Int));
        assert_eq!(s.resolve_column(None, "pr").unwrap(), (3, DataType::Double));
    }

    #[test]
    fn unqualified_ambiguity_is_an_error() {
        let s = scope2();
        let err = s.resolve_column(None, "srcId").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn unknown_column_is_an_error() {
        let s = scope2();
        assert!(s.resolve_column(None, "nope").is_err());
        assert!(s.resolve_column(Some("graph"), "pr").is_err());
    }

    #[test]
    fn binding_range_locates_tables() {
        let s = scope2();
        assert_eq!(s.binding_range("PR"), Some((2, 4)));
        assert_eq!(s.binding_range("graph"), Some((0, 2)));
        assert_eq!(s.binding_range("zzz"), None);
    }

    #[test]
    fn scalar_resolution_builds_engine_exprs() {
        let s = scope2();
        let reg = Registry::with_builtins();
        let ast = AstExpr::Binary {
            op: AstBinOp::Gt,
            left: Box::new(AstExpr::column("pr")),
            right: Box::new(AstExpr::Float(0.5)),
        };
        let e = resolve_scalar(&ast, &s, &reg).unwrap();
        match e {
            Expr::Bin(BinOp::Gt, l, _) => assert!(matches!(*l, Expr::Col(3))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregates_rejected_in_scalar_context() {
        let s = scope2();
        let reg = Registry::with_builtins();
        let ast = AstExpr::Call {
            name: "sum".into(),
            args: vec![AstExpr::column("pr")],
            destructure: None,
        };
        assert!(resolve_scalar(&ast, &s, &reg).is_err());
    }

    #[test]
    fn unknown_function_rejected() {
        let s = scope2();
        let reg = Registry::with_builtins();
        let ast = AstExpr::Call { name: "mystery".into(), args: vec![], destructure: None };
        let err = resolve_scalar(&ast, &s, &reg).unwrap_err();
        assert!(err.to_string().contains("unknown function"));
    }

    #[test]
    fn catalog_register_and_lookup() {
        let mut c = SchemaCatalog::new();
        c.register("t", Schema::of(&[("x", DataType::Int)]));
        assert!(c.contains("t"));
        assert_eq!(c.get("t").unwrap().arity(), 1);
        assert!(c.get("missing").is_err());
    }
}
