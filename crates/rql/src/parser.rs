//! Recursive-descent parser for RQL.
//!
//! Grammar (informal):
//!
//! ```text
//! statement    := (query | create_table | create_view | drop) [';']
//! create_table := CREATE TABLE ident '(' ident type (',' ident type)* ')'
//! create_view  := CREATE MATERIALIZED VIEW ident AS query
//! drop         := DROP (VIEW | TABLE) ident
//! query        := with_block | select
//! with_block   := WITH ident '(' cols ')' AS '(' select ')'
//!                 UNION [ALL] UNTIL FIXPOINT BY cols '(' select ')'
//! select       := SELECT [DISTINCT] projections FROM table_refs
//!                 [WHERE expr] [GROUP BY exprs] [HAVING expr]
//!                 [ORDER BY expr [ASC|DESC] (',' ...)*]
//!                 [LIMIT int [OFFSET int]]
//! table_ref    := ident [AS ident] | '(' select ')' [AS ident]
//! projection   := '*' | expr [AS ident]
//! expr         := or-chain of comparisons over +,-,*,/ terms; calls may
//!                 carry a '.{a, b}' destructuring suffix
//! ```
//!
//! The full language is documented in `docs/RQL.md` at the repository
//! root.

use crate::ast::{
    AstBinOp, AstExpr, LimitClause, OrderItem, Projection, Query, RecursiveWith, SelectBlock,
    Statement, TableRef,
};
use crate::lexer::{tokenize, Sym, Token};
use rex_core::error::{Result, RexError};
use rex_core::value::DataType;

/// Parse a single RQL statement.
pub fn parse(src: &str) -> Result<Statement> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(Sym::Semicolon); // optional trailing semicolon
    if !p.at_end() {
        return Err(p.error(format!("unexpected trailing token {}", p.peek_desc())));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_desc(&self) -> String {
        self.peek().map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: String) -> RexError {
        RexError::Parse { message, line: 0, col: self.pos }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.is_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}, found {}", self.peek_desc())))
        }
    }

    fn is_symbol(&self, s: Sym) -> bool {
        matches!(self.peek(), Some(Token::Symbol(x)) if *x == s)
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if self.is_symbol(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{s}', found {}", self.peek_desc())))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(i)) => Ok(i),
            other => Err(self.error(format!(
                "expected identifier, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    // ---- statements ------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_keyword("EXPLAIN") {
            let analyze = self.eat_keyword("ANALYZE");
            let inner = Box::new(self.statement()?);
            return Ok(Statement::Explain { analyze, inner });
        }
        if self.eat_keyword("CREATE") {
            if self.eat_keyword("TABLE") {
                return self.create_table();
            }
            self.expect_keyword("MATERIALIZED")?;
            self.expect_keyword("VIEW")?;
            let name = self.expect_ident()?;
            self.expect_keyword("AS")?;
            let query = self.query()?;
            return Ok(Statement::CreateView { name, query });
        }
        if self.eat_keyword("DROP") {
            if self.eat_keyword("VIEW") {
                return Ok(Statement::DropView { name: self.expect_ident()? });
            }
            if self.eat_keyword("TABLE") {
                return Ok(Statement::DropTable { name: self.expect_ident()? });
            }
            return Err(self.error(format!("expected VIEW or TABLE, found {}", self.peek_desc())));
        }
        Ok(Statement::Query(self.query()?))
    }

    /// `CREATE TABLE name (col type, ...)` — `CREATE TABLE` already
    /// consumed.
    fn create_table(&mut self) -> Result<Statement> {
        let name = self.expect_ident()?;
        self.expect_symbol(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident()?;
            let ty_name = self.expect_ident()?;
            let ty = DataType::parse(&ty_name).ok_or_else(|| {
                self.error(format!(
                    "unknown column type {ty_name} (expected one of: bool, int, bigint, \
                     double, float, string, text, list, any)"
                ))
            })?;
            columns.push((col, ty));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_symbol(Sym::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    // ---- query ----------------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        if self.eat_keyword("WITH") {
            let with = self.recursive_with()?;
            // An optional outer SELECT may follow to post-process the
            // fixpoint relation; the common case ends at the WITH.
            let select = if self.is_keyword("SELECT") { Some(self.select_block()?) } else { None };
            Ok(Query { with: Some(with), select })
        } else {
            let select = self.select_block()?;
            Ok(Query { with: None, select: Some(select) })
        }
    }

    fn recursive_with(&mut self) -> Result<RecursiveWith> {
        let name = self.expect_ident()?;
        self.expect_symbol(Sym::LParen)?;
        let mut columns = vec![self.expect_ident()?];
        while self.eat_symbol(Sym::Comma) {
            columns.push(self.expect_ident()?);
        }
        self.expect_symbol(Sym::RParen)?;
        self.expect_keyword("AS")?;
        self.expect_symbol(Sym::LParen)?;
        let base = self.select_block()?;
        self.expect_symbol(Sym::RParen)?;
        self.expect_keyword("UNION")?;
        let union_all = self.eat_keyword("ALL");
        self.expect_keyword("UNTIL")?;
        self.expect_keyword("FIXPOINT")?;
        self.expect_keyword("BY")?;
        let mut fixpoint_key = vec![self.expect_ident()?];
        while self.eat_symbol(Sym::Comma) {
            fixpoint_key.push(self.expect_ident()?);
        }
        self.expect_symbol(Sym::LParen)?;
        let step = self.select_block()?;
        self.expect_symbol(Sym::RParen)?;
        Ok(RecursiveWith { name, columns, base, union_all, fixpoint_key, step })
    }

    fn select_block(&mut self) -> Result<SelectBlock> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut projections = vec![self.projection()?];
        while self.eat_symbol(Sym::Comma) {
            projections.push(self.projection()?);
        }
        self.expect_keyword("FROM")?;
        let mut from = vec![self.table_ref()?];
        while self.eat_symbol(Sym::Comma) {
            from.push(self.table_ref()?);
        }
        let selection = if self.eat_keyword("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while self.eat_symbol(Sym::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            order_by.push(self.order_item()?);
            while self.eat_symbol(Sym::Comma) {
                order_by.push(self.order_item()?);
            }
        }
        let limit = self.limit_clause()?;
        Ok(SelectBlock {
            distinct,
            projections,
            from,
            selection,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn order_item(&mut self) -> Result<OrderItem> {
        let expr = self.expr()?;
        let desc = if self.eat_keyword("DESC") {
            true
        } else {
            self.eat_keyword("ASC");
            false
        };
        Ok(OrderItem { expr, desc })
    }

    fn limit_clause(&mut self) -> Result<Option<LimitClause>> {
        if !self.eat_keyword("LIMIT") {
            return Ok(None);
        }
        let fetch = self.expect_count("LIMIT")?;
        let offset = if self.eat_keyword("OFFSET") { self.expect_count("OFFSET")? } else { 0 };
        Ok(Some(LimitClause { fetch, offset }))
    }

    /// A non-negative integer literal (LIMIT/OFFSET operand).
    fn expect_count(&mut self, clause: &str) -> Result<u64> {
        match self.advance() {
            Some(Token::Int(i)) if i >= 0 => Ok(i as u64),
            other => Err(self.error(format!(
                "{clause} expects a non-negative integer, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn projection(&mut self) -> Result<Projection> {
        if self.eat_symbol(Sym::Star) {
            return Ok(Projection::Star);
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") { Some(self.expect_ident()?) } else { None };
        Ok(Projection::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.eat_symbol(Sym::LParen) {
            let q = self.select_block()?;
            self.expect_symbol(Sym::RParen)?;
            let alias = if self.eat_keyword("AS") {
                Some(self.expect_ident()?)
            } else if let Some(Token::Ident(_)) = self.peek() {
                Some(self.expect_ident()?)
            } else {
                None
            };
            return Ok(TableRef::Subquery { query: Box::new(q), alias });
        }
        let name = self.expect_ident()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident()?)
        } else if let Some(Token::Ident(_)) = self.peek() {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left =
                AstExpr::Binary { op: AstBinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left =
                AstExpr::Binary { op: AstBinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.eat_keyword("NOT") {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<AstExpr> {
        let left = self.additive()?;
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(AstBinOp::Eq),
            Some(Token::Symbol(Sym::Neq)) => Some(AstBinOp::Ne),
            Some(Token::Symbol(Sym::Lt)) => Some(AstBinOp::Lt),
            Some(Token::Symbol(Sym::Lte)) => Some(AstBinOp::Le),
            Some(Token::Symbol(Sym::Gt)) => Some(AstBinOp::Gt),
            Some(Token::Symbol(Sym::Gte)) => Some(AstBinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            Ok(AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) })
        } else {
            Ok(left)
        }
    }

    fn additive(&mut self) -> Result<AstExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_symbol(Sym::Plus) {
                AstBinOp::Add
            } else if self.eat_symbol(Sym::Minus) {
                AstBinOp::Sub
            } else {
                break;
            };
            let right = self.multiplicative()?;
            left = AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_symbol(Sym::Star) {
                AstBinOp::Mul
            } else if self.eat_symbol(Sym::Slash) {
                AstBinOp::Div
            } else {
                break;
            };
            let right = self.unary()?;
            left = AstExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<AstExpr> {
        if self.eat_symbol(Sym::Minus) {
            Ok(AstExpr::Neg(Box::new(self.unary()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.advance() {
            Some(Token::Int(i)) => Ok(AstExpr::Int(i)),
            Some(Token::Float(x)) => Ok(AstExpr::Float(x)),
            Some(Token::Str(s)) => Ok(AstExpr::Str(s)),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(AstExpr::Null),
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(AstExpr::Bool(true)),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(AstExpr::Bool(false)),
            Some(Token::Symbol(Sym::LParen)) => {
                let e = self.expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if self.is_symbol(Sym::LParen) {
                    self.call(name)
                } else if self.eat_symbol(Sym::Dot) {
                    let col = self.expect_ident()?;
                    Ok(AstExpr::Column { qualifier: Some(name), name: col })
                } else {
                    Ok(AstExpr::column(name))
                }
            }
            other => Err(self.error(format!(
                "expected expression, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn call(&mut self, name: String) -> Result<AstExpr> {
        self.expect_symbol(Sym::LParen)?;
        let mut args = Vec::new();
        if !self.is_symbol(Sym::RParen) {
            loop {
                if self.eat_symbol(Sym::Star) {
                    args.push(AstExpr::Star);
                } else {
                    args.push(self.expr()?);
                }
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        self.expect_symbol(Sym::RParen)?;
        // Optional `.{a, b}` destructuring.
        let destructure = if self.is_symbol(Sym::Dot)
            && matches!(self.tokens.get(self.pos + 1), Some(Token::Symbol(Sym::LBrace)))
        {
            self.pos += 2;
            let mut fields = vec![self.expect_ident()?];
            while self.eat_symbol(Sym::Comma) {
                fields.push(self.expect_ident()?);
            }
            self.expect_symbol(Sym::RBrace)?;
            Some(fields)
        } else {
            None
        };
        Ok(AstExpr::Call { name, args, destructure })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: &str) -> Query {
        match parse(src).unwrap() {
            Statement::Query(q) => q,
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn parses_create_materialized_view() {
        let stmt = parse(
            "CREATE MATERIALIZED VIEW hot AS SELECT srcId, count(*) FROM graph GROUP BY srcId",
        )
        .unwrap();
        let Statement::CreateView { name, query } = stmt else {
            panic!("expected CreateView, got {stmt:?}");
        };
        assert_eq!(name, "hot");
        assert_eq!(query.select.unwrap().group_by.len(), 1);
        assert!(parse("CREATE VIEW v AS SELECT 1 FROM t").is_err(), "MATERIALIZED is required");
        assert!(parse("CREATE MATERIALIZED VIEW v SELECT 1 FROM t").is_err(), "AS is required");
    }

    #[test]
    fn parses_recursive_view_definition() {
        let stmt = parse(
            "CREATE MATERIALIZED VIEW reach AS
             WITH R (id) AS (SELECT srcId FROM graph WHERE srcId = 0)
             UNION UNTIL FIXPOINT BY id (
               SELECT graph.destId FROM graph, R WHERE graph.srcId = R.id)",
        )
        .unwrap();
        let Statement::CreateView { query, .. } = stmt else {
            panic!("expected CreateView, got {stmt:?}");
        };
        assert!(query.with.is_some());
    }

    #[test]
    fn parses_drop_statements() {
        assert_eq!(parse("DROP VIEW v;").unwrap(), Statement::DropView { name: "v".into() });
        assert_eq!(parse("drop table t").unwrap(), Statement::DropTable { name: "t".into() });
        assert!(parse("DROP v").is_err());
        assert!(Statement::DropView { name: "v".into() }.is_ddl());
    }

    #[test]
    fn parses_fig4_aggregation_query() {
        let query = q("SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1");
        let sel = query.select.unwrap();
        assert_eq!(sel.projections.len(), 2);
        assert_eq!(sel.from.len(), 1);
        assert!(sel.selection.is_some());
        assert!(sel.group_by.is_empty());
        match &sel.projections[1] {
            Projection::Expr { expr: AstExpr::Call { name, args, .. }, .. } => {
                assert_eq!(name, "count");
                assert_eq!(args, &vec![AstExpr::Star]);
            }
            other => panic!("unexpected projection {other:?}"),
        }
    }

    #[test]
    fn parses_group_by_with_aliases() {
        let query = q("SELECT srcId AS s, sum(pr) AS total FROM pr GROUP BY srcId");
        let sel = query.select.unwrap();
        assert_eq!(sel.group_by.len(), 1);
        match &sel.projections[0] {
            Projection::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("s")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_join_with_qualified_columns() {
        let query = q("SELECT graph.destId, PR.pr FROM graph, PR WHERE graph.srcId = PR.srcId");
        let sel = query.select.unwrap();
        assert_eq!(sel.from.len(), 2);
        match &sel.selection {
            Some(AstExpr::Binary { op: AstBinOp::Eq, left, right }) => {
                assert_eq!(
                    **left,
                    AstExpr::Column { qualifier: Some("graph".into()), name: "srcId".into() }
                );
                assert_eq!(
                    **right,
                    AstExpr::Column { qualifier: Some("PR".into()), name: "srcId".into() }
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_listing1_pagerank() {
        let src = "
            WITH PR (srcId, pr) AS (
              SELECT srcId, 1.0 AS pr FROM graph
            ) UNION UNTIL FIXPOINT BY srcId (
              SELECT nbr, 0.15 + 0.85 * sum(prDiff)
              FROM (SELECT PRAgg(srcId, pr).{nbr, prDiff}
                    FROM graph, PR
                    WHERE graph.srcId = PR.srcId GROUP BY srcId)
              GROUP BY nbr)";
        let query = q(src);
        let with = query.with.unwrap();
        assert_eq!(with.name, "PR");
        assert_eq!(with.columns, vec!["srcId", "pr"]);
        assert!(!with.union_all);
        assert_eq!(with.fixpoint_key, vec!["srcId"]);
        assert!(query.select.is_none());
        // The step's FROM is a subquery containing the UDA destructure.
        match &with.step.from[0] {
            TableRef::Subquery { query: inner, .. } => match &inner.projections[0] {
                Projection::Expr {
                    expr: AstExpr::Call { name, destructure: Some(d), .. }, ..
                } => {
                    assert_eq!(name, "PRAgg");
                    assert_eq!(d, &vec!["nbr", "prDiff"]);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_listing2_shortest_path() {
        let src = "
            WITH SP (srcId, nbrId, dist) AS (
              SELECT srcId, -1, 0 FROM graph WHERE srcId = 3
            ) UNION ALL UNTIL FIXPOINT BY srcId (
              SELECT nbr, ArgMin(srcId, distOut).{id, dist}
              FROM (SELECT srcId, SPAgg(nbrId, dist).{nbr, distOut}
                    FROM graph, SP WHERE graph.srcId = SP.srcId
                    GROUP BY srcId) GROUP BY nbr)";
        let query = q(src);
        let with = query.with.unwrap();
        assert!(with.union_all);
        assert_eq!(with.columns.len(), 3);
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let query = q("SELECT 0.15 + 0.85 * sum(x) FROM t");
        let sel = query.select.unwrap();
        match &sel.projections[0] {
            Projection::Expr { expr: AstExpr::Binary { op: AstBinOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, AstExpr::Binary { op: AstBinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("SELECT 1 FROM t nonsense extra").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("WITH R (a) AS (SELECT a FROM t) UNION SELECT 1 FROM t").is_err());
    }

    #[test]
    fn optional_semicolon_ok() {
        assert!(parse("SELECT 1 FROM t;").is_ok());
    }

    #[test]
    fn table_alias_without_as() {
        let query = q("SELECT g.srcId FROM graph g");
        let sel = query.select.unwrap();
        assert_eq!(sel.from[0].binding(), Some("g"));
    }

    #[test]
    fn parses_distinct() {
        let sel = q("SELECT DISTINCT srcId FROM graph").select.unwrap();
        assert!(sel.distinct);
        let sel = q("SELECT srcId FROM graph").select.unwrap();
        assert!(!sel.distinct);
    }

    #[test]
    fn parses_having() {
        let sel = q("SELECT srcId, count(*) FROM graph GROUP BY srcId HAVING count(*) > 2")
            .select
            .unwrap();
        assert!(sel.having.is_some());
        match sel.having.unwrap() {
            AstExpr::Binary { op: AstBinOp::Gt, left, .. } => {
                assert!(matches!(*left, AstExpr::Call { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_order_by_and_limit() {
        let sel =
            q("SELECT srcId, destId FROM graph ORDER BY destId DESC, srcId LIMIT 10 OFFSET 3")
                .select
                .unwrap();
        assert_eq!(sel.order_by.len(), 2);
        assert!(sel.order_by[0].desc);
        assert!(!sel.order_by[1].desc);
        assert_eq!(sel.limit, Some(LimitClause { fetch: 10, offset: 3 }));
        // ASC is accepted and is the default.
        let sel = q("SELECT srcId FROM graph ORDER BY srcId ASC LIMIT 5").select.unwrap();
        assert!(!sel.order_by[0].desc);
        assert_eq!(sel.limit, Some(LimitClause { fetch: 5, offset: 0 }));
    }

    #[test]
    fn order_by_accepts_expressions_and_positions() {
        let sel =
            q("SELECT srcId, destId FROM graph ORDER BY srcId + destId DESC, 1").select.unwrap();
        assert!(matches!(sel.order_by[0].expr, AstExpr::Binary { .. }));
        assert_eq!(sel.order_by[1].expr, AstExpr::Int(1));
    }

    #[test]
    fn limit_requires_nonnegative_int() {
        assert!(parse("SELECT srcId FROM graph LIMIT x").is_err());
        assert!(parse("SELECT srcId FROM graph LIMIT -1").is_err());
        assert!(parse("SELECT srcId FROM graph LIMIT 3 OFFSET q").is_err());
    }

    #[test]
    fn parses_create_table() {
        let stmt =
            parse("CREATE TABLE lineitem (orderkey int, price double, comment string, open bool)")
                .unwrap();
        let Statement::CreateTable { name, columns } = stmt else {
            panic!("expected CreateTable, got {stmt:?}");
        };
        assert_eq!(name, "lineitem");
        assert_eq!(
            columns,
            vec![
                ("orderkey".to_string(), rex_core::value::DataType::Int),
                ("price".to_string(), rex_core::value::DataType::Double),
                ("comment".to_string(), rex_core::value::DataType::Str),
                ("open".to_string(), rex_core::value::DataType::Bool),
            ]
        );
        assert!(Statement::CreateTable { name: "t".into(), columns: vec![] }.is_ddl());
    }

    #[test]
    fn create_table_rejects_bad_types_and_shapes() {
        assert!(parse("CREATE TABLE t (x notatype)").is_err());
        assert!(parse("CREATE TABLE t ()").is_err());
        assert!(parse("CREATE TABLE t (x int").is_err());
        assert!(parse("CREATE TABLE (x int)").is_err());
    }

    #[test]
    fn clause_order_is_enforced() {
        // ORDER BY must come after HAVING; LIMIT last.
        assert!(parse("SELECT a FROM t LIMIT 1 ORDER BY a").is_err());
        assert!(parse("SELECT a FROM t ORDER BY a HAVING a > 1").is_err());
    }

    #[test]
    fn explain_wraps_any_statement() {
        let stmt = parse("EXPLAIN SELECT a FROM t").unwrap();
        let Statement::Explain { analyze, inner } = stmt else {
            panic!("expected Explain, got {stmt:?}");
        };
        assert!(!analyze);
        assert!(matches!(*inner, Statement::Query(_)));
        assert!(!Statement::Explain { analyze, inner }.is_ddl());

        let stmt = parse("explain analyze SELECT a FROM t WHERE a > 1").unwrap();
        let Statement::Explain { analyze, .. } = &stmt else {
            panic!("expected Explain, got {stmt:?}");
        };
        assert!(analyze);

        // EXPLAIN over DDL parses (rejected at execution) and stays DDL.
        let stmt = parse("EXPLAIN DROP TABLE t").unwrap();
        assert!(stmt.is_ddl());
        // Trailing garbage still errors.
        assert!(parse("EXPLAIN").is_err());
    }
}
