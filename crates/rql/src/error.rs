//! The RQL front-end's typed error.
//!
//! Every stage of the pipeline (lex/parse → resolve/plan → lower) reports
//! errors as [`rex_core::error::RexError`] internally; [`RqlError`] wraps
//! them with the stage that failed so callers above the language layer —
//! the `rex::Session` facade in particular — can convert RQL failures into
//! engine errors with `?` instead of ad-hoc `map_err` strings, while
//! still being able to tell a syntax error from a planning error.

use rex_core::error::RexError;
use std::fmt;

/// Which front-end stage produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RqlStage {
    /// Tokenizing / parsing the source text.
    Parse,
    /// Name resolution, type checking, and logical planning.
    Plan,
    /// Physical lowering to a plan graph.
    Lower,
}

impl fmt::Display for RqlStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RqlStage::Parse => write!(f, "parse"),
            RqlStage::Plan => write!(f, "plan"),
            RqlStage::Lower => write!(f, "lower"),
        }
    }
}

/// An error from the RQL front-end, tagged with the failing stage.
#[derive(Debug, Clone, PartialEq)]
pub struct RqlError {
    /// The pipeline stage that failed.
    pub stage: RqlStage,
    /// The underlying engine error.
    pub source: RexError,
}

impl RqlError {
    /// Tag an engine error with the stage it came from.
    pub fn at(stage: RqlStage, source: RexError) -> RqlError {
        RqlError { stage, source }
    }
}

impl fmt::Display for RqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rql {} failed: {}", self.stage, self.source)
    }
}

impl std::error::Error for RqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// RQL errors flow into the engine's unified error type, keeping the
/// variant and message. The `Parse` and `Plan` stages are already named
/// by their variants; a `Lower` failure tags its message so it stays
/// distinguishable from a runtime error of the same variant.
impl From<RqlError> for RexError {
    fn from(e: RqlError) -> RexError {
        match (e.stage, e.source) {
            (RqlStage::Lower, RexError::Storage(m)) => RexError::Storage(format!("lowering: {m}")),
            (RqlStage::Lower, RexError::Plan(m)) => RexError::Plan(format!("lowering: {m}")),
            (RqlStage::Lower, RexError::Udf(m)) => RexError::Udf(format!("lowering: {m}")),
            (_, source) => source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_stage() {
        let e = RqlError::at(RqlStage::Parse, RexError::Plan("boom".into()));
        assert!(e.to_string().contains("rql parse failed"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn converts_into_rex_error_keeping_variant_and_stage() {
        let e = RqlError::at(RqlStage::Lower, RexError::Storage("missing".into()));
        let r: RexError = e.into();
        assert!(matches!(r, RexError::Storage(ref m) if m == "lowering: missing"));
        // Parse/Plan stages are already named by their variants.
        let e = RqlError::at(RqlStage::Plan, RexError::Plan("bad column".into()));
        let r: RexError = e.into();
        assert!(matches!(r, RexError::Plan(ref m) if m == "bad column"));
    }
}
