//! Storage-backed [`TableProvider`]s.
//!
//! Lowering reads table contents through the [`TableProvider`] trait; this
//! module supplies the two implementations every engine uses:
//!
//! * [`CatalogProvider`] — the whole table, for single-node execution;
//! * [`PartitionProvider`] — one worker's primary partition under a
//!   [`PartitionSnapshot`], for per-worker lowering in the cluster.
//!
//! Both read from the same [`Catalog`] the `rex::Session` facade inserts
//! into, so local and distributed queries see identical data.

use crate::lower::TableProvider;
use rex_core::error::Result;
use rex_core::tuple::Tuple;
use rex_storage::catalog::Catalog;
use rex_storage::partition::PartitionSnapshot;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A per-query memo of whole-table partitionings, shared by the
/// [`PartitionProvider`]s of all workers lowering the same plan. The
/// first worker to scan a table partitions it for *every* node in one
/// pass (each row hashed once); the others just take their slice. Entries
/// are keyed by the snapshot's live-node set, so a recovery attempt under
/// a shrunken snapshot recomputes rather than serving stale partitions.
#[derive(Clone, Default)]
pub struct PartitionMemo {
    #[allow(clippy::type_complexity)]
    inner: Arc<Mutex<HashMap<String, (Vec<usize>, Arc<Vec<Vec<Tuple>>>)>>>,
}

impl PartitionMemo {
    /// An empty memo (one per distributed query).
    pub fn new() -> PartitionMemo {
        PartitionMemo::default()
    }

    /// All nodes' partitions of `table` under `snap`, computed on first
    /// use.
    fn partitions(
        &self,
        catalog: &Catalog,
        table: &str,
        snap: &PartitionSnapshot,
    ) -> Result<Arc<Vec<Vec<Tuple>>>> {
        let mut memo = self.inner.lock().expect("partition memo poisoned");
        if let Some((nodes, parts)) = memo.get(table) {
            if nodes == snap.nodes() {
                return Ok(parts.clone());
            }
        }
        let parts = Arc::new(catalog.get(table)?.partition_all(snap));
        memo.insert(table.to_string(), (snap.nodes().to_vec(), parts.clone()));
        Ok(parts)
    }
}

/// Scans whole stored tables from a [`Catalog`] (single-node execution).
#[derive(Clone)]
pub struct CatalogProvider {
    catalog: Catalog,
}

impl CatalogProvider {
    /// Provider over the given catalog.
    pub fn new(catalog: Catalog) -> CatalogProvider {
        CatalogProvider { catalog }
    }
}

impl TableProvider for CatalogProvider {
    fn scan(&self, table: &str) -> Result<Vec<Tuple>> {
        Ok(self.catalog.get(table)?.rows().to_vec())
    }

    /// Zero-copy scan source: the stored table's `Arc` snapshot goes
    /// straight into the plan; emitted rows are `Arc` bumps, and nothing
    /// copies the table up front.
    fn scan_shared(&self, table: &str) -> Result<rex_core::operators::ScanRows> {
        Ok(rex_core::operators::ScanRows::Shared(self.catalog.get(table)?))
    }

    fn scan_bytes(&self, table: &str) -> Option<u64> {
        self.catalog.get(table).ok().map(|t| t.byte_size())
    }

    fn partition_cols(&self, table: &str) -> Option<Vec<usize>> {
        self.catalog.get(table).ok().map(|t| t.partition_cols().to_vec())
    }
}

/// Scans one worker's primary partition of each stored table under a
/// frozen partition snapshot (distributed execution: every worker lowers
/// the same logical plan against its own `PartitionProvider`).
#[derive(Clone)]
pub struct PartitionProvider {
    catalog: Catalog,
    snapshot: PartitionSnapshot,
    worker: usize,
    /// Shared partitioning memo; `None` partitions per call.
    memo: Option<PartitionMemo>,
}

impl PartitionProvider {
    /// Provider for `worker`'s partition under `snapshot`.
    pub fn new(catalog: Catalog, snapshot: PartitionSnapshot, worker: usize) -> PartitionProvider {
        PartitionProvider { catalog, snapshot, worker, memo: None }
    }

    /// Share a query-scoped [`PartitionMemo`] so every worker's lowering
    /// reuses one partitioning pass per table.
    pub fn with_memo(mut self, memo: PartitionMemo) -> PartitionProvider {
        self.memo = Some(memo);
        self
    }
}

impl TableProvider for PartitionProvider {
    fn scan(&self, table: &str) -> Result<Vec<Tuple>> {
        if let Some(memo) = &self.memo {
            let parts = memo.partitions(&self.catalog, table, &self.snapshot)?;
            return Ok(parts.get(self.worker).cloned().unwrap_or_default());
        }
        Ok(self.catalog.get(table)?.partition_for(&self.snapshot, self.worker))
    }

    /// Estimated bytes of this worker's primary partition: the stored
    /// table split evenly across live nodes. The absolute number is rough
    /// under key skew, but join build-side selection only needs the
    /// *relative* ordering of the two inputs, which an even split
    /// preserves.
    fn scan_bytes(&self, table: &str) -> Option<u64> {
        let nodes = self.snapshot.n_nodes().max(1) as u64;
        self.catalog.get(table).ok().map(|t| t.byte_size() / nodes)
    }

    fn partition_cols(&self, table: &str) -> Option<Vec<usize>> {
        self.catalog.get(table).ok().map(|t| t.partition_cols().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;
    use rex_storage::table::StoredTable;

    fn catalog_with_rows(n: i64) -> Catalog {
        let cat = Catalog::new();
        let mut t = StoredTable::new(
            "t",
            Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]),
            vec![0],
        );
        for i in 0..n {
            t.insert(tuple![i, i * 10]).unwrap();
        }
        cat.register(t);
        cat
    }

    #[test]
    fn catalog_provider_scans_whole_table() {
        let p = CatalogProvider::new(catalog_with_rows(10));
        assert_eq!(p.scan("t").unwrap().len(), 10);
        assert_eq!(p.partition_cols("t"), Some(vec![0]));
        assert!(p.scan("missing").is_err());
    }

    #[test]
    fn partition_providers_cover_table_disjointly() {
        let cat = catalog_with_rows(100);
        let snap = PartitionSnapshot::new(4, 1);
        let mut total = 0;
        for w in 0..4 {
            let p = PartitionProvider::new(cat.clone(), snap.clone(), w);
            total += p.scan("t").unwrap().len();
        }
        assert_eq!(total, 100, "partitions must cover all rows exactly once");
    }
}
