//! Storage-backed [`TableProvider`]s.
//!
//! Lowering reads table contents through the [`TableProvider`] trait; this
//! module supplies the two implementations every engine uses:
//!
//! * [`CatalogProvider`] — the whole table, for single-node execution;
//! * [`PartitionProvider`] — one worker's primary partition under a
//!   [`PartitionSnapshot`], for per-worker lowering in the cluster.
//!
//! Both read from the same [`Catalog`] the `rex::Session` facade inserts
//! into, so local and distributed queries see identical data.

use crate::lower::TableProvider;
use rex_core::error::Result;
use rex_core::tuple::Tuple;
use rex_storage::catalog::Catalog;
use rex_storage::partition::PartitionSnapshot;

/// Scans whole stored tables from a [`Catalog`] (single-node execution).
#[derive(Clone)]
pub struct CatalogProvider {
    catalog: Catalog,
}

impl CatalogProvider {
    /// Provider over the given catalog.
    pub fn new(catalog: Catalog) -> CatalogProvider {
        CatalogProvider { catalog }
    }
}

impl TableProvider for CatalogProvider {
    fn scan(&self, table: &str) -> Result<Vec<Tuple>> {
        Ok(self.catalog.get(table)?.rows().to_vec())
    }

    fn partition_cols(&self, table: &str) -> Option<Vec<usize>> {
        self.catalog.get(table).ok().map(|t| t.partition_cols().to_vec())
    }
}

/// Scans one worker's primary partition of each stored table under a
/// frozen partition snapshot (distributed execution: every worker lowers
/// the same logical plan against its own `PartitionProvider`).
#[derive(Clone)]
pub struct PartitionProvider {
    catalog: Catalog,
    snapshot: PartitionSnapshot,
    worker: usize,
}

impl PartitionProvider {
    /// Provider for `worker`'s partition under `snapshot`.
    pub fn new(catalog: Catalog, snapshot: PartitionSnapshot, worker: usize) -> PartitionProvider {
        PartitionProvider { catalog, snapshot, worker }
    }
}

impl TableProvider for PartitionProvider {
    fn scan(&self, table: &str) -> Result<Vec<Tuple>> {
        Ok(self.catalog.get(table)?.partition_for(&self.snapshot, self.worker))
    }

    fn partition_cols(&self, table: &str) -> Option<Vec<usize>> {
        self.catalog.get(table).ok().map(|t| t.partition_cols().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::tuple;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;
    use rex_storage::table::StoredTable;

    fn catalog_with_rows(n: i64) -> Catalog {
        let cat = Catalog::new();
        let mut t = StoredTable::new(
            "t",
            Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]),
            vec![0],
        );
        for i in 0..n {
            t.insert(tuple![i, i * 10]).unwrap();
        }
        cat.register(t);
        cat
    }

    #[test]
    fn catalog_provider_scans_whole_table() {
        let p = CatalogProvider::new(catalog_with_rows(10));
        assert_eq!(p.scan("t").unwrap().len(), 10);
        assert_eq!(p.partition_cols("t"), Some(vec![0]));
        assert!(p.scan("missing").is_err());
    }

    #[test]
    fn partition_providers_cover_table_disjointly() {
        let cat = catalog_with_rows(100);
        let snap = PartitionSnapshot::new(4, 1);
        let mut total = 0;
        for w in 0..4 {
            let p = PartitionProvider::new(cat.clone(), snap.clone(), w);
            total += p.scan("t").unwrap().len();
        }
        assert_eq!(total, 100, "partitions must cover all rows exactly once");
    }
}
