//! RQL abstract syntax.
//!
//! The surface language is SQL with the paper's extensions: recursion via
//! `WITH R (cols) AS (base) UNION [ALL] UNTIL FIXPOINT BY key (recursive)`
//! and table-valued UDA invocation with destructuring, `F(args).{a, b}`.

use rex_core::value::DataType;
use std::fmt;

/// A full RQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A (possibly recursive) query.
    Query(Query),
    /// `CREATE TABLE <name> (col type, ...)`: define an empty stored base
    /// table (the DDL form of `Session::create_table`).
    CreateTable {
        /// The table's name.
        name: String,
        /// Column names and declared types, in order.
        columns: Vec<(String, DataType)>,
    },
    /// `CREATE MATERIALIZED VIEW <name> AS <query>`: define a view that is
    /// kept up to date incrementally as its base tables change.
    CreateView {
        /// The view's name.
        name: String,
        /// The defining query.
        query: Query,
    },
    /// `DROP VIEW <name>`: remove a materialized view.
    DropView {
        /// The view's name.
        name: String,
    },
    /// `DROP TABLE <name>`: remove a stored base table.
    DropTable {
        /// The table's name.
        name: String,
    },
    /// `EXPLAIN [ANALYZE] <statement>`: render the inner statement's plan.
    /// With `ANALYZE` the statement is executed and the plan is annotated
    /// with measured per-operator counters.
    Explain {
        /// `EXPLAIN ANALYZE` (run and measure) vs plain `EXPLAIN`.
        analyze: bool,
        /// The statement being explained (a query in practice; DDL is
        /// rejected at execution time).
        inner: Box<Statement>,
    },
}

impl Statement {
    /// Whether this statement is DDL (executed against the session's
    /// catalogs rather than planned into a dataflow).
    pub fn is_ddl(&self) -> bool {
        match self {
            Statement::Query(_) => false,
            Statement::Explain { inner, .. } => inner.is_ddl(),
            _ => true,
        }
    }
}

/// A query: an optional recursive `WITH` wrapping a select block.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The recursive definition, when present.
    pub with: Option<RecursiveWith>,
    /// The main (or base, when `with` is present and `select` is empty)
    /// select block. For recursive queries the final result *is* the
    /// fixpoint relation, so this is `None`.
    pub select: Option<SelectBlock>,
}

/// `WITH name (cols) AS (base) UNION [ALL] UNTIL FIXPOINT BY key (step)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecursiveWith {
    /// The recursive relation's name.
    pub name: String,
    /// Declared column names.
    pub columns: Vec<String>,
    /// The base case.
    pub base: SelectBlock,
    /// `UNION ALL` (bag) vs `UNION` (set) semantics.
    pub union_all: bool,
    /// The `FIXPOINT BY` key column names.
    pub fixpoint_key: Vec<String>,
    /// The recursive step.
    pub step: SelectBlock,
}

/// A single SELECT block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectBlock {
    /// `SELECT DISTINCT`: deduplicate the result (planned as a group-by
    /// over every output column).
    pub distinct: bool,
    /// The projection list.
    pub projections: Vec<Projection>,
    /// FROM items (implicit cross join, restricted by WHERE).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub selection: Option<AstExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<AstExpr>,
    /// HAVING predicate (filters groups, may reference aggregates).
    pub having: Option<AstExpr>,
    /// ORDER BY keys, applied to the block's output.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT n [OFFSET m]`.
    pub limit: Option<LimitClause>,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// The sort key: an output column, a positional index (`ORDER BY 2`),
    /// or any scalar expression over the output row.
    pub expr: AstExpr,
    /// `true` for `DESC` (default `ASC`).
    pub desc: bool,
}

/// `LIMIT n [OFFSET m]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimitClause {
    /// Maximum rows returned.
    pub fetch: u64,
    /// Rows skipped before the first returned row.
    pub offset: u64,
}

/// One item of a projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*`.
    Star,
    /// `expr [AS alias]`.
    Expr {
        /// The projected expression.
        expr: AstExpr,
        /// Optional alias.
        alias: Option<String>,
    },
}

/// A FROM item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named table (possibly the recursive relation) with an optional
    /// alias.
    Table {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// A parenthesized subquery.
    Subquery {
        /// The nested select.
        query: Box<SelectBlock>,
        /// Optional alias.
        alias: Option<String>,
    },
}

impl TableRef {
    /// The name this item binds in scope.
    pub fn binding(&self) -> Option<&str> {
        match self {
            TableRef::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => alias.as_deref(),
        }
    }
}

/// Binary operators at the AST level (mapped 1:1 onto the engine's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// An RQL scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// `[qualifier.]name`.
    Column {
        /// Optional table qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// NULL.
    Null,
    /// `left op right`.
    Binary {
        /// Operator.
        op: AstBinOp,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// Unary minus.
    Neg(Box<AstExpr>),
    /// NOT.
    Not(Box<AstExpr>),
    /// A function / aggregate / UDA call, optionally destructured into
    /// named output fields: `F(args)` or `F(args).{a, b}`.
    Call {
        /// Function name.
        name: String,
        /// Arguments (`Star` allowed for `count(*)`).
        args: Vec<AstExpr>,
        /// The `.{a, b}` output fields, when present.
        destructure: Option<Vec<String>>,
    },
    /// `*` as a call argument (`count(*)`).
    Star,
}

impl AstExpr {
    /// Shorthand for an unqualified column.
    pub fn column(name: impl Into<String>) -> AstExpr {
        AstExpr::Column { qualifier: None, name: name.into() }
    }

    /// Whether any node in this expression is a call to one of `names`
    /// (used to detect aggregate expressions).
    pub fn contains_call_to(&self, pred: &dyn Fn(&str) -> bool) -> bool {
        match self {
            AstExpr::Call { name, args, .. } => {
                pred(name) || args.iter().any(|a| a.contains_call_to(pred))
            }
            AstExpr::Binary { left, right, .. } => {
                left.contains_call_to(pred) || right.contains_call_to(pred)
            }
            AstExpr::Neg(e) | AstExpr::Not(e) => e.contains_call_to(pred),
            _ => false,
        }
    }
}

impl fmt::Display for AstExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstExpr::Column { qualifier: Some(q), name } => write!(f, "{q}.{name}"),
            AstExpr::Column { qualifier: None, name } => write!(f, "{name}"),
            AstExpr::Int(i) => write!(f, "{i}"),
            AstExpr::Float(x) => write!(f, "{x}"),
            AstExpr::Str(s) => write!(f, "'{s}'"),
            AstExpr::Bool(b) => write!(f, "{b}"),
            AstExpr::Null => write!(f, "NULL"),
            AstExpr::Binary { op, left, right } => write!(f, "({left} {op:?} {right})"),
            AstExpr::Neg(e) => write!(f, "-{e}"),
            AstExpr::Not(e) => write!(f, "NOT {e}"),
            AstExpr::Call { name, args, destructure } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
                if let Some(d) = destructure {
                    write!(f, ".{{{}}}", d.join(", "))?;
                }
                Ok(())
            }
            AstExpr::Star => write!(f, "*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ref_binding_prefers_alias() {
        let t = TableRef::Table { name: "graph".into(), alias: Some("g".into()) };
        assert_eq!(t.binding(), Some("g"));
        let t2 = TableRef::Table { name: "graph".into(), alias: None };
        assert_eq!(t2.binding(), Some("graph"));
        let s = TableRef::Subquery { query: Box::new(SelectBlock::default()), alias: None };
        assert_eq!(s.binding(), None);
    }

    #[test]
    fn contains_call_detects_nested_aggregates() {
        let e = AstExpr::Binary {
            op: AstBinOp::Add,
            left: Box::new(AstExpr::Float(0.15)),
            right: Box::new(AstExpr::Binary {
                op: AstBinOp::Mul,
                left: Box::new(AstExpr::Float(0.85)),
                right: Box::new(AstExpr::Call {
                    name: "sum".into(),
                    args: vec![AstExpr::column("prDiff")],
                    destructure: None,
                }),
            }),
        };
        assert!(e.contains_call_to(&|n| n == "sum"));
        assert!(!e.contains_call_to(&|n| n == "min"));
    }

    #[test]
    fn display_round_trips_call_with_destructure() {
        let e = AstExpr::Call {
            name: "PRAgg".into(),
            args: vec![AstExpr::column("srcId"), AstExpr::column("pr")],
            destructure: Some(vec!["nbr".into(), "prDiff".into()]),
        };
        assert_eq!(e.to_string(), "PRAgg(srcId, pr).{nbr, prDiff}");
    }
}
