//! Physical lowering: [`LogicalPlan`] → executable
//! [`PlanGraph`](rex_core::exec::PlanGraph).
//!
//! Lowering is mechanical: scans read from a [`TableProvider`], filters
//! and projections map 1:1 onto their operators, joins become pipelined
//! hash joins (with the registered handler attached for handler joins),
//! aggregates become a rehash + group-by (+ optional post-projection), and
//! a fixpoint becomes the Figure 1 loop: base → fixpoint port 0, feedback
//! out of port 0 into the step subplan, step output rehashed on the
//! fixpoint key back into port 1, finals out of port 1 into the sink.

use crate::logical::{AggCall, LogicalPlan};
use crate::resolve::SchemaCatalog;
use rex_core::error::{Result, RexError};
use rex_core::exec::{NodeId, PlanGraph};
use rex_core::operators::{
    AggSpec, FilterOp, FixpointOp, GroupByOp, HashJoinOp, ProjectOp, ScanOp, SinkOp, Termination,
};
use rex_core::tuple::Tuple;
use rex_core::udf::Registry;
use std::collections::HashMap;

/// Supplies table contents at lowering time (the worker's partition in
/// distributed execution, the full table locally).
pub trait TableProvider {
    /// The rows of `table` visible to this plan instance.
    fn scan(&self, table: &str) -> Result<Vec<Tuple>>;
}

/// A simple in-memory provider.
#[derive(Debug, Clone, Default)]
pub struct MemTables {
    tables: HashMap<String, Vec<Tuple>>,
}

impl MemTables {
    /// Empty provider.
    pub fn new() -> MemTables {
        MemTables::default()
    }

    /// Register a table's rows.
    pub fn insert(&mut self, name: impl Into<String>, rows: Vec<Tuple>) {
        self.tables.insert(name.into(), rows);
    }
}

impl TableProvider for MemTables {
    fn scan(&self, table: &str) -> Result<Vec<Tuple>> {
        self.tables
            .get(table)
            .cloned()
            .ok_or_else(|| RexError::Storage(format!("no data registered for table {table}")))
    }
}

/// Iteration cap applied to RQL fixpoints (safety net against diverging
/// user queries; the paper's optimizer applies a similar cap, §5.3).
pub const DEFAULT_MAX_STRATA: u64 = 10_000;

/// Compile RQL source text into an executable plan graph.
pub fn compile(
    src: &str,
    catalog: &SchemaCatalog,
    provider: &dyn TableProvider,
    reg: &Registry,
) -> Result<PlanGraph> {
    let logical = crate::logical::plan_text(src, catalog, reg)?;
    lower(&logical, provider, reg)
}

/// Lower a logical plan into a plan graph with a sink on the result.
pub fn lower(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    reg: &Registry,
) -> Result<PlanGraph> {
    let mut g = PlanGraph::new();
    let mut ctx = Lowering { g: &mut g, provider, reg, fixpoint: None };
    let (node, port) = ctx.node(plan)?;
    let sink = g.add(Box::new(SinkOp::new()));
    g.connect(node, port, sink, 0);
    Ok(g)
}

struct Lowering<'a> {
    g: &'a mut PlanGraph,
    provider: &'a dyn TableProvider,
    reg: &'a Registry,
    /// While lowering a fixpoint step: the fixpoint node whose output port
    /// 0 feeds [`LogicalPlan::FixpointRef`] consumers.
    fixpoint: Option<NodeId>,
}

impl Lowering<'_> {
    /// Lower `plan`, returning `(node, output port)` of its result stream.
    fn node(&mut self, plan: &LogicalPlan) -> Result<(NodeId, usize)> {
        match plan {
            LogicalPlan::Scan { table, .. } => {
                let rows = self.provider.scan(table)?;
                let id = self.g.add(Box::new(ScanOp::new(table.clone(), rows)));
                Ok((id, 0))
            }
            LogicalPlan::FixpointRef { name, .. } => {
                let fp = self.fixpoint.ok_or_else(|| {
                    RexError::Plan(format!("recursive relation {name} referenced outside WITH"))
                })?;
                Ok((fp, 0))
            }
            LogicalPlan::Filter { input, predicate } => {
                let (src, port) = self.node(input)?;
                let id = self.g.add(Box::new(FilterOp::new(predicate.clone())));
                self.g.connect(src, port, id, 0);
                Ok((id, 0))
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let (src, port) = self.node(input)?;
                let id = self.g.add(Box::new(ProjectOp::new(exprs.clone())));
                self.g.connect(src, port, id, 0);
                Ok((id, 0))
            }
            LogicalPlan::Join { left, right, left_key, right_key, handler, .. } => {
                let (l, lp) = self.node(left)?;
                let (r, rp) = self.node(right)?;
                let mut join = HashJoinOp::new(left_key.clone(), right_key.clone());
                if let Some(h) = handler {
                    join = join.with_handler(self.reg.join(h)?);
                }
                let id = self.g.add(Box::new(join));
                self.g.connect(l, lp, id, 0);
                self.g.connect(r, rp, id, 1);
                Ok((id, 0))
            }
            LogicalPlan::Aggregate { input, group_cols, aggs, post, .. } => {
                let (src, port) = self.node(input)?;
                // Repartition on the grouping key before aggregating. A
                // global aggregate (no keys) skips the boundary: partials
                // combine at the requestor instead.
                let (rehash, rport) = if group_cols.is_empty() {
                    (src, port)
                } else {
                    let rh = self.g.add_rehash(group_cols.clone());
                    self.g.connect(src, port, rh, 0);
                    (rh, 0)
                };
                let specs = aggs
                    .iter()
                    .map(|a: &AggCall| {
                        Ok(AggSpec::new(self.reg.agg(&a.func)?, a.input_cols.clone()))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let gb = self.g.add(Box::new(GroupByOp::new(group_cols.clone(), specs)));
                self.g.connect(rehash, rport, gb, 0);
                match post {
                    Some(exprs) => {
                        let proj = self.g.add(Box::new(ProjectOp::new(exprs.clone())));
                        self.g.connect(gb, 0, proj, 0);
                        Ok((proj, 0))
                    }
                    None => Ok((gb, 0)),
                }
            }
            LogicalPlan::Fixpoint { key_cols, base, step, .. } => {
                let (b, bport) = self.node(base)?;
                let fp = self.g.add(Box::new(FixpointOp::new(
                    key_cols.clone(),
                    Termination::FixpointOrMax(DEFAULT_MAX_STRATA),
                )));
                self.g.connect(b, bport, fp, 0);
                let prev = self.fixpoint.replace(fp);
                let (s, sport) = self.node(step)?;
                self.fixpoint = prev;
                // Step results re-enter the fixpoint keyed on its key.
                let rehash = self.g.add_rehash(key_cols.clone());
                self.g.connect(s, sport, rehash, 0);
                self.g.connect(rehash, 0, fp, 1);
                Ok((fp, 1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::exec::LocalRuntime;
    use rex_core::tuple;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;

    fn edge_catalog() -> SchemaCatalog {
        let mut c = SchemaCatalog::new();
        c.register(
            "edges",
            Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]),
        );
        c
    }

    fn edge_tables() -> MemTables {
        let mut m = MemTables::new();
        // A path 0 -> 1 -> 2 -> 3 plus a shortcut 0 -> 2.
        m.insert(
            "edges",
            vec![
                tuple![0i64, 1i64],
                tuple![1i64, 2i64],
                tuple![2i64, 3i64],
                tuple![0i64, 2i64],
            ],
        );
        m
    }

    #[test]
    fn filter_and_project_execute() {
        let reg = Registry::with_builtins();
        let g = compile(
            "SELECT dst FROM edges WHERE src = 0",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(results, vec![tuple![1i64], tuple![2i64]]);
    }

    #[test]
    fn aggregation_executes() {
        let reg = Registry::with_builtins();
        let g = compile(
            "SELECT src, count(*) FROM edges GROUP BY src",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(
            results,
            vec![tuple![0i64, 2i64], tuple![1i64, 1i64], tuple![2i64, 1i64]]
        );
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let reg = Registry::with_builtins();
        let g = compile(
            "SELECT sum(dst), count(*) FROM edges WHERE src > 0",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (results, _) = LocalRuntime::new().run(g).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get(0).as_double(), Some(5.0));
        assert_eq!(results[0].get(1).as_int(), Some(2));
    }

    #[test]
    fn self_join_executes() {
        let reg = Registry::with_builtins();
        let mut c = edge_catalog();
        c.register(
            "edges2",
            Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]),
        );
        let mut m = edge_tables();
        m.insert("edges2", m.scan("edges").unwrap());
        // Two-hop pairs: e1.dst = e2.src.
        let g = compile(
            "SELECT a.src, b.dst FROM edges a, edges2 b WHERE a.dst = b.src",
            &c,
            &m,
            &reg,
        )
        .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(
            results,
            vec![
                tuple![0i64, 2i64], // 0->1->2
                tuple![0i64, 3i64], // 0->2->3
                tuple![1i64, 3i64], // 1->2->3
            ]
        );
    }

    /// Transitive closure from a seed using pure RQL recursion: reach(x)
    /// holds the frontier distance... here simply reachable node ids.
    #[test]
    fn recursive_reachability_via_rql() {
        let reg = Registry::with_builtins();
        let mut c = edge_catalog();
        c.register("seed", Schema::of(&[("id", DataType::Int)]));
        let mut m = edge_tables();
        m.insert("seed", vec![tuple![0i64]]);
        let src = "
            WITH reach (id) AS (
              SELECT id FROM seed
            ) UNION UNTIL FIXPOINT BY id (
              SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id
            )";
        let g = compile(src, &c, &m, &reg).unwrap();
        let (mut results, report) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(
            results,
            vec![tuple![0i64], tuple![1i64], tuple![2i64], tuple![3i64]]
        );
        // Recursion ran multiple strata and converged.
        assert!(report.iterations() >= 3);
        assert_eq!(report.strata.last().unwrap().delta_set_size, 0);
    }

    #[test]
    fn missing_table_data_is_reported() {
        let reg = Registry::with_builtins();
        let err = match compile(
            "SELECT dst FROM edges",
            &edge_catalog(),
            &MemTables::new(),
            &reg,
        ) {
            Err(e) => e,
            Ok(_) => panic!("expected missing-data error"),
        };
        assert!(err.to_string().contains("no data registered"));
    }
}
