//! Physical lowering: [`LogicalPlan`] → executable [`PlanGraph`].
//!
//! Lowering is mechanical: scans read from a [`TableProvider`], filters
//! and projections map 1:1 onto their operators, joins become pipelined
//! hash joins (with the registered handler attached for handler joins),
//! aggregates become a rehash + group-by (+ optional post-projection), and
//! a fixpoint becomes the Figure 1 loop: base → fixpoint port 0, feedback
//! out of port 0 into the step subplan, step output rehashed on the
//! fixpoint key back into port 1, finals out of port 1 into the sink.
//!
//! ## Distributed lowering
//!
//! With [`LowerOptions::distributed`] set, the same logical plan lowers to
//! a *worker* plan: the lowering tracks how each intermediate stream is
//! partitioned (scans by their table's partition key, fixpoint feedback by
//! the `FIXPOINT BY` key, rehash outputs by their hash key) and inserts
//! network boundaries exactly where the data's current partitioning does
//! not line up with what the next stateful operator needs:
//!
//! * join inputs are rehashed on the join key unless already co-partitioned
//!   on it; a key-less (handler broadcast) join replicates the recursive
//!   side to all workers while the stored side stays partitioned;
//! * grouped aggregates repartition on the grouping key (as locally);
//!   *global* aggregates gather every partition's tuples at one
//!   deterministic worker instead of computing per-worker partials;
//! * fixpoint base cases are rehashed onto the fixpoint key when the base
//!   relation is partitioned differently.
//!
//! Local lowering (`distributed = false`) is unchanged: rehash operators
//! are pass-throughs on a single node, so local plans stay minimal.

use crate::logical::{AggCall, LogicalPlan, SortKey};
use crate::resolve::SchemaCatalog;
use rex_core::error::{Result, RexError};
use rex_core::exec::{NodeId, PlanGraph};
use rex_core::expr::Expr;
use rex_core::operators::{
    AggSpec, FilterOp, FixpointOp, GroupByOp, HashJoinOp, ProjectOp, ScanOp, ScanRows, ShardGateOp,
    SinkOp, SortSpec, Termination, TopKOp, MORSEL_ROWS,
};
use rex_core::tuple::Tuple;
use rex_core::udf::Registry;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

/// Supplies table contents at lowering time (the worker's partition in
/// distributed execution, the full table locally).
pub trait TableProvider {
    /// The rows of `table` visible to this plan instance.
    fn scan(&self, table: &str) -> Result<Vec<Tuple>>;

    /// The rows of `table` as a [`ScanRows`] source. Providers backed by
    /// shared storage override this to hand the scan an `Arc` snapshot —
    /// no deep copy of the table into the plan; the default wraps
    /// [`scan`](TableProvider::scan)'s owned rows.
    fn scan_shared(&self, table: &str) -> Result<ScanRows> {
        Ok(ScanRows::Owned(self.scan(table)?))
    }

    /// Total byte size of what [`scan_shared`](TableProvider::scan_shared)
    /// returns, when the storage layer keeps it cached — lets the scan
    /// skip per-row size accounting. `None` (the default) means "count
    /// while scanning".
    fn scan_bytes(&self, _table: &str) -> Option<u64> {
        None
    }

    /// The columns `table` is partitioned on across workers, if known.
    /// Distributed lowering uses this to skip redundant rehashes when a
    /// scan is already partitioned on the key an operator needs. `None`
    /// (the default) means "unknown" and forces a rehash where one might
    /// be needed — always safe.
    fn partition_cols(&self, _table: &str) -> Option<Vec<usize>> {
        None
    }
}

/// A simple in-memory provider.
#[derive(Debug, Clone, Default)]
pub struct MemTables {
    tables: HashMap<String, Vec<Tuple>>,
}

impl MemTables {
    /// Empty provider.
    pub fn new() -> MemTables {
        MemTables::default()
    }

    /// Register a table's rows.
    pub fn insert(&mut self, name: impl Into<String>, rows: Vec<Tuple>) {
        self.tables.insert(name.into(), rows);
    }
}

impl TableProvider for MemTables {
    fn scan(&self, table: &str) -> Result<Vec<Tuple>> {
        self.tables
            .get(table)
            .cloned()
            .ok_or_else(|| RexError::Storage(format!("no data registered for table {table}")))
    }
}

/// Iteration cap applied to RQL fixpoints (safety net against diverging
/// user queries; the paper's optimizer applies a similar cap, §5.3).
pub const DEFAULT_MAX_STRATA: u64 = 10_000;

/// Options controlling physical lowering.
#[derive(Debug, Clone, Copy)]
pub struct LowerOptions {
    /// Lower a worker-local plan for distributed execution: insert network
    /// boundaries wherever the stream's partitioning does not match what
    /// the consuming operator requires (see the module docs).
    pub distributed: bool,
    /// Use the insert-only sink fast lane when the plan provably emits
    /// nothing but `+()` deltas (see [`insert_only_plan`]). On by
    /// default; platform-agreement sweeps turn it off to prove the lane
    /// is output-invisible.
    pub fast_lane: bool,
    /// Use the columnar batch lane where it applies: pure stateless
    /// chains transpose scan batches into `Event::Cols` for the
    /// vectorized filter/project kernels, and handler-free join plans
    /// ride bare-rows batches through the join's cache-conscious batch
    /// path (see [`join_lane_plan`]). Defaults from `REX_COLUMNAR`
    /// (unset or anything but `"0"` → on); turning it off restores the
    /// pre-columnar row path end to end, bit for bit.
    pub columnar: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        let columnar = std::env::var("REX_COLUMNAR").map(|v| v != "0").unwrap_or(true);
        LowerOptions { distributed: false, fast_lane: true, columnar }
    }
}

impl LowerOptions {
    /// Options for a per-worker plan in the cluster.
    pub fn cluster() -> LowerOptions {
        LowerOptions { distributed: true, ..LowerOptions::default() }
    }

    /// Disable the insert-only sink fast lane (agreement sweeps).
    pub fn without_fast_lane(mut self) -> LowerOptions {
        self.fast_lane = false;
        self
    }

    /// Disable the columnar batch lane (row-path oracle sweeps).
    pub fn without_columnar(mut self) -> LowerOptions {
        self.columnar = false;
        self
    }
}

/// Whether every delta a lowered `plan` can deliver to its sink is an
/// insertion. Scans emit only `+()` deltas, filters/projections preserve
/// annotations, and a handler-free equi-join of insert-only inputs emits
/// only insertions — so pipelines of those shapes qualify. Aggregates
/// (replacements on group refinement), top-k (retraction diffs),
/// fixpoints, and handler joins (arbitrary handler output) do not.
pub fn insert_only_plan(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            insert_only_plan(input)
        }
        LogicalPlan::Join { left, right, handler, .. } => {
            handler.is_none() && insert_only_plan(left) && insert_only_plan(right)
        }
        // A pure ORDER BY adds no dataflow operator (presentation order is
        // applied by the session); the stream is its input's.
        LogicalPlan::Sort { input, fetch: None, offset: 0, .. } => insert_only_plan(input),
        LogicalPlan::Aggregate { .. }
        | LogicalPlan::Sort { .. }
        | LogicalPlan::Limit { .. }
        | LogicalPlan::Fixpoint { .. }
        | LogicalPlan::FixpointRef { .. } => false,
    }
}

/// Whether the plan is a pure stateless chain — scans feeding only
/// filters and projections (pure ORDER BY on top included). On such
/// plans the scans emit run-length `Event::Rows` batches and every
/// operator down to the sink moves bare tuples instead of deltas. Join
/// plans stay on delta batches (the join is where annotations start to
/// matter) but still qualify for the append sink via
/// [`insert_only_plan`].
pub fn rows_lane_plan(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            rows_lane_plan(input)
        }
        LogicalPlan::Sort { input, fetch: None, offset: 0, .. } => rows_lane_plan(input),
        _ => false,
    }
}

/// Whether the plan qualifies for the batched **join lane**: scans feed a
/// handler-free equi-join through nothing but filters and projections,
/// optionally under aggregates / top-k on top. On such plans the scans
/// emit bare `Event::Rows` batches and the join runs its cache-conscious
/// batch path — keys hashed up front, one store/probe per duplicate-key
/// run, probe cache lines prefetched ahead of the cursor, and probe-only
/// (no build-side store) once the opposite input has hit end-of-stream.
/// Group-bys above fold the bare rows through the built-ins'
/// allocation-free insert fast path. Every delta below the first
/// aggregate is an insertion by construction, and the emitted multiset
/// and order match the delta path bit for bit.
pub fn join_lane_plan(plan: &LogicalPlan) -> bool {
    /// The scan→join spine: insert-only rows all the way up.
    fn rows_spine(p: &LogicalPlan) -> bool {
        match p {
            LogicalPlan::Scan { .. } => true,
            LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
                rows_spine(input)
            }
            LogicalPlan::Join { left, right, handler, .. } => {
                handler.is_none() && rows_spine(left) && rows_spine(right)
            }
            _ => false,
        }
    }
    match plan {
        LogicalPlan::Join { .. } => rows_spine(plan),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => join_lane_plan(input),
        _ => false,
    }
}

/// Compile RQL source text into an executable plan graph.
pub fn compile(
    src: &str,
    catalog: &SchemaCatalog,
    provider: &dyn TableProvider,
    reg: &Registry,
) -> Result<PlanGraph> {
    let logical = crate::logical::plan_text(src, catalog, reg)?;
    lower(&logical, provider, reg)
}

/// Lower a logical plan into a plan graph with a sink on the result.
pub fn lower(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    reg: &Registry,
) -> Result<PlanGraph> {
    lower_with(plan, provider, reg, LowerOptions::default())
}

/// Lower a logical plan with explicit [`LowerOptions`].
pub fn lower_with(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    reg: &Registry,
    opts: LowerOptions,
) -> Result<PlanGraph> {
    let mut g = PlanGraph::new();
    let (rows_lane, cols_lane) = plan_lanes(plan, &opts);
    let mut ctx = Lowering {
        g: &mut g,
        provider,
        reg,
        fixpoint: None,
        opts,
        rows_lane,
        cols_lane,
        parallel: None,
    };
    let (node, port, _) = ctx.node(plan)?;
    // Insert-only pipelines take the append sink: no delta application,
    // one unstable sort when results are taken. Anything that can emit
    // deletes/replacements keeps the counted sink.
    let sink = if opts.fast_lane && insert_only_plan(plan) {
        g.add(Box::new(SinkOp::append_only()))
    } else {
        g.add(Box::new(SinkOp::new()))
    };
    g.connect(node, port, sink, 0);
    Ok(g)
}

/// Which batch lanes a plan's scans ride under `opts`: `(rows_lane,
/// cols_lane)`. Pure stateless chains take the columnar lane (scans
/// transpose into `Event::Cols` for the vectorized kernels); join-lane
/// plans stay on bare `Event::Rows` — the join consumes row batches
/// natively, and transposing at the scan just to materialize again at
/// the join entry would cost more than it saves. `cols_lane` implies
/// `rows_lane` (ragged batches fall back to rows per batch).
fn plan_lanes(plan: &LogicalPlan, opts: &LowerOptions) -> (bool, bool) {
    let pure_chain = rows_lane_plan(plan);
    let join_lane = opts.columnar && !opts.distributed && join_lane_plan(plan);
    let rows_lane = opts.fast_lane && (pure_chain || join_lane);
    let cols_lane = rows_lane && pure_chain && opts.columnar;
    (rows_lane, cols_lane)
}

/// Minimum total scanned rows before thread-parallel lowering pays:
/// below this, thread spawn + merge overhead beats the saved work and
/// [`lower_parallel`] falls back to a single-threaded plan.
pub const PARALLEL_ROWS_MIN: usize = 4096;

/// How the thread copies of a parallel plan divide the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParallelMode {
    /// Pure stateless chains: sibling scans share an atomic morsel cursor
    /// over one snapshot, so each row is scanned by exactly one thread.
    Morsel,
    /// Plans with keyed state (joins, grouped aggregates): every thread
    /// scans everything and a [`ShardGateOp`] in front of each stateful
    /// operator keeps only the keys the thread owns, so hash state is
    /// disjoint and the per-row build/probe work parallelizes.
    Shard,
}

/// Per-thread-copy lowering state for parallel plans.
struct ParallelCtx<'a> {
    mode: ParallelMode,
    shard: usize,
    shards: usize,
    /// Morsel cursors, one per scan *position* in the plan, shared across
    /// the thread copies (created by the first copy, reused by the rest).
    cursors: &'a mut Vec<Arc<AtomicUsize>>,
    /// Scan positions encountered so far in this copy.
    next_cursor: usize,
    /// Shard gates inserted into this copy (for the serial-gate check).
    gates: Vec<NodeId>,
}

/// Whether `plan` can be lowered thread-parallel at all. Conservative by
/// construction: anything rejected here simply runs single-threaded.
///
/// * Fixpoints are out — a recursive step may move tuples across key
///   shards between strata, which requires a real exchange.
/// * Top-k (`ORDER BY … LIMIT` / bare `LIMIT`) is out — per-thread
///   partial top-k unions would over-select without a gather stage.
/// * Global (ungrouped) aggregates are out — they need all rows at one
///   site.
/// * Handler and key-less joins are out — there is no key to shard on,
///   and handler state transitions are order-sensitive.
fn parallel_eligible(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            parallel_eligible(input)
        }
        LogicalPlan::Sort { input, fetch: None, offset: 0, .. } => parallel_eligible(input),
        LogicalPlan::Sort { .. } | LogicalPlan::Limit { .. } => false,
        LogicalPlan::Join { left, right, left_key, handler, .. } => {
            handler.is_none()
                && !left_key.is_empty()
                && parallel_eligible(left)
                && parallel_eligible(right)
        }
        LogicalPlan::Aggregate { input, group_cols, .. } => {
            !group_cols.is_empty() && parallel_eligible(input)
        }
        LogicalPlan::Fixpoint { .. } | LogicalPlan::FixpointRef { .. } => false,
    }
}

/// Rough size of the rows a subtree delivers: the summed stored bytes of
/// every table it scans. Filters and projections are ignored — this is a
/// join build-side chooser, not a cardinality estimator — and `None` (an
/// unsized scan, or a fixpoint whose per-stratum volume is unknowable)
/// disables reordering.
fn subtree_bytes(plan: &LogicalPlan, provider: &dyn TableProvider) -> Option<u64> {
    match plan {
        LogicalPlan::Scan { table, .. } => provider.scan_bytes(table),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => subtree_bytes(input, provider),
        LogicalPlan::Join { left, right, .. } => {
            Some(subtree_bytes(left, provider)?.saturating_add(subtree_bytes(right, provider)?))
        }
        LogicalPlan::Fixpoint { .. } | LogicalPlan::FixpointRef { .. } => None,
    }
}

/// Every table the plan scans (with repeats).
fn plan_tables(plan: &LogicalPlan, out: &mut Vec<String>) {
    match plan {
        LogicalPlan::Scan { table, .. } => out.push(table.clone()),
        LogicalPlan::FixpointRef { .. } => {}
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => plan_tables(input, out),
        LogicalPlan::Join { left, right, .. } => {
            plan_tables(left, out);
            plan_tables(right, out);
        }
        LogicalPlan::Fixpoint { base, step, .. } => {
            plan_tables(base, out);
            plan_tables(step, out);
        }
    }
}

/// A [`TableProvider`] wrapper that snapshots each table **once** and
/// hands every caller the same `Arc`. The thread copies of a parallel
/// plan must agree on the snapshot identity: morsel cursors index into
/// one shared row slice, and shard-mode threads must all see the same
/// rows.
struct SnapshotProvider<'a> {
    inner: &'a dyn TableProvider,
    cache: RefCell<HashMap<String, SharedRows>>,
}

/// One cached table snapshot, shareable across plan copies.
type SharedRows = Arc<dyn AsRef<[Tuple]> + Send + Sync>;

impl<'a> SnapshotProvider<'a> {
    fn new(inner: &'a dyn TableProvider) -> SnapshotProvider<'a> {
        SnapshotProvider { inner, cache: RefCell::new(HashMap::new()) }
    }

    fn snapshot(&self, table: &str) -> Result<SharedRows> {
        if let Some(s) = self.cache.borrow().get(table) {
            return Ok(s.clone());
        }
        let arc: SharedRows = match self.inner.scan_shared(table)? {
            ScanRows::Shared(s) => s,
            ScanRows::Owned(v) => Arc::new(v),
        };
        self.cache.borrow_mut().insert(table.to_string(), arc.clone());
        Ok(arc)
    }

    /// Row count of the (cached) snapshot.
    fn rows(&self, table: &str) -> Result<usize> {
        Ok((*self.snapshot(table)?).as_ref().len())
    }
}

impl TableProvider for SnapshotProvider<'_> {
    fn scan(&self, table: &str) -> Result<Vec<Tuple>> {
        Ok((*self.snapshot(table)?).as_ref().to_vec())
    }

    fn scan_shared(&self, table: &str) -> Result<ScanRows> {
        Ok(ScanRows::Shared(self.snapshot(table)?))
    }

    fn scan_bytes(&self, table: &str) -> Option<u64> {
        self.inner.scan_bytes(table)
    }

    fn partition_cols(&self, table: &str) -> Option<Vec<usize>> {
        self.inner.partition_cols(table)
    }
}

/// True when some shard gate can reach another gate downstream. Two
/// gates in series on different keys would each drop the other's rows —
/// a tuple owned by this thread at the first gate but another thread at
/// the second is produced by *nobody* — so such plans fall back to
/// single-threaded execution. (Gates on the same key in series cannot
/// occur: [`Lowering::ensure_partitioned`] skips the second.)
fn gate_reaches_gate(g: &PlanGraph, gates: &[NodeId]) -> bool {
    let gate_set: HashSet<NodeId> = gates.iter().copied().collect();
    for &start in gates {
        let mut seen = vec![false; g.len()];
        let mut q = VecDeque::from([start]);
        while let Some(n) = q.pop_front() {
            for s in g.successors(n) {
                if !seen[s] {
                    seen[s] = true;
                    if gate_set.contains(&s) {
                        return true;
                    }
                    q.push_back(s);
                }
            }
        }
    }
    false
}

/// Lower `plan` into `threads` parallel plan copies for
/// [`run_partitioned`](rex_core::exec::LocalRuntime::run_partitioned),
/// or `None` when the plan (or the data size) does not warrant threads —
/// the caller then lowers normally and runs single-threaded, which is
/// always correct.
///
/// The copies are built against one shared set of table snapshots. Pure
/// stateless chains run morsel-parallel (scans share an atomic cursor);
/// plans with keyed state run shard-parallel (a [`ShardGateOp`] in front
/// of every stateful operator keeps each thread's hash state disjoint).
/// Plans where sharding cannot be proven safe — serial gates on
/// different keys — fall back.
pub fn lower_parallel(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    reg: &Registry,
    opts: LowerOptions,
    threads: usize,
) -> Result<Option<Vec<PlanGraph>>> {
    if threads <= 1 || opts.distributed || !parallel_eligible(plan) {
        return Ok(None);
    }
    let snaps = SnapshotProvider::new(provider);
    let mut tables = Vec::new();
    plan_tables(plan, &mut tables);
    let mut total_rows = 0usize;
    for t in &tables {
        total_rows += snaps.rows(t)?;
    }
    if total_rows < PARALLEL_ROWS_MIN {
        return Ok(None);
    }
    let mode = if rows_lane_plan(plan) { ParallelMode::Morsel } else { ParallelMode::Shard };
    let mut cursors: Vec<Arc<AtomicUsize>> = Vec::new();
    let mut graphs = Vec::with_capacity(threads);
    for tid in 0..threads {
        let mut g = PlanGraph::new();
        let (rows_lane, cols_lane) = plan_lanes(plan, &opts);
        let mut ctx = Lowering {
            g: &mut g,
            provider: &snaps,
            reg,
            fixpoint: None,
            opts,
            rows_lane,
            cols_lane,
            parallel: Some(ParallelCtx {
                mode,
                shard: tid,
                shards: threads,
                cursors: &mut cursors,
                next_cursor: 0,
                gates: Vec::new(),
            }),
        };
        let (node, port, _) = ctx.node(plan)?;
        let gates = ctx.parallel.take().map(|p| p.gates).unwrap_or_default();
        let sink = if opts.fast_lane && insert_only_plan(plan) {
            g.add(Box::new(SinkOp::append_only()))
        } else {
            g.add(Box::new(SinkOp::new()))
        };
        g.connect(node, port, sink, 0);
        // The copies are isomorphic, so the safety check on the first
        // settles them all.
        if tid == 0 && mode == ParallelMode::Shard && gate_reaches_gate(&g, &gates) {
            return Ok(None);
        }
        graphs.push(g);
    }
    Ok(Some(graphs))
}

/// How a lowered stream is partitioned across workers: `Some(cols)` when
/// every tuple lives on the owner of the hash of those columns, `None`
/// when unknown (forces a rehash wherever co-partitioning is required).
type Partitioning = Option<Vec<usize>>;

struct Lowering<'a> {
    g: &'a mut PlanGraph,
    provider: &'a dyn TableProvider,
    reg: &'a Registry,
    /// While lowering a fixpoint step: the fixpoint node (whose output
    /// port 0 feeds [`LogicalPlan::FixpointRef`] consumers) and its key.
    fixpoint: Option<(NodeId, Vec<usize>)>,
    opts: LowerOptions,
    /// The plan's scans emit run-length `Event::Rows` batches: either a
    /// pure stateless chain ([`rows_lane_plan`]) or a batched-join plan
    /// ([`join_lane_plan`]).
    rows_lane: bool,
    /// On top of `rows_lane`, scans transpose each batch into columnar
    /// [`Event::Cols`] form for the vectorized filter/project kernels
    /// (pure stateless chains with [`LowerOptions::columnar`] on).
    cols_lane: bool,
    /// Set while building one thread copy of a parallel plan (see
    /// [`lower_parallel`]); `None` for ordinary lowering.
    parallel: Option<ParallelCtx<'a>>,
}

impl Lowering<'_> {
    /// In distributed mode, route `(node, port)` through a hash boundary on
    /// `key` unless the stream is already partitioned exactly on `key`.
    fn ensure_partitioned(
        &mut self,
        node: NodeId,
        port: usize,
        current: &Partitioning,
        key: &[usize],
    ) -> (NodeId, usize, Partitioning) {
        // Thread-parallel shard mode: wherever cluster lowering would
        // insert a rehash, insert a shard gate instead, so this thread's
        // copy keeps only the keys it owns (unless the stream is already
        // gated on exactly this key).
        if let Some(p) = self.parallel.as_mut() {
            if p.mode == ParallelMode::Shard && current.as_deref() != Some(key) {
                let gate = self.g.add(Box::new(ShardGateOp::new(key.to_vec(), p.shard, p.shards)));
                self.g.connect(node, port, gate, 0);
                p.gates.push(gate);
                return (gate, 0, Some(key.to_vec()));
            }
        }
        if !self.opts.distributed || current.as_deref() == Some(key) {
            return (node, port, current.clone());
        }
        let rh = self.g.add_rehash(key.to_vec());
        self.g.connect(node, port, rh, 0);
        (rh, 0, Some(key.to_vec()))
    }

    /// Lower a top-k selection (`ORDER BY … LIMIT n OFFSET m`, or a bare
    /// `LIMIT` with no keys — deterministic in total tuple order).
    ///
    /// Locally this is one buffering [`TopKOp`]. Distributed, it is the
    /// scatter/gather top-k: each worker keeps its best `fetch + offset`
    /// rows (a *partial* sort — no offset applied yet), the partials
    /// funnel through a [`NetKey::Gather`](rex_core::exec::NetKey)
    /// boundary to one deterministic worker, and a *final* top-k there
    /// applies the true offset and limit over the union.
    fn topk(
        &mut self,
        input: &LogicalPlan,
        keys: &[SortKey],
        fetch: Option<u64>,
        offset: u64,
    ) -> Result<(NodeId, usize, Partitioning)> {
        let (src, port, _) = self.node(input)?;
        let specs: Vec<SortSpec> =
            keys.iter().map(|k| SortSpec { expr: k.expr.clone(), desc: k.desc }).collect();
        if self.opts.distributed {
            let local_cap = fetch.map(|f| (f + offset) as usize);
            let partial = self.g.add(Box::new(TopKOp::new(specs.clone(), local_cap, 0)));
            self.g.connect(src, port, partial, 0);
            let gather = self.g.add_gather();
            self.g.connect(partial, 0, gather, 0);
            let fin = self.g.add(Box::new(TopKOp::new(
                specs,
                fetch.map(|f| f as usize),
                offset as usize,
            )));
            self.g.connect(gather, 0, fin, 0);
            Ok((fin, 0, None))
        } else {
            let id = self.g.add(Box::new(TopKOp::new(
                specs,
                fetch.map(|f| f as usize),
                offset as usize,
            )));
            self.g.connect(src, port, id, 0);
            Ok((id, 0, None))
        }
    }

    /// Lower `plan`, returning `(node, output port, partitioning)` of its
    /// result stream.
    fn node(&mut self, plan: &LogicalPlan) -> Result<(NodeId, usize, Partitioning)> {
        match plan {
            LogicalPlan::Scan { table, .. } => {
                let rows = self.provider.scan_shared(table)?;
                let mut scan = ScanOp::new(table.clone(), rows)
                    .insert_only(self.rows_lane)
                    .columnar(self.cols_lane)
                    .known_bytes(self.provider.scan_bytes(table));
                // Morsel-parallel copies split each scan over a cursor
                // shared with the sibling copies; the cursor for the n-th
                // scan in the plan is created by the first copy and reused
                // by the rest (the copies are isomorphic, so scan
                // encounter order identifies the scan).
                if let Some(p) = self.parallel.as_mut() {
                    if p.mode == ParallelMode::Morsel {
                        let idx = p.next_cursor;
                        p.next_cursor += 1;
                        if idx == p.cursors.len() {
                            p.cursors.push(Arc::new(AtomicUsize::new(0)));
                        }
                        scan = scan.morsel_cursor(p.cursors[idx].clone(), MORSEL_ROWS);
                    }
                }
                let id = self.g.add(Box::new(scan));
                let part =
                    if self.opts.distributed { self.provider.partition_cols(table) } else { None };
                Ok((id, 0, part))
            }
            LogicalPlan::FixpointRef { name, .. } => {
                let (fp, key) = self.fixpoint.clone().ok_or_else(|| {
                    RexError::Plan(format!("recursive relation {name} referenced outside WITH"))
                })?;
                Ok((fp, 0, Some(key)))
            }
            LogicalPlan::Filter { input, predicate } => {
                let (src, port, part) = self.node(input)?;
                let id = self.g.add(Box::new(FilterOp::new(predicate.clone())));
                self.g.connect(src, port, id, 0);
                Ok((id, 0, part))
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let (src, port, part) = self.node(input)?;
                let id = self.g.add(Box::new(ProjectOp::new(exprs.clone())));
                self.g.connect(src, port, id, 0);
                Ok((id, 0, remap_partitioning(&part, exprs)))
            }
            LogicalPlan::Join { left, right, left_key, right_key, handler, .. } => {
                // Build-side selection. The executor starts sources in
                // creation order, so the subtree lowered *first* is fully
                // delivered — and EOS-punctuated — before the other side
                // streams through the join. On the insert-only lanes the
                // join then skips storing the streaming side entirely
                // (`HashJoinOp` probes without building state once the
                // opposite port has seen EOS), so lowering the smaller
                // input first keeps the resident build table the small,
                // cache-friendly one. Port wiring (and therefore the fused
                // row layout) is unchanged; only arrival order moves. Ties
                // and unsized inputs keep the left-first default.
                let build_right = matches!(
                    (
                        subtree_bytes(left, self.provider),
                        subtree_bytes(right, self.provider),
                    ),
                    (Some(lb), Some(rb)) if rb < lb
                );
                let ((l, lp, lpart), (r, rp, rpart)) = if build_right {
                    let rnode = self.node(right)?;
                    (self.node(left)?, rnode)
                } else {
                    let lnode = self.node(left)?;
                    (lnode, self.node(right)?)
                };
                let (l, lp, r, rp, out_part) = if left_key.is_empty() {
                    // Key-less (handler broadcast) join: replicate the
                    // recursive side everywhere, keep the stored side
                    // partitioned so each pair is formed exactly once.
                    if self.opts.distributed {
                        let bc_right = contains_fixpoint_ref(right) || !contains_fixpoint_ref(left);
                        if bc_right {
                            let bc = self.g.add_rehash(Vec::new());
                            self.g.connect(r, rp, bc, 0);
                            (l, lp, bc, 0, None)
                        } else {
                            let bc = self.g.add_rehash(Vec::new());
                            self.g.connect(l, lp, bc, 0);
                            (bc, 0, r, rp, None)
                        }
                    } else {
                        (l, lp, r, rp, None)
                    }
                } else {
                    // Equi-join: co-partition both inputs on the join key.
                    let (l, lp, _) = self.ensure_partitioned(l, lp, &lpart, left_key);
                    let (r, rp, _) = self.ensure_partitioned(r, rp, &rpart, right_key);
                    // Output rows carry the left input's columns at their
                    // original indices, so the result stays partitioned on
                    // the left key (for a plain join; a handler join
                    // rewrites the row shape entirely).
                    let part = if handler.is_none() { Some(left_key.clone()) } else { None };
                    (l, lp, r, rp, part)
                };
                let mut join = HashJoinOp::new(left_key.clone(), right_key.clone());
                if let Some(h) = handler {
                    join = join.with_handler(self.reg.join(h)?);
                }
                let id = self.g.add(Box::new(join));
                self.g.connect(l, lp, id, 0);
                self.g.connect(r, rp, id, 1);
                Ok((id, 0, out_part))
            }
            LogicalPlan::Aggregate { input, group_cols, aggs, post, .. } => {
                let (src, port, part) = self.node(input)?;
                // Repartition on the grouping key before aggregating. A
                // *global* aggregate (no keys) is a pass-through locally
                // but must gather all partitions at one worker in the
                // cluster — per-worker partials would union into one row
                // per worker at the requestor. Locally a rehash is a pure
                // pass-through, so no node is added at all: every input
                // delta would otherwise take one extra hop through the
                // executor queue.
                let (rehash, rport) = if group_cols.is_empty() {
                    if self.opts.distributed {
                        let gather = self.g.add_gather();
                        self.g.connect(src, port, gather, 0);
                        (gather, 0)
                    } else {
                        (src, port)
                    }
                } else if self.opts.distributed {
                    let rh = self.g.add_rehash(group_cols.clone());
                    self.g.connect(src, port, rh, 0);
                    (rh, 0)
                } else {
                    // Pass-through locally — except in thread-parallel
                    // shard mode, where ensure_partitioned gates the
                    // stream so each thread owns disjoint groups.
                    let (s, p, _) = self.ensure_partitioned(src, port, &part, group_cols);
                    (s, p)
                };
                let specs = aggs
                    .iter()
                    .map(|a: &AggCall| {
                        Ok(AggSpec::new(self.reg.agg(&a.func)?, a.input_cols.clone()))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let gb = self.g.add(Box::new(GroupByOp::new(group_cols.clone(), specs)));
                self.g.connect(rehash, rport, gb, 0);
                // Aggregate output = group cols ++ agg results: partitioned
                // on the leading group columns.
                let gb_part: Partitioning = if group_cols.is_empty() {
                    None
                } else {
                    Some((0..group_cols.len()).collect())
                };
                match post {
                    Some(exprs) => {
                        let proj = self.g.add(Box::new(ProjectOp::new(exprs.clone())));
                        self.g.connect(gb, 0, proj, 0);
                        Ok((proj, 0, remap_partitioning(&gb_part, exprs)))
                    }
                    None => Ok((gb, 0, gb_part)),
                }
            }
            LogicalPlan::Sort { input, keys, fetch, offset } => {
                // A pure ORDER BY constrains nothing about the result
                // *multiset*; presentation ordering is applied by the
                // session over the final rows. Only a fused LIMIT/OFFSET
                // (top-k) needs a dataflow operator.
                if fetch.is_none() && *offset == 0 {
                    self.node(input)
                } else {
                    self.topk(input, keys, *fetch, *offset)
                }
            }
            LogicalPlan::Limit { input, fetch, offset } => {
                // An unfused LIMIT directly above an ORDER BY must still
                // select rows in that order (the optimizer normally fuses
                // the pair, but unoptimized plans lower correctly too).
                let (keys, inner): (&[SortKey], &LogicalPlan) = match input.as_ref() {
                    LogicalPlan::Sort { input: si, keys, fetch: None, offset: 0 } => {
                        (keys.as_slice(), si)
                    }
                    other => (&[], other),
                };
                self.topk(inner, keys, Some(*fetch), *offset)
            }
            LogicalPlan::Fixpoint { key_cols, base, step, .. } => {
                let (b, bport, bpart) = self.node(base)?;
                // The base case must arrive partitioned on the fixpoint key
                // so each worker's mutable set holds exactly its keys.
                let (b, bport, _) = self.ensure_partitioned(b, bport, &bpart, key_cols);
                let fp = self.g.add(Box::new(FixpointOp::new(
                    key_cols.clone(),
                    Termination::FixpointOrMax(DEFAULT_MAX_STRATA),
                )));
                self.g.connect(b, bport, fp, 0);
                let prev = self.fixpoint.replace((fp, key_cols.clone()));
                let (s, sport, _) = self.node(step)?;
                self.fixpoint = prev;
                // Step results re-enter the fixpoint keyed on its key.
                let rehash = self.g.add_rehash(key_cols.clone());
                self.g.connect(s, sport, rehash, 0);
                self.g.connect(rehash, 0, fp, 1);
                Ok((fp, 1, Some(key_cols.clone())))
            }
        }
    }
}

/// Partitioning after a projection: the partition columns survive iff each
/// appears as a plain column reference, in order, in the output.
fn remap_partitioning(part: &Partitioning, exprs: &[Expr]) -> Partitioning {
    let cols = part.as_ref()?;
    let mut out = Vec::with_capacity(cols.len());
    for &c in cols {
        let pos = exprs.iter().position(|e| matches!(e, Expr::Col(i) if *i == c))?;
        out.push(pos);
    }
    Some(out)
}

/// Whether a subtree reads the enclosing recursive relation.
fn contains_fixpoint_ref(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::FixpointRef { .. } => true,
        LogicalPlan::Scan { .. } => false,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => contains_fixpoint_ref(input),
        LogicalPlan::Join { left, right, .. } => {
            contains_fixpoint_ref(left) || contains_fixpoint_ref(right)
        }
        // A nested fixpoint's step reads its *own* relation, not ours.
        LogicalPlan::Fixpoint { base, .. } => contains_fixpoint_ref(base),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::exec::LocalRuntime;
    use rex_core::tuple;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;

    fn edge_catalog() -> SchemaCatalog {
        let mut c = SchemaCatalog::new();
        c.register("edges", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]));
        c
    }

    fn edge_tables() -> MemTables {
        let mut m = MemTables::new();
        // A path 0 -> 1 -> 2 -> 3 plus a shortcut 0 -> 2.
        m.insert(
            "edges",
            vec![tuple![0i64, 1i64], tuple![1i64, 2i64], tuple![2i64, 3i64], tuple![0i64, 2i64]],
        );
        m
    }

    #[test]
    fn filter_and_project_execute() {
        let reg = Registry::with_builtins();
        let g =
            compile("SELECT dst FROM edges WHERE src = 0", &edge_catalog(), &edge_tables(), &reg)
                .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(results, vec![tuple![1i64], tuple![2i64]]);
    }

    #[test]
    fn aggregation_executes() {
        let reg = Registry::with_builtins();
        let g = compile(
            "SELECT src, count(*) FROM edges GROUP BY src",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(results, vec![tuple![0i64, 2i64], tuple![1i64, 1i64], tuple![2i64, 1i64]]);
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let reg = Registry::with_builtins();
        let g = compile(
            "SELECT sum(dst), count(*) FROM edges WHERE src > 0",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (results, _) = LocalRuntime::new().run(g).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get(0).as_double(), Some(5.0));
        assert_eq!(results[0].get(1).as_int(), Some(2));
    }

    #[test]
    fn self_join_executes() {
        let reg = Registry::with_builtins();
        let mut c = edge_catalog();
        c.register("edges2", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]));
        let mut m = edge_tables();
        m.insert("edges2", m.scan("edges").unwrap());
        // Two-hop pairs: e1.dst = e2.src.
        let g =
            compile("SELECT a.src, b.dst FROM edges a, edges2 b WHERE a.dst = b.src", &c, &m, &reg)
                .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(
            results,
            vec![
                tuple![0i64, 2i64], // 0->1->2
                tuple![0i64, 3i64], // 0->2->3
                tuple![1i64, 3i64], // 1->2->3
            ]
        );
    }

    /// Transitive closure from a seed using pure RQL recursion: reach(x)
    /// holds the frontier distance... here simply reachable node ids.
    #[test]
    fn recursive_reachability_via_rql() {
        let reg = Registry::with_builtins();
        let mut c = edge_catalog();
        c.register("seed", Schema::of(&[("id", DataType::Int)]));
        let mut m = edge_tables();
        m.insert("seed", vec![tuple![0i64]]);
        let src = "
            WITH reach (id) AS (
              SELECT id FROM seed
            ) UNION UNTIL FIXPOINT BY id (
              SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id
            )";
        let g = compile(src, &c, &m, &reg).unwrap();
        let (mut results, report) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(results, vec![tuple![0i64], tuple![1i64], tuple![2i64], tuple![3i64]]);
        // Recursion ran multiple strata and converged.
        assert!(report.iterations() >= 3);
        assert_eq!(report.strata.last().unwrap().delta_set_size, 0);
    }

    #[test]
    fn order_by_limit_executes_as_topk() {
        let reg = Registry::with_builtins();
        // Unoptimized Limit-above-Sort must still select in ORDER BY
        // order (the lowering fuses the pair itself).
        let g = compile(
            "SELECT src, dst FROM edges ORDER BY dst DESC LIMIT 2",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        // dst values {1, 2, 2, 3}: top-2 descending is 3 ([2,3]) then the
        // dst=2 tie, broken by full-tuple order ([0,2] < [1,2]).
        assert_eq!(results, vec![tuple![0i64, 2i64], tuple![2i64, 3i64]]);
    }

    #[test]
    fn limit_without_order_is_a_deterministic_prefix() {
        let reg = Registry::with_builtins();
        let g = compile(
            "SELECT src FROM edges LIMIT 2 OFFSET 1",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        // Tuple-order multiset {0,0,1,2} → skip 1, take 2.
        assert_eq!(results, vec![tuple![0i64], tuple![1i64]]);
    }

    #[test]
    fn distinct_executes_via_group_by() {
        let reg = Registry::with_builtins();
        let g = compile("SELECT DISTINCT src FROM edges", &edge_catalog(), &edge_tables(), &reg)
            .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(results, vec![tuple![0i64], tuple![1i64], tuple![2i64]]);
    }

    #[test]
    fn having_filters_groups() {
        let reg = Registry::with_builtins();
        let g = compile(
            "SELECT src, count(*) FROM edges GROUP BY src HAVING count(*) > 1",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (results, _) = LocalRuntime::new().run(g).unwrap();
        assert_eq!(results, vec![tuple![0i64, 2i64]]);
    }

    #[test]
    fn expression_aggregates_execute() {
        let reg = Registry::with_builtins();
        let g = compile(
            "SELECT src, sum(dst * dst) FROM edges GROUP BY src",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(results, vec![tuple![0i64, 5.0f64], tuple![1i64, 4.0f64], tuple![2i64, 9.0f64]]);
    }

    #[test]
    fn missing_table_data_is_reported() {
        let reg = Registry::with_builtins();
        let err = match compile("SELECT dst FROM edges", &edge_catalog(), &MemTables::new(), &reg) {
            Err(e) => e,
            Ok(_) => panic!("expected missing-data error"),
        };
        assert!(err.to_string().contains("no data registered"));
    }

    /// A catalog + tables big enough to clear [`PARALLEL_ROWS_MIN`].
    fn big_fixture() -> (SchemaCatalog, MemTables) {
        let mut c = SchemaCatalog::new();
        c.register("nums", Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]));
        c.register("other", Schema::of(&[("k", DataType::Int), ("w", DataType::Int)]));
        let mut m = MemTables::new();
        m.insert("nums", (0..8000i64).map(|i| tuple![i, i % 97]).collect());
        m.insert("other", (0..8000i64).map(|i| tuple![i % 500, i]).collect());
        (c, m)
    }

    fn single_thread_sorted(
        plan: &LogicalPlan,
        m: &MemTables,
        reg: &Registry,
    ) -> Vec<rex_core::tuple::Tuple> {
        let g = lower(plan, m, reg).unwrap();
        let (mut rows, _) = LocalRuntime::new().run(g).unwrap();
        rex_core::tuple::sort_rows(&mut rows);
        rows
    }

    #[test]
    fn parallel_morsel_chain_matches_single_thread() {
        let reg = Registry::with_builtins();
        let (c, m) = big_fixture();
        let plan = crate::logical::plan_text("SELECT v FROM nums WHERE v > 50", &c, &reg).unwrap();
        let graphs = lower_parallel(&plan, &m, &reg, LowerOptions::default(), 4).unwrap().unwrap();
        assert_eq!(graphs.len(), 4);
        let (rows, report, _) = LocalRuntime::new().run_partitioned(graphs).unwrap();
        assert_eq!(rows, single_thread_sorted(&plan, &m, &reg));
        assert!(report.totals.tuples_processed > 0);
    }

    #[test]
    fn parallel_shard_join_group_matches_single_thread() {
        let reg = Registry::with_builtins();
        let (c, m) = big_fixture();
        // Grouping on the join key keeps one gate per path: the join
        // output is already gated on a.k, so the aggregate adds none.
        let plan = crate::logical::plan_text(
            "SELECT a.k, count(*) FROM nums a, other b WHERE a.k = b.k GROUP BY a.k",
            &c,
            &reg,
        )
        .unwrap();
        let graphs = lower_parallel(&plan, &m, &reg, LowerOptions::default(), 3).unwrap().unwrap();
        assert_eq!(graphs.len(), 3);
        // Shard mode: the copies carry gates, visible in the explain.
        assert!(graphs[0].explain().contains("ShardGate"));
        let (rows, _, _) = LocalRuntime::new().run_partitioned(graphs).unwrap();
        assert_eq!(rows, single_thread_sorted(&plan, &m, &reg));
    }

    #[test]
    fn parallel_group_alone_matches_single_thread() {
        let reg = Registry::with_builtins();
        let (c, m) = big_fixture();
        let plan =
            crate::logical::plan_text("SELECT v, sum(k) FROM nums GROUP BY v", &c, &reg).unwrap();
        let graphs = lower_parallel(&plan, &m, &reg, LowerOptions::default(), 2).unwrap().unwrap();
        let (rows, _, _) = LocalRuntime::new().run_partitioned(graphs).unwrap();
        assert_eq!(rows, single_thread_sorted(&plan, &m, &reg));
    }

    #[test]
    fn serial_gates_on_different_keys_fall_back() {
        let reg = Registry::with_builtins();
        let (c, m) = big_fixture();
        // Join gated on a.k, then grouping on b.w: a second gate in
        // series on a different key would drop rows whose two keys hash
        // to different shards, so this plan must refuse to parallelize.
        let plan = crate::logical::plan_text(
            "SELECT b.w, count(*) FROM nums a, other b WHERE a.k = b.k GROUP BY b.w",
            &c,
            &reg,
        )
        .unwrap();
        assert!(lower_parallel(&plan, &m, &reg, LowerOptions::default(), 4).unwrap().is_none());
    }

    #[test]
    fn parallel_lowering_falls_back_when_ineligible() {
        let reg = Registry::with_builtins();
        let (c, m) = big_fixture();
        let plan = |src: &str| crate::logical::plan_text(src, &c, &reg).unwrap();
        let try_par = |p: &LogicalPlan, threads: usize| {
            lower_parallel(p, &m, &reg, LowerOptions::default(), threads).unwrap()
        };
        // One thread: nothing to parallelize.
        assert!(try_par(&plan("SELECT v FROM nums"), 1).is_none());
        // Top-k needs a gather stage.
        assert!(try_par(&plan("SELECT v FROM nums ORDER BY v LIMIT 5"), 4).is_none());
        // Global aggregates need all rows at one site.
        assert!(try_par(&plan("SELECT count(*) FROM nums"), 4).is_none());
        // Distributed lowering has its own (cluster) parallelism.
        assert!(
            try_par_opts(&plan("SELECT v FROM nums"), LowerOptions::cluster(), &m, &reg).is_none()
        );
        // Recursion moves tuples across shards between strata.
        let mut c2 = edge_catalog();
        c2.register("seed", Schema::of(&[("id", DataType::Int)]));
        let mut m2 = edge_tables();
        m2.insert("seed", (0..5000i64).map(|i| tuple![i]).collect());
        let fp = crate::logical::plan_text(
            "WITH reach (id) AS (SELECT id FROM seed) UNION UNTIL FIXPOINT BY id (
               SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id)",
            &c2,
            &reg,
        )
        .unwrap();
        assert!(lower_parallel(&fp, &m2, &reg, LowerOptions::default(), 4).unwrap().is_none());
        // Tiny inputs are not worth the thread spawn.
        let (ce, me) = (edge_catalog(), edge_tables());
        let small = crate::logical::plan_text("SELECT dst FROM edges", &ce, &reg).unwrap();
        assert!(lower_parallel(&small, &me, &reg, LowerOptions::default(), 4).unwrap().is_none());
    }

    fn try_par_opts(
        p: &LogicalPlan,
        opts: LowerOptions,
        m: &MemTables,
        reg: &Registry,
    ) -> Option<Vec<PlanGraph>> {
        lower_parallel(p, m, reg, opts, 4).unwrap()
    }
}
