//! Physical lowering: [`LogicalPlan`] → executable [`PlanGraph`].
//!
//! Lowering is mechanical: scans read from a [`TableProvider`], filters
//! and projections map 1:1 onto their operators, joins become pipelined
//! hash joins (with the registered handler attached for handler joins),
//! aggregates become a rehash + group-by (+ optional post-projection), and
//! a fixpoint becomes the Figure 1 loop: base → fixpoint port 0, feedback
//! out of port 0 into the step subplan, step output rehashed on the
//! fixpoint key back into port 1, finals out of port 1 into the sink.
//!
//! ## Distributed lowering
//!
//! With [`LowerOptions::distributed`] set, the same logical plan lowers to
//! a *worker* plan: the lowering tracks how each intermediate stream is
//! partitioned (scans by their table's partition key, fixpoint feedback by
//! the `FIXPOINT BY` key, rehash outputs by their hash key) and inserts
//! network boundaries exactly where the data's current partitioning does
//! not line up with what the next stateful operator needs:
//!
//! * join inputs are rehashed on the join key unless already co-partitioned
//!   on it; a key-less (handler broadcast) join replicates the recursive
//!   side to all workers while the stored side stays partitioned;
//! * grouped aggregates repartition on the grouping key (as locally);
//!   *global* aggregates gather every partition's tuples at one
//!   deterministic worker instead of computing per-worker partials;
//! * fixpoint base cases are rehashed onto the fixpoint key when the base
//!   relation is partitioned differently.
//!
//! Local lowering (`distributed = false`) is unchanged: rehash operators
//! are pass-throughs on a single node, so local plans stay minimal.

use crate::logical::{AggCall, LogicalPlan, SortKey};
use crate::resolve::SchemaCatalog;
use rex_core::error::{Result, RexError};
use rex_core::exec::{NodeId, PlanGraph};
use rex_core::expr::Expr;
use rex_core::operators::{
    AggSpec, FilterOp, FixpointOp, GroupByOp, HashJoinOp, ProjectOp, ScanOp, ScanRows, SinkOp,
    SortSpec, Termination, TopKOp,
};
use rex_core::tuple::Tuple;
use rex_core::udf::Registry;
use std::collections::HashMap;

/// Supplies table contents at lowering time (the worker's partition in
/// distributed execution, the full table locally).
pub trait TableProvider {
    /// The rows of `table` visible to this plan instance.
    fn scan(&self, table: &str) -> Result<Vec<Tuple>>;

    /// The rows of `table` as a [`ScanRows`] source. Providers backed by
    /// shared storage override this to hand the scan an `Arc` snapshot —
    /// no deep copy of the table into the plan; the default wraps
    /// [`scan`](TableProvider::scan)'s owned rows.
    fn scan_shared(&self, table: &str) -> Result<ScanRows> {
        Ok(ScanRows::Owned(self.scan(table)?))
    }

    /// Total byte size of what [`scan_shared`](TableProvider::scan_shared)
    /// returns, when the storage layer keeps it cached — lets the scan
    /// skip per-row size accounting. `None` (the default) means "count
    /// while scanning".
    fn scan_bytes(&self, _table: &str) -> Option<u64> {
        None
    }

    /// The columns `table` is partitioned on across workers, if known.
    /// Distributed lowering uses this to skip redundant rehashes when a
    /// scan is already partitioned on the key an operator needs. `None`
    /// (the default) means "unknown" and forces a rehash where one might
    /// be needed — always safe.
    fn partition_cols(&self, _table: &str) -> Option<Vec<usize>> {
        None
    }
}

/// A simple in-memory provider.
#[derive(Debug, Clone, Default)]
pub struct MemTables {
    tables: HashMap<String, Vec<Tuple>>,
}

impl MemTables {
    /// Empty provider.
    pub fn new() -> MemTables {
        MemTables::default()
    }

    /// Register a table's rows.
    pub fn insert(&mut self, name: impl Into<String>, rows: Vec<Tuple>) {
        self.tables.insert(name.into(), rows);
    }
}

impl TableProvider for MemTables {
    fn scan(&self, table: &str) -> Result<Vec<Tuple>> {
        self.tables
            .get(table)
            .cloned()
            .ok_or_else(|| RexError::Storage(format!("no data registered for table {table}")))
    }
}

/// Iteration cap applied to RQL fixpoints (safety net against diverging
/// user queries; the paper's optimizer applies a similar cap, §5.3).
pub const DEFAULT_MAX_STRATA: u64 = 10_000;

/// Options controlling physical lowering.
#[derive(Debug, Clone, Copy)]
pub struct LowerOptions {
    /// Lower a worker-local plan for distributed execution: insert network
    /// boundaries wherever the stream's partitioning does not match what
    /// the consuming operator requires (see the module docs).
    pub distributed: bool,
    /// Use the insert-only sink fast lane when the plan provably emits
    /// nothing but `+()` deltas (see [`insert_only_plan`]). On by
    /// default; platform-agreement sweeps turn it off to prove the lane
    /// is output-invisible.
    pub fast_lane: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions { distributed: false, fast_lane: true }
    }
}

impl LowerOptions {
    /// Options for a per-worker plan in the cluster.
    pub fn cluster() -> LowerOptions {
        LowerOptions { distributed: true, ..LowerOptions::default() }
    }

    /// Disable the insert-only sink fast lane (agreement sweeps).
    pub fn without_fast_lane(mut self) -> LowerOptions {
        self.fast_lane = false;
        self
    }
}

/// Whether every delta a lowered `plan` can deliver to its sink is an
/// insertion. Scans emit only `+()` deltas, filters/projections preserve
/// annotations, and a handler-free equi-join of insert-only inputs emits
/// only insertions — so pipelines of those shapes qualify. Aggregates
/// (replacements on group refinement), top-k (retraction diffs),
/// fixpoints, and handler joins (arbitrary handler output) do not.
pub fn insert_only_plan(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            insert_only_plan(input)
        }
        LogicalPlan::Join { left, right, handler, .. } => {
            handler.is_none() && insert_only_plan(left) && insert_only_plan(right)
        }
        // A pure ORDER BY adds no dataflow operator (presentation order is
        // applied by the session); the stream is its input's.
        LogicalPlan::Sort { input, fetch: None, offset: 0, .. } => insert_only_plan(input),
        LogicalPlan::Aggregate { .. }
        | LogicalPlan::Sort { .. }
        | LogicalPlan::Limit { .. }
        | LogicalPlan::Fixpoint { .. }
        | LogicalPlan::FixpointRef { .. } => false,
    }
}

/// Whether the plan is a pure stateless chain — scans feeding only
/// filters and projections (pure ORDER BY on top included). On such
/// plans the scans emit run-length `Event::Rows` batches and every
/// operator down to the sink moves bare tuples instead of deltas. Join
/// plans stay on delta batches (the join is where annotations start to
/// matter) but still qualify for the append sink via
/// [`insert_only_plan`].
pub fn rows_lane_plan(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => {
            rows_lane_plan(input)
        }
        LogicalPlan::Sort { input, fetch: None, offset: 0, .. } => rows_lane_plan(input),
        _ => false,
    }
}

/// Compile RQL source text into an executable plan graph.
pub fn compile(
    src: &str,
    catalog: &SchemaCatalog,
    provider: &dyn TableProvider,
    reg: &Registry,
) -> Result<PlanGraph> {
    let logical = crate::logical::plan_text(src, catalog, reg)?;
    lower(&logical, provider, reg)
}

/// Lower a logical plan into a plan graph with a sink on the result.
pub fn lower(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    reg: &Registry,
) -> Result<PlanGraph> {
    lower_with(plan, provider, reg, LowerOptions::default())
}

/// Lower a logical plan with explicit [`LowerOptions`].
pub fn lower_with(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    reg: &Registry,
    opts: LowerOptions,
) -> Result<PlanGraph> {
    let mut g = PlanGraph::new();
    let rows_lane = opts.fast_lane && rows_lane_plan(plan);
    let mut ctx = Lowering { g: &mut g, provider, reg, fixpoint: None, opts, rows_lane };
    let (node, port, _) = ctx.node(plan)?;
    // Insert-only pipelines take the append sink: no delta application,
    // one unstable sort when results are taken. Anything that can emit
    // deletes/replacements keeps the counted sink.
    let sink = if opts.fast_lane && insert_only_plan(plan) {
        g.add(Box::new(SinkOp::append_only()))
    } else {
        g.add(Box::new(SinkOp::new()))
    };
    g.connect(node, port, sink, 0);
    Ok(g)
}

/// How a lowered stream is partitioned across workers: `Some(cols)` when
/// every tuple lives on the owner of the hash of those columns, `None`
/// when unknown (forces a rehash wherever co-partitioning is required).
type Partitioning = Option<Vec<usize>>;

struct Lowering<'a> {
    g: &'a mut PlanGraph,
    provider: &'a dyn TableProvider,
    reg: &'a Registry,
    /// While lowering a fixpoint step: the fixpoint node (whose output
    /// port 0 feeds [`LogicalPlan::FixpointRef`] consumers) and its key.
    fixpoint: Option<(NodeId, Vec<usize>)>,
    opts: LowerOptions,
    /// The whole plan is a stateless chain: scans emit run-length
    /// `Event::Rows` batches (see [`rows_lane_plan`]).
    rows_lane: bool,
}

impl Lowering<'_> {
    /// In distributed mode, route `(node, port)` through a hash boundary on
    /// `key` unless the stream is already partitioned exactly on `key`.
    fn ensure_partitioned(
        &mut self,
        node: NodeId,
        port: usize,
        current: &Partitioning,
        key: &[usize],
    ) -> (NodeId, usize, Partitioning) {
        if !self.opts.distributed || current.as_deref() == Some(key) {
            return (node, port, current.clone());
        }
        let rh = self.g.add_rehash(key.to_vec());
        self.g.connect(node, port, rh, 0);
        (rh, 0, Some(key.to_vec()))
    }

    /// Lower a top-k selection (`ORDER BY … LIMIT n OFFSET m`, or a bare
    /// `LIMIT` with no keys — deterministic in total tuple order).
    ///
    /// Locally this is one buffering [`TopKOp`]. Distributed, it is the
    /// scatter/gather top-k: each worker keeps its best `fetch + offset`
    /// rows (a *partial* sort — no offset applied yet), the partials
    /// funnel through a [`NetKey::Gather`](rex_core::exec::NetKey)
    /// boundary to one deterministic worker, and a *final* top-k there
    /// applies the true offset and limit over the union.
    fn topk(
        &mut self,
        input: &LogicalPlan,
        keys: &[SortKey],
        fetch: Option<u64>,
        offset: u64,
    ) -> Result<(NodeId, usize, Partitioning)> {
        let (src, port, _) = self.node(input)?;
        let specs: Vec<SortSpec> =
            keys.iter().map(|k| SortSpec { expr: k.expr.clone(), desc: k.desc }).collect();
        if self.opts.distributed {
            let local_cap = fetch.map(|f| (f + offset) as usize);
            let partial = self.g.add(Box::new(TopKOp::new(specs.clone(), local_cap, 0)));
            self.g.connect(src, port, partial, 0);
            let gather = self.g.add_gather();
            self.g.connect(partial, 0, gather, 0);
            let fin = self.g.add(Box::new(TopKOp::new(
                specs,
                fetch.map(|f| f as usize),
                offset as usize,
            )));
            self.g.connect(gather, 0, fin, 0);
            Ok((fin, 0, None))
        } else {
            let id = self.g.add(Box::new(TopKOp::new(
                specs,
                fetch.map(|f| f as usize),
                offset as usize,
            )));
            self.g.connect(src, port, id, 0);
            Ok((id, 0, None))
        }
    }

    /// Lower `plan`, returning `(node, output port, partitioning)` of its
    /// result stream.
    fn node(&mut self, plan: &LogicalPlan) -> Result<(NodeId, usize, Partitioning)> {
        match plan {
            LogicalPlan::Scan { table, .. } => {
                let rows = self.provider.scan_shared(table)?;
                let id = self.g.add(Box::new(
                    ScanOp::new(table.clone(), rows)
                        .insert_only(self.rows_lane)
                        .known_bytes(self.provider.scan_bytes(table)),
                ));
                let part =
                    if self.opts.distributed { self.provider.partition_cols(table) } else { None };
                Ok((id, 0, part))
            }
            LogicalPlan::FixpointRef { name, .. } => {
                let (fp, key) = self.fixpoint.clone().ok_or_else(|| {
                    RexError::Plan(format!("recursive relation {name} referenced outside WITH"))
                })?;
                Ok((fp, 0, Some(key)))
            }
            LogicalPlan::Filter { input, predicate } => {
                let (src, port, part) = self.node(input)?;
                let id = self.g.add(Box::new(FilterOp::new(predicate.clone())));
                self.g.connect(src, port, id, 0);
                Ok((id, 0, part))
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let (src, port, part) = self.node(input)?;
                let id = self.g.add(Box::new(ProjectOp::new(exprs.clone())));
                self.g.connect(src, port, id, 0);
                Ok((id, 0, remap_partitioning(&part, exprs)))
            }
            LogicalPlan::Join { left, right, left_key, right_key, handler, .. } => {
                let (l, lp, lpart) = self.node(left)?;
                let (r, rp, rpart) = self.node(right)?;
                let (l, lp, r, rp, out_part) = if left_key.is_empty() {
                    // Key-less (handler broadcast) join: replicate the
                    // recursive side everywhere, keep the stored side
                    // partitioned so each pair is formed exactly once.
                    if self.opts.distributed {
                        let bc_right = contains_fixpoint_ref(right) || !contains_fixpoint_ref(left);
                        if bc_right {
                            let bc = self.g.add_rehash(Vec::new());
                            self.g.connect(r, rp, bc, 0);
                            (l, lp, bc, 0, None)
                        } else {
                            let bc = self.g.add_rehash(Vec::new());
                            self.g.connect(l, lp, bc, 0);
                            (bc, 0, r, rp, None)
                        }
                    } else {
                        (l, lp, r, rp, None)
                    }
                } else {
                    // Equi-join: co-partition both inputs on the join key.
                    let (l, lp, _) = self.ensure_partitioned(l, lp, &lpart, left_key);
                    let (r, rp, _) = self.ensure_partitioned(r, rp, &rpart, right_key);
                    // Output rows carry the left input's columns at their
                    // original indices, so the result stays partitioned on
                    // the left key (for a plain join; a handler join
                    // rewrites the row shape entirely).
                    let part = if handler.is_none() { Some(left_key.clone()) } else { None };
                    (l, lp, r, rp, part)
                };
                let mut join = HashJoinOp::new(left_key.clone(), right_key.clone());
                if let Some(h) = handler {
                    join = join.with_handler(self.reg.join(h)?);
                }
                let id = self.g.add(Box::new(join));
                self.g.connect(l, lp, id, 0);
                self.g.connect(r, rp, id, 1);
                Ok((id, 0, out_part))
            }
            LogicalPlan::Aggregate { input, group_cols, aggs, post, .. } => {
                let (src, port, _) = self.node(input)?;
                // Repartition on the grouping key before aggregating. A
                // *global* aggregate (no keys) is a pass-through locally
                // but must gather all partitions at one worker in the
                // cluster — per-worker partials would union into one row
                // per worker at the requestor. Locally a rehash is a pure
                // pass-through, so no node is added at all: every input
                // delta would otherwise take one extra hop through the
                // executor queue.
                let (rehash, rport) = if group_cols.is_empty() {
                    if self.opts.distributed {
                        let gather = self.g.add_gather();
                        self.g.connect(src, port, gather, 0);
                        (gather, 0)
                    } else {
                        (src, port)
                    }
                } else if self.opts.distributed {
                    let rh = self.g.add_rehash(group_cols.clone());
                    self.g.connect(src, port, rh, 0);
                    (rh, 0)
                } else {
                    (src, port)
                };
                let specs = aggs
                    .iter()
                    .map(|a: &AggCall| {
                        Ok(AggSpec::new(self.reg.agg(&a.func)?, a.input_cols.clone()))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let gb = self.g.add(Box::new(GroupByOp::new(group_cols.clone(), specs)));
                self.g.connect(rehash, rport, gb, 0);
                // Aggregate output = group cols ++ agg results: partitioned
                // on the leading group columns.
                let gb_part: Partitioning = if group_cols.is_empty() {
                    None
                } else {
                    Some((0..group_cols.len()).collect())
                };
                match post {
                    Some(exprs) => {
                        let proj = self.g.add(Box::new(ProjectOp::new(exprs.clone())));
                        self.g.connect(gb, 0, proj, 0);
                        Ok((proj, 0, remap_partitioning(&gb_part, exprs)))
                    }
                    None => Ok((gb, 0, gb_part)),
                }
            }
            LogicalPlan::Sort { input, keys, fetch, offset } => {
                // A pure ORDER BY constrains nothing about the result
                // *multiset*; presentation ordering is applied by the
                // session over the final rows. Only a fused LIMIT/OFFSET
                // (top-k) needs a dataflow operator.
                if fetch.is_none() && *offset == 0 {
                    self.node(input)
                } else {
                    self.topk(input, keys, *fetch, *offset)
                }
            }
            LogicalPlan::Limit { input, fetch, offset } => {
                // An unfused LIMIT directly above an ORDER BY must still
                // select rows in that order (the optimizer normally fuses
                // the pair, but unoptimized plans lower correctly too).
                let (keys, inner): (&[SortKey], &LogicalPlan) = match input.as_ref() {
                    LogicalPlan::Sort { input: si, keys, fetch: None, offset: 0 } => {
                        (keys.as_slice(), si)
                    }
                    other => (&[], other),
                };
                self.topk(inner, keys, Some(*fetch), *offset)
            }
            LogicalPlan::Fixpoint { key_cols, base, step, .. } => {
                let (b, bport, bpart) = self.node(base)?;
                // The base case must arrive partitioned on the fixpoint key
                // so each worker's mutable set holds exactly its keys.
                let (b, bport, _) = self.ensure_partitioned(b, bport, &bpart, key_cols);
                let fp = self.g.add(Box::new(FixpointOp::new(
                    key_cols.clone(),
                    Termination::FixpointOrMax(DEFAULT_MAX_STRATA),
                )));
                self.g.connect(b, bport, fp, 0);
                let prev = self.fixpoint.replace((fp, key_cols.clone()));
                let (s, sport, _) = self.node(step)?;
                self.fixpoint = prev;
                // Step results re-enter the fixpoint keyed on its key.
                let rehash = self.g.add_rehash(key_cols.clone());
                self.g.connect(s, sport, rehash, 0);
                self.g.connect(rehash, 0, fp, 1);
                Ok((fp, 1, Some(key_cols.clone())))
            }
        }
    }
}

/// Partitioning after a projection: the partition columns survive iff each
/// appears as a plain column reference, in order, in the output.
fn remap_partitioning(part: &Partitioning, exprs: &[Expr]) -> Partitioning {
    let cols = part.as_ref()?;
    let mut out = Vec::with_capacity(cols.len());
    for &c in cols {
        let pos = exprs.iter().position(|e| matches!(e, Expr::Col(i) if *i == c))?;
        out.push(pos);
    }
    Some(out)
}

/// Whether a subtree reads the enclosing recursive relation.
fn contains_fixpoint_ref(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::FixpointRef { .. } => true,
        LogicalPlan::Scan { .. } => false,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => contains_fixpoint_ref(input),
        LogicalPlan::Join { left, right, .. } => {
            contains_fixpoint_ref(left) || contains_fixpoint_ref(right)
        }
        // A nested fixpoint's step reads its *own* relation, not ours.
        LogicalPlan::Fixpoint { base, .. } => contains_fixpoint_ref(base),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rex_core::exec::LocalRuntime;
    use rex_core::tuple;
    use rex_core::tuple::Schema;
    use rex_core::value::DataType;

    fn edge_catalog() -> SchemaCatalog {
        let mut c = SchemaCatalog::new();
        c.register("edges", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]));
        c
    }

    fn edge_tables() -> MemTables {
        let mut m = MemTables::new();
        // A path 0 -> 1 -> 2 -> 3 plus a shortcut 0 -> 2.
        m.insert(
            "edges",
            vec![tuple![0i64, 1i64], tuple![1i64, 2i64], tuple![2i64, 3i64], tuple![0i64, 2i64]],
        );
        m
    }

    #[test]
    fn filter_and_project_execute() {
        let reg = Registry::with_builtins();
        let g =
            compile("SELECT dst FROM edges WHERE src = 0", &edge_catalog(), &edge_tables(), &reg)
                .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(results, vec![tuple![1i64], tuple![2i64]]);
    }

    #[test]
    fn aggregation_executes() {
        let reg = Registry::with_builtins();
        let g = compile(
            "SELECT src, count(*) FROM edges GROUP BY src",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(results, vec![tuple![0i64, 2i64], tuple![1i64, 1i64], tuple![2i64, 1i64]]);
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let reg = Registry::with_builtins();
        let g = compile(
            "SELECT sum(dst), count(*) FROM edges WHERE src > 0",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (results, _) = LocalRuntime::new().run(g).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get(0).as_double(), Some(5.0));
        assert_eq!(results[0].get(1).as_int(), Some(2));
    }

    #[test]
    fn self_join_executes() {
        let reg = Registry::with_builtins();
        let mut c = edge_catalog();
        c.register("edges2", Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]));
        let mut m = edge_tables();
        m.insert("edges2", m.scan("edges").unwrap());
        // Two-hop pairs: e1.dst = e2.src.
        let g =
            compile("SELECT a.src, b.dst FROM edges a, edges2 b WHERE a.dst = b.src", &c, &m, &reg)
                .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(
            results,
            vec![
                tuple![0i64, 2i64], // 0->1->2
                tuple![0i64, 3i64], // 0->2->3
                tuple![1i64, 3i64], // 1->2->3
            ]
        );
    }

    /// Transitive closure from a seed using pure RQL recursion: reach(x)
    /// holds the frontier distance... here simply reachable node ids.
    #[test]
    fn recursive_reachability_via_rql() {
        let reg = Registry::with_builtins();
        let mut c = edge_catalog();
        c.register("seed", Schema::of(&[("id", DataType::Int)]));
        let mut m = edge_tables();
        m.insert("seed", vec![tuple![0i64]]);
        let src = "
            WITH reach (id) AS (
              SELECT id FROM seed
            ) UNION UNTIL FIXPOINT BY id (
              SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id
            )";
        let g = compile(src, &c, &m, &reg).unwrap();
        let (mut results, report) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(results, vec![tuple![0i64], tuple![1i64], tuple![2i64], tuple![3i64]]);
        // Recursion ran multiple strata and converged.
        assert!(report.iterations() >= 3);
        assert_eq!(report.strata.last().unwrap().delta_set_size, 0);
    }

    #[test]
    fn order_by_limit_executes_as_topk() {
        let reg = Registry::with_builtins();
        // Unoptimized Limit-above-Sort must still select in ORDER BY
        // order (the lowering fuses the pair itself).
        let g = compile(
            "SELECT src, dst FROM edges ORDER BY dst DESC LIMIT 2",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        // dst values {1, 2, 2, 3}: top-2 descending is 3 ([2,3]) then the
        // dst=2 tie, broken by full-tuple order ([0,2] < [1,2]).
        assert_eq!(results, vec![tuple![0i64, 2i64], tuple![2i64, 3i64]]);
    }

    #[test]
    fn limit_without_order_is_a_deterministic_prefix() {
        let reg = Registry::with_builtins();
        let g = compile(
            "SELECT src FROM edges LIMIT 2 OFFSET 1",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        // Tuple-order multiset {0,0,1,2} → skip 1, take 2.
        assert_eq!(results, vec![tuple![0i64], tuple![1i64]]);
    }

    #[test]
    fn distinct_executes_via_group_by() {
        let reg = Registry::with_builtins();
        let g = compile("SELECT DISTINCT src FROM edges", &edge_catalog(), &edge_tables(), &reg)
            .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(results, vec![tuple![0i64], tuple![1i64], tuple![2i64]]);
    }

    #[test]
    fn having_filters_groups() {
        let reg = Registry::with_builtins();
        let g = compile(
            "SELECT src, count(*) FROM edges GROUP BY src HAVING count(*) > 1",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (results, _) = LocalRuntime::new().run(g).unwrap();
        assert_eq!(results, vec![tuple![0i64, 2i64]]);
    }

    #[test]
    fn expression_aggregates_execute() {
        let reg = Registry::with_builtins();
        let g = compile(
            "SELECT src, sum(dst * dst) FROM edges GROUP BY src",
            &edge_catalog(),
            &edge_tables(),
            &reg,
        )
        .unwrap();
        let (mut results, _) = LocalRuntime::new().run(g).unwrap();
        results.sort();
        assert_eq!(results, vec![tuple![0i64, 5.0f64], tuple![1i64, 4.0f64], tuple![2i64, 9.0f64]]);
    }

    #[test]
    fn missing_table_data_is_reported() {
        let reg = Registry::with_builtins();
        let err = match compile("SELECT dst FROM edges", &edge_catalog(), &MemTables::new(), &reg) {
            Err(e) => e,
            Ok(_) => panic!("expected missing-data error"),
        };
        assert!(err.to_string().contains("no data registered"));
    }
}
