//! The four evaluation datasets (§6 "Data"), at laptop scale.

use rex_core::tuple::Tuple;
use rex_data::graph::{generate_graph, Graph, GraphSpec};
use rex_data::lineitem::{generate_lineitem, LineItem};
use rex_data::points::{generate_points, Point, PointSpec};
use rex_storage::catalog::Catalog;
use rex_storage::table::StoredTable;

/// The DBPedia link-graph stand-in (48M edges / 3.3M vertices in the
/// paper; same mean degree ~14 here, scaled down).
pub fn dbpedia_graph(scale: f64) -> Graph {
    generate_graph(GraphSpec::dbpedia((1500.0 * scale) as usize, 42))
}

/// The Twitter follower-graph stand-in (denser core, heavier tail).
pub fn twitter_graph(scale: f64) -> Graph {
    generate_graph(GraphSpec::twitter((2500.0 * scale) as usize, 1729))
}

/// The geo-coordinates stand-in for K-means.
pub fn geo_points(n: usize) -> Vec<Point> {
    generate_points(PointSpec::geodata(n, 7))
}

/// The TPC-H lineitem stand-in for Figure 4.
pub fn lineitem_rows(n: usize) -> Vec<LineItem> {
    generate_lineitem(n, 5)
}

/// A storage catalog holding a graph as the `graph` table (partitioned by
/// `srcId`), the layout every distributed graph experiment uses.
pub fn graph_catalog(g: &Graph) -> Catalog {
    let cat = Catalog::new();
    let mut t = StoredTable::new("graph", Graph::schema(), vec![0]);
    t.load_unchecked(g.edge_tuples());
    cat.register(t);
    cat
}

/// A catalog holding points as the `geodata` table (partitioned by `nid`).
pub fn points_catalog(points: &[Point]) -> Catalog {
    let cat = Catalog::new();
    let mut t = StoredTable::new("geodata", rex_data::points::schema(), vec![0]);
    t.load_unchecked(rex_data::points::point_tuples(points));
    cat.register(t);
    cat
}

/// A catalog holding lineitem rows (partitioned by `orderkey`).
pub fn lineitem_catalog(rows: &[LineItem]) -> Catalog {
    let cat = Catalog::new();
    let mut t = StoredTable::new("lineitem", rex_data::lineitem::schema(), vec![0]);
    t.load_unchecked(rex_data::lineitem::lineitem_tuples(rows));
    cat.register(t);
    cat
}

/// Lineitem rows as engine tuples.
pub fn lineitem_tuples(rows: &[LineItem]) -> Vec<Tuple> {
    rex_data::lineitem::lineitem_tuples(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_have_expected_shape() {
        let d = dbpedia_graph(1.0);
        let t = twitter_graph(1.0);
        assert!(d.n_edges() > 10_000);
        let d_density = d.n_edges() as f64 / d.n_vertices as f64;
        let t_density = t.n_edges() as f64 / t.n_vertices as f64;
        assert!(t_density > d_density, "twitter must be denser");
    }

    #[test]
    fn catalogs_register_tables() {
        let g = dbpedia_graph(0.1);
        let cat = graph_catalog(&g);
        assert_eq!(cat.get("graph").unwrap().len(), g.n_edges());
        let pts = geo_points(100);
        assert_eq!(points_catalog(&pts).get("geodata").unwrap().len(), 100);
        let rows = lineitem_rows(50);
        assert_eq!(lineitem_catalog(&rows).get("lineitem").unwrap().len(), 50);
    }
}
