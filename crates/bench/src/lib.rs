//! # rex-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§6), each printing the same series the paper plots, in
//! deterministic cost-model units (and wall-clock seconds where useful).
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig02_convergence` | Fig. 2 — PageRank convergence behavior |
//! | `fig03_taxonomy` | Fig. 3 — immutable/mutable/Δᵢ classification |
//! | `fig04_olap` | Fig. 4 — simple aggregation, UDF overhead |
//! | `fig05_kmeans` | Fig. 5 — K-means scalability sweep |
//! | `fig06_pagerank_dbpedia` | Fig. 6 — PageRank, 5 strategies |
//! | `fig07_sssp_dbpedia` | Fig. 7 — shortest path, 5 strategies |
//! | `fig08_pagerank_twitter` | Fig. 8 — PageRank at scale |
//! | `fig09_sssp_twitter` | Fig. 9 — shortest path at scale |
//! | `fig10_scalability` | Fig. 10 — scale-out + DBMS X comparison |
//! | `fig11_bandwidth` | Fig. 11 — average bandwidth per node |
//! | `fig12_recovery` | Fig. 12 — restart vs incremental recovery |
//!
//! Workload sizes default to laptop scale; set `REX_SCALE=large` for
//! bigger sweeps. Seeds are fixed, so output is reproducible.

pub mod runners;
pub mod series;
pub mod workloads;

pub use series::{print_table, Series};

/// Scale factor taken from `REX_SCALE` (`small` default, `large`).
pub fn scale() -> f64 {
    match std::env::var("REX_SCALE").as_deref() {
        Ok("large") => 4.0,
        Ok("medium") => 2.0,
        _ => 1.0,
    }
}

/// The paper's cluster size.
pub const PAPER_WORKERS: usize = 28;

#[cfg(test)]
mod tests {
    #[test]
    fn scale_defaults_to_one() {
        // REX_SCALE is unset in the test environment.
        if std::env::var("REX_SCALE").is_err() {
            assert_eq!(super::scale(), 1.0);
        }
    }
}
