//! Unified experiment runners: one function per (algorithm, platform),
//! each returning per-iteration simulated times plus whatever the figure
//! needs (bandwidth, Δ sizes, results for cross-checking).

use rex_algos::pagerank::{self, PageRankConfig, Strategy};
use rex_algos::{kmeans, kmeans_mr, pagerank_mr, sssp, sssp_mr};
use rex_cluster::failure::{FailurePlan, RecoveryStrategy};
use rex_cluster::report::ClusterReport;
use rex_cluster::runtime::{ClusterConfig, ClusterRuntime};
use rex_core::tuple::Tuple;
use rex_data::graph::Graph;
use rex_data::points::Point;
use rex_hadoop::cost::EmulationMode;
use rex_hadoop::driver::RunReport;
use rex_hadoop::job::HadoopCluster;

use crate::workloads::{graph_catalog, points_catalog};

/// Per-iteration simulated times of a cluster run.
pub fn rex_iteration_times(report: &ClusterReport) -> Vec<f64> {
    report.query.strata.iter().map(|s| s.simulated_time).collect()
}

/// Per-iteration simulated times of a MapReduce run.
pub fn mr_iteration_times(report: &RunReport) -> Vec<f64> {
    report.iterations.iter().map(|i| i.metrics.sim_time).collect()
}

/// PageRank on REX across `workers` nodes.
pub fn pagerank_rex(
    graph: &Graph,
    cfg: PageRankConfig,
    strategy: Strategy,
    workers: usize,
) -> (Vec<Tuple>, ClusterReport) {
    let rt = ClusterRuntime::new(ClusterConfig::new(workers), graph_catalog(graph));
    rt.run(pagerank::plan_builder(cfg, strategy)).expect("pagerank run")
}

/// PageRank "wrap" (Hadoop classes inside REX) across `workers` nodes.
pub fn pagerank_wrap(graph: &Graph, iterations: u64, workers: usize) -> ClusterReport {
    let rt = ClusterRuntime::new(ClusterConfig::new(workers), graph_catalog(graph));
    rt.run(pagerank_mr::wrap_plan_builder(iterations)).expect("wrap run").1
}

/// PageRank on the MapReduce simulator.
pub fn pagerank_hadoop(
    graph: &Graph,
    iterations: usize,
    mode: EmulationMode,
    nodes: usize,
) -> (Vec<f64>, RunReport) {
    let cluster = HadoopCluster::new(nodes).with_mode(mode);
    pagerank_mr::run_mr(graph, iterations, &cluster)
}

/// Shortest path on REX.
pub fn sssp_rex(
    graph: &Graph,
    source: u32,
    strategy: Strategy,
    max_iterations: u64,
    workers: usize,
) -> (Vec<Tuple>, ClusterReport) {
    let cfg = sssp::SsspConfig { source, max_iterations };
    let rt = ClusterRuntime::new(ClusterConfig::new(workers), graph_catalog(graph));
    rt.run(sssp::plan_builder(cfg, strategy)).expect("sssp run")
}

/// Shortest path "wrap".
pub fn sssp_wrap(graph: &Graph, source: u32, iterations: u64, workers: usize) -> ClusterReport {
    let rt = ClusterRuntime::new(ClusterConfig::new(workers), graph_catalog(graph));
    rt.run(sssp_mr::wrap_plan_builder(source, iterations)).expect("sssp wrap run").1
}

/// Shortest path on the MapReduce simulator (frontier-based Δ).
pub fn sssp_hadoop(
    graph: &Graph,
    source: u32,
    max_iterations: usize,
    mode: EmulationMode,
    nodes: usize,
) -> (Vec<f64>, RunReport) {
    let cluster = HadoopCluster::new(nodes).with_mode(mode);
    sssp_mr::run_mr(graph, source, max_iterations, &cluster)
}

/// SSSP on REX with an injected failure (Figure 12).
pub fn sssp_rex_with_failure(
    graph: &Graph,
    source: u32,
    workers: usize,
    fail_worker: usize,
    fail_stratum: u64,
    strategy: RecoveryStrategy,
) -> ClusterReport {
    let cfg = sssp::SsspConfig::from_source(source);
    let cluster_cfg = ClusterConfig::new(workers)
        .with_failure(FailurePlan::kill_at(fail_worker, fail_stratum), strategy);
    let rt = ClusterRuntime::new(cluster_cfg, graph_catalog(graph));
    rt.run(sssp::plan_builder(cfg, Strategy::Delta)).expect("recovery run").1
}

/// K-means on REX.
pub fn kmeans_rex(points: &[Point], k: usize, workers: usize) -> (Vec<Tuple>, ClusterReport) {
    let cfg = kmeans::KMeansConfig { k, max_iterations: 200 };
    let rt = ClusterRuntime::new(ClusterConfig::new(workers), points_catalog(points));
    rt.run(kmeans::plan_builder(cfg)).expect("kmeans run")
}

/// K-means on the MapReduce simulator.
pub fn kmeans_hadoop(
    points: &[Point],
    k: usize,
    mode: EmulationMode,
    nodes: usize,
) -> (Vec<Point>, RunReport) {
    let cluster = HadoopCluster::new(nodes).with_mode(mode);
    kmeans_mr::run_mr(points, k, 200, &cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use rex_algos::common::max_abs_diff;
    use rex_algos::reference;

    #[test]
    fn rex_and_hadoop_agree_on_small_pagerank() {
        let g = workloads::dbpedia_graph(0.05);
        let iters = 6;
        let (tuples, rex_rep) = pagerank_rex(
            &g,
            PageRankConfig { threshold: 0.0, max_iterations: iters },
            Strategy::NoDelta,
            3,
        );
        let rex_ranks = pagerank::ranks_from_results(&tuples, g.n_vertices);
        let (mr_ranks, _) = pagerank_hadoop(&g, iters as usize, EmulationMode::HadoopLowerBound, 3);
        assert!(max_abs_diff(&rex_ranks, &mr_ranks) < 1e-9);
        assert_eq!(rex_iteration_times(&rex_rep).len(), iters as usize);
    }

    #[test]
    fn wrap_run_produces_iteration_times() {
        let g = workloads::dbpedia_graph(0.05);
        let rep = pagerank_wrap(&g, 4, 3);
        assert_eq!(rex_iteration_times(&rep).len(), 4);
    }

    #[test]
    fn sssp_runners_agree_with_reference() {
        let g = workloads::dbpedia_graph(0.05);
        let (tuples, _) = sssp_rex(&g, 0, Strategy::Delta, 200, 3);
        let got = sssp::dists_from_results(&tuples, g.n_vertices);
        let want = reference::shortest_paths(&g, 0);
        for v in 0..g.n_vertices {
            let w = if want[v] == u32::MAX { f64::INFINITY } else { want[v] as f64 };
            assert_eq!(got[v], w, "vertex {v}");
        }
        let (mr, _) = sssp_hadoop(&g, 0, 100, EmulationMode::HaLoopLowerBound, 3);
        assert_eq!(got, mr);
    }

    #[test]
    fn kmeans_runners_agree() {
        let pts = workloads::geo_points(150);
        let k = 4;
        let (tuples, _) = kmeans_rex(&pts, k, 2);
        let rex_c = kmeans::centroids_from_results(&tuples, k);
        let (mr_c, _) = kmeans_hadoop(&pts, k, EmulationMode::HadoopLowerBound, 2);
        for (a, b) in rex_c.iter().zip(&mr_c) {
            assert!(a.dist(b) < 1e-6, "({}, {}) vs ({}, {})", a.x, a.y, b.x, b.y);
        }
    }
}
