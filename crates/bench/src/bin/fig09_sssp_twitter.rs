//! Figure 9: shortest path on the "Twitter" graph — Hadoop LB, HaLoop LB,
//! REX Δ, all with frontier (relation-level Δ) updates.
//!
//! The per-iteration plot shows the frontier explosion a few hops from the
//! source (the paper sees it at hops 7–8), visible in all three series.

use rex_algos::pagerank::Strategy;
use rex_algos::reference;
use rex_bench::runners::*;
use rex_bench::{print_table, scale, Series, PAPER_WORKERS};
use rex_hadoop::cost::EmulationMode;

fn main() {
    let g = rex_bench::workloads::twitter_graph(scale());
    let source = (g.n_vertices / 2) as u32;
    let dists = reference::shortest_paths(&g, source);
    let depth = reference::hops_to_reach(&dists, 1.0) as u64;
    println!(
        "Figure 9 — Shortest path (Twitter stand-in: {} vertices, {} edges, depth {depth})",
        g.n_vertices,
        g.n_edges()
    );

    let (_, hadoop) =
        sssp_hadoop(&g, source, depth as usize + 1, EmulationMode::HadoopLowerBound, PAPER_WORKERS);
    let (_, haloop) =
        sssp_hadoop(&g, source, depth as usize + 1, EmulationMode::HaLoopLowerBound, PAPER_WORKERS);
    let (_, delta) = sssp_rex(&g, source, Strategy::Delta, depth + 5, PAPER_WORKERS);

    let series = vec![
        Series::from_values("Hadoop LB", &mr_iteration_times(&hadoop)),
        Series::from_values("HaLoop LB", &mr_iteration_times(&haloop)),
        Series::from_values("REX Δ", &rex_iteration_times(&delta)),
    ];
    let cumulative: Vec<Series> = series.iter().map(Series::cumulative).collect();
    print_table("(a) cumulative runtime", "iteration", &cumulative);
    print_table("(b) runtime per iteration", "iteration", &series);

    // The frontier explosion: peak per-iteration runtime, excluding the
    // first iterations whose spike "reflects the time required to load the
    // immutable data" (§6.4).
    let delta_times = rex_iteration_times(&delta);
    let peak = delta_times
        .iter()
        .enumerate()
        .skip(2)
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i + 1)
        .unwrap_or(0);
    println!(
        "\nimmutable-data load spikes iteration 1 (as in the paper); the frontier\n\
         explosion then peaks at iteration {peak} of {} (paper: hops 7-8 of ~15)",
        delta_times.len()
    );
    let delta_total = cumulative[2].last_y();
    println!("totals:");
    for s in &cumulative {
        println!(
            "  {:<10} {:>14.0}  ({:.1}x vs REX Δ)",
            s.label.replace(" (cumulative)", ""),
            s.last_y(),
            s.last_y() / delta_total
        );
    }
    println!("\npaper: REX Δ ≈ 1.3x faster than HaLoop LB on Twitter shortest path");
}
