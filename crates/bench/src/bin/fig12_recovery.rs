//! Figure 12: recovery from a node failure — total shortest-path runtime
//! with a failure injected at iteration k, for the restart and incremental
//! strategies, against the no-failure baseline.
//!
//! Incremental recovery replays the replicated Δᵢ checkpoints from the
//! last completed stratum (replication factor 3, as in the paper);
//! restart discards all work.

use rex_algos::pagerank::Strategy;
use rex_bench::runners::{sssp_rex, sssp_rex_with_failure};
use rex_bench::{print_table, scale, Series, PAPER_WORKERS};
use rex_cluster::failure::RecoveryStrategy;

fn main() {
    let g = rex_bench::workloads::dbpedia_graph(scale());
    let source = 0u32;
    println!(
        "Figure 12 — Recovery (shortest path, DBPedia stand-in: {} vertices, {} workers, r = 3)",
        g.n_vertices, PAPER_WORKERS
    );

    let (_, baseline) = sssp_rex(&g, source, Strategy::Delta, 200, PAPER_WORKERS);
    let no_failure = baseline.simulated_time();
    let max_k = (baseline.iterations() as u64).saturating_sub(2).min(20);

    let fail_points: Vec<u64> = (1..=max_k).step_by(3).collect();
    let mut restart = Series { label: "Restart".into(), points: vec![] };
    let mut incremental = Series { label: "Incremental".into(), points: vec![] };
    let flat = Series {
        label: "No failure".into(),
        points: fail_points.iter().map(|&k| (k as f64, no_failure)).collect(),
    };
    for &k in &fail_points {
        let r = sssp_rex_with_failure(&g, source, PAPER_WORKERS, 1, k, RecoveryStrategy::Restart);
        let i =
            sssp_rex_with_failure(&g, source, PAPER_WORKERS, 1, k, RecoveryStrategy::Incremental);
        assert_eq!(r.failures.len(), 1, "failure must trigger");
        assert_eq!(i.failures.len(), 1);
        restart.points.push((k as f64, r.simulated_time()));
        incremental.points.push((k as f64, i.simulated_time()));
    }

    print_table(
        "query completion time vs failure iteration",
        "fail at k",
        &[restart.clone(), incremental.clone(), flat],
    );

    let avg = |s: &Series| s.points.iter().map(|&(_, y)| y).sum::<f64>() / s.points.len() as f64;
    let restart_overhead = avg(&restart) - no_failure;
    let incr_overhead = avg(&incremental) - no_failure;
    println!("\nno-failure baseline: {no_failure:.0}");
    println!(
        "avg overhead — restart: {restart_overhead:+.0}, incremental: {incr_overhead:+.0} \
         ({:.0}% of restart's; paper: incremental halves the recovery overhead)",
        100.0 * incr_overhead / restart_overhead
    );
}
