//! Figure 10: scalability and the DBMS comparison — (a) PageRank runtime
//! vs cluster size, including the single-node DBMS X and its
//! perfect-linear-speedup lower bound; (b) relative speedup vs one node.

use rex_algos::pagerank::{PageRankConfig, Strategy};
use rex_bench::runners::pagerank_rex;
use rex_bench::{print_table, scale, Series};
use rex_dbms::engine::DbmsConfig;
use rex_dbms::pagerank_recursive_sql;

fn main() {
    let g = rex_bench::workloads::dbpedia_graph(2.0 * scale());
    let iterations = 20u64;
    let node_counts = [1usize, 3, 9, 28];
    println!(
        "Figure 10 — Scalability (PageRank, DBPedia stand-in: {} vertices, {} edges, {} iterations)",
        g.n_vertices,
        g.n_edges(),
        iterations
    );

    let cfg = PageRankConfig { threshold: 0.01, max_iterations: iterations };
    let mut rex_times = Vec::new();
    for &n in &node_counts {
        let (_, rep) = pagerank_rex(&g, cfg, Strategy::Delta, n);
        rex_times.push(rep.simulated_time());
    }

    // DBMS X on one node; multi-node points are the perfect-speedup lower
    // bound DBMSX(1)/n (the paper could not license a cluster deployment).
    let (_, dbms_rep) = pagerank_recursive_sql(&g, iterations as usize, &DbmsConfig::default());
    let dbms1 = dbms_rep.total_sim_time();
    let dbms_lb: Vec<f64> = node_counts.iter().map(|&n| dbms1 / n as f64).collect();

    let rex_series = Series {
        label: "REX Δ".into(),
        points: node_counts.iter().zip(&rex_times).map(|(&n, &t)| (n as f64, t)).collect(),
    };
    let dbms_series = Series {
        label: "DBMS X LB".into(),
        points: node_counts.iter().zip(&dbms_lb).map(|(&n, &t)| (n as f64, t)).collect(),
    };
    print_table("(a) runtime vs number of nodes", "nodes", &[rex_series, dbms_series]);

    let speedups: Vec<f64> = rex_times.iter().map(|t| rex_times[0] / t).collect();
    let speedup_series = Series {
        label: "REX Δ speedup".into(),
        points: node_counts.iter().zip(&speedups).map(|(&n, &s)| (n as f64, s)).collect(),
    };
    print_table("(b) speedup vs single node", "nodes", &[speedup_series]);

    println!(
        "\nsingle node: REX Δ {:.0} vs DBMS X {:.0} — REX is {:.0}% faster (paper: ~30%)",
        rex_times[0],
        dbms1,
        100.0 * (dbms1 / rex_times[0] - 1.0)
    );
    println!(
        "28 nodes: REX Δ {:.0} vs idealized DBMS X LB {:.0} — REX {} the idealized DBMS",
        rex_times[3],
        dbms_lb[3],
        if rex_times[3] < dbms_lb[3] { "beats" } else { "trails" }
    );
    if rex_times[3] >= dbms_lb[3] {
        println!(
            "  (at laptop scale the power-law hot vertices cap parallel efficiency at \
             {:.0}%; at the paper's 48M-edge scale the skew share vanishes — see \
             EXPERIMENTS.md)",
            100.0 * speedups[3] / 28.0
        );
    }
    println!("speedup at 28 nodes: {:.1}x (paper: near-linear)", speedups[3]);
}
