//! Row-at-a-time executor throughput: the dataflow hot path in rows/sec.
//!
//! Three pipeline shapes over a 200k-row base table, on both engines:
//!
//! * **scan→filter→project→sink** (selective) — the per-row dataflow tax
//!   every query pays: `SELECT k, a + 1, b * 2.0 FROM t WHERE a < 10`
//!   keeps ~10% of rows, so scan + filter delivery dominates. Insert-only
//!   end to end: the fast lane (run-length `Event::Rows` batches, append
//!   sink, one radix sort) applies in full.
//! * **scan→filter→project→sink** (half) — the same pipeline with
//!   `a < 50` (~50% pass), loading the projection / sink / sort half of
//!   the lane as heavily as the scan half.
//! * **scan→join→group** — the keyed-state lane:
//!   `SELECT dim.g, count(*), sum(t.b) FROM t, dim WHERE t.k = dim.k
//!    GROUP BY dim.g`. Every row probes a hash join and folds into group
//!   state, so per-row key costs dominate.
//!
//! Each configuration is timed over several full `Session::query` passes
//! (parse → optimize → lower → execute → sorted rows, the same path users
//! pay) and the best pass is reported as rows/sec and ns/row — the number
//! the ROADMAP's "~240 ns/row in delta wrapping and cloning" claim turns
//! into. Results land in `BENCH_exec.json`; CI enforces the per-config
//! `floor` multiples over the pre-PR baselines recorded below.

use rex::core::tuple::{Schema, Tuple};
use rex::core::value::{DataType, Value};
use rex::Session;
use rex_data::rng::StdRng;
use std::time::Instant;

/// Base-table rows (the denominator of every ns/row figure).
const ROWS: usize = 200_000;
/// Dimension-table rows for the join workload.
const DIM_ROWS: usize = 20_000;
/// Cluster engine size.
const WORKERS: usize = 4;
/// Timed passes per configuration (best pass reported).
const PASSES: usize = 5;

/// Per configuration: `(workload, engine, pre-PR ns/row, CI floor)`.
///
/// The ns/row anchors were measured by running this bench at the commit
/// before the hot-path rework (per-event `OpCtx`, owned-key probes,
/// clone-heavy sinks, double stable sorts), interleaved with the current
/// build on the same dev machine; the *minimum* observed ns/row was
/// recorded. They make local runs self-describing — CI does **not**
/// compare against them: the bench-smoke job re-runs this binary at the
/// pre-rework commit *on the same runner* and enforces each `floor` on
/// that machine-independent ratio. Floors leave headroom for run-to-run
/// noise: the gating scan→filter→project configs hold ≥2x with 25–40%
/// margin. The join floors were regression guards (0.9 / 1.25) while
/// the probe loop was cache-miss bound; the columnar-batch PR's
/// integer-hash entropy fix, byte-estimated build-side selection, and
/// hash-all-then-prefetch batched probes lifted local `join_group` to
/// ~2.0x against the same pre-rework commit (interleaved rounds:
/// 765–835 pre vs 384–428 post ns/row), so local now gates at 1.8.
/// Cluster joins repartition through the network edge and keep the
/// general delta lane; interleaved rounds measure parity with the
/// pre-columnar commit there (routing dominates, probes don't), so
/// cluster keeps its ~1.4x-measured 1.25 floor from the fast-lane era.
const CONFIGS: [(&str, &str, f64, f64); 6] = [
    ("scan_filter_project", "local", 130.4, 2.0),
    ("scan_filter_project", "cluster", 449.5, 2.0),
    ("scan_filter_project_half", "local", 243.2, 1.8),
    ("scan_filter_project_half", "cluster", 590.5, 2.0),
    ("join_group", "local", 703.2, 1.8),
    ("join_group", "cluster", 1224.6, 1.25),
];

const SFPS_SELECTIVE: &str = "SELECT k, a + 1, b * 2.0 FROM t WHERE a < 10";
const SFPS_HALF: &str = "SELECT k, a + 1, b * 2.0 FROM t WHERE a < 50";
const JOIN_GROUP_QUERY: &str = "SELECT dim.g, count(*), sum(t.b) FROM t, dim \
     WHERE t.k = dim.k GROUP BY dim.g";

fn config(workload: &str, engine: &str) -> (f64, f64) {
    CONFIGS
        .iter()
        .find(|(w, e, _, _)| *w == workload && *e == engine)
        .map(|(_, _, ns, floor)| (*ns, *floor))
        .expect("baseline recorded for every configuration")
}

fn base_rows(rng: &mut StdRng) -> Vec<Tuple> {
    (0..ROWS)
        .map(|i| {
            Tuple::new(vec![
                Value::Int((i % DIM_ROWS) as i64),
                Value::Int(rng.gen_range(0..=99i64)),
                Value::Double(rng.gen_range(0..=999i64) as f64 * 0.25),
            ])
        })
        .collect()
}

fn dim_rows() -> Vec<Tuple> {
    (0..DIM_ROWS as i64)
        .map(|k| Tuple::new(vec![Value::Int(k), Value::Int(k % 64), Value::Double(k as f64)]))
        .collect()
}

fn session(engine: &str) -> Session {
    let mut s = match engine {
        "cluster" => Session::cluster(WORKERS),
        _ => Session::local(),
    };
    s.create_table(
        "t",
        Schema::of(&[("k", DataType::Int), ("a", DataType::Int), ("b", DataType::Double)]),
    )
    .unwrap();
    s.create_table(
        "dim",
        Schema::of(&[("k", DataType::Int), ("g", DataType::Int), ("w", DataType::Double)]),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    s.insert("t", base_rows(&mut rng)).unwrap();
    s.insert("dim", dim_rows()).unwrap();
    s
}

struct Measurement {
    workload: &'static str,
    engine: &'static str,
    seconds: f64,
    result_rows: usize,
}

impl Measurement {
    fn ns_per_row(&self) -> f64 {
        self.seconds * 1e9 / ROWS as f64
    }

    fn rows_per_sec(&self) -> f64 {
        ROWS as f64 / self.seconds
    }

    fn speedup_vs_baseline(&self) -> f64 {
        config(self.workload, self.engine).0 / self.ns_per_row()
    }

    fn json(&self) -> String {
        let (baseline, floor) = config(self.workload, self.engine);
        format!(
            "{{ \"seconds\": {:.6}, \"rows_per_sec\": {:.0}, \"ns_per_row\": {:.1}, \
             \"result_rows\": {}, \"baseline_ns_per_row\": {:.1}, \
             \"speedup_vs_baseline\": {:.2}, \"floor\": {:.2} }}",
            self.seconds,
            self.rows_per_sec(),
            self.ns_per_row(),
            self.result_rows,
            baseline,
            self.speedup_vs_baseline(),
            floor,
        )
    }
}

/// Time `query` on `engine`: one warmup pass, then the best of
/// [`PASSES`] timed full-pipeline passes.
fn measure(
    workload: &'static str,
    engine: &'static str,
    query: &str,
    expect_rows: impl Fn(usize) -> bool,
) -> Measurement {
    let mut s = session(engine);
    let warm = s.query(query).unwrap();
    assert!(
        expect_rows(warm.rows.len()),
        "{workload}/{engine}: unexpected result cardinality {}",
        warm.rows.len()
    );
    let mut best = f64::INFINITY;
    let result_rows = warm.rows.len();
    for _ in 0..PASSES {
        let t = Instant::now();
        let r = s.query(query).unwrap();
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(r.rows.len(), result_rows, "{workload}/{engine}: drifting result");
        best = best.min(secs);
    }
    let m = Measurement { workload, engine, seconds: best, result_rows };
    println!(
        "{workload:>26} {engine:>8}: {:>12.0} rows/s  {:>8.1} ns/row  ({:.2}x vs pre-PR)",
        m.rows_per_sec(),
        m.ns_per_row(),
        m.speedup_vs_baseline(),
    );
    m
}

fn main() {
    println!("executor throughput, {ROWS} base rows, best of {PASSES} passes\n");
    let measurements = [
        // ~10% of rows pass: the scan/filter per-row tax dominates.
        measure("scan_filter_project", "local", SFPS_SELECTIVE, |n| n > ROWS / 30),
        measure("scan_filter_project", "cluster", SFPS_SELECTIVE, |n| n > ROWS / 30),
        // ~50% pass: projection, sink, and the final sort stay loaded.
        measure("scan_filter_project_half", "local", SFPS_HALF, |n| n > ROWS / 3),
        measure("scan_filter_project_half", "cluster", SFPS_HALF, |n| n > ROWS / 3),
        // Every t row matches exactly one dim row; 64 output groups.
        measure("join_group", "local", JOIN_GROUP_QUERY, |n| n == 64),
        measure("join_group", "cluster", JOIN_GROUP_QUERY, |n| n == 64),
    ];

    let workloads = ["scan_filter_project", "scan_filter_project_half", "join_group"];
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"rows\": {ROWS},\n"));
    for (i, workload) in workloads.iter().enumerate() {
        json.push_str(&format!("  \"{workload}\": {{\n"));
        let ms: Vec<&Measurement> =
            measurements.iter().filter(|m| m.workload == *workload).collect();
        for (j, m) in ms.iter().enumerate() {
            json.push_str(&format!("    \"{}\": {}", m.engine, m.json()));
            json.push_str(if j + 1 < ms.len() { ",\n" } else { "\n" });
        }
        json.push_str(if i + 1 < workloads.len() { "  },\n" } else { "  }\n" });
    }
    json.push_str("}\n");
    std::fs::write("BENCH_exec.json", json).expect("write BENCH_exec.json");
    println!("\nwrote BENCH_exec.json");
}
