//! Recovery cost, CI-gated: on a deep fixpoint, incremental recovery must
//! beat restart by at least 2x in added simulated time (§4.3, Figure 12's
//! claim quantified as a regression gate rather than a plot).
//!
//! The workload is reachability over a pure path graph, whose fixpoint
//! runs exactly one stratum per hop — a 10-stratum recursion with no
//! shortcut edges, so a kill at stratum k forces restart to redo all k
//! strata while incremental replays only the replicated Δ of the last
//! completed one. All times are deterministic cost-model units; the
//! emitted `BENCH_recovery.json` carries the per-kill-point series plus
//! the averaged ratio CI asserts on.

use rex_cluster::failure::{FailurePlan, RecoveryStrategy};
use rex_cluster::runtime::{ClusterConfig, ClusterRuntime};
use rex_core::tuple::{Schema, Tuple};
use rex_core::udf::Registry;
use rex_core::value::{DataType, Value};
use rex_storage::catalog::Catalog;
use rex_storage::table::StoredTable;

const WORKERS: usize = 4;
const SPINE: i64 = 16; // 0→1→…→15: reachability from 0 runs ~15 strata

fn path_catalog() -> (Catalog, rex_rql::SchemaCatalog) {
    let schema = Schema::of(&[("src", DataType::Int), ("dst", DataType::Int)]);
    let mut edges = StoredTable::new("edges", schema.clone(), vec![0]);
    for i in 0..SPINE - 1 {
        edges.insert(Tuple::new(vec![Value::Int(i), Value::Int(i + 1)])).unwrap();
    }
    let seed_schema = Schema::of(&[("id", DataType::Int)]);
    let mut seed = StoredTable::new("seed", seed_schema.clone(), vec![0]);
    seed.insert(Tuple::new(vec![Value::Int(0)])).unwrap();
    let cat = Catalog::new();
    cat.register(edges);
    cat.register(seed);
    let mut sc = rex_rql::SchemaCatalog::new();
    sc.register("edges", schema);
    sc.register("seed", seed_schema);
    (cat, sc)
}

fn main() {
    let reg = Registry::with_builtins();
    let (cat, sc) = path_catalog();
    let plan = rex_rql::plan_rql(
        "WITH reach (id) AS (SELECT id FROM seed) UNION UNTIL FIXPOINT BY id (
           SELECT edges.dst FROM edges, reach WHERE edges.src = reach.id)",
        &sc,
        &reg,
    )
    .expect("plan");

    let rt = ClusterRuntime::new(ClusterConfig::new(WORKERS), cat.clone());
    let (rows, baseline) = rt.run_logical(&plan, &reg).expect("baseline");
    let strata = baseline.query.strata.len() as u64;
    let t0 = baseline.simulated_time();
    assert!(strata >= 10, "want a >= 10-stratum fixpoint, got {strata}");
    println!("recovery cost — {SPINE}-node path reachability: {strata} strata, {WORKERS} workers");
    println!("baseline: {t0:.1} units, {} rows\n", rows.len());
    println!("{:>10} {:>12} {:>12} {:>8}", "fail at k", "restart", "incremental", "ratio");

    // Kill late, where the strategies differ most: restart redoes k strata,
    // incremental replays one. Early kills would flatter neither.
    let kill_points: Vec<u64> = (strata / 2..strata - 1).collect();
    let mut lines = Vec::new();
    let (mut restart_over, mut incr_over) = (0.0f64, 0.0f64);
    for &k in &kill_points {
        let run = |strategy| {
            let cfg =
                ClusterConfig::new(WORKERS).with_failure(FailurePlan::kill_at(1, k), strategy);
            let (got, report) =
                ClusterRuntime::new(cfg, cat.clone()).run_logical(&plan, &reg).expect("killed run");
            assert_eq!(got, rows, "recovered rows diverged at k={k} under {strategy:?}");
            assert_eq!(report.failures.len(), 1, "kill at {k} must fire");
            report.simulated_time()
        };
        let r = run(RecoveryStrategy::Restart) - t0;
        let i = run(RecoveryStrategy::Incremental) - t0;
        restart_over += r;
        incr_over += i;
        println!("{k:>10} {r:>12.1} {i:>12.1} {:>8.2}", r / i);
        lines.push(format!(
            "    {{\"k\": {k}, \"restart_overhead\": {r:.3}, \"incremental_overhead\": {i:.3}}}"
        ));
    }
    let n = kill_points.len() as f64;
    let ratio = restart_over / incr_over;
    println!(
        "\navg overhead — restart: {:.1}, incremental: {:.1} (ratio {ratio:.2}x; gate: >= 2x)",
        restart_over / n,
        incr_over / n
    );

    let json = format!(
        "{{\n  \"workload\": \"path-{SPINE} reachability\",\n  \"workers\": {WORKERS},\n  \
         \"strata\": {strata},\n  \"baseline_time\": {t0:.3},\n  \"kill_points\": [\n{}\n  ],\n  \
         \"avg_restart_overhead\": {:.3},\n  \"avg_incremental_overhead\": {:.3},\n  \
         \"restart_over_incremental\": {ratio:.3}\n}}\n",
        lines.join(",\n"),
        restart_over / n,
        incr_over / n,
    );
    std::fs::write("BENCH_recovery.json", json).expect("write BENCH_recovery.json");
    println!("wrote BENCH_recovery.json");
}
