//! Figure 8: PageRank on the larger, denser "Twitter" graph — the best
//! alternative on each platform: Hadoop LB, HaLoop LB, REX Δ.

use rex_algos::pagerank::{PageRankConfig, Strategy};
use rex_bench::runners::*;
use rex_bench::{print_table, scale, Series, PAPER_WORKERS};
use rex_hadoop::cost::EmulationMode;

fn main() {
    let g = rex_bench::workloads::twitter_graph(scale());
    let iterations = 31u64; // the paper's x-axis for Twitter
    println!(
        "Figure 8 — PageRank (Twitter stand-in: {} vertices, {} edges, {} workers, {} iterations)",
        g.n_vertices,
        g.n_edges(),
        PAPER_WORKERS,
        iterations
    );

    let (_, hadoop) =
        pagerank_hadoop(&g, iterations as usize, EmulationMode::HadoopLowerBound, PAPER_WORKERS);
    let (_, haloop) =
        pagerank_hadoop(&g, iterations as usize, EmulationMode::HaLoopLowerBound, PAPER_WORKERS);
    let (_, delta) = pagerank_rex(
        &g,
        PageRankConfig { threshold: 0.01, max_iterations: iterations },
        Strategy::Delta,
        PAPER_WORKERS,
    );

    let series = vec![
        Series::from_values("Hadoop LB", &mr_iteration_times(&hadoop)),
        Series::from_values("HaLoop LB", &mr_iteration_times(&haloop)),
        Series::from_values("REX Δ", &rex_iteration_times(&delta)),
    ];
    let cumulative: Vec<Series> = series.iter().map(Series::cumulative).collect();
    print_table("(a) cumulative runtime", "iteration", &cumulative);
    print_table("(b) runtime per iteration", "iteration", &series);

    let delta_total = cumulative[2].last_y();
    println!("\ntotals:");
    for s in &cumulative {
        println!(
            "  {:<10} {:>14.0}  ({:.1}x vs REX Δ)",
            s.label.replace(" (cumulative)", ""),
            s.last_y(),
            s.last_y() / delta_total
        );
    }
    println!("\npaper: REX Δ ≈ 3x HaLoop LB and ≈ 7x Hadoop LB on Twitter");
}
