//! Figure 2: PageRank convergence behavior.
//!
//! (a) per-page convergence: for a sample of pages, the iteration at which
//!     the page's rank last changed by more than the 1% threshold;
//! (b) overall: the fraction of non-converged pages per iteration — the
//!     Δᵢ-set trace that drives REX-delta's advantage.

use rex_algos::pagerank::{plan_local, ranks_from_results, PageRankConfig, Strategy};
use rex_algos::reference;
use rex_bench::{print_table, scale, Series};
use rex_core::exec::LocalRuntime;

fn main() {
    let g = rex_bench::workloads::dbpedia_graph(scale());
    let threshold = 0.01;
    println!(
        "Figure 2 — PageRank convergence ({} vertices, {} edges, threshold {threshold})",
        g.n_vertices,
        g.n_edges()
    );

    // ---- (a) per-page convergence iteration, from sequential iterates.
    let n = g.n_vertices;
    let adj = g.adjacency();
    let deg = g.out_degrees();
    let mut pr = vec![1.0f64; n];
    let mut last_change = vec![0usize; n];
    let max_iters = 40;
    for it in 1..=max_iters {
        let mut incoming = vec![0.0f64; n];
        for v in 0..n {
            if deg[v] > 0 {
                let share = pr[v] / deg[v] as f64;
                for &t in &adj[v] {
                    incoming[t as usize] += share;
                }
            }
        }
        for v in 0..n {
            let new = reference::BASE_RANK + reference::DAMPING * incoming[v];
            if (new - pr[v]).abs() > threshold {
                last_change[v] = it;
            }
            pr[v] = new;
        }
    }
    println!("\n(a) per-page convergence iteration (sample of 16 pages)");
    let stride = (n / 16).max(1);
    for v in (0..n).step_by(stride).take(16) {
        println!(
            "  page {v:>6}: converged after iteration {:>2}  {}",
            last_change[v],
            "#".repeat(last_change[v])
        );
    }

    // ---- (b) overall non-converged fraction per iteration, measured on
    // the actual delta execution (Δᵢ set sizes from the engine).
    let plan = plan_local(&g, PageRankConfig { threshold, max_iterations: 60 }, Strategy::Delta);
    let (results, report) = LocalRuntime::new().run(plan).expect("pagerank");
    let _ = ranks_from_results(&results, n);
    let fractions: Vec<f64> =
        report.strata.iter().map(|s| 100.0 * s.delta_set_size as f64 / n as f64).collect();
    print_table(
        "(b) % non-converged nodes per iteration",
        "iteration",
        &[Series::from_values("non-converged %", &fractions)],
    );
    println!(
        "\nconverged in {} strata; Δ sizes head {:?} → tail {:?}",
        report.iterations(),
        &report.strata.iter().map(|s| s.delta_set_size).take(3).collect::<Vec<_>>(),
        &report.strata.iter().rev().map(|s| s.delta_set_size).take(3).collect::<Vec<_>>(),
    );
}
