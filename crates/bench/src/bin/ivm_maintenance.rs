//! IVM maintenance vs full recompute, on two workloads.
//!
//! **lineitem join+aggregate** — a view over TPC-H-like `lineitem` joined
//! with a small `rates` dimension:
//!
//! ```sql
//! CREATE MATERIALIZED VIEW revenue AS
//!   SELECT orderkey, count(*), sum(taxed) FROM
//!     (SELECT l.orderkey AS orderkey, l.extendedprice * r.rate AS taxed
//!      FROM lineitem l, rates r WHERE l.linenumber = r.linenumber) t
//!   GROUP BY orderkey
//! ```
//!
//! **skew-heavy few-large-groups** — `events(g, v)` with only 8 groups, so
//! every group holds thousands of rows:
//!
//! ```sql
//! CREATE MATERIALIZED VIEW by_group AS
//!   SELECT g, count(*), sum(v), min(v), max(v) FROM events GROUP BY g
//! ```
//!
//! Under PR 2's dirty-group *replay*, each touched group re-derived from
//! all its rows, so the skew workload was quadratic in group size; the
//! specialized O(1) aggregate state makes per-batch work proportional to
//! the batch.
//!
//! Two configurations process the same stream of small insert batches:
//!
//! * **IVM** — `Session::insert` drives the view's delta-propagation
//!   maintenance plan, and `SELECT * FROM <view>` serves the contents
//!   (delta-granular view→store sync included in the measured window);
//! * **recompute** — the defining query re-runs from scratch after every
//!   batch (what `Session::query` did before views existed).
//!
//! Per workload the bench reports per-phase timings — `maintain` (the
//! insert + delta propagation) and `serve` (sync + scan of the stored
//! copy) — plus `state_bytes` of maintenance state, and writes everything
//! to `BENCH_ivm.json` so CI can track the perf trajectory and the memory
//! footprint against the PR 2 baseline.

use rex::core::tuple::Tuple;
use rex::core::value::Value;
use rex::Session;
use rex_bench::{print_table, scale, Series};
use rex_core::tuple::Schema;
use rex_core::value::DataType;
use rex_data::lineitem::{generate_lineitem, lineitem_tuples, schema};
use rex_data::rng::StdRng;
use std::time::Instant;

const LINEITEM_QUERY: &str = "SELECT orderkey, count(*), sum(taxed) FROM \
     (SELECT l.orderkey AS orderkey, l.extendedprice * r.rate AS taxed \
      FROM lineitem l, rates r WHERE l.linenumber = r.linenumber) t \
     GROUP BY orderkey";

const SKEW_QUERY: &str = "SELECT g, count(*), sum(v), min(v), max(v) FROM events GROUP BY g";

/// `state_bytes` of the lineitem view measured on PR 2 (BTreeMap states,
/// replayable group multisets) at scale 1 — the memory-regression anchor
/// CI compares against.
const PR2_STATE_BYTES: usize = 1_394_942;

struct WorkloadReport {
    name: &'static str,
    base_rows: usize,
    n_batches: usize,
    batch_rows: usize,
    view_rows: usize,
    ivm_seconds: f64,
    ivm_maintain_seconds: f64,
    ivm_serve_seconds: f64,
    recompute_seconds: f64,
    speedup: f64,
    state_bytes: usize,
}

impl WorkloadReport {
    fn json_fields(&self) -> String {
        format!(
            "\"workload\": \"{}\",\n  \"base_rows\": {},\n  \"batches\": {},\n  \
             \"batch_rows\": {},\n  \"view_rows\": {},\n  \"ivm_seconds\": {:.6},\n  \
             \"ivm_maintain_seconds\": {:.6},\n  \"ivm_serve_seconds\": {:.6},\n  \
             \"recompute_seconds\": {:.6},\n  \"speedup\": {:.2},\n  \"state_bytes\": {}",
            self.name,
            self.base_rows,
            self.n_batches,
            self.batch_rows,
            self.view_rows,
            self.ivm_seconds,
            self.ivm_maintain_seconds,
            self.ivm_serve_seconds,
            self.recompute_seconds,
            self.speedup,
            self.state_bytes,
        )
    }
}

/// Assert both strategies produced the same view contents (doubles to
/// relative tolerance: incremental sums fold in a different order).
fn assert_parity(ivm_rows: &[Tuple], rec_rows: &[Tuple], name: &str) {
    assert_eq!(ivm_rows.len(), rec_rows.len(), "{name}: IVM and recompute disagree on cardinality");
    for (a, b) in ivm_rows.iter().zip(rec_rows) {
        for (x, y) in a.values().iter().zip(b.values()) {
            match (x, y) {
                (Value::Double(x), Value::Double(y)) => assert!(
                    (x - y).abs() <= 1e-6 * y.abs().max(1.0),
                    "{name}: IVM diverged: {x} vs {y}"
                ),
                _ => assert_eq!(x, y, "{name}: IVM diverged: {a} vs {b}"),
            }
        }
    }
}

/// Drive one workload through both configurations and report.
#[allow(clippy::too_many_arguments)]
fn run_workload(
    name: &'static str,
    mut ivm: Session,
    mut rec: Session,
    table: &str,
    view_name: &str,
    view_query: &str,
    base_rows: usize,
    batches: &[Vec<Tuple>],
) -> WorkloadReport {
    let n_batches = batches.len();
    let batch_rows = batches.first().map(Vec::len).unwrap_or(0);

    // --- IVM: the view is maintained from each batch's deltas. ----------
    ivm.query(&format!("CREATE MATERIALIZED VIEW {view_name} AS {view_query}")).unwrap();
    let serve_sql = format!("SELECT * FROM {view_name}");
    let mut ivm_times = Vec::with_capacity(n_batches);
    let (mut maintain_s, mut serve_s) = (0.0f64, 0.0f64);
    let t_all = Instant::now();
    let mut ivm_rows = Vec::new();
    for b in batches {
        let t = Instant::now();
        ivm.insert(table, b.clone()).unwrap();
        let maintained = t.elapsed().as_secs_f64();
        // Serve the fresh contents too, so lazy delta-granular view→store
        // synchronization is inside the measured window (parity with the
        // recompute side).
        let t_serve = Instant::now();
        ivm_rows = ivm.query(&serve_sql).unwrap().rows;
        serve_s += t_serve.elapsed().as_secs_f64();
        maintain_s += maintained;
        ivm_times.push(t.elapsed().as_secs_f64());
    }
    let ivm_seconds = t_all.elapsed().as_secs_f64();
    let state_bytes = ivm.views().get(view_name).map(|v| v.state_bytes()).unwrap_or(0);

    // --- Recompute: the defining query re-runs after every batch. -------
    let mut rec_times = Vec::with_capacity(n_batches);
    let t_all = Instant::now();
    let mut rec_rows = Vec::new();
    for b in batches {
        let t = Instant::now();
        rec.insert(table, b.clone()).unwrap();
        rec_rows = rec.query(view_query).unwrap().rows;
        rec_times.push(t.elapsed().as_secs_f64());
    }
    let rec_seconds = t_all.elapsed().as_secs_f64();

    assert_parity(&ivm_rows, &rec_rows, name);

    let speedup = rec_seconds / ivm_seconds.max(1e-12);
    print_table(
        &format!(
            "IVM vs recompute — {name}, {base_rows} base rows, \
                  {n_batches} batches x {batch_rows} rows"
        ),
        "batch",
        &[
            Series::from_values("ivm_ms", &ivm_times.iter().map(|t| t * 1e3).collect::<Vec<_>>()),
            Series::from_values(
                "recompute_ms",
                &rec_times.iter().map(|t| t * 1e3).collect::<Vec<_>>(),
            ),
        ],
    );
    println!(
        "{name}: ivm {ivm_seconds:.4}s (maintain {maintain_s:.4}s, serve {serve_s:.4}s), \
         recompute {rec_seconds:.4}s, speedup {speedup:.1}x, state {state_bytes} bytes"
    );

    WorkloadReport {
        name,
        base_rows,
        n_batches,
        batch_rows,
        view_rows: ivm_rows.len(),
        ivm_seconds,
        ivm_maintain_seconds: maintain_s,
        ivm_serve_seconds: serve_s,
        recompute_seconds: rec_seconds,
        speedup,
        state_bytes,
    }
}

fn lineitem_session(base_rows: usize) -> Session {
    let mut s = Session::local();
    s.create_table("lineitem", schema()).unwrap();
    s.insert("lineitem", lineitem_tuples(&generate_lineitem(base_rows, 42))).unwrap();
    s.create_table(
        "rates",
        Schema::of(&[("linenumber", DataType::Int), ("rate", DataType::Double)]),
    )
    .unwrap();
    let rates: Vec<Tuple> = (1..=7i64)
        .map(|ln| Tuple::new(vec![Value::Int(ln), Value::Double(1.0 + ln as f64 * 0.01)]))
        .collect();
    s.insert("rates", rates).unwrap();
    s
}

fn lineitem_workload(n_batches: usize, batch_rows: usize) -> WorkloadReport {
    let base_rows = (20_000.0 * scale()) as usize;
    // Fresh rows beyond the base, so each batch adds new orders.
    let extra = lineitem_tuples(&generate_lineitem(base_rows + n_batches * batch_rows, 42));
    let batches: Vec<Vec<Tuple>> =
        extra[base_rows..].chunks(batch_rows).map(|c| c.to_vec()).collect();
    run_workload(
        "lineitem join+aggregate view maintenance",
        lineitem_session(base_rows),
        lineitem_session(base_rows),
        "lineitem",
        "revenue",
        LINEITEM_QUERY,
        base_rows,
        &batches,
    )
}

/// `events(g, v)` rows spread over only 8 groups — thousands of rows per
/// group, so PR 2's dirty-group replay did O(group) work per touched
/// group and the whole stream degenerated toward recompute cost.
fn skew_rows(n: usize, rng: &mut StdRng) -> Vec<Tuple> {
    (0..n)
        .map(|_| {
            Tuple::new(vec![
                Value::Int(rng.gen_range(0..=7i64)),
                Value::Double(rng.gen_range(0..=999i64) as f64 * 0.01),
            ])
        })
        .collect()
}

fn skew_session(base: Vec<Tuple>) -> Session {
    let mut s = Session::local();
    s.create_table("events", Schema::of(&[("g", DataType::Int), ("v", DataType::Double)])).unwrap();
    s.insert("events", base).unwrap();
    s
}

fn skew_workload(n_batches: usize, batch_rows: usize) -> WorkloadReport {
    let base_rows = (20_000.0 * scale()) as usize;
    let mut rng = StdRng::seed_from_u64(7);
    let base = skew_rows(base_rows, &mut rng);
    let batches: Vec<Vec<Tuple>> =
        (0..n_batches).map(|_| skew_rows(batch_rows, &mut rng)).collect();
    run_workload(
        "skew-heavy few-large-groups aggregate maintenance",
        skew_session(base.clone()),
        skew_session(base),
        "events",
        "by_group",
        SKEW_QUERY,
        base_rows,
        &batches,
    )
}

fn main() {
    let lineitem = lineitem_workload(32, 16);
    let skew = skew_workload(32, 16);

    let json = format!(
        "{{\n  {},\n  \"state_bytes_pr2_baseline\": {},\n  \"skew\": {{\n    {}\n  }}\n}}\n",
        lineitem.json_fields(),
        PR2_STATE_BYTES,
        skew.json_fields().replace("\n  ", "\n    "),
    );
    std::fs::write("BENCH_ivm.json", json).expect("write BENCH_ivm.json");
    println!("wrote BENCH_ivm.json");
}
