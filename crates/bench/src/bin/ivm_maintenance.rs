//! IVM maintenance vs full recompute on the lineitem OLAP workload.
//!
//! A join+aggregate view over TPC-H-like `lineitem` joined with a small
//! `rates` dimension:
//!
//! ```sql
//! CREATE MATERIALIZED VIEW revenue AS
//!   SELECT orderkey, count(*), sum(taxed) FROM
//!     (SELECT l.orderkey AS orderkey, l.extendedprice * r.rate AS taxed
//!      FROM lineitem l, rates r WHERE l.linenumber = r.linenumber) t
//!   GROUP BY orderkey
//! ```
//!
//! Two configurations process the same stream of small insert batches:
//!
//! * **IVM** — `Session::insert` drives the view's delta-propagation
//!   maintenance plan; per batch the work is proportional to the batch;
//! * **recompute** — the defining query re-runs from scratch after every
//!   batch (what `Session::query` did before views existed).
//!
//! Prints the per-batch series and writes `BENCH_ivm.json` with the
//! headline speedup so CI can track the perf trajectory.

use rex::core::tuple::Tuple;
use rex::core::value::Value;
use rex::Session;
use rex_bench::{print_table, scale, Series};
use rex_core::tuple::Schema;
use rex_core::value::DataType;
use rex_data::lineitem::{generate_lineitem, lineitem_tuples, schema};
use std::time::Instant;

const VIEW_QUERY: &str = "SELECT orderkey, count(*), sum(taxed) FROM \
     (SELECT l.orderkey AS orderkey, l.extendedprice * r.rate AS taxed \
      FROM lineitem l, rates r WHERE l.linenumber = r.linenumber) t \
     GROUP BY orderkey";

fn setup(base_rows: usize) -> Session {
    let mut s = Session::local();
    s.create_table("lineitem", schema()).unwrap();
    s.insert("lineitem", lineitem_tuples(&generate_lineitem(base_rows, 42))).unwrap();
    s.create_table(
        "rates",
        Schema::of(&[("linenumber", DataType::Int), ("rate", DataType::Double)]),
    )
    .unwrap();
    let rates: Vec<Tuple> = (1..=7i64)
        .map(|ln| Tuple::new(vec![Value::Int(ln), Value::Double(1.0 + ln as f64 * 0.01)]))
        .collect();
    s.insert("rates", rates).unwrap();
    s
}

fn main() {
    let base_rows = (20_000.0 * scale()) as usize;
    let n_batches = 32usize;
    let batch_rows = 16usize;
    // Fresh rows beyond the base, so each batch adds new orders.
    let extra = lineitem_tuples(&generate_lineitem(base_rows + n_batches * batch_rows, 42));
    let batches: Vec<Vec<Tuple>> =
        extra[base_rows..].chunks(batch_rows).map(|c| c.to_vec()).collect();

    // --- IVM: the view is maintained from each batch's deltas. ----------
    let mut ivm = setup(base_rows);
    ivm.query(&format!("CREATE MATERIALIZED VIEW revenue AS {VIEW_QUERY}")).unwrap();
    let mut ivm_times = Vec::with_capacity(n_batches);
    let t_all = Instant::now();
    let mut ivm_rows = Vec::new();
    for b in &batches {
        let t = Instant::now();
        ivm.insert("lineitem", b.clone()).unwrap();
        // Serve the fresh contents too, so lazy view→store synchronization
        // is inside the measured window (parity with the recompute side).
        ivm_rows = ivm.query("SELECT * FROM revenue").unwrap().rows;
        ivm_times.push(t.elapsed().as_secs_f64());
    }
    let ivm_seconds = t_all.elapsed().as_secs_f64();

    // --- Recompute: the defining query re-runs after every batch. -------
    let mut rec = setup(base_rows);
    let mut rec_times = Vec::with_capacity(n_batches);
    let t_all = Instant::now();
    let mut rec_rows = Vec::new();
    for b in &batches {
        let t = Instant::now();
        rec.insert("lineitem", b.clone()).unwrap();
        rec_rows = rec.query(VIEW_QUERY).unwrap().rows;
        rec_times.push(t.elapsed().as_secs_f64());
    }
    let rec_seconds = t_all.elapsed().as_secs_f64();

    // Both strategies must produce the same view contents.
    assert_eq!(ivm_rows.len(), rec_rows.len(), "IVM and recompute disagree on cardinality");
    for (a, b) in ivm_rows.iter().zip(&rec_rows) {
        for (x, y) in a.values().iter().zip(b.values()) {
            match (x, y) {
                (Value::Double(x), Value::Double(y)) => {
                    assert!((x - y).abs() <= 1e-6 * y.abs().max(1.0), "IVM diverged: {x} vs {y}")
                }
                _ => assert_eq!(x, y, "IVM diverged: {a} vs {b}"),
            }
        }
    }

    let speedup = rec_seconds / ivm_seconds.max(1e-12);
    print_table(
        &format!(
            "IVM vs recompute — lineitem join+aggregate, {base_rows} base rows, \
             {n_batches} batches x {batch_rows} rows"
        ),
        "batch",
        &[
            Series::from_values("ivm_ms", &ivm_times.iter().map(|t| t * 1e3).collect::<Vec<_>>()),
            Series::from_values(
                "recompute_ms",
                &rec_times.iter().map(|t| t * 1e3).collect::<Vec<_>>(),
            ),
        ],
    );
    println!("total: ivm {ivm_seconds:.4}s, recompute {rec_seconds:.4}s, speedup {speedup:.1}x");

    let json = format!(
        "{{\n  \"workload\": \"lineitem join+aggregate view maintenance\",\n  \
         \"base_rows\": {base_rows},\n  \"batches\": {n_batches},\n  \
         \"batch_rows\": {batch_rows},\n  \"view_rows\": {},\n  \
         \"ivm_seconds\": {ivm_seconds:.6},\n  \"recompute_seconds\": {rec_seconds:.6},\n  \
         \"speedup\": {speedup:.2}\n}}\n",
        ivm_rows.len()
    );
    std::fs::write("BENCH_ivm.json", json).expect("write BENCH_ivm.json");
    println!("wrote BENCH_ivm.json");
}
