//! Figure 4: simple aggregation over TPC-H lineitem — the UDF/UDA overhead
//! experiment.
//!
//! `SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1`
//!
//! Four configurations, as in the paper:
//! * **REX built-in** — built-in comparison predicate and aggregates;
//! * **REX UDF** — the same computation through registered user code
//!   (a scalar UDF predicate plus delegating UDAs), paying the
//!   batch-amortized dispatch overhead;
//! * **REX wrap** — the native Hadoop classes run inside REX through
//!   `MapWrap`/`ReduceWrap`, including text formatting at the boundaries;
//! * **Hadoop** — the same job on the MapReduce simulator (startup +
//!   sort-merge shuffle + DFS output).

use rex_bench::workloads;
use rex_core::delta::Delta;
use rex_core::error::Result;
use rex_core::exec::LocalRuntime;
use rex_core::handlers::{AggHandler, AggState};
use rex_core::udf::{ClosureUdf, Registry};
use rex_core::value::{DataType, Value};
use rex_data::lineitem::reference_fig4_answer;
use rex_hadoop::api::{FnMapper, FnReducer};
use rex_hadoop::job::{HadoopCluster, JobInput, MapReduceJob};
use rex_hadoop::wrap::{reduce_output_projection, MapWrap, ReduceWrap};
use rex_rql::lower::{compile, MemTables};
use rex_rql::SchemaCatalog;
use std::sync::Arc;

/// A user-defined SUM that delegates to the built-in logic but is *not*
/// marked builtin, so it pays the dispatch overhead (the paper's "2 UDAs").
struct UdaSum;
impl AggHandler for UdaSum {
    fn name(&self) -> &str {
        "usum"
    }
    fn init(&self) -> AggState {
        rex_core::aggregates::SumAgg.init()
    }
    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        rex_core::aggregates::SumAgg.agg_state(state, d)
    }
    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        rex_core::aggregates::SumAgg.agg_result(state)
    }
    fn return_type(&self) -> DataType {
        DataType::Double
    }
}

/// A user-defined COUNT (the second UDA).
struct UdaCount;
impl AggHandler for UdaCount {
    fn name(&self) -> &str {
        "ucount"
    }
    fn init(&self) -> AggState {
        rex_core::aggregates::CountAgg.init()
    }
    fn agg_state(&self, state: &mut AggState, d: &Delta) -> Result<Vec<Delta>> {
        rex_core::aggregates::CountAgg.agg_state(state, d)
    }
    fn agg_result(&self, state: &AggState) -> Result<Vec<Delta>> {
        rex_core::aggregates::CountAgg.agg_result(state)
    }
    fn return_type(&self) -> DataType {
        DataType::Int
    }
}

fn main() {
    let n_rows = (60_000.0 * rex_bench::scale()) as usize;
    let rows = workloads::lineitem_rows(n_rows);
    let (want_sum, want_count) = reference_fig4_answer(&rows);
    println!(
        "Figure 4 — SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1 ({n_rows} rows)"
    );
    println!("reference answer: sum = {want_sum:.2}, count = {want_count}\n");

    let mut catalog = SchemaCatalog::new();
    catalog.register("lineitem", rex_data::lineitem::schema());
    let mut tables = MemTables::new();
    tables.insert("lineitem", workloads::lineitem_tuples(&rows));

    let check = |label: &str, sum: f64, count: i64| {
        assert!((sum - want_sum).abs() < 1e-6, "{label}: sum {sum} != {want_sum}");
        assert_eq!(count, want_count, "{label}: count");
    };

    // ---- REX built-in ----------------------------------------------------
    let reg = Registry::with_builtins();
    let plan = compile(
        "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1",
        &catalog,
        &tables,
        &reg,
    )
    .expect("builtin plan");
    let rt = LocalRuntime::new();
    let (res, rep) = rt.run(plan).expect("builtin run");
    check("built-in", res[0].get(0).as_double().unwrap(), res[0].get(1).as_int().unwrap());
    let t_builtin = rep.simulated_time;

    // ---- REX UDF ----------------------------------------------------------
    let reg = Registry::with_builtins();
    reg.register_scalar(Arc::new(ClosureUdf::new(
        "gt_one",
        vec![DataType::Int],
        DataType::Bool,
        |args| Ok(Value::Bool(args[0].as_int().unwrap_or(0) > 1)),
    )));
    reg.register_agg("usum", Arc::new(UdaSum));
    reg.register_agg("ucount", Arc::new(UdaCount));
    let plan = compile(
        "SELECT usum(tax), ucount(tax) FROM lineitem WHERE gt_one(linenumber)",
        &catalog,
        &tables,
        &reg,
    )
    .expect("udf plan");
    let (res, rep) = LocalRuntime::with_registry(reg).run(plan).expect("udf run");
    check("UDF", res[0].get(0).as_double().unwrap(), res[0].get(1).as_int().unwrap());
    let t_udf = rep.simulated_time;

    // ---- the native Hadoop classes ----------------------------------------
    let mapper = FnMapper::new("Fig4Map", |_k, v, out| {
        // v is the whole row serialized as a list [linenumber, tax].
        if let Some(l) = v.as_list() {
            if l[0].as_int().unwrap_or(0) > 1 {
                out(Value::Int(0), l[1].clone());
            }
        }
    });
    let reducer = FnReducer::new("Fig4Reduce", |_k, vs, out| {
        let sum: f64 = vs.iter().filter_map(Value::as_double).sum();
        out(
            Value::str("result"),
            Value::list(vec![Value::Double(sum), Value::Int(vs.len() as i64)]),
        );
    });
    let combiner = FnReducer::new("Fig4Combine", |k, vs, out| {
        for v in vs {
            out(k.clone(), v.clone());
        }
    });

    // ---- REX wrap ----------------------------------------------------------
    {
        use rex_core::exec::PlanGraph;
        use rex_core::operators::{AggSpec, ApplyFunctionOp, GroupByOp, ScanOp, SinkOp};
        let mut g = PlanGraph::new();
        let kv_rows: Vec<rex_core::tuple::Tuple> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                rex_core::tuple::Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::list(vec![Value::Int(r.linenumber), Value::Double(r.tax)]),
                ])
            })
            .collect();
        let scan = g.add(Box::new(ScanOp::new("lineitem_kv", kv_rows)));
        let map =
            g.add(Box::new(ApplyFunctionOp::new(Arc::new(MapWrap::new(mapper.clone(), true)))));
        let gb = g.add(Box::new(GroupByOp::new(
            vec![0],
            vec![AggSpec::new(Arc::new(ReduceWrap::new(reducer.clone(), true)), vec![0, 1])],
        )));
        let strip = g.add(Box::new(reduce_output_projection()));
        let sink = g.add(Box::new(SinkOp::new()));
        g.pipe(scan, map);
        g.pipe(map, gb);
        g.pipe(gb, strip);
        g.pipe(strip, sink);
        let (res, rep) = LocalRuntime::new().run(g).expect("wrap run");
        let out = res[0].get(1).as_list().unwrap().to_vec();
        check("wrap", out[0].as_double().unwrap(), out[1].as_int().unwrap());
        let t_wrap = rep.simulated_time;

        // ---- Hadoop ---------------------------------------------------------
        let job = MapReduceJob::new("fig4", mapper, reducer).with_combiner(combiner);
        let input = JobInput::mutable(
            rows.iter()
                .enumerate()
                .map(|(i, r)| {
                    (
                        Value::Int(i as i64),
                        Value::list(vec![Value::Int(r.linenumber), Value::Double(r.tax)]),
                    )
                })
                .collect(),
        );
        let (out, m) = HadoopCluster::new(1).run_job(&job, &[input], 0);
        let l = out[0].1.as_list().unwrap();
        check("Hadoop", l[0].as_double().unwrap(), l[1].as_int().unwrap());
        let t_hadoop = m.sim_time;

        // ---- report ---------------------------------------------------------
        println!("{:<14} {:>14}  {:>10}", "configuration", "sim time", "vs built-in");
        for (label, t) in [
            ("REX built-in", t_builtin),
            ("REX UDF", t_udf),
            ("REX wrap", t_wrap),
            ("Hadoop", t_hadoop),
        ] {
            println!("{label:<14} {t:>14.1}  {:>9.2}x", t / t_builtin);
        }
        println!(
            "\nUDF overhead vs built-in: {:+.1}% (paper: ≤ 10%)",
            100.0 * (t_udf / t_builtin - 1.0)
        );
        println!("built-in speedup over Hadoop: {:.1}x (paper: > 3x)", t_hadoop / t_builtin);
        println!(
            "wrap overhead vs Hadoop-equivalent work: wrap = {:.1}, hadoop = {:.1}",
            t_wrap, t_hadoop
        );
    }
}
