//! Figure 7: recursive behavior of shortest path on the "DBPedia" graph —
//! five strategies, with frontier-based Δ updates for Hadoop/HaLoop (§6.3).
//!
//! Also reproduces the "Improved Accuracy" observation: all methods except
//! REX Δ run only enough iterations for 99% reachability; REX Δ runs to
//! the true fixpoint, with the tail iterations nearly free.

use rex_algos::pagerank::Strategy;
use rex_algos::reference;
use rex_bench::runners::*;
use rex_bench::{print_table, scale, Series, PAPER_WORKERS};
use rex_hadoop::cost::EmulationMode;

fn main() {
    let g = rex_bench::workloads::dbpedia_graph(scale());
    let source = 0u32;
    let dists = reference::shortest_paths(&g, source);
    let hops99 = reference::hops_to_reach(&dists, 0.99) as u64;
    let full_depth = reference::hops_to_reach(&dists, 1.0) as u64;
    println!(
        "Figure 7 — Shortest path (DBPedia stand-in: {} vertices, {} edges, {} workers)",
        g.n_vertices,
        g.n_edges(),
        PAPER_WORKERS
    );
    println!(
        "99% reachability at {hops99} hops; full reachability needs {full_depth} \
         (paper: 6 vs 75)\n"
    );

    let iters = hops99 as usize;
    let (_, hadoop) =
        sssp_hadoop(&g, source, iters, EmulationMode::HadoopLowerBound, PAPER_WORKERS);
    let (_, haloop) =
        sssp_hadoop(&g, source, iters, EmulationMode::HaLoopLowerBound, PAPER_WORKERS);
    let wrap = sssp_wrap(&g, source, hops99, PAPER_WORKERS);
    let (_, nodelta) = sssp_rex(&g, source, Strategy::NoDelta, hops99, PAPER_WORKERS);
    // REX Δ runs to the true fixpoint — every iteration, not just 99%.
    let (_, delta) = sssp_rex(&g, source, Strategy::Delta, full_depth + 5, PAPER_WORKERS);

    let series = vec![
        Series::from_values("Hadoop LB", &mr_iteration_times(&hadoop)),
        Series::from_values("HaLoop LB", &mr_iteration_times(&haloop)),
        Series::from_values("REX wrap", &rex_iteration_times(&wrap)),
        Series::from_values("REX no-Δ", &rex_iteration_times(&nodelta)),
        Series::from_values("REX Δ", &rex_iteration_times(&delta)),
    ];
    let cumulative: Vec<Series> = series.iter().map(Series::cumulative).collect();
    print_table("(a) cumulative runtime", "iteration", &cumulative);
    print_table("(b) runtime per iteration", "iteration", &series);

    let delta_total = cumulative[4].last_y();
    println!(
        "\ntotal runtimes (REX Δ runs ALL {} iterations, others only {hops99}):",
        delta.iterations()
    );
    for s in &cumulative {
        println!(
            "  {:<10} {:>14.0}  ({:.1}x vs REX Δ)",
            s.label.replace(" (cumulative)", ""),
            s.last_y(),
            s.last_y() / delta_total
        );
    }
    // The accuracy observation: iterations beyond hops99 are nearly free.
    let tail: f64 = rex_iteration_times(&delta).iter().skip(hops99 as usize).sum();
    println!(
        "\nREX Δ tail (iterations {} and beyond): {:.0} units — {:.1}% of its total \
         (paper: iterations 7..75 take under 1s combined)",
        hops99 + 1,
        tail,
        100.0 * tail / delta_total
    );
    println!("paper: REX Δ ≈ 2x REX no-Δ, ≈ 10x HaLoop LB on DBPedia");
}
