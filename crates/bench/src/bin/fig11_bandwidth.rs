//! Figure 11: average bandwidth per node during Twitter-scale execution —
//! (a) shortest path, (b) PageRank — for REX Δ, HaLoop LB, and Hadoop LB.
//!
//! For REX the numerator is the total bytes each node sent over the
//! simulated links; for Hadoop/HaLoop it is the total shuffled data, both
//! divided by node count and query duration, exactly the paper's
//! methodology (§6.5).

use rex_algos::pagerank::{PageRankConfig, Strategy};
use rex_algos::reference;
use rex_bench::runners::*;
use rex_bench::{scale, PAPER_WORKERS};
use rex_hadoop::cost::EmulationMode;

fn main() {
    let g = rex_bench::workloads::twitter_graph(scale());
    println!(
        "Figure 11 — Avg bandwidth per node (Twitter stand-in: {} vertices, {} edges, {} workers)",
        g.n_vertices,
        g.n_edges(),
        PAPER_WORKERS
    );
    println!("(bytes per simulated time unit per node)\n");

    // ---- (a) shortest path ------------------------------------------------
    let source = (g.n_vertices / 2) as u32;
    let depth = reference::hops_to_reach(&reference::shortest_paths(&g, source), 1.0) as u64;
    let (_, sp_rex) = sssp_rex(&g, source, Strategy::Delta, depth + 5, PAPER_WORKERS);
    let (_, sp_haloop) =
        sssp_hadoop(&g, source, depth as usize + 1, EmulationMode::HaLoopLowerBound, PAPER_WORKERS);
    let (_, sp_hadoop) =
        sssp_hadoop(&g, source, depth as usize + 1, EmulationMode::HadoopLowerBound, PAPER_WORKERS);

    println!("(a) shortest path");
    let sp = [
        ("REX Δ", sp_rex.avg_bandwidth_per_node()),
        ("HaLoop LB", sp_haloop.avg_bandwidth_per_node(PAPER_WORKERS)),
        ("Hadoop LB", sp_hadoop.avg_bandwidth_per_node(PAPER_WORKERS)),
    ];
    for (label, bw) in sp {
        println!("  {label:<10} {bw:>12.1}");
    }

    // ---- (b) PageRank -------------------------------------------------------
    let iters = 31;
    let (_, pr_rex) = pagerank_rex(
        &g,
        PageRankConfig { threshold: 0.01, max_iterations: iters },
        Strategy::Delta,
        PAPER_WORKERS,
    );
    let (_, pr_haloop) =
        pagerank_hadoop(&g, iters as usize, EmulationMode::HaLoopLowerBound, PAPER_WORKERS);
    let (_, pr_hadoop) =
        pagerank_hadoop(&g, iters as usize, EmulationMode::HadoopLowerBound, PAPER_WORKERS);

    println!("\n(b) PageRank");
    let pr = [
        ("REX Δ", pr_rex.avg_bandwidth_per_node()),
        ("HaLoop LB", pr_haloop.avg_bandwidth_per_node(PAPER_WORKERS)),
        ("Hadoop LB", pr_hadoop.avg_bandwidth_per_node(PAPER_WORKERS)),
    ];
    for (label, bw) in pr {
        println!("  {label:<10} {bw:>12.1}");
    }

    println!(
        "\nPageRank: REX Δ uses {:.0}% of Hadoop LB's bandwidth (paper: 0.97 vs 2.00 MB/s ≈ 49%)",
        100.0 * pr[0].1 / pr[2].1
    );
    println!(
        "shortest path: REX Δ uses {:.0}% of Hadoop LB's (paper: even more pronounced)",
        100.0 * sp[0].1 / sp[2].1
    );
}
