//! Figure 5: K-means scalability — runtime vs data size (log-log sweep),
//! REX Δ against the Hadoop lower bound.
//!
//! "REX delta is almost two orders of magnitude faster, due to its
//! extremely low iteration overhead" (§6.2). HaLoop is omitted exactly as
//! in the paper: the query has no immutable relation, so HaLoop and Hadoop
//! behave identically (asserted by a unit test in `rex-algos`).

use rex_bench::runners::{kmeans_hadoop, kmeans_rex};
use rex_bench::{print_table, scale, Series, PAPER_WORKERS};
use rex_hadoop::cost::EmulationMode;

fn main() {
    let k = 24;
    let sizes: Vec<usize> =
        [400, 1_600, 6_400, 25_600].iter().map(|&n| (n as f64 * scale()) as usize).collect();
    println!("Figure 5 — K-means scalability (k = {k}, {PAPER_WORKERS} nodes)");

    let mut rex = Series { label: "REX Δ".into(), points: vec![] };
    let mut hadoop = Series { label: "Hadoop LB".into(), points: vec![] };
    for &n in &sizes {
        let points = rex_bench::workloads::geo_points(n);
        let (_, rex_rep) = kmeans_rex(&points, k, PAPER_WORKERS);
        let (_, mr_rep) = kmeans_hadoop(&points, k, EmulationMode::HadoopLowerBound, PAPER_WORKERS);
        rex.points.push((n as f64, rex_rep.simulated_time()));
        hadoop.points.push((n as f64, mr_rep.total_sim_time()));
        println!(
            "  n = {n:>7}: REX Δ {:>12.0}  Hadoop LB {:>12.0}  ({:.1}x)",
            rex_rep.simulated_time(),
            mr_rep.total_sim_time(),
            mr_rep.total_sim_time() / rex_rep.simulated_time()
        );
    }
    print_table("runtime vs data size", "points", &[rex, hadoop]);
    println!("\n(the gap comes from per-iteration startup + full re-mapping in MapReduce vs");
    println!(" REX's Δ set — only the points that switch centroids — per iteration)");
}
