//! Figure 3: types of recursive data — the immutable / mutable / Δᵢ-set
//! classification of the algorithm suite.

fn main() {
    println!("Figure 3 — Types of recursive data\n");
    print!("{}", rex_algos::taxonomy::render_figure3());
}
