//! rex-server serving throughput: does snapshot serving actually scale
//! reads?
//!
//! Three phases against one server seeded with an edges table and a
//! grouped-count view:
//!
//! * **sequential** — one connection, strict request/response: send a
//!   `QUERY`, wait for the reply, repeat. This is the floor any
//!   single-threaded front-end achieves; every query pays a full
//!   round-trip of syscalls.
//! * **concurrent** — [`READERS`] connections, each pipelining the same
//!   query mix with [`WINDOW`] requests in flight. This is what the
//!   architecture is *for*: readers share immutable snapshots (no
//!   locks), the per-snapshot result cache answers repeats with a
//!   buffer write, and batch-flush amortizes syscalls across the
//!   pipeline window. The headline number is
//!   `concurrent_qps / sequential_qps`; CI enforces `floor` on it.
//! * **mixed** — the same reader fleet while a writer streams `BATCH`
//!   ingests. Reports read throughput under writes plus the writer's
//!   snapshot publish latency (mean/max) and versions published — the
//!   cost of MVCC-lite is the publish, so it gets measured.
//!
//! Results land in `BENCH_server.json`; the CI bench-smoke job enforces
//! the speedup floor. The floor is deliberately conservative (4x with 8
//! readers): pipelining alone clears it on one core, and real
//! multi-core parallelism only adds margin.

use rex::core::tuple::Tuple;
use rex::core::value::Value;
use rex::Session;
use rex_server::{Client, Server, ServerConfig};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Seed rows in `edges` (distinct dst per row, src in 0..SRCS).
const SEED_ROWS: usize = 20_000;
const SRCS: i64 = 200;
/// Concurrent reader connections (the acceptance criterion's 8).
const READERS: usize = 8;
/// Pipeline window per reader connection.
const WINDOW: usize = 64;
/// Queries per connection in the sequential phase.
const SEQ_QUERIES: usize = 4_000;
/// Queries per reader connection in the concurrent phases.
const CONC_QUERIES: usize = 4_000;
/// Timed passes per phase; the best pass is reported (same idiom as the
/// exec/IVM benches — filters scheduler noise on busy machines).
const PASSES: usize = 3;
/// Writer stream in the mixed phase: batches × rows.
const MIX_BATCHES: usize = 50;
const MIX_ROWS_PER_BATCH: usize = 200;
/// CI floor on concurrent_qps / sequential_qps.
const SPEEDUP_FLOOR: f64 = 4.0;

fn seeded_server() -> Server {
    let mut s = Session::local();
    s.query("CREATE TABLE edges (src INT, dst INT)").unwrap();
    s.query("CREATE MATERIALIZED VIEW deg AS SELECT src, count(*) FROM edges GROUP BY src")
        .unwrap();
    let rows: Vec<Tuple> = (0..SEED_ROWS)
        .map(|i| Tuple::new(vec![Value::Int(i as i64 % SRCS), Value::Int(i as i64)]))
        .collect();
    s.insert("edges", rows).unwrap();
    Server::start(s, "127.0.0.1:0", ServerConfig::default()).unwrap()
}

/// The query mix: point lookups on the view plus selective counts on the
/// base table — small results, so the bench measures serving, not row
/// encoding volume.
fn query_mix() -> Vec<String> {
    (0..32)
        .map(|i| {
            if i % 4 == 3 {
                format!("SELECT count(*) FROM edges WHERE src = {}", (i * 7) % SRCS)
            } else {
                format!("SELECT * FROM deg WHERE src = {}", (i * 13) % SRCS)
            }
        })
        .collect()
}

/// One reader connection running `n` queries from the mix with `window`
/// requests in flight (1 = strict request/response). Uses the skim
/// reply path in every phase so the comparison isolates the serving
/// architecture, not client-side row decoding.
fn run_reader(addr: std::net::SocketAddr, n: usize, offset: usize, window: usize) -> usize {
    let (mut c, _) = Client::connect(addr).unwrap();
    let mix = query_mix();
    let queries: Vec<String> = (0..n).map(|i| mix[(i + offset) % mix.len()].clone()).collect();
    let (rows, _version) = c.query_pipelined_skim(&queries, window).unwrap();
    c.quit().unwrap();
    rows
}

fn phase_sequential(addr: std::net::SocketAddr) -> f64 {
    let (mut c, _) = Client::connect(addr).unwrap();
    let mix = query_mix();
    // Warm the snapshot cache so both phases serve from the same state.
    for q in &mix {
        c.query(q).unwrap();
    }
    c.quit().unwrap();
    let mut best = 0.0f64;
    for _ in 0..PASSES {
        let t = Instant::now();
        run_reader(addr, SEQ_QUERIES, 0, 1);
        let secs = t.elapsed().as_secs_f64();
        best = best.max(SEQ_QUERIES as f64 / secs);
    }
    best
}

fn phase_concurrent(addr: std::net::SocketAddr) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..PASSES {
        let barrier = Arc::new(Barrier::new(READERS + 1));
        let handles: Vec<_> = (0..READERS)
            .map(|r| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    run_reader(addr, CONC_QUERIES, r * 5, WINDOW)
                })
            })
            .collect();
        barrier.wait();
        let t = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        let secs = t.elapsed().as_secs_f64();
        best = best.max((READERS * CONC_QUERIES) as f64 / secs);
    }
    best
}

struct Mixed {
    read_qps: f64,
    publish_mean_us: f64,
    publish_max_us: f64,
    publishes: u64,
    final_version: u64,
}

fn phase_mixed(server: &Server) -> Mixed {
    let addr = server.local_addr();
    let publishes_before = server.stats().publishes.load(Ordering::Relaxed);
    let barrier = Arc::new(Barrier::new(READERS + 2));
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                run_reader(addr, CONC_QUERIES, r * 3, WINDOW)
            })
        })
        .collect();
    let writer = {
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let (mut c, _) = Client::connect(addr).unwrap();
            barrier.wait();
            for k in 0..MIX_BATCHES {
                let rows: Vec<Tuple> = (0..MIX_ROWS_PER_BATCH)
                    .map(|i| {
                        let dst = (SEED_ROWS + k * MIX_ROWS_PER_BATCH + i) as i64;
                        Tuple::new(vec![Value::Int(dst % SRCS), Value::Int(dst)])
                    })
                    .collect();
                c.batch("edges", &rows).unwrap();
            }
            c.quit().unwrap();
        })
    };
    barrier.wait();
    let t = Instant::now();
    for h in readers {
        h.join().unwrap();
    }
    let read_secs = t.elapsed().as_secs_f64();
    writer.join().unwrap();

    let stats = server.stats();
    Mixed {
        read_qps: (READERS * CONC_QUERIES) as f64 / read_secs,
        publish_mean_us: stats.publish_mean_us(),
        publish_max_us: stats.publish_max_ns.load(Ordering::Relaxed) as f64 / 1_000.0,
        publishes: stats.publishes.load(Ordering::Relaxed) - publishes_before,
        final_version: server.published_version(),
    }
}

fn main() {
    let server = seeded_server();
    let addr = server.local_addr();
    println!(
        "server throughput, {SEED_ROWS} seed rows, {READERS} readers, window {WINDOW}, at {addr}\n"
    );

    let sequential_qps = phase_sequential(addr);
    println!(
        "{:>12}: {sequential_qps:>10.0} q/s  (1 connection, strict request/response)",
        "sequential"
    );

    let concurrent_qps = phase_concurrent(addr);
    let speedup = concurrent_qps / sequential_qps;
    println!(
        "{:>12}: {concurrent_qps:>10.0} q/s  ({READERS} connections, pipelined) — {speedup:.2}x",
        "concurrent"
    );

    let mixed = phase_mixed(&server);
    println!(
        "{:>12}: {:>10.0} q/s under a write stream; {} publishes, mean {:.1} us, max {:.1} us, final version {}",
        "mixed",
        mixed.read_qps,
        mixed.publishes,
        mixed.publish_mean_us,
        mixed.publish_max_us,
        mixed.final_version,
    );

    let cache_hits = server.stats().cache_hits.load(Ordering::Relaxed);
    let queries = server.stats().queries.load(Ordering::Relaxed);
    server.shutdown().unwrap();

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"seed_rows\": {SEED_ROWS},\n"));
    json.push_str(&format!("  \"readers\": {READERS},\n"));
    json.push_str(&format!("  \"window\": {WINDOW},\n"));
    json.push_str(&format!(
        "  \"sequential\": {{ \"queries\": {SEQ_QUERIES}, \"qps\": {sequential_qps:.0} }},\n"
    ));
    json.push_str(&format!(
        "  \"concurrent\": {{ \"queries\": {}, \"qps\": {concurrent_qps:.0}, \
         \"speedup_vs_sequential\": {speedup:.2}, \"floor\": {SPEEDUP_FLOOR:.2} }},\n",
        READERS * CONC_QUERIES,
    ));
    json.push_str(&format!(
        "  \"mixed\": {{ \"read_qps\": {:.0}, \"batches\": {MIX_BATCHES}, \
         \"rows_per_batch\": {MIX_ROWS_PER_BATCH}, \"publishes\": {}, \
         \"publish_mean_us\": {:.1}, \"publish_max_us\": {:.1}, \"final_version\": {} }},\n",
        mixed.read_qps,
        mixed.publishes,
        mixed.publish_mean_us,
        mixed.publish_max_us,
        mixed.final_version,
    ));
    json.push_str(&format!(
        "  \"cache_hit_rate\": {:.3}\n}}\n",
        cache_hits as f64 / queries.max(1) as f64
    ));
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("\nwrote BENCH_server.json");

    assert!(
        speedup >= SPEEDUP_FLOOR,
        "concurrent serving speedup {speedup:.2}x is below the {SPEEDUP_FLOOR:.1}x floor"
    );
}
