//! Morsel-parallel scan throughput: 1 thread vs N threads, same query.
//!
//! The workload is the headline scan→filter→project pipeline
//! (`SELECT k, a + 1, b * 2.0 FROM t WHERE a < 50`, ~50% selective) over
//! a base table large enough that the morsel cursor hands every worker
//! many 4096-row slices. Each thread count is timed as the best of
//! [`ROUNDS`] full `Session::query` passes, interleaved 1-thread /
//! N-thread inside every round so machine noise (thermal drift, noisy
//! neighbors on CI runners) hits both sides equally.
//!
//! Two things are checked here, not just measured:
//!
//! * **Determinism** — the parallel result must be bit-identical to the
//!   single-thread result on every pass (the engine sink contract:
//!   sorted rows, same order, same values).
//! * **Scaling** — on a machine with at least [`THREADS`] cores, the
//!   N-thread run must clear `floor`× the 1-thread throughput. The gate
//!   is recorded in `BENCH_parallel.json` with `gate_active` false when
//!   the host has fewer cores (a 1-core container cannot speed anything
//!   up; CI's check honors the flag), so local runs stay honest instead
//!   of silently green.

use rex::core::tuple::{Schema, Tuple};
use rex::core::value::{DataType, Value};
use rex::Session;
use rex_data::rng::StdRng;
use std::time::Instant;

/// Base-table rows: 512 morsels' worth, enough for every worker to see
/// many slices and for the ~1 ms runtime floor to not dominate.
const ROWS: usize = 2_097_152;
/// Parallel thread count under test.
const THREADS: usize = 4;
/// Interleaved timed rounds per thread count (best round reported).
const ROUNDS: usize = 3;
/// Required N-thread speedup over 1 thread when the gate is active.
const FLOOR: f64 = 2.5;

const QUERY: &str = "SELECT k, a + 1, b * 2.0 FROM t WHERE a < 50";

fn session() -> Session {
    let mut s = Session::local();
    s.create_table(
        "t",
        Schema::of(&[("k", DataType::Int), ("a", DataType::Int), ("b", DataType::Double)]),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(23);
    let rows: Vec<Tuple> = (0..ROWS)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..=99i64)),
                Value::Double(rng.gen_range(0..=999i64) as f64 * 0.25),
            ])
        })
        .collect();
    s.insert("t", rows).unwrap();
    s
}

/// One timed pass at `threads`; returns (seconds, result rows).
fn pass(s: &mut Session, threads: usize) -> (f64, Vec<Tuple>) {
    s.set_threads(threads);
    let t = Instant::now();
    let r = s.query(QUERY).unwrap();
    (t.elapsed().as_secs_f64(), r.rows)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let gate_active = cores >= THREADS;
    println!(
        "parallel scaling, {ROWS} rows, 1 vs {THREADS} threads on {cores} cores \
         (gate {})",
        if gate_active { "active" } else { "SKIPPED: too few cores" }
    );

    let mut s = session();
    // Warm both paths (snapshot caches, allocator) before timing.
    let (_, reference) = pass(&mut s, 1);
    let (_, warm_par) = pass(&mut s, THREADS);
    assert_eq!(warm_par, reference, "parallel result diverges from single-thread");

    let (mut best1, mut bestn) = (f64::INFINITY, f64::INFINITY);
    for round in 0..ROUNDS {
        let (t1, r1) = pass(&mut s, 1);
        let (tn, rn) = pass(&mut s, THREADS);
        assert_eq!(r1, reference, "single-thread result drifted (round {round})");
        assert_eq!(rn, reference, "parallel result diverges (round {round})");
        best1 = best1.min(t1);
        bestn = bestn.min(tn);
    }

    let speedup = best1 / bestn;
    let ns1 = best1 * 1e9 / ROWS as f64;
    let nsn = bestn * 1e9 / ROWS as f64;
    println!("  1 thread : {ns1:>7.1} ns/row  ({:.0} rows/s)", ROWS as f64 / best1);
    println!("  {THREADS} threads: {nsn:>7.1} ns/row  ({:.0} rows/s)", ROWS as f64 / bestn);
    println!("  speedup  : {speedup:.2}x (floor {FLOOR}x, gate_active={gate_active})");

    let json = format!(
        "{{\n  \"rows\": {ROWS},\n  \"cores\": {cores},\n  \"threads\": {THREADS},\n  \
         \"ns_per_row_1t\": {ns1:.1},\n  \"ns_per_row_{THREADS}t\": {nsn:.1},\n  \
         \"result_rows\": {},\n  \"speedup\": {speedup:.2},\n  \"floor\": {FLOOR},\n  \
         \"gate_active\": {gate_active}\n}}\n",
        reference.len(),
    );
    std::fs::write("BENCH_parallel.json", json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");

    if gate_active {
        assert!(
            speedup >= FLOOR,
            "{THREADS}-thread scan_filter_project speedup {speedup:.2}x < {FLOOR}x \
             on a {cores}-core host"
        );
    }
}
