//! Figure 6: recursive behavior of PageRank on the "DBPedia" graph —
//! (a) cumulative runtime, (b) per-iteration runtime, for all five
//! strategies: Hadoop LB, HaLoop LB, REX wrap, REX no-Δ, REX Δ.

use rex_algos::pagerank::{PageRankConfig, Strategy};
use rex_bench::runners::*;
use rex_bench::{print_table, scale, Series, PAPER_WORKERS};
use rex_hadoop::cost::EmulationMode;

fn main() {
    let g = rex_bench::workloads::dbpedia_graph(scale());
    let iterations = 26u64; // the paper's x-axis for DBPedia
    println!(
        "Figure 6 — PageRank (DBPedia stand-in: {} vertices, {} edges, {} workers, {} iterations)",
        g.n_vertices,
        g.n_edges(),
        PAPER_WORKERS,
        iterations
    );

    let (_, hadoop) =
        pagerank_hadoop(&g, iterations as usize, EmulationMode::HadoopLowerBound, PAPER_WORKERS);
    let (_, haloop) =
        pagerank_hadoop(&g, iterations as usize, EmulationMode::HaLoopLowerBound, PAPER_WORKERS);
    let wrap = pagerank_wrap(&g, iterations, PAPER_WORKERS);
    let (_, nodelta) = pagerank_rex(
        &g,
        PageRankConfig { threshold: 0.0, max_iterations: iterations },
        Strategy::NoDelta,
        PAPER_WORKERS,
    );
    let (_, delta) = pagerank_rex(
        &g,
        PageRankConfig { threshold: 0.01, max_iterations: iterations },
        Strategy::Delta,
        PAPER_WORKERS,
    );

    let series = vec![
        Series::from_values("Hadoop LB", &mr_iteration_times(&hadoop)),
        Series::from_values("HaLoop LB", &mr_iteration_times(&haloop)),
        Series::from_values("REX wrap", &rex_iteration_times(&wrap)),
        Series::from_values("REX no-Δ", &rex_iteration_times(&nodelta)),
        Series::from_values("REX Δ", &rex_iteration_times(&delta)),
    ];
    let cumulative: Vec<Series> = series.iter().map(Series::cumulative).collect();
    print_table("(a) cumulative runtime", "iteration", &cumulative);
    print_table("(b) runtime per iteration", "iteration", &series);

    println!("\ntotal runtimes and REX Δ speedups:");
    let delta_total = cumulative[4].last_y();
    for s in &cumulative {
        println!(
            "  {:<10} {:>14.0}  ({:.1}x vs REX Δ)",
            s.label.replace(" (cumulative)", ""),
            s.last_y(),
            s.last_y() / delta_total
        );
    }
    println!("\npaper: REX Δ ≈ 10x HaLoop LB, ≈ 4x REX no-Δ on DBPedia");
}
