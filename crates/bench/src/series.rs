//! Tabular output shared by the figure binaries.

/// One plotted series: a label and `(x, y)` points.
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Legend label (matches the paper's).
    pub label: String,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series from y-values at x = 1, 2, ...
    pub fn from_values(label: impl Into<String>, ys: &[f64]) -> Series {
        Series {
            label: label.into(),
            points: ys.iter().enumerate().map(|(i, &y)| ((i + 1) as f64, y)).collect(),
        }
    }

    /// Cumulative version of this series.
    pub fn cumulative(&self) -> Series {
        let mut acc = 0.0;
        Series {
            label: format!("{} (cumulative)", self.label),
            points: self
                .points
                .iter()
                .map(|&(x, y)| {
                    acc += y;
                    (x, acc)
                })
                .collect(),
        }
    }

    /// The final y value.
    pub fn last_y(&self) -> f64 {
        self.points.last().map(|&(_, y)| y).unwrap_or(0.0)
    }
}

/// Print a figure as an aligned table: one row per x, one column per
/// series (the exact rows a plotting script would consume).
pub fn print_table(title: &str, x_label: &str, series: &[Series]) {
    println!("\n=== {title} ===");
    print!("{x_label:>12}");
    for s in series {
        print!("  {:>18}", s.label);
    }
    println!();
    let n = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..n {
        let x =
            series.iter().find_map(|s| s.points.get(i).map(|&(x, _)| x)).unwrap_or((i + 1) as f64);
        if x == x.trunc() {
            print!("{x:>12.0}");
        } else {
            print!("{x:>12.3}");
        }
        for s in series {
            match s.points.get(i) {
                Some(&(_, y)) => print!("  {y:>18.3}"),
                None => print!("  {:>18}", "-"),
            }
        }
        println!();
    }
}

/// Print one-line summary ratios, e.g. `REX Δ vs HaLoop LB: 3.2x`.
pub fn print_ratio(label_a: &str, a: f64, label_b: &str, b: f64) {
    if a > 0.0 {
        println!("{label_b} / {label_a} = {:.2}x", b / a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_assigns_x() {
        let s = Series::from_values("t", &[5.0, 6.0]);
        assert_eq!(s.points, vec![(1.0, 5.0), (2.0, 6.0)]);
        assert_eq!(s.last_y(), 6.0);
    }

    #[test]
    fn cumulative_accumulates() {
        let s = Series::from_values("t", &[1.0, 2.0, 3.0]).cumulative();
        assert_eq!(s.points, vec![(1.0, 1.0), (2.0, 3.0), (3.0, 6.0)]);
    }
}
