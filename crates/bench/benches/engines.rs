//! Wall-clock benchmarks: one group per paper artifact, each measuring the
//! real execution speed of the platforms on a small fixed workload (the
//! figure binaries report the deterministic cost-model series; these
//! report wall time). Runs with `cargo bench` via a dependency-free
//! manual harness: each case is warmed once, then timed over a fixed
//! iteration count, reporting the mean and the minimum.

use rex_algos::pagerank::{PageRankConfig, Strategy};
use rex_bench::{runners, workloads};
use rex_core::exec::LocalRuntime;
use rex_core::udf::Registry;
use rex_dbms::engine::DbmsConfig;
use rex_hadoop::cost::EmulationMode;
use rex_hadoop::job::{HadoopCluster, JobInput, MapReduceJob};
use rex_rql::lower::{compile, MemTables};
use rex_rql::SchemaCatalog;
use std::time::Instant;

const SAMPLES: usize = 10;

/// Time `f` over [`SAMPLES`] runs (after one warm-up) and print a line.
fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    f(); // warm-up
    let mut times = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    let mean: f64 = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("{group}/{name:<24} mean {:>10.3} ms   min {:>10.3} ms", mean * 1e3, min * 1e3);
}

/// Figure 4: the OLAP aggregation on REX (via RQL) vs the Hadoop
/// simulator.
fn fig04_olap() {
    let rows = workloads::lineitem_rows(4_000);
    let mut catalog = SchemaCatalog::new();
    catalog.register("lineitem", rex_data::lineitem::schema());
    let mut tables = MemTables::new();
    tables.insert("lineitem", workloads::lineitem_tuples(&rows));
    let reg = Registry::with_builtins();

    bench("fig04_olap", "rex_builtin_rql", || {
        let plan = compile(
            "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1",
            &catalog,
            &tables,
            &reg,
        )
        .unwrap();
        LocalRuntime::new().run(plan).unwrap();
    });
    let mapper = rex_hadoop::api::FnMapper::new("m", |_k, v, out| {
        if let Some(l) = v.as_list() {
            if l[0].as_int().unwrap_or(0) > 1 {
                out(rex_core::value::Value::Int(0), l[1].clone());
            }
        }
    });
    let reducer = rex_hadoop::api::FnReducer::new("r", |k, vs, out| {
        let s: f64 = vs.iter().filter_map(rex_core::value::Value::as_double).sum();
        out(k.clone(), rex_core::value::Value::Double(s));
    });
    let job = MapReduceJob::new("fig4", mapper, reducer);
    let records: Vec<rex_hadoop::api::Record> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            (
                rex_core::value::Value::Int(i as i64),
                rex_core::value::Value::list(vec![
                    rex_core::value::Value::Int(r.linenumber),
                    rex_core::value::Value::Double(r.tax),
                ]),
            )
        })
        .collect();
    bench("fig04_olap", "hadoop", || {
        HadoopCluster::new(1).run_job(&job, &[JobInput::mutable(records.clone())], 0);
    });
}

/// Figures 6/8: PageRank — REX Δ vs REX no-Δ vs the MapReduce baselines.
fn fig06_pagerank() {
    let g6 = workloads::dbpedia_graph(0.2);
    bench("fig06_pagerank", "rex_delta", || {
        runners::pagerank_rex(
            &g6,
            PageRankConfig { threshold: 0.01, max_iterations: 20 },
            Strategy::Delta,
            4,
        );
    });
    bench("fig06_pagerank", "rex_no_delta", || {
        runners::pagerank_rex(
            &g6,
            PageRankConfig { threshold: 0.0, max_iterations: 10 },
            Strategy::NoDelta,
            4,
        );
    });
    bench("fig06_pagerank", "hadoop_lb", || {
        runners::pagerank_hadoop(&g6, 10, EmulationMode::HadoopLowerBound, 4);
    });
    bench("fig06_pagerank", "haloop_lb", || {
        runners::pagerank_hadoop(&g6, 10, EmulationMode::HaLoopLowerBound, 4);
    });
}

/// Figure 7/9: shortest path — REX Δ vs the frontier MapReduce baseline.
fn fig07_sssp() {
    let g7 = workloads::dbpedia_graph(0.2);
    bench("fig07_sssp", "rex_delta", || {
        runners::sssp_rex(&g7, 0, Strategy::Delta, 100, 4);
    });
    bench("fig07_sssp", "hadoop_frontier", || {
        runners::sssp_hadoop(&g7, 0, 100, EmulationMode::HadoopLowerBound, 4);
    });
}

/// Figure 5: K-means — REX Δ vs MapReduce, one size point.
fn fig05_kmeans() {
    let pts = workloads::geo_points(400);
    bench("fig05_kmeans", "rex_delta", || {
        runners::kmeans_rex(&pts, 8, 4);
    });
    bench("fig05_kmeans", "hadoop_lb", || {
        runners::kmeans_hadoop(&pts, 8, EmulationMode::HadoopLowerBound, 4);
    });
}

/// Figure 10: the DBMS X accumulate-only evaluator.
fn fig10_dbms() {
    let graph = workloads::dbpedia_graph(0.2);
    bench("fig10_dbms", "dbms_x_pagerank", || {
        rex_dbms::pagerank_recursive_sql(&graph, 10, &DbmsConfig::default());
    });
}

/// Figure 12: recovery strategies under an injected failure.
fn fig12_recovery() {
    let graph = workloads::dbpedia_graph(0.2);
    for (name, strategy) in [
        ("restart", rex_cluster::failure::RecoveryStrategy::Restart),
        ("incremental", rex_cluster::failure::RecoveryStrategy::Incremental),
    ] {
        bench("fig12_recovery", &format!("sssp_failure_at_3/{name}"), || {
            runners::sssp_rex_with_failure(&graph, 0, 4, 1, 3, strategy);
        });
    }
}

fn main() {
    fig04_olap();
    fig05_kmeans();
    fig06_pagerank();
    fig07_sssp();
    fig10_dbms();
    fig12_recovery();
}
