//! Criterion wall-clock benchmarks: one group per paper artifact, each
//! measuring the real execution speed of the platforms on a small fixed
//! workload (the figure binaries report the deterministic cost-model
//! series; these report wall time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rex_algos::pagerank::{PageRankConfig, Strategy};
use rex_bench::{runners, workloads};
use rex_core::exec::LocalRuntime;
use rex_core::udf::Registry;
use rex_dbms::engine::DbmsConfig;
use rex_hadoop::cost::EmulationMode;
use rex_hadoop::job::{HadoopCluster, JobInput, MapReduceJob};
use rex_rql::lower::{compile, MemTables};
use rex_rql::SchemaCatalog;

/// Figure 4: the OLAP aggregation on REX (via RQL) vs the Hadoop
/// simulator.
fn fig04_olap(c: &mut Criterion) {
    let rows = workloads::lineitem_rows(4_000);
    let mut catalog = SchemaCatalog::new();
    catalog.register("lineitem", rex_data::lineitem::schema());
    let mut tables = MemTables::new();
    tables.insert("lineitem", workloads::lineitem_tuples(&rows));
    let reg = Registry::with_builtins();

    let mut g = c.benchmark_group("fig04_olap");
    g.bench_function("rex_builtin_rql", |b| {
        b.iter(|| {
            let plan = compile(
                "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1",
                &catalog,
                &tables,
                &reg,
            )
            .unwrap();
            LocalRuntime::new().run(plan).unwrap()
        })
    });
    let mapper = rex_hadoop::api::FnMapper::new("m", |_k, v, out| {
        if let Some(l) = v.as_list() {
            if l[0].as_int().unwrap_or(0) > 1 {
                out(rex_core::value::Value::Int(0), l[1].clone());
            }
        }
    });
    let reducer = rex_hadoop::api::FnReducer::new("r", |k, vs, out| {
        let s: f64 = vs.iter().filter_map(rex_core::value::Value::as_double).sum();
        out(k.clone(), rex_core::value::Value::Double(s));
    });
    let job = MapReduceJob::new("fig4", mapper, reducer);
    let records: Vec<rex_hadoop::api::Record> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            (
                rex_core::value::Value::Int(i as i64),
                rex_core::value::Value::list(vec![
                    rex_core::value::Value::Int(r.linenumber),
                    rex_core::value::Value::Double(r.tax),
                ]),
            )
        })
        .collect();
    g.bench_function("hadoop", |b| {
        b.iter(|| {
            HadoopCluster::new(1).run_job(&job, &[JobInput::mutable(records.clone())], 0)
        })
    });
    g.finish();
}

/// Figures 6/8: PageRank — REX Δ vs REX no-Δ vs the MapReduce baselines.
fn fig06_pagerank(c: &mut Criterion) {
    let g6 = workloads::dbpedia_graph(0.2);
    let mut g = c.benchmark_group("fig06_pagerank");
    g.bench_function("rex_delta", |b| {
        b.iter(|| {
            runners::pagerank_rex(
                &g6,
                PageRankConfig { threshold: 0.01, max_iterations: 20 },
                Strategy::Delta,
                4,
            )
        })
    });
    g.bench_function("rex_no_delta", |b| {
        b.iter(|| {
            runners::pagerank_rex(
                &g6,
                PageRankConfig { threshold: 0.0, max_iterations: 10 },
                Strategy::NoDelta,
                4,
            )
        })
    });
    g.bench_function("hadoop_lb", |b| {
        b.iter(|| runners::pagerank_hadoop(&g6, 10, EmulationMode::HadoopLowerBound, 4))
    });
    g.bench_function("haloop_lb", |b| {
        b.iter(|| runners::pagerank_hadoop(&g6, 10, EmulationMode::HaLoopLowerBound, 4))
    });
    g.finish();
}

/// Figure 7/9: shortest path — REX Δ vs the frontier MapReduce baseline.
fn fig07_sssp(c: &mut Criterion) {
    let g7 = workloads::dbpedia_graph(0.2);
    let mut g = c.benchmark_group("fig07_sssp");
    g.bench_function("rex_delta", |b| {
        b.iter(|| runners::sssp_rex(&g7, 0, Strategy::Delta, 100, 4))
    });
    g.bench_function("hadoop_frontier", |b| {
        b.iter(|| runners::sssp_hadoop(&g7, 0, 100, EmulationMode::HadoopLowerBound, 4))
    });
    g.finish();
}

/// Figure 5: K-means — REX Δ vs MapReduce, one size point.
fn fig05_kmeans(c: &mut Criterion) {
    let pts = workloads::geo_points(400);
    let mut g = c.benchmark_group("fig05_kmeans");
    g.bench_function("rex_delta", |b| b.iter(|| runners::kmeans_rex(&pts, 8, 4)));
    g.bench_function("hadoop_lb", |b| {
        b.iter(|| runners::kmeans_hadoop(&pts, 8, EmulationMode::HadoopLowerBound, 4))
    });
    g.finish();
}

/// Figure 10: the DBMS X accumulate-only evaluator.
fn fig10_dbms(c: &mut Criterion) {
    let graph = workloads::dbpedia_graph(0.2);
    let mut g = c.benchmark_group("fig10_dbms");
    g.bench_function("dbms_x_pagerank", |b| {
        b.iter(|| rex_dbms::pagerank_recursive_sql(&graph, 10, &DbmsConfig::default()))
    });
    g.finish();
}

/// Figure 12: recovery strategies under an injected failure.
fn fig12_recovery(c: &mut Criterion) {
    let graph = workloads::dbpedia_graph(0.2);
    let mut g = c.benchmark_group("fig12_recovery");
    for (name, strategy) in [
        ("restart", rex_cluster::failure::RecoveryStrategy::Restart),
        ("incremental", rex_cluster::failure::RecoveryStrategy::Incremental),
    ] {
        g.bench_with_input(BenchmarkId::new("sssp_failure_at_3", name), &strategy, |b, &s| {
            b.iter(|| runners::sssp_rex_with_failure(&graph, 0, 4, 1, 3, s))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig04_olap, fig05_kmeans, fig06_pagerank, fig07_sssp, fig10_dbms, fig12_recovery
}
criterion_main!(benches);
